#!/usr/bin/env python3
"""Dump the versioned request/response JSON Schemas into ``docs/schemas/``.

The wire contract of ``repro.api`` / ``python -m repro.serve`` lives in
:mod:`repro.api.schemas`; this tool materializes it as one pretty-printed
JSON file per schema (``<name>.v<version>.json``) so clients can consume
the contract without importing the package, and CI's ``--check`` mode
fails when the dumped files drift from the code — a schema change cannot
land without its exported contract.

Usage::

    PYTHONPATH=src python tools/schema_export.py          # (re)write files
    PYTHONPATH=src python tools/schema_export.py --check  # CI drift gate
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCHEMAS_DIR = REPO_ROOT / "docs" / "schemas"

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api.requests import API_SCHEMA_VERSION  # noqa: E402
from repro.api.schemas import ALL_SCHEMAS  # noqa: E402


def schema_path(name: str) -> Path:
    return SCHEMAS_DIR / f"{name}.v{API_SCHEMA_VERSION}.json"


def rendered(schema: dict) -> str:
    return json.dumps(schema, indent=2, sort_keys=True) + "\n"


def export() -> int:
    SCHEMAS_DIR.mkdir(parents=True, exist_ok=True)
    for name, schema in sorted(ALL_SCHEMAS.items()):
        path = schema_path(name)
        path.write_text(rendered(schema))
        print(f"wrote {path.relative_to(REPO_ROOT)}")
    return 0


def check() -> int:
    failures = 0
    expected_files = {schema_path(name).name for name in ALL_SCHEMAS}
    for name, schema in sorted(ALL_SCHEMAS.items()):
        path = schema_path(name)
        if not path.exists():
            print(f"MISSING {path.relative_to(REPO_ROOT)}")
            failures += 1
            continue
        if path.read_text() != rendered(schema):
            print(f"DRIFT   {path.relative_to(REPO_ROOT)} "
                  "(re-run tools/schema_export.py)")
            failures += 1
        else:
            print(f"OK      {path.relative_to(REPO_ROOT)}")
    for stray in sorted(SCHEMAS_DIR.glob("*.json")):
        if stray.name not in expected_files:
            print(f"STRAY   {stray.relative_to(REPO_ROOT)} "
                  "(not produced by this build — stale version?)")
            failures += 1
    if failures:
        print(f"{failures} schema file(s) out of sync")
        return 1
    print("schemas in sync")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="verify docs/schemas/ matches the code "
                             "instead of rewriting it")
    args = parser.parse_args(argv)
    return check() if args.check else export()


if __name__ == "__main__":
    raise SystemExit(main())
