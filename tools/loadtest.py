#!/usr/bin/env python3
"""Load/stress harness for ``python -m repro.serve``.

Fires a seeded mixed eval/search/sweep workload (sampled with
replacement, so repeat and concurrent-identical traffic occur naturally;
the search pool includes ``frontier=`` and ``fused=`` requests so the v3
response schema is exercised under concurrent load) at a serve instance
from N concurrent closed-loop clients, and reports:

* throughput (requests/s) and latency percentiles (p50/p99/mean),
* error count (any non-200 fails the run),
* service-side cache effectiveness over the run (healthz deltas:
  coalesced requests, evaluation-cache hit rate, shared-store hits).

By default it benchmarks two freshly-spawned server configurations
back to back — ``--threads 1`` and ``--threads N`` — each on its own
empty ``--store``, records both (plus their throughput ratio) as one run
entry in ``BENCH_service.json``, and prints a summary.  The recorded
``cpu_count`` is what makes the ratio interpretable: request-level
process offload can only beat a single dispatch thread when there are
physical cores to offload to, so on a 1-core box the honest ratio is
~1x and the CI gate checks *absolute* threaded throughput
(``tools/bench_guard.py --gates service``) rather than the ratio.

Usage::

    PYTHONPATH=src python tools/loadtest.py [--quick] [--clients 8]
        [--requests 200] [--threads 4] [--seed 0]
        [--output BENCH_service.json]
    PYTHONPATH=src python tools/loadtest.py --base http://127.0.0.1:8080

``--base`` skips server spawning and measures an already-running
instance (one configuration, no ratio).

Two de-noising rules keep the recorded figures honest: each
configuration first drains every unique template once *untimed* (the
warmup pass — a fresh server's first requests pay imports and cache
construction, not service latency), and every timed run drains at least
``MIN_REQUESTS`` requests so throughput/p99 are not scheduler-jitter
artifacts (``--quick`` runs exactly the floor).

Exit status 0 when every request succeeded, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import re
import statistics
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


# ------------------------------------------------------------- workload mix
#: Floor on the measured request count.  Throughput and p99 computed from a
#: few dozen requests are dominated by scheduler jitter; every recorded run
#: drains at least this many requests per server configuration.
MIN_REQUESTS = 120


def _templates() -> Tuple[List[Dict], List[Dict], List[Dict]]:
    """The (searches, evals, sweeps) template pools behind the mix.

    Templates span the paper's evaluation surface (ResNet-50, the Fig. 10
    GEMMs, MobileNet-v3 depthwise, several layouts/metrics/seeds, the
    budgeted ``halving``/``evolutionary`` search policies, ``frontier=`` /
    ``fused=`` Pareto searches, and constrained-backend searches
    (``systolic``, ``noc:tree``) exercising the v4 response schema — repair
    counters included — under concurrent load).
    """
    searches = [
        {"workloads": "resnet50[:8]", "arch": "FEATHER", "model": "resnet8",
         "metric": "edp", "max_mappings": 12},
        {"workloads": "resnet50[:8]", "arch": "FEATHER", "model": "resnet8",
         "metric": "edp", "max_mappings": 12, "seed": 1},
        {"workloads": "resnet50[:4]", "arch": "FEATHER", "model": "resnet4",
         "metric": "latency", "max_mappings": 24},
        {"workloads": "fig10_gemms", "arch": "FEATHER-4x4", "model": "fig10",
         "metric": "latency", "max_mappings": 24},
        {"workloads": "fig10_gemms", "arch": "FEATHER-4x4", "model": "fig10",
         "metric": "edp", "max_mappings": 12},
        {"workloads": "mobilenet_v3_depthwise[:4]", "arch": "Eyeriss-like",
         "model": "mobilenet-dw", "metric": "edp", "max_mappings": 12},
        {"workloads": "resnet50[:8]", "arch": "FEATHER", "model": "resnet8",
         "metric": "edp", "max_mappings": 12, "policy": "halving"},
        {"workloads": "resnet50[:4]", "arch": "FEATHER", "model": "resnet4",
         "metric": "edp", "max_mappings": 24, "policy": "evolutionary",
         "budget": 21},
        {"workloads": "resnet50_residual_block", "arch": "FEATHER",
         "model": "residual", "metric": "edp", "max_mappings": 12,
         "frontier": True},
        {"workloads": "fig10_gemms", "arch": "FEATHER-4x4", "model": "fig10",
         "metric": "latency", "max_mappings": 12, "frontier": True},
        {"workloads": "resnet50_residual_block", "arch": "FEATHER",
         "model": "residual", "metric": "edp", "max_mappings": 12,
         "frontier": True, "fused": True},
        {"workloads": "resnet50[:4]", "arch": "FEATHER", "model": "resnet4",
         "metric": "edp", "max_mappings": 12, "backend": "systolic"},
        {"workloads": "fig10_gemms", "arch": "FEATHER-4x4", "model": "fig10",
         "metric": "edp", "max_mappings": 12, "backend": "noc:tree"},
    ]
    evals = [
        {"workload": f"fig10_gemms#{i}", "arch": "FEATHER-4x4",
         "layout": layout}
        for i in range(4) for layout in ("MK_K32", "MK_M32")
    ] + [
        {"workload": f"resnet50[:4]#{i}", "arch": "FEATHER",
         "layout": "HWC_C32"}
        for i in range(4)
    ]
    sweeps = [{"filter": "golden-fig10"}, {"filter": "smoke-fig10"}]
    return searches, evals, sweeps


def build_workload(requests: int, seed: int) -> List[Tuple[str, Dict]]:
    """A seeded (kind, body) sequence: ~50% eval, ~40% search, ~10% sweep.

    Sampling with replacement makes duplicates — the service's bread and
    butter — occur at natural rates.
    """
    searches, evals, sweeps = _templates()
    rng = random.Random(seed)
    workload = []
    for _ in range(requests):
        roll = rng.random()
        if roll < 0.5:
            workload.append(("eval", rng.choice(evals)))
        elif roll < 0.9:
            workload.append(("search", rng.choice(searches)))
        else:
            workload.append(("sweep", rng.choice(sweeps)))
    return workload


def warmup_workload() -> List[Tuple[str, Dict]]:
    """Every template exactly once — the pre-measurement warmup pass.

    A freshly spawned server pays one-time costs on its first requests
    (module imports, numpy initialisation, per-configuration mapper and
    layout-library construction).  Draining each unique template once
    before the timed run means the recorded figures measure the warm
    service instead of that first-touch noise.
    """
    searches, evals, sweeps = _templates()
    return ([("search", body) for body in searches]
            + [("eval", body) for body in evals]
            + [("sweep", body) for body in sweeps])


# -------------------------------------------------------------- http client
def _get_json(url: str) -> Dict:
    with urllib.request.urlopen(url, timeout=60) as response:
        return json.loads(response.read().decode("utf-8"))


def _post(base: str, kind: str, body: Dict) -> int:
    data = json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        f"{base}/v1/{kind}", data=data,
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=600) as response:
        response.read()
        return response.status


def run_clients(base: str, workload: List[Tuple[str, Dict]],
                clients: int) -> Dict:
    """Closed-loop load: ``clients`` threads drain the workload queue."""
    latencies: List[float] = []
    errors: List[str] = []
    lock = threading.Lock()
    cursor = iter(range(len(workload)))

    def worker() -> None:
        while True:
            with lock:
                i = next(cursor, None)
            if i is None:
                return
            kind, body = workload[i]
            begin = time.perf_counter()
            try:
                status = _post(base, kind, body)
                ok = status == 200
            except (urllib.error.URLError, OSError) as exc:
                ok, status = False, str(exc)
            elapsed = time.perf_counter() - begin
            with lock:
                latencies.append(elapsed)
                if not ok:
                    errors.append(f"{kind} -> {status}")

    threads = [threading.Thread(target=worker) for _ in range(clients)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start

    latencies.sort()

    def pct(p: float) -> float:
        return latencies[min(len(latencies) - 1,
                             int(p * len(latencies)))] if latencies else 0.0

    return {
        "requests": len(workload),
        "clients": clients,
        "wall_s": round(wall, 4),
        "throughput_rps": round(len(workload) / wall, 2) if wall else 0.0,
        "latency_p50_ms": round(pct(0.50) * 1e3, 3),
        "latency_p99_ms": round(pct(0.99) * 1e3, 3),
        "latency_mean_ms": round(statistics.fmean(latencies) * 1e3, 3)
        if latencies else 0.0,
        "errors": len(errors),
        "error_samples": errors[:5],
    }


# ------------------------------------------------------------ server control
def spawn_server(threads: int, store: Optional[Path]) -> Tuple:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    argv = [sys.executable, "-m", "repro.serve", "--port", "0",
            "--threads", str(threads)]
    if store is not None:
        argv += ["--store", str(store)]
    server = subprocess.Popen(argv, cwd=REPO_ROOT, stdout=subprocess.PIPE,
                              stderr=subprocess.DEVNULL, text=True, env=env)
    line = server.stdout.readline()
    match = re.search(r"http://([^:]+):(\d+)", line)
    if not match:
        server.terminate()
        raise RuntimeError(f"server did not announce a port (got {line!r})")
    return server, f"http://{match.group(1)}:{match.group(2)}"


def stop_server(server) -> None:
    server.terminate()
    try:
        server.wait(timeout=10)
    except subprocess.TimeoutExpired:
        server.kill()


def _cache_delta(before: Dict, after: Dict) -> Dict:
    """Service-side effectiveness counters accumulated over the run."""
    lookups = (after["evaluation_cache_hits"] - before["evaluation_cache_hits"]
               + after["evaluation_cache_misses"]
               - before["evaluation_cache_misses"])
    hits = after["evaluation_cache_hits"] - before["evaluation_cache_hits"]
    return {
        "executed": after["executed"] - before["executed"],
        "coalesced": after["coalesced"] - before["coalesced"],
        "store_hits": after["store_hits"] - before["store_hits"],
        "evaluation_cache_hits": hits,
        "evaluation_cache_hit_rate": round(hits / lookups, 4) if lookups
        else 0.0,
        "store": after.get("store"),
    }


def measure(base: str, workload, clients: int) -> Dict:
    # Warmup pass: every unique template once, untimed, so the recorded
    # figures measure the warm service rather than first-touch costs.
    run_clients(base, warmup_workload(), clients)
    before = _get_json(base + "/v1/healthz")
    metrics = run_clients(base, workload, clients)
    after = _get_json(base + "/v1/healthz")
    metrics["cache"] = _cache_delta(before, after)
    metrics["offload"] = after["offload"]
    return metrics


# --------------------------------------------------------------------- main
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent closed-loop client threads")
    parser.add_argument("--requests", type=int, default=200,
                        help="total requests per server configuration")
    parser.add_argument("--threads", type=int, default=4,
                        help="--threads of the threaded configuration")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload-mix sampling seed")
    parser.add_argument("--quick", action="store_true",
                        help=f"CI mode: the {MIN_REQUESTS}-request floor")
    parser.add_argument("--base", default=None,
                        help="measure a running server at this URL instead "
                             "of spawning configurations")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_service.json",
                        help="benchmark trajectory file (appended)")
    args = parser.parse_args(argv)
    requests = (MIN_REQUESTS if args.quick
                else max(args.requests, MIN_REQUESTS))
    workload = build_workload(requests, args.seed)

    import repro

    run_entry: Dict = {
        "repro_version": repro.__version__,
        "cpu_count": os.cpu_count(),
        "clients": args.clients,
        "requests": requests,
        "warmup_requests": len(warmup_workload()),
        "seed": args.seed,
    }

    if args.base:
        run_entry["servers"] = {"external": measure(args.base, workload,
                                                    args.clients)}
        failures = run_entry["servers"]["external"]["errors"]
    else:
        servers: Dict[str, Dict] = {}
        with tempfile.TemporaryDirectory(prefix="loadtest-") as tmp:
            for label, threads in (("threads1", 1),
                                   (f"threads{args.threads}", args.threads)):
                store = Path(tmp) / f"{label}.sqlite"
                server, base = spawn_server(threads, store)
                try:
                    result = measure(base, workload, args.clients)
                finally:
                    stop_server(server)
                result["threads"] = threads
                servers[label] = result
                print(f"{label}: {result['throughput_rps']} req/s  "
                      f"p50 {result['latency_p50_ms']}ms  "
                      f"p99 {result['latency_p99_ms']}ms  "
                      f"errors {result['errors']}  "
                      f"(coalesced {result['cache']['coalesced']}, "
                      f"eval-cache hit rate "
                      f"{result['cache']['evaluation_cache_hit_rate']:.0%})")
        single = servers["threads1"]["throughput_rps"]
        threaded = servers[f"threads{args.threads}"]["throughput_rps"]
        run_entry["servers"] = servers
        run_entry["thread_speedup"] = (round(threaded / single, 3)
                                       if single else None)
        print(f"thread speedup (threads{args.threads} vs threads1): "
              f"{run_entry['thread_speedup']}x on {os.cpu_count()} core(s)")
        failures = sum(s["errors"] for s in servers.values())

    history = {"benchmark": "service-loadtest", "runs": []}
    if args.output.exists():
        try:
            history = json.loads(args.output.read_text())
        except json.JSONDecodeError:
            pass
    history.setdefault("runs", []).append(run_entry)
    args.output.write_text(json.dumps(history, indent=2, sort_keys=True)
                           + "\n")
    print(f"recorded run #{len(history['runs'])} in {args.output}")
    if failures:
        print(f"FAIL: {failures} request(s) errored under load")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
