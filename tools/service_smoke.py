#!/usr/bin/env python3
"""CI service smoke: launch ``repro.serve``, POST a micro-cell search,
assert parity with the analytical golden record.

The golden cell ``golden-fig10-gemms`` (``tests/golden/``) pins the
four-GEMM latency co-search on FEATHER-4x4 float for float.  This gate
proves the *wire* path — HTTP request parsing, the shared
:class:`~repro.api.Session`, JSON response encoding — reproduces exactly
the numbers the in-process engine is pinned to: totals and per-layer
winners must match the golden payload, and a second identical POST must
be served from the warm session (same totals, positive cache hits).

Usage::

    PYTHONPATH=src python tools/service_smoke.py

Exit status 0 on parity, 1 on any mismatch.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN = REPO_ROOT / "tests" / "golden" / "golden-fig10-gemms.json"

sys.path.insert(0, str(REPO_ROOT / "src"))


def post(base: str, path: str, payload: dict) -> dict:
    req = urllib.request.Request(
        base + path, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(req, timeout=120) as response:
        return json.loads(response.read().decode("utf-8"))


def main() -> int:
    golden = json.loads(GOLDEN.read_text())
    request = {
        "workloads": golden["workload_set"],
        "arch": golden["arch"],
        "model": golden["scenario"],
        "metric": golden["config"]["metric"],
        "max_mappings": golden["config"]["max_mappings"],
        "seed": golden["config"]["seed"],
        "prune": golden["config"]["prune"],
        # The golden record embeds per-call engine counters; ask for the
        # same isolated-cache semantics so `search` compares exactly too.
        "fresh_cache": True,
    }

    server = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0"],
        cwd=REPO_ROOT, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True, env={"PYTHONPATH": str(REPO_ROOT / "src"),
                        "PATH": "/usr/bin:/bin"})
    try:
        line = server.stdout.readline()
        match = re.search(r"http://([^:]+):(\d+)", line)
        if not match:
            print(f"FAIL: server did not announce a port (got {line!r})")
            return 1
        base = f"http://{match.group(1)}:{match.group(2)}"

        health = json.loads(urllib.request.urlopen(
            base + "/v1/healthz", timeout=30).read())
        if health.get("status") != "ok":
            print(f"FAIL: healthz {health}")
            return 1

        first = post(base, "/v1/search", request)
        failures = 0
        for field in ("totals", "layers", "search"):
            if first[field] != golden[field]:
                print(f"FAIL: /v1/search {field} differs from "
                      f"{GOLDEN.name}:\n  served: {first[field]}\n  "
                      f"golden: {golden[field]}")
                failures += 1
        if not failures:
            print(f"parity OK: /v1/search == {GOLDEN.name} "
                  f"({len(first['layers'])} layers, "
                  f"{first['totals']['total_cycles']:.6g} cycles)")

        # Warm pass: drop the fresh-cache pin and hit the session cache.
        warm_request = dict(request)
        warm_request.pop("fresh_cache")
        post(base, "/v1/search", warm_request)  # populates the shared cache
        warm = post(base, "/v1/search", warm_request)
        if warm["totals"] != golden["totals"]:
            print("FAIL: warm-session totals drifted from the golden record")
            failures += 1
        elif warm["search"]["cache_misses"] > 0:
            print(f"FAIL: warm-session pass recomputed "
                  f"{warm['search']['cache_misses']} evaluation(s) instead "
                  "of serving them from session state")
            failures += 1
        else:
            print("warm session OK: zero evaluation-cache misses, "
                  "identical totals")
        return 1 if failures else 0
    finally:
        server.terminate()
        try:
            server.wait(timeout=10)
        except subprocess.TimeoutExpired:
            server.kill()


if __name__ == "__main__":
    start = time.time()
    status = main()
    print(f"service smoke {'OK' if status == 0 else 'FAILED'} "
          f"in {time.time() - start:.1f}s")
    raise SystemExit(status)
