#!/usr/bin/env python
"""CI performance guard: the fast paths must beat their reference paths.

Runs three comparisons on the ResNet-50 workload set and fails (exit 1)
when a fast path is not measurably faster than its reference:

* **kernel** — raw cost-model evaluations (every unique conv shape x sampled
  mappings x the conv layout library) on SIGMA with off-chip reordering,
  where the batched concordance analysis carries the load;
* **cosearch** — the whole deduplicated ``search_model`` co-search on
  FEATHER at ``workers=1``, scalar (``vectorize=False``) vs vectorized;
* **api** — repeat traffic on a warm :class:`repro.api.Session` vs the
  per-call ``search_model`` shim (the session's shared evaluation cache
  and persistent per-configuration mappers carry the load).

All comparisons also verify the results are identical — a fast wrong path
still fails the guard.  Thresholds are deliberately below the locally
measured speedups (~12x, ~6x and ~25x) so only a real regression trips on
a noisy CI box, while still proving "measurably faster".

The remaining gates are off by default.  **frontier** (``--gates frontier``)
is an identity gate on the Pareto-frontier search: on every unique shape
of the ResNet-50 residual block the frontier scan must return the scalar
winner bit-identically (and contain it as a frontier member) while scoring
no more candidates than the exhaustive universe.
**budget** (``--gates budget``) counts
full cost-model evaluations instead of wall-clock: the budgeted search
policies must reproduce the exhaustive winner on every unique ResNet-50
shape, with the warm-started evolutionary policy doing it in at least
``--min-budget-reduction`` (3x) fewer evaluations — and the compiled
kernel must be bit-identical to the oracle when numba is installed.
**bulk** (``--gates bulk``) checks the
batched bound pipeline: an exhaustive search with ``bulk=True`` must be
bit-identical to the scalar bound path on every golden cell (winners,
frontiers *and* counters), and the uncapped exhaustive ResNet-50
co-search must run at least ``--min-bulk-speedup`` (1.5x) faster with
the bulk pipeline — the timing run is appended to ``BENCH_search.json``.
**constraints** (``--gates constraints``) is the identity gate on the
constraint layer: with no ConstraintSet bound, a mapper with the layer
forced off (``constraints="none"``) must be bit-identical to the default
mapper on every golden cell (winners, frontiers *and* counters, zero
repairs accounted), and on the constrained-backend golden cells every
candidate in the repaired universe must validate, repair must be
idempotent on it, and the coverage counters must close exactly:
``evaluated + pruned + repaired == universe_pairs``.
**service** is off by default because it reads a
measurement instead of taking one: ``--gates service`` checks that the
latest ``tools/loadtest.py`` run (``BENCH_service.json``) pushed the
threaded server past an *absolute* throughput floor with zero request
errors.  Absolute, not a threads-4-vs-threads-1 ratio: the ratio only
exceeds 1x when there are physical cores to offload to, and the guard
must stay honest on a 1-core runner.

Usage::

    PYTHONPATH=src python tools/bench_guard.py [--min-kernel-speedup X]
                                               [--min-cosearch-speedup Y]
    PYTHONPATH=src python tools/bench_guard.py --gates service \
        --min-service-throughput 20 --service-bench BENCH_service.json
"""

from __future__ import annotations

import argparse
import importlib.util
import sys
from pathlib import Path


def _load_best_of():
    """The shared best-of-N timer from ``benchmarks/_timing.py``.

    Loaded by file path: the benchmark suite is not an importable package,
    and the helper must stay single-sourced so the guard and the benchmarks
    can never de-noise differently.  ``_timing`` is deliberately
    pytest-free — the guard needs only stdlib + repro.
    """
    path = Path(__file__).resolve().parent.parent / "benchmarks" / "_timing.py"
    spec = importlib.util.spec_from_file_location("_bench_timing", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.best_of


best_of = _load_best_of()


def kernel_speedup(rounds: int) -> float:
    """Scalar vs batched evaluation speedup on the ResNet-50 shape set."""
    from repro.baselines.registry import sigma_like
    from repro.dataflow.space import MappingSpace
    from repro.layout.library import conv_layout_library
    from repro.layoutloop.cosearch import unique_workloads
    from repro.layoutloop.cost_model import CostModel
    from repro.workloads.resnet50 import resnet50_layers

    model = CostModel(sigma_like(reorder="offchip"))
    layouts = conv_layout_library()
    cases = []
    for shape, _ in unique_workloads(resnet50_layers(include_fc=False)):
        for mapping in MappingSpace(shape, 16, 16).sample(4, seed=0):
            cases.append((shape, mapping))

    scalar_s, scalar = best_of(
        lambda: [[model.evaluate(wl, m, l) for l in layouts]
                 for wl, m in cases], rounds)
    batched_s, batched = best_of(
        lambda: [model.evaluate_mapping_batch(wl, m, layouts)
                 for wl, m in cases], rounds)
    if batched != scalar:
        print("FAIL: batched cost-model reports differ from the scalar oracle")
        sys.exit(1)
    print(f"kernel   : scalar {scalar_s:.3f}s  batched {batched_s:.3f}s  "
          f"speedup {scalar_s / batched_s:.2f}x "
          f"({len(cases) * len(layouts)} evaluations, identical reports)")
    return scalar_s / batched_s


def cosearch_speedup(rounds: int) -> float:
    """Scalar vs vectorized whole-model co-search speedup on FEATHER.

    The reference is the full scalar path — ``vectorize=False`` *and*
    ``bulk=False`` — because the bulk bound pipeline accelerates the
    scalar-evaluation engine itself (~4x); leaving bulk on in the
    reference would make this gate measure only the evaluation batching
    remainder instead of the fast path against its scalar oracle.
    """
    from repro.layoutloop.arch import feather_arch
    from repro.search.engine import search_model
    from repro.workloads.resnet50 import resnet50_layers

    layers = resnet50_layers(include_fc=False)
    scalar_s, scalar = best_of(
        lambda: search_model(feather_arch(), layers, max_mappings=24,
                             vectorize=False, bulk=False), rounds)
    vector_s, vector = best_of(
        lambda: search_model(feather_arch(), layers, max_mappings=24), rounds)
    if (vector.total_cycles != scalar.total_cycles
            or vector.total_energy_pj != scalar.total_energy_pj):
        print("FAIL: vectorized co-search totals differ from the scalar oracle")
        sys.exit(1)
    print(f"cosearch : scalar {scalar_s:.3f}s  vectorized {vector_s:.3f}s  "
          f"speedup {scalar_s / vector_s:.2f}x "
          f"(ResNet-50 on FEATHER, workers=1, identical totals)")
    return scalar_s / vector_s


def api_speedup(rounds: int) -> float:
    """Warm-:class:`Session` throughput vs per-call ``search_model``.

    Both run the deduplicated ResNet-50 co-search on FEATHER.  The
    per-call shim rebuilds its evaluation cache every call (legacy
    semantics); the session request reuses the session's shared cache, so
    repeat traffic must be measurably faster — and bit-identical.
    """
    from repro.api import SearchRequest, Session
    from repro.layoutloop.arch import feather_arch
    from repro.search.engine import search_model
    from repro.workloads.resnet50 import resnet50_layers

    layers = resnet50_layers(include_fc=False)
    percall_s, percall = best_of(
        lambda: search_model(feather_arch(), layers, model_name="resnet50",
                             max_mappings=24), rounds)
    with Session(name="bench-guard") as session:
        request = SearchRequest(workloads="resnet50", arch="FEATHER",
                                model="resnet50", max_mappings=24)
        session.run(request)  # first request pays the cache fill once
        warm_s, warm = best_of(lambda: session.run(request), rounds)
    if (warm.totals["total_cycles"] != percall.total_cycles
            or warm.totals["total_energy_pj"] != percall.total_energy_pj):
        print("FAIL: warm-session totals differ from the per-call shim")
        sys.exit(1)
    print(f"api      : per-call {percall_s:.3f}s  warm session {warm_s:.3f}s  "
          f"speedup {percall_s / warm_s:.2f}x "
          f"(ResNet-50 on FEATHER, identical totals)")
    return percall_s / warm_s


def budget_reduction() -> float:
    """Budgeted-policy evaluation reduction at exhaustive winner identity.

    Counts full cost-model evaluations — scored (mapping, layout) pairs —
    on the deduplicated ResNet-50 co-search on FEATHER, comparing:

    * **halving** (uncapped): must reproduce the exhaustive winner on every
      unique shape (the bound-order guarantee, checked here end to end);
      its reduction is reported but not gated — the bound can only prune
      what it can prove.
    * **evolutionary, warm-started** (budget=14): a repeat-session search
      seeded from the memoized per-shape winners; must also reproduce every
      exhaustive winner, and its reduction is the gated ratio.

    Also verifies the compiled kernel path bit-identically matches the
    scalar oracle when numba is importable (skipped, loudly, otherwise).
    """
    from repro.kernel import NUMBA_AVAILABLE
    from repro.layoutloop.arch import feather_arch
    from repro.layoutloop.mapper import Mapper
    from repro.search.budget import evolutionary_search, halving_search
    from repro.search.signatures import workload_signature
    from repro.workloads.resnet50 import resnet50_layers

    unique = {}
    for workload in resnet50_layers(include_fc=False):
        unique.setdefault(workload_signature(workload), workload)
    shapes = list(unique.values())

    arch = feather_arch()
    exhaustive = Mapper(arch, max_mappings=24, seed=0)
    winners = {}
    baseline = 0
    for workload in shapes:
        result = exhaustive.search(workload)
        baseline += result.evaluated
        winners[workload_signature(workload)] = result

    def identical(result, workload) -> bool:
        won = winners[workload_signature(workload)]
        return (result.best_report.total_cycles
                == won.best_report.total_cycles
                and result.best_report.total_energy_pj
                == won.best_report.total_energy_pj
                and result.best_mapping.name == won.best_mapping.name
                and result.best_layout.name == won.best_layout.name)

    cold = Mapper(arch, max_mappings=24, seed=0)
    halving_evals = 0
    for workload in shapes:
        result = halving_search(cold, workload)
        halving_evals += result.evaluated
        if not identical(result, workload):
            print(f"FAIL: halving winner differs from exhaustive on "
                  f"{result.workload}")
            sys.exit(1)

    warm = Mapper(arch, max_mappings=24, seed=0)
    warm._cache.update(exhaustive._cache)  # the repeat-session memo
    evo_evals = 0
    for workload in shapes:
        result = evolutionary_search(warm, workload, budget=14)
        evo_evals += result.evaluated
        if not identical(result, workload):
            print(f"FAIL: warm evolutionary winner differs from exhaustive "
                  f"on {result.workload}")
            sys.exit(1)

    if NUMBA_AVAILABLE:
        from repro.layoutloop.cost_model import CostModel
        from repro.layout.library import conv_layout_library

        compiled = CostModel(arch, compile=True)
        oracle = CostModel(arch)
        layouts = conv_layout_library()
        workload = shapes[0]
        mapping = winners[workload_signature(workload)].best_mapping
        if (compiled.evaluate_mapping_batch(workload, mapping, layouts)
                != oracle.evaluate_mapping_batch(workload, mapping, layouts)):
            print("FAIL: compiled kernel reports differ from the oracle")
            sys.exit(1)
        compiled_note = "compiled kernel identical"
    else:
        compiled_note = "compiled check skipped (numba not installed)"

    reduction = baseline / evo_evals
    print(f"budget   : exhaustive {baseline}  halving {halving_evals} "
          f"({baseline / halving_evals:.2f}x)  warm evolutionary {evo_evals} "
          f"({reduction:.2f}x)  identical winners on {len(shapes)} shapes, "
          f"{compiled_note}")
    return reduction


def frontier_identity() -> int:
    """Frontier-search correctness gate (``--gates frontier``).

    On every unique shape of the ResNet-50 residual block (FEATHER,
    ``max_mappings=12``), the Pareto frontier search must (a) return a
    scalar winner bit-identical to :meth:`Mapper.search` — report, mapping
    and layout — with the winner a member of the returned frontier, and
    (b) score no more candidates than the unpruned exhaustive universe
    (``mappings x layouts``): the dominance prune may only remove work.
    Identity gates, not timing gates — a frontier that disagrees with the
    scalar search breaks the ``frontier=`` API contract outright.
    """
    from repro.layoutloop.mapper import Mapper
    from repro.scenarios.registry import resolve_arch, resolve_workload_set

    arch = resolve_arch("FEATHER")
    shapes = resolve_workload_set("resnet50_residual_block")
    total_points = 0
    for workload in shapes:
        scalar = Mapper(arch, metric="edp", max_mappings=12).search(workload)
        mapper = Mapper(arch, metric="edp", max_mappings=12)
        result, frontier = mapper.search_frontier(workload)
        universe = (len(mapper.candidate_mappings(workload))
                    * len(mapper.candidate_layouts(workload)))
        if (result.best_report != scalar.best_report
                or result.best_mapping.name != scalar.best_mapping.name
                or result.best_layout.name != scalar.best_layout.name):
            print(f"FAIL: frontier scalar winner differs from Mapper.search "
                  f"on {result.workload}")
            sys.exit(1)
        winner = frontier.winner()
        if (winner.mapping, winner.layout) != (scalar.best_mapping.name,
                                               scalar.best_layout.name):
            print(f"FAIL: scalar winner is not the frontier's winner member "
                  f"on {result.workload}")
            sys.exit(1)
        if result.evaluated + result.pruned != universe:
            print(f"FAIL: frontier scan covered "
                  f"{result.evaluated + result.pruned} of {universe} "
                  f"candidates on {result.workload}")
            sys.exit(1)
        if result.evaluated > universe:
            print(f"FAIL: frontier search scored {result.evaluated} > "
                  f"exhaustive {universe} on {result.workload}")
            sys.exit(1)
        total_points += len(frontier.points)
    print(f"frontier : identical winners on {len(shapes)} shapes, "
          f"{total_points} frontier points, coverage == universe")
    return total_points


def bulk_speedup(rounds: int, bench_path: Path) -> float:
    """Bulk-bounds identity + speedup gate (``--gates bulk``).

    Two checks, in order:

    * **identity** — on every golden-matrix cell, an exhaustive search
      with the bulk bound pipeline (``bulk=True``, the default) must be
      bit-identical to the scalar bound path (``bulk=False``): same
      winner report, mapping, layout *and* the same evaluated/pruned
      counters, since the bulk bounds replicate the scalar float
      arithmetic exactly.  Frontier cells compare the full serialized
      frontier, point for point.
    * **speedup** — the *uncapped* exhaustive ResNet-50 co-search on
      FEATHER (every parallelism x order candidate per shape, 757-1845
      mappings each) must run measurably faster with the bulk pipeline;
      the ``--min-bulk-speedup`` floor sits below the locally measured
      ~2x so only a real regression trips.

    The timing run is appended to ``BENCH_search.json`` so the trajectory
    file carries the bulk datapoints alongside the budgeted-policy runs.
    """
    import json
    import os

    import repro
    from repro.backends import create_backend
    from repro.layoutloop.mapper import Mapper
    from repro.scenarios.builtin import golden_matrix
    from repro.scenarios.registry import resolve_arch, resolve_workload_set
    from repro.search.signatures import workload_signature
    from repro.workloads.resnet50 import resnet50_layers

    def mapper_for(cell, bulk: bool) -> Mapper:
        # crossval cells search analytically (the simulator leg replays
        # winners); every other backend is instantiated as the cell runs it.
        arch = resolve_arch(cell.arch)
        backend = ("analytical" if cell.backend in ("analytical", "crossval")
                   else create_backend(cell.backend, arch,
                                       seed=cell.config.seed))
        return Mapper(arch, metric=cell.config.metric,
                      max_mappings=cell.config.max_mappings,
                      seed=cell.config.seed, prune=cell.config.prune,
                      backend=backend, bulk=bulk)

    def unique(workloads):
        seen = {}
        for workload in workloads:
            seen.setdefault(workload_signature(workload), workload)
        return list(seen.values())

    cells = list(golden_matrix())
    checked = 0
    for cell in cells:
        scalar_mapper = mapper_for(cell, False)
        bulk_mapper = mapper_for(cell, True)
        for workload in unique(resolve_workload_set(cell.workload_set)):
            if cell.config.frontier:
                s_res, s_front = scalar_mapper.search_frontier(workload)
                b_res, b_front = bulk_mapper.search_frontier(workload)
                if s_front.to_dict() != b_front.to_dict():
                    print(f"FAIL: bulk frontier differs from scalar on "
                          f"{cell.name} / {s_res.workload}")
                    sys.exit(1)
            else:
                s_res = scalar_mapper.search(workload)
                b_res = bulk_mapper.search(workload)
            if (s_res.best_report != b_res.best_report
                    or s_res.best_mapping.name != b_res.best_mapping.name
                    or s_res.best_layout.name != b_res.best_layout.name
                    or (s_res.evaluated, s_res.pruned)
                    != (b_res.evaluated, b_res.pruned)):
                print(f"FAIL: bulk winner differs from scalar on "
                      f"{cell.name} / {s_res.workload}")
                sys.exit(1)
            checked += 1

    shapes = unique(resnet50_layers(include_fc=False))
    arch = resolve_arch("FEATHER")
    uncapped = 10 ** 9  # larger than any per-shape universe: exhaustive

    def run(bulk: bool):
        mapper = Mapper(arch, max_mappings=uncapped, seed=0, bulk=bulk)
        return [mapper.search(workload) for workload in shapes]

    scalar_s, scalar_results = best_of(lambda: run(False), rounds)
    bulk_s, bulk_results = best_of(lambda: run(True), rounds)
    for s_res, b_res in zip(scalar_results, bulk_results):
        if (s_res.best_report != b_res.best_report
                or s_res.best_mapping.name != b_res.best_mapping.name
                or s_res.best_layout.name != b_res.best_layout.name):
            print(f"FAIL: uncapped bulk winner differs from scalar on "
                  f"{s_res.workload}")
            sys.exit(1)
    speedup = scalar_s / bulk_s
    universe = sum(r.evaluated + r.pruned for r in bulk_results)

    history = {"benchmark": "budgeted-search", "runs": []}
    if bench_path.exists():
        try:
            history = json.loads(bench_path.read_text())
        except json.JSONDecodeError:
            pass
    history.setdefault("runs", []).append({
        "gate": "bulk",
        "repro_version": repro.__version__,
        "cpu_count": os.cpu_count(),
        "model": "resnet50",
        "arch": "FEATHER",
        "max_mappings": "uncapped",
        "candidates": universe,
        "scalar_wall_s": round(scalar_s, 4),
        "bulk_wall_s": round(bulk_s, 4),
        "speedup": round(speedup, 3),
        "winner_identical": True,
    })
    history["runs"] = history["runs"][-50:]
    bench_path.write_text(json.dumps(history, indent=2, sort_keys=True)
                          + "\n")

    print(f"bulk     : scalar {scalar_s:.3f}s  bulk {bulk_s:.3f}s  "
          f"speedup {speedup:.2f}x  ({universe} candidate pairs uncapped, "
          f"identical winners; {checked} golden cells identical)")
    return speedup


def constraints_identity() -> int:
    """Constraint-layer identity gate (``--gates constraints``).

    Two checks over the golden matrix, both exact:

    * **unconstrained bit-identity** — on every golden cell whose backend
      binds no :class:`~repro.constraints.ConstraintSet` (analytical,
      crossval, simulator), a mapper with the constraint layer forced off
      (``constraints="none"``) must be bit-identical to the default
      mapper: same winner report, mapping, layout and evaluated/pruned
      counters (frontier cells compare the full serialized frontier), with
      zero repairs accounted on either side.  With nothing bound the layer
      must be a no-op, not a cheap approximation of one.
    * **repaired-search legality + coverage** — on the constrained-backend
      golden cells (systolic, noc:*), every candidate in the repaired
      universe must ``validate()``, repair must be idempotent on it
      (already-legal mappings come back as the identical object), and the
      search counters must close over the raw universe exactly:
      ``evaluated + pruned + repaired == universe_pairs``.
    """
    from repro.backends import create_backend
    from repro.layoutloop.mapper import Mapper
    from repro.scenarios.builtin import golden_matrix
    from repro.scenarios.registry import resolve_arch, resolve_workload_set
    from repro.search.signatures import workload_signature

    def build(cell, constraints=None) -> Mapper:
        arch = resolve_arch(cell.arch)
        backend = ("analytical" if cell.backend in ("analytical", "crossval")
                   else create_backend(cell.backend, arch,
                                       seed=cell.config.seed))
        return Mapper(arch, metric=cell.config.metric,
                      max_mappings=cell.config.max_mappings,
                      seed=cell.config.seed, prune=cell.config.prune,
                      backend=backend, constraints=constraints)

    def unique(workloads):
        seen = {}
        for workload in workloads:
            seen.setdefault(workload_signature(workload), workload)
        return list(seen.values())

    identical = 0
    legal = 0
    for cell in golden_matrix():
        plain = build(cell)
        shapes = unique(resolve_workload_set(cell.workload_set))
        if plain.constraints is None:
            off = build(cell, constraints="none")
            for workload in shapes:
                if cell.config.frontier:
                    p_res, p_front = plain.search_frontier(workload)
                    o_res, o_front = off.search_frontier(workload)
                    if p_front.to_dict() != o_front.to_dict():
                        print(f"FAIL: constraints=\"none\" frontier differs "
                              f"from default on {cell.name} / "
                              f"{p_res.workload}")
                        sys.exit(1)
                else:
                    p_res = plain.search(workload)
                    o_res = off.search(workload)
                if (p_res.best_report != o_res.best_report
                        or p_res.best_mapping.name != o_res.best_mapping.name
                        or p_res.best_layout.name != o_res.best_layout.name
                        or (p_res.evaluated, p_res.pruned)
                        != (o_res.evaluated, o_res.pruned)):
                    print(f"FAIL: constraints=\"none\" search differs from "
                          f"default on {cell.name} / {p_res.workload}")
                    sys.exit(1)
                if (p_res.repaired or p_res.repair is not None
                        or o_res.repaired or o_res.repair is not None):
                    print(f"FAIL: repairs accounted with no constraints "
                          f"bound on {cell.name} / {p_res.workload}")
                    sys.exit(1)
                identical += 1
        else:
            cset = plain.constraints
            for workload in shapes:
                result = plain.search(workload)
                for mapping in plain.candidate_mappings(workload):
                    if not cset.validate(mapping, workload, plain.arch):
                        print(f"FAIL: illegal mapping {mapping.name!r} in "
                              f"the repaired universe of {cell.name} / "
                              f"{result.workload}")
                        sys.exit(1)
                    fixed, _ = cset.repair(mapping, workload, plain.arch)
                    if fixed is not mapping:
                        print(f"FAIL: repair is not idempotent on "
                              f"{mapping.name!r} ({cell.name} / "
                              f"{result.workload})")
                        sys.exit(1)
                universe = result.repair["universe_pairs"]
                if (result.evaluated + result.pruned + result.repaired
                        != universe):
                    print(f"FAIL: coverage {result.evaluated} evaluated + "
                          f"{result.pruned} pruned + {result.repaired} "
                          f"repaired != universe {universe} on {cell.name} "
                          f"/ {result.workload}")
                    sys.exit(1)
                legal += 1
    print(f"constrnt : constraints=\"none\" bit-identical on {identical} "
          f"unconstrained golden searches; repaired universes legal, "
          f"repair idempotent, coverage == universe on {legal} constrained "
          f"searches")
    return identical + legal


def service_throughput(bench_path: Path) -> float:
    """Threaded-server throughput from the latest loadtest run.

    Reads the last entry of ``BENCH_service.json`` (written by
    ``tools/loadtest.py``), picks the highest-``threads`` server
    configuration in it, and fails outright if any request errored —
    a fast server that drops requests is not a service.
    """
    import json

    if not bench_path.exists():
        print(f"FAIL: no service benchmark at {bench_path}; run "
              f"tools/loadtest.py first")
        sys.exit(1)
    runs = json.loads(bench_path.read_text()).get("runs", [])
    if not runs:
        print(f"FAIL: {bench_path} has no recorded runs")
        sys.exit(1)
    servers = runs[-1]["servers"]
    label, threaded = max(servers.items(),
                          key=lambda kv: kv[1].get("threads", 0))
    errors = sum(s["errors"] for s in servers.values())
    if errors:
        print(f"FAIL: the recorded loadtest run had {errors} request error(s)")
        sys.exit(1)
    print(f"service  : {label} {threaded['throughput_rps']:.2f} req/s  "
          f"p99 {threaded['latency_p99_ms']:.1f}ms  0 errors  "
          f"(cpu_count {runs[-1].get('cpu_count')})")
    return threaded["throughput_rps"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--gates", default="kernel,cosearch,api",
                        help="comma-separated gates to run "
                             "(kernel, cosearch, api, budget, frontier, "
                             "bulk, constraints, service)")
    parser.add_argument("--min-kernel-speedup", type=float, default=3.0,
                        help="minimum scalar/batched evaluation ratio")
    parser.add_argument("--min-cosearch-speedup", type=float, default=2.0,
                        help="minimum scalar/vectorized search_model ratio")
    parser.add_argument("--min-api-speedup", type=float, default=3.0,
                        help="minimum per-call/warm-session ratio")
    parser.add_argument("--min-budget-reduction", type=float, default=3.0,
                        help="minimum exhaustive/warm-evolutionary full-"
                             "evaluation ratio at identical winners")
    parser.add_argument("--min-bulk-speedup", type=float, default=1.5,
                        help="minimum scalar/bulk uncapped-exhaustive "
                             "co-search ratio at identical winners")
    parser.add_argument("--search-bench", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_search.json",
                        help="search trajectory file the bulk gate appends "
                             "its timing run to")
    parser.add_argument("--min-service-throughput", type=float, default=10.0,
                        help="minimum threaded-server req/s in the latest "
                             "loadtest run (service gate)")
    parser.add_argument("--service-bench", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_service.json",
                        help="loadtest trajectory file for the service gate")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds per path (best-of)")
    args = parser.parse_args(argv)
    gates = {g.strip() for g in args.gates.split(",") if g.strip()}
    unknown = gates - {"kernel", "cosearch", "api", "budget", "frontier",
                       "bulk", "constraints", "service"}
    if unknown:
        parser.error(f"unknown gates: {sorted(unknown)}")

    failed = False
    if "kernel" in gates:
        kernel = kernel_speedup(args.rounds)
        if kernel < args.min_kernel_speedup:
            print(f"FAIL: kernel speedup {kernel:.2f}x below the "
                  f"{args.min_kernel_speedup:.2f}x floor")
            failed = True
    if "cosearch" in gates:
        cosearch = cosearch_speedup(args.rounds)
        if cosearch < args.min_cosearch_speedup:
            print(f"FAIL: cosearch speedup {cosearch:.2f}x below the "
                  f"{args.min_cosearch_speedup:.2f}x floor")
            failed = True
    if "api" in gates:
        api = api_speedup(args.rounds)
        if api < args.min_api_speedup:
            print(f"FAIL: api speedup {api:.2f}x below the "
                  f"{args.min_api_speedup:.2f}x floor")
            failed = True
    if "budget" in gates:
        budget = budget_reduction()
        if budget < args.min_budget_reduction:
            print(f"FAIL: budgeted-search reduction {budget:.2f}x below the "
                  f"{args.min_budget_reduction:.2f}x floor")
            failed = True
    if "frontier" in gates:
        frontier_identity()  # exits on any identity violation
    if "bulk" in gates:
        bulk = bulk_speedup(args.rounds, args.search_bench)
        if bulk < args.min_bulk_speedup:
            print(f"FAIL: bulk speedup {bulk:.2f}x below the "
                  f"{args.min_bulk_speedup:.2f}x floor")
            failed = True
    if "constraints" in gates:
        constraints_identity()  # exits on any identity violation
    if "service" in gates:
        service = service_throughput(args.service_bench)
        if service < args.min_service_throughput:
            print(f"FAIL: service throughput {service:.2f} req/s below the "
                  f"{args.min_service_throughput:.2f} req/s floor")
            failed = True
    if failed:
        return 1
    print("bench guard OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
