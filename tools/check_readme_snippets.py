#!/usr/bin/env python3
"""Execute the ```python code blocks of README.md (and other docs).

Used by CI's docs job: a README whose quickstart does not run is worse than
no README.  Every fenced ``python`` block is executed in its own namespace
with ``src/`` on ``sys.path`` (the documented ``PYTHONPATH=src`` setup).
Blocks can opt out by putting ``# doc-no-exec`` on their first line.

Usage: python tools/check_readme_snippets.py [files...]
       (default: README.md and docs/architecture.md)
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_FENCE_RE = re.compile(r"^```python\s*$(.*?)^```\s*$", re.MULTILINE | re.DOTALL)


def extract_python_blocks(text: str) -> list:
    """Return the contents of every ```python fenced block, in order."""
    return [match.group(1).strip() for match in _FENCE_RE.finditer(text)]


def run_block(source: str, label: str) -> bool:
    """Execute one snippet; returns True on success."""
    if source.startswith("# doc-no-exec"):
        print(f"SKIP {label} (doc-no-exec)")
        return True
    try:
        exec(compile(source, label, "exec"), {"__name__": f"snippet:{label}"})
    except Exception as exc:  # pragma: no cover - failure path
        print(f"FAIL {label}: {type(exc).__name__}: {exc}")
        print("     " + "\n     ".join(source.splitlines()))
        return False
    print(f"OK   {label}")
    return True


def main(argv: list) -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    files = [Path(a) for a in argv] or [REPO_ROOT / "README.md",
                                        REPO_ROOT / "docs" / "architecture.md"]
    failures = 0
    for path in files:
        blocks = extract_python_blocks(path.read_text())
        if not blocks:
            print(f"WARN {path}: no python blocks found")
        for idx, block in enumerate(blocks, 1):
            failures += not run_block(block, f"{path.name}[{idx}]")
    if failures:
        print(f"{failures} snippet(s) failed")
        return 1
    print("all snippets passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
