#!/usr/bin/env python
"""CI backend-parity guard: analytical vs simulator on a micro cell.

Cross-validates the two evaluation backends on the ``micro_conv3x3`` cell
(a dense 3x3 conv on FEATHER-4x4, large enough to reach the NEST's steady
state) and fails (exit 1) unless:

* the co-searched winner's **cycle delta** |simulated/analytical - 1| is
  within ``--max-cycle-delta`` (default 5%; measured ~0.7% — steady-state
  cells agree closely, the analytical model just omits warmup/drain);
* the **RIR claim** holds in simulation: measured StaB read slowdown and
  oAct write serialization are exactly 1.0 for the co-searched pair.

The warmup-dominated micro GEMM cells are printed for context but not
gated — their deltas are the *fidelity gap* cross-validation scenarios
exist to expose, not a regression signal.

The cross-architecture backends are gated on their exact pricing
invariants instead of a delta bound (they model *different* hardware, so
closeness to the analytical FEATHER model is not the claim):

* **systolic** — the co-searched winner borrows its energy from the
  analytical cost model bit-exactly and never reports negative stalls
  (the rigid array can only add fill/drain/serialization cycles on top
  of the ideal MAC throughput);
* **noc:linear/tree/fan** — on one tree-legal winner per micro conv, each
  topology's energy equals the analytical energy bit-exactly, its total
  cycles are >= the analytical cycles (exposed reduction latency is
  nonnegative), and the log-depth topologies (tree, fan) never expose
  more reduction latency than the linear chain.

Usage::

    PYTHONPATH=src python tools/backend_parity.py [--max-cycle-delta X]
"""

from __future__ import annotations

import argparse
import sys


def cross_architecture_parity(arch) -> bool:
    """Exact pricing invariants of the systolic and NoC backends.

    Returns ``True`` when every invariant holds; prints one line per
    (workload, backend) cell.  The gate is exact (energy bit-equality,
    cycle/stall inequalities), not a delta bound — see the module
    docstring.
    """
    from repro.backends import create_backend
    from repro.layoutloop.mapper import Mapper
    from repro.workloads.micro import micro_conv_layers

    analytical = create_backend("analytical", arch)
    ok = True

    print("\nbackend parity — systolic + reduction NoCs on FEATHER-4x4 "
          "(gate: exact energy, nonnegative exposed cycles)")
    print(f"{'cell':18s} {'backend':10s} {'cycles':>10s} {'analytic':>10s} "
          f"{'exposed':>8s}  gate")
    for workload in micro_conv_layers():
        sys_backend = create_backend("systolic", arch)
        sys_res = Mapper(arch, metric="edp", max_mappings=8,
                         backend=sys_backend).search(workload)
        base = analytical.evaluate(workload, sys_res.best_mapping,
                                   sys_res.best_layout)
        rep = sys_res.best_report
        good = (rep.total_energy_pj == base.total_energy_pj
                and rep.stall_cycles >= 0
                and rep.total_cycles >= rep.macs / max(
                    1.0, rep.extra["parallel_m"] * rep.extra["parallel_k"]))
        ok &= good
        print(f"{workload.name:18s} {'systolic':10s} {rep.total_cycles:10.0f} "
              f"{base.total_cycles:10.0f} "
              f"{rep.extra['fill_drain_cycles']:8.0f}  "
              f"{'PASS' if good else 'FAIL'}")

        # One tree-legal winner (the strictest reduction universe) priced
        # on every topology: legal for tree implies legal for all three.
        tree_res = Mapper(arch, metric="edp", max_mappings=8,
                          backend=create_backend("noc:tree", arch)
                          ).search(workload)
        mapping, layout = tree_res.best_mapping, tree_res.best_layout
        base = analytical.evaluate(workload, mapping, layout)
        exposed = {}
        for topology in ("linear", "tree", "fan"):
            rep = create_backend(f"noc:{topology}", arch).evaluate(
                workload, mapping, layout)
            exposed[topology] = rep.extra["reduction_cycles_exposed"]
            good = (rep.total_energy_pj == base.total_energy_pj
                    and rep.total_cycles
                    == base.total_cycles + exposed[topology]
                    and exposed[topology] >= 0)
            ok &= good
            print(f"{workload.name:18s} {'noc:' + topology:10s} "
                  f"{rep.total_cycles:10.0f} {base.total_cycles:10.0f} "
                  f"{exposed[topology]:8.0f}  {'PASS' if good else 'FAIL'}")
        if exposed["tree"] > exposed["linear"] or \
                exposed["fan"] > exposed["linear"]:
            print(f"FAIL: a log-depth topology exposed more reduction "
                  f"latency than the linear chain on {workload.name}")
            ok = False
    if not ok:
        print("FAIL: a cross-architecture pricing invariant is violated")
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--max-cycle-delta", type=float, default=0.05,
                        help="relative |sim/analytical - 1| bound on the "
                             "gated conv cell")
    args = parser.parse_args(argv)

    from repro.backends import cross_validate_model
    from repro.layoutloop.arch import feather_arch
    from repro.workloads.micro import micro_conv_layers, micro_gemm_layers

    arch = feather_arch(4, 4)
    failed = False

    def show(validation, gated_workloads=()):
        nonlocal failed
        print(f"{'cell':18s} {'analytical':>11s} {'simulated':>10s} "
              f"{'delta':>8s} {'read':>6s} {'write':>6s}  gate")
        for cell in validation.cells:
            gated = cell.workload in gated_workloads
            ok = (abs(cell.cycle_delta) <= args.max_cycle_delta
                  and cell.simulated_read_slowdown == 1.0
                  and cell.simulated_write_serialization == 1.0)
            verdict = ("PASS" if ok else "FAIL") if gated else "info"
            if gated and not ok:
                failed = True
            print(f"{cell.workload:18s} {cell.analytical_cycles:11.1f} "
                  f"{cell.simulated_cycles:10.1f} {cell.cycle_delta:+7.1%} "
                  f"{cell.simulated_read_slowdown:6.2f} "
                  f"{cell.simulated_write_serialization:6.2f}  {verdict}")

    print("backend parity — micro convs on FEATHER-4x4 "
          f"(gate: |delta| <= {args.max_cycle_delta:.0%}, no stalls)")
    _, conv_val = cross_validate_model(arch, micro_conv_layers(),
                                       model_name="parity-convs",
                                       metric="edp", max_mappings=4)
    show(conv_val, gated_workloads=("micro_conv3x3",))
    if not conv_val.rir_claim_holds:
        print("FAIL: a co-searched conv cell stalled in simulation "
              "(RIR claim violated)")
        failed = True

    print("\nbackend parity — micro gemms (context, warmup-dominated)")
    _, gemm_val = cross_validate_model(arch, micro_gemm_layers(),
                                       model_name="parity-gemms",
                                       metric="latency", max_mappings=6)
    show(gemm_val)
    if not gemm_val.rir_claim_holds:
        print("FAIL: a co-searched GEMM cell stalled in simulation "
              "(RIR claim violated)")
        failed = True

    if not cross_architecture_parity(arch):
        failed = True

    if failed:
        return 1
    print("\nbackend parity OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
