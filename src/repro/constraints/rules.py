"""Declarative per-architecture mapping constraints with repair.

ZigZag/MATCH wrap their cost model with platform rules and an
``adjust_temporal_mapping`` pass: an illegal schedule is *repaired* to meet
the platform instead of being discarded.  :class:`ConstraintSet` is that
layer for this reproduction — a frozen, declarative bundle of the rules a
real accelerator imposes on a :class:`~repro.dataflow.mapping.Mapping`:

* **legal loop orders** — rigid designs execute one (or a few) temporal
  orders; a candidate with any other order is reordered to the nearest
  legal one (fewest pairwise inversions, deterministic tie-break);
* **parallelism rules** — which dimensions may be spatial at all,
  divisibility/alignment of the degrees, and power-of-two or bounded
  spatial-reduction groups (what a physical reduction network supports);
* **buffer capacity** — the on-chip tile footprint must fit the buffer;
  oversized tiles/degrees are clamped (halved) until they fit.

``validate`` is the predicate, ``violations`` names what failed (the names
are stable identifiers surfaced in skip reasons and error messages), and
``repair`` minimally transforms an illegal mapping into a legal one,
returning the per-mapping :class:`RepairOutcome`.  ``repair_candidates``
runs a whole candidate list through repair and deduplicates the result
(repair is many-to-one), accumulating a :class:`RepairLog` whose counters
satisfy ``legal + repaired == candidates`` and feed the search-level
coverage equation ``evaluated + pruned + repaired == universe``.

An empty :class:`ConstraintSet` binds nothing: every mapping validates,
repair is the identity, and searches are bit-identical to running without
the layer at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dataflow.mapping import Mapping, ParallelSpec, TileLevel
from repro.errors import IncompatibleCellError
from repro.search.signatures import mapping_signature

#: Stable constraint names, in the order repair applies them.
CONSTRAINT_NAMES = (
    "parallel-dims",
    "parallel-alignment",
    "pow2-spatial-reduction",
    "max-spatial-reduction",
    "loop-order",
    "buffer-capacity",
)


class UnsatisfiableConstraintError(IncompatibleCellError):
    """A constraint no repair can satisfy for this (workload, arch) cell.

    Raised when even the minimal mapping (serial, unit tiles) violates a
    rule — e.g. a buffer-capacity ceiling below the smallest possible tile
    footprint.  Derives from :class:`~repro.errors.IncompatibleCellError`
    so sweeps skip the cell with a reason naming the constraint.
    """


@dataclass(frozen=True)
class RepairOutcome:
    """What :meth:`ConstraintSet.repair` did to one mapping."""

    changed: bool
    violations: Tuple[str, ...] = ()
    order_moves: int = 0
    parallel_drops: int = 0
    parallel_clamps: int = 0
    tile_clamps: int = 0


#: The identity outcome of repairing an already-legal mapping.
NO_REPAIR = RepairOutcome(changed=False)


@dataclass
class RepairLog:
    """Aggregated repair statistics over one candidate universe.

    ``candidates = legal + repaired`` always holds; ``merged`` counts the
    candidates collapsed away because repair mapped them onto a mapping
    already in the repaired universe (keep-first dedup).
    """

    constraints: str = ""
    candidates: int = 0
    legal: int = 0
    repaired: int = 0
    merged: int = 0
    order_moves: int = 0
    parallel_drops: int = 0
    parallel_clamps: int = 0
    tile_clamps: int = 0

    def add(self, outcome: RepairOutcome, duplicate: bool = False) -> None:
        """Account one repaired candidate (``duplicate`` = deduped away)."""
        self.candidates += 1
        if outcome.changed:
            self.repaired += 1
        else:
            self.legal += 1
        if duplicate:
            self.merged += 1
        self.order_moves += outcome.order_moves
        self.parallel_drops += outcome.parallel_drops
        self.parallel_clamps += outcome.parallel_clamps
        self.tile_clamps += outcome.tile_clamps

    def as_dict(self) -> Dict:
        """Plain-JSON payload of the log (what scenario records carry)."""
        return {
            "constraints": self.constraints,
            "candidates": self.candidates,
            "legal": self.legal,
            "repaired": self.repaired,
            "merged": self.merged,
            "order_moves": self.order_moves,
            "parallel_drops": self.parallel_drops,
            "parallel_clamps": self.parallel_clamps,
            "tile_clamps": self.tile_clamps,
        }


@dataclass(frozen=True)
class ConstraintSet:
    """Declarative platform rules for mappings on one architecture.

    Every field is optional; a field left at its default binds nothing.
    ``allowed_orders`` entries are canonical full dimension orders — a
    mapping's order is legal when it equals some entry filtered down to
    the dimensions the mapping actually carries (so one 7-dim conv order
    and one 3-dim GEMM order cover both workload kinds).
    """

    name: str
    allowed_orders: Optional[Tuple[Tuple[str, ...], ...]] = None
    buffer_capacity_bytes: Optional[int] = None
    allowed_parallel_dims: Optional[Tuple[str, ...]] = None
    parallel_multiple_of: int = 1
    pow2_spatial_reduction: bool = False
    max_spatial_reduction: Optional[int] = None

    def __post_init__(self) -> None:
        if self.parallel_multiple_of < 1:
            raise ValueError("parallel_multiple_of must be >= 1")
        if (self.max_spatial_reduction is not None
                and self.max_spatial_reduction < 1):
            raise ValueError("max_spatial_reduction must be >= 1")
        if self.allowed_orders is not None:
            object.__setattr__(self, "allowed_orders", tuple(
                tuple(d.upper() for d in order)
                for order in self.allowed_orders))
            if not self.allowed_orders:
                raise ValueError("allowed_orders, when given, must not be "
                                 "empty")
        if self.allowed_parallel_dims is not None:
            object.__setattr__(self, "allowed_parallel_dims", tuple(
                d.upper() for d in self.allowed_parallel_dims))

    # -------------------------------------------------------------- identity
    def signature(self) -> Tuple:
        """Hashable identity of the rule bundle (memo/content keys)."""
        return ("constraints", self.name, self.allowed_orders,
                self.buffer_capacity_bytes, self.allowed_parallel_dims,
                self.parallel_multiple_of, self.pow2_spatial_reduction,
                self.max_spatial_reduction)

    @property
    def unbound(self) -> bool:
        """True when no field binds (validate/repair are the identity)."""
        return (self.allowed_orders is None
                and self.buffer_capacity_bytes is None
                and self.allowed_parallel_dims is None
                and self.parallel_multiple_of == 1
                and not self.pow2_spatial_reduction
                and self.max_spatial_reduction is None)

    # ------------------------------------------------------------ validation
    def violations(self, mapping: Mapping, workload, arch
                   ) -> Tuple[str, ...]:
        """Names of the constraints ``mapping`` violates (stable strings)."""
        found: List[str] = []
        spatial = [p for p in mapping.parallel if p.degree > 1]
        if self.allowed_parallel_dims is not None:
            if any(p.dim not in self.allowed_parallel_dims for p in spatial):
                found.append("parallel-dims")
        if self.parallel_multiple_of > 1:
            if any(p.degree % self.parallel_multiple_of for p in spatial):
                found.append("parallel-alignment")
        group = mapping.spatial_reduction_size
        if self.pow2_spatial_reduction and group & (group - 1):
            found.append("pow2-spatial-reduction")
        if (self.max_spatial_reduction is not None
                and group > self.max_spatial_reduction):
            found.append("max-spatial-reduction")
        if self.allowed_orders is not None:
            if mapping.order not in self._legal_orders(mapping.order):
                found.append("loop-order")
        if self.buffer_capacity_bytes is not None:
            from repro.search.frontier import buffer_footprint_bytes

            if (buffer_footprint_bytes(workload, mapping, arch)
                    > self.buffer_capacity_bytes):
                found.append("buffer-capacity")
        return tuple(found)

    def validate(self, mapping: Mapping, workload, arch) -> bool:
        """Whether ``mapping`` satisfies every bound constraint."""
        return not self.violations(mapping, workload, arch)

    def _legal_orders(self, order: Tuple[str, ...]
                      ) -> Tuple[Tuple[str, ...], ...]:
        """Allowed orders filtered to the dims ``order`` carries, deduped."""
        present = set(order)
        filtered: List[Tuple[str, ...]] = []
        for allowed in self.allowed_orders:
            candidate = tuple(d for d in allowed if d in present)
            if len(candidate) == len(present) and candidate not in filtered:
                filtered.append(candidate)
        return tuple(filtered)

    # ---------------------------------------------------------------- repair
    def repair(self, mapping: Mapping, workload, arch
               ) -> Tuple[Mapping, RepairOutcome]:
        """Minimally transform ``mapping`` into a legal one.

        Deterministic fixed-point pass: drop disallowed parallel dims,
        clamp degrees for alignment/power-of-two/reduction-bound rules,
        reorder the temporal loops to the nearest legal order, then halve
        tiles/degrees until the footprint fits the buffer.  Already-legal
        mappings are returned unchanged (the identical object), so repair
        is idempotent.  Raises :class:`UnsatisfiableConstraintError` when
        even the minimal mapping cannot satisfy a rule.
        """
        violated = self.violations(mapping, workload, arch)
        if not violated:
            return mapping, NO_REPAIR

        parallel = list(mapping.parallel)
        tile = dict(mapping.tile.sizes)
        order = mapping.order
        drops = clamps = tile_clamps = order_moves = 0

        def legalize(dim: str, degree: int) -> int:
            """Largest degree <= ``degree`` every degree rule accepts."""
            while degree > 1:
                before = degree
                if self.parallel_multiple_of > 1:
                    degree = (degree // self.parallel_multiple_of
                              * self.parallel_multiple_of)
                if (self.pow2_spatial_reduction and degree > 1
                        and dim in mapping.reduction_dims):
                    degree = _pow2_floor(degree)
                if degree == before:
                    return degree
            return 1

        def clamp(i: int, degree: int) -> None:
            nonlocal drops, clamps, parallel
            spec = parallel[i]
            degree = legalize(spec.dim, degree)
            if degree == spec.degree:
                return
            if spec.dim in tile:
                tile[spec.dim] = min(tile[spec.dim], degree)
            if degree <= 1:
                parallel[i] = None
                drops += 1
            else:
                parallel[i] = ParallelSpec(spec.dim, degree)
                clamps += 1

        if self.allowed_parallel_dims is not None:
            for i, spec in enumerate(parallel):
                if spec.degree > 1 and spec.dim not in \
                        self.allowed_parallel_dims:
                    clamp(i, 1)
        if self.parallel_multiple_of > 1:
            for i, spec in enumerate(parallel):
                if spec is not None and spec.degree > 1:
                    aligned = (spec.degree // self.parallel_multiple_of
                               * self.parallel_multiple_of)
                    clamp(i, max(1, aligned))
        if self.pow2_spatial_reduction:
            for i, spec in enumerate(parallel):
                if (spec is not None and spec.degree > 1
                        and spec.dim in mapping.reduction_dims):
                    clamp(i, _pow2_floor(spec.degree))
        if self.max_spatial_reduction is not None:
            while True:
                group = 1
                largest, largest_i = 0, None
                for i, spec in enumerate(parallel):
                    if spec is not None and spec.dim in \
                            mapping.reduction_dims:
                        group *= spec.degree
                        if spec.degree > largest:
                            largest, largest_i = spec.degree, i
                if group <= self.max_spatial_reduction or largest_i is None:
                    break
                clamp(largest_i, largest // 2)

        parallel = [p for p in parallel if p is not None]

        if self.allowed_orders is not None:
            legal = self._legal_orders(order)
            if not legal:
                raise UnsatisfiableConstraintError(
                    f"constraint 'loop-order' of {self.name!r} is "
                    f"unsatisfiable: no allowed order covers the dims "
                    f"{sorted(set(order))} of mapping {mapping.name!r}")
            if order not in legal:
                order = min(legal, key=lambda o: (_inversions(order, o),
                                                  legal.index(o)))
                order_moves = 1

        candidate = self._rebuild(mapping, parallel, tile, order)

        if self.buffer_capacity_bytes is not None:
            from repro.search.frontier import buffer_footprint_bytes

            while (buffer_footprint_bytes(workload, candidate, arch)
                   > self.buffer_capacity_bytes):
                degrees = {p.dim: p.degree for p in parallel}
                effective = {d: max(s, degrees.get(d, 1))
                             for d, s in tile.items()}
                for d, g in degrees.items():
                    effective.setdefault(d, g)
                shrinkable = {d: e for d, e in effective.items() if e > 1}
                if not shrinkable:
                    raise UnsatisfiableConstraintError(
                        f"constraint 'buffer-capacity' of {self.name!r} is "
                        f"unsatisfiable: the minimal tile footprint of "
                        f"workload {getattr(workload, 'name', workload)!r} "
                        f"exceeds {self.buffer_capacity_bytes} bytes")
                # Halve the largest effective extent (alphabetical
                # tie-break): tile first, spatial degree when the tile is
                # already at the degree.
                dim = min(shrinkable, key=lambda d: (-shrinkable[d], d))
                target = shrinkable[dim] // 2
                if dim in tile and tile[dim] > degrees.get(dim, 1):
                    tile[dim] = max(degrees.get(dim, 1), target)
                    tile_clamps += 1
                else:
                    for i, spec in enumerate(parallel):
                        if spec.dim == dim:
                            clamp(i, min(spec.degree, max(1, target)))
                            break
                    else:
                        tile[dim] = max(1, target)
                        tile_clamps += 1
                    parallel = [p for p in parallel if p is not None]
                candidate = self._rebuild(mapping, parallel, tile, order)

        outcome = RepairOutcome(
            changed=True, violations=violated, order_moves=order_moves,
            parallel_drops=drops, parallel_clamps=clamps,
            tile_clamps=tile_clamps)
        return candidate, outcome

    @staticmethod
    def _rebuild(mapping: Mapping, parallel: Sequence[ParallelSpec],
                 tile: Dict[str, int], order: Tuple[str, ...]) -> Mapping:
        return replace(
            mapping,
            name=f"{mapping.name}~fix",
            parallel=tuple(parallel),
            tile=TileLevel(tuple(sorted(tile.items()))),
            order=order,
        )

    # ------------------------------------------------------------- universes
    def repair_candidates(self, mappings: Sequence[Mapping], workload, arch
                          ) -> Tuple[List[Mapping], RepairLog]:
        """Repair a candidate list, dedup the result, and account the work.

        Repair is many-to-one (many illegal candidates collapse onto the
        same legal mapping); the first occurrence of each repaired
        signature is kept, so the returned list preserves scan order and
        the first-seen tie discipline of every search policy.
        """
        log = RepairLog(constraints=self.name)
        seen = set()
        repaired: List[Mapping] = []
        for mapping in mappings:
            fixed, outcome = self.repair(mapping, workload, arch)
            sig = mapping_signature(fixed)
            duplicate = sig in seen
            log.add(outcome, duplicate=duplicate)
            if not duplicate:
                seen.add(sig)
                repaired.append(fixed)
        return repaired, log

    def describe(self) -> str:
        """One-line human-readable summary of the bound rules."""
        rules = []
        if self.allowed_orders is not None:
            rules.append(f"{len(self.allowed_orders)} legal order(s)")
        if self.allowed_parallel_dims is not None:
            rules.append("parallel dims "
                         + "/".join(self.allowed_parallel_dims))
        if self.parallel_multiple_of > 1:
            rules.append(f"degrees %{self.parallel_multiple_of}")
        if self.pow2_spatial_reduction:
            rules.append("pow2 reduction groups")
        if self.max_spatial_reduction is not None:
            rules.append(f"reduction <= {self.max_spatial_reduction}")
        if self.buffer_capacity_bytes is not None:
            rules.append(f"buffer <= {self.buffer_capacity_bytes}B")
        return f"{self.name}: {', '.join(rules) if rules else 'unbound'}"


def _pow2_floor(value: int) -> int:
    """Largest power of two <= value (value >= 1)."""
    return 1 << (value.bit_length() - 1)


def _inversions(current: Tuple[str, ...], target: Tuple[str, ...]) -> int:
    """Pairwise-order disagreements between two permutations of one set."""
    rank = {d: i for i, d in enumerate(target)}
    count = 0
    for i, a in enumerate(current):
        for b in current[i + 1:]:
            if rank[a] > rank[b]:
                count += 1
    return count
