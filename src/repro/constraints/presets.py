"""Built-in :class:`ConstraintSet` presets for the shipped backends.

Each evaluation backend that models real hardware carries one of these as
its ``constraints`` attribute; the :class:`~repro.layoutloop.mapper.Mapper`
picks it up automatically so every search on that backend enumerates only
repaired-legal candidates.  The presets are derived from the
:class:`~repro.layoutloop.arch.ArchSpec` they bind to (buffer geometry,
allowed parallel dims), so the same backend on a different architecture
gets correspondingly different rules.
"""

from __future__ import annotations

from typing import Optional

from repro.constraints.rules import ConstraintSet
from repro.errors import InvalidRequestError
from repro.layoutloop.arch import ArchSpec

#: Temporal orders a weight-stationary systolic array can execute: the
#: output/reduction dims are spatial, the weights stay in the PEs while the
#: innermost loops stream activations (P/Q for a conv, N for a GEMM).
SYSTOLIC_ORDERS = (
    ("N", "M", "C", "R", "S", "P", "Q"),
    ("M", "K", "N"),
)


def default_constraints(arch: ArchSpec) -> ConstraintSet:
    """The architecture's own physical rules, with no backend-specific ones.

    Binds the buffer-capacity ceiling of the arch's declared geometry and
    its allowed-parallel-dims restriction (when one is declared).  On a
    fully flexible FEATHER this leaves the structured mapping space almost
    untouched — the space already respects the array shape — so it mostly
    exists as the ``constraints="default"`` request mode and as the base
    other presets extend.
    """
    return ConstraintSet(
        name=f"default:{arch.name}",
        buffer_capacity_bytes=arch.buffer.capacity_bytes,
        allowed_parallel_dims=arch.allowed_parallel_dims,
    )


def systolic_constraints(arch: ArchSpec) -> ConstraintSet:
    """Rules of a rigid weight-stationary systolic array (Fig. 4 baseline).

    One legal loop order per workload kind (weight stationary), spatial
    parallelism only over the output-channel and reduction dimensions
    (M x C for convs, M x K for GEMMs — the array's two physical axes),
    and the arch's buffer ceiling.  Most sampled candidates repair onto a
    much smaller legal universe — the rigidity the paper's comparisons
    exploit, now expressed as data.
    """
    return ConstraintSet(
        name=f"systolic:{arch.name}",
        allowed_orders=SYSTOLIC_ORDERS,
        allowed_parallel_dims=("M", "C", "K"),
        buffer_capacity_bytes=arch.buffer.capacity_bytes,
    )


def noc_constraints(topology: str, arch: ArchSpec) -> ConstraintSet:
    """Rules imposed by a reference reduction network topology.

    * ``linear`` — a systolic-style accumulation chain handles any
      contiguous group (it is just slow), so only the buffer ceiling binds;
    * ``tree`` — MAERI's ART reduces aligned power-of-two groups only, so
      the spatial-reduction group size must be a power of two (the
      showcase repair: reduction-dim degrees are floored to powers of two);
    * ``fan`` — SIGMA's FAN forwards across levels and supports arbitrary
      contiguous groups, so again only the buffer ceiling binds.
    """
    if topology not in ("linear", "tree", "fan"):
        raise InvalidRequestError(
            f"unknown NoC topology {topology!r}; expected 'linear', "
            "'tree' or 'fan'")
    return ConstraintSet(
        name=f"noc:{topology}:{arch.name}",
        pow2_spatial_reduction=(topology == "tree"),
        buffer_capacity_bytes=arch.buffer.capacity_bytes,
    )


def resolve_constraints(spec, arch: ArchSpec,
                        backend=None) -> Optional[ConstraintSet]:
    """A request's ``constraints`` field -> a bound set (or ``None``).

    * ``None`` — inherit the backend's own constraints (``None`` for
      backends without any, e.g. the idealized analytical model);
    * ``"none"`` — force the layer off even on a constrained backend;
    * ``"default"`` — :func:`default_constraints` of the architecture;
    * a :class:`ConstraintSet` instance — used as-is.
    """
    if spec is None:
        return getattr(backend, "constraints", None)
    if isinstance(spec, ConstraintSet):
        return spec
    if spec == "none":
        return None
    if spec == "default":
        return default_constraints(arch)
    raise InvalidRequestError(
        f"constraints must be None, 'none', 'default' or a ConstraintSet, "
        f"got {spec!r}")
