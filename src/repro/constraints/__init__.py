"""Constraint-aware mapping layer: repair, don't reject.

Declarative per-architecture platform rules (:class:`ConstraintSet`) with a
``repair`` pass that minimally transforms illegal mappings into legal ones
and a ``validate`` predicate, in the spirit of ZigZag/MATCH's
``adjust_temporal_mapping``.  The :class:`~repro.layoutloop.mapper.Mapper`
threads a bound set through every search policy so exhaustive, budgeted and
frontier searches all enumerate only repaired-legal candidates; backends
that model rigid hardware (``systolic``, ``noc:<topology>``) carry their
preset as a ``constraints`` attribute and searches on them pick it up
automatically.  With no set bound, every path is bit-identical to running
without this package.
"""

from repro.constraints.presets import (
    SYSTOLIC_ORDERS,
    default_constraints,
    noc_constraints,
    resolve_constraints,
    systolic_constraints,
)
from repro.constraints.rules import (
    CONSTRAINT_NAMES,
    NO_REPAIR,
    ConstraintSet,
    RepairLog,
    RepairOutcome,
    UnsatisfiableConstraintError,
)

__all__ = [
    "CONSTRAINT_NAMES",
    "ConstraintSet",
    "NO_REPAIR",
    "RepairLog",
    "RepairOutcome",
    "SYSTOLIC_ORDERS",
    "UnsatisfiableConstraintError",
    "default_constraints",
    "noc_constraints",
    "resolve_constraints",
    "systolic_constraints",
]
