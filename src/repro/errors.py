"""The ``repro`` exception hierarchy: typed errors with stable wire codes.

Every error the public API surface (``repro.api``, ``repro.serve``, the
scenarios CLI) can raise deliberately derives from :class:`ReproError` and
carries a stable machine-readable ``code``.  The JSON service maps these to
structured error payloads (:meth:`ReproError.payload`), so a client can
branch on ``error.code`` without parsing prose, and the prose can keep
improving without breaking anyone.

The concrete classes also derive from :class:`ValueError`: the package
raised plain ``ValueError`` for all of these before the hierarchy existed,
and existing ``except ValueError`` callers (and tests) must keep working.

* :class:`InvalidRequestError` — the request itself is malformed: unknown
  workload set / architecture / scenario names, out-of-range parameters,
  an unsupported schema version, an empty workload list.
* :class:`UnknownBackendError` — a backend name that is not registered.
* :class:`IncompatibleCellError` — a cell a backend cannot run *by
  design* (not a configuration bug): e.g. the cycle-level simulator on a
  non-RIR architecture or a workload over its MAC bound.  Sweeps may skip
  these with a reason instead of aborting.
"""

from __future__ import annotations

from typing import Dict


class ReproError(Exception):
    """Base class of all deliberate ``repro`` errors.

    ``code`` is the stable wire identifier of the error class (never of the
    message); subclasses override it.  ``payload`` is what the JSON service
    returns, shaped ``{"code", "type", "message"}``.
    """

    code: str = "repro_error"

    def payload(self) -> Dict[str, str]:
        """The structured JSON error payload of this exception."""
        return {"code": self.code, "type": type(self).__name__,
                "message": str(self)}


class InvalidRequestError(ReproError, ValueError):
    """A malformed or unresolvable request (bad names, bad parameters)."""

    code = "invalid_request"


class UnknownBackendError(ReproError, ValueError):
    """A backend name absent from the :mod:`repro.backends` registry."""

    code = "unknown_backend"


class IncompatibleCellError(ReproError, ValueError):
    """A cell the selected backend cannot run by design."""

    code = "incompatible_cell"
