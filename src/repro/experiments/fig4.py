"""Fig. 4 — mappings M1-M8: memory efficiency and compute utilization.

The paper walks through eight (workload, dataflow, layout) combinations on a
weight-stationary 4x4 systolic array with dual-port banks:

* Workloads: ResNet-50 layer 1 (small C, large H/W, stride 2) and layer 47
  (large C, 7x7 feature map).
* Dataflows: D1 = input-channel parallel (reads 4 iActs along C per cycle,
  with M parallel 4 across rows) and D2 = sliding-window parallel (reads 4
  iActs along W per cycle, stepping by the stride).
* Layouts: L1/L3 channel-last (HWC_W2C3 / HWC_C4-style) and L2/L4 row-major
  (HCW_W8).

For each mapping we report the number of buffer lines read per cycle, the
slowdown ``max(lines/ports, 1)``, and theoretical vs practical utilization —
the same columns as the paper's tables.  The takeaway asserted by the tests is
the paper's: the concordant picks (M4 for layer 1, M5 for layer 47) reach 100%
practical utilization and read the fewest lines, while the discordant ones
drop to ~50%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.layout.concordance import (
    analyze_concordance,
    required_parallel_coords,
    sliding_window_coords,
)
from repro.layout.layout import Layout, parse_layout
from repro.workloads.conv import ConvLayerSpec
from repro.workloads.resnet50 import resnet50_layer


@dataclass
class Fig4Row:
    """One mapping's memory/compute behaviour."""

    mapping: str
    workload: str
    dataflow: str
    layout: str
    lines_per_cycle: float
    slowdown: float
    theoretical_utilization: float
    practical_utilization: float


ARRAY_ROWS = 4
ARRAY_COLS = 4
PORTS = 2


def _dataflow_coords(layer: ConvLayerSpec, dataflow: str, cycles: int = 4
                     ) -> List[List[Dict[str, int]]]:
    """Per-cycle iAct coordinates of dataflow D1 or D2 over a few cycles."""
    per_cycle = []
    if dataflow == "D1":
        # Channel parallel: 4 channels of one (h, w) position per cycle; the
        # window slides along W across cycles.
        for cycle in range(cycles):
            base = {"H": 0, "W": cycle * layer.stride, "C": 0}
            per_cycle.append(required_parallel_coords({"C": min(4, layer.c)}, base))
    elif dataflow == "D2":
        # Sliding-window parallel: 4 output positions along W per cycle, so the
        # reads step by the stride; the channel advances across cycles.
        for cycle in range(cycles):
            base = {"H": 0, "W": 0, "C": 0}
            coords = sliding_window_coords(base, 4, layer.stride, dim="W")
            offset = cycle * 4 * layer.stride
            for c in coords:
                c["W"] = (c["W"] + offset) % max(1, layer.w)
            per_cycle.append(coords)
    else:
        raise ValueError(f"unknown dataflow {dataflow!r}")
    return per_cycle


def _theoretical_utilization(layer: ConvLayerSpec, dataflow: str) -> float:
    """Mapping efficiency over the 4x4 array (paper's 'theoretical' column)."""
    if dataflow == "D1":
        c_par = min(4, layer.c) / 4.0
        m_par = min(4, layer.m) / 4.0
        return c_par * m_par
    # D2 parallelises W positions (always 4 available for these layers) and M.
    m_par = min(4, layer.m) / 4.0
    return 1.0 * m_par


def _evaluate(mapping_id: str, layer: ConvLayerSpec, dataflow: str, layout: Layout
              ) -> Fig4Row:
    per_cycle = _dataflow_coords(layer, dataflow)
    dims = {"C": layer.c, "H": layer.h, "W": layer.w}
    # The figure's buffers are a single dual-port bank: every line the dataflow
    # touches competes for the same two ports.
    report = analyze_concordance(per_cycle, layout, dims, ports_per_bank=PORTS,
                                 lines_per_bank=1, num_banks=1, keep_trace=True)
    theo = _theoretical_utilization(layer, dataflow)
    return Fig4Row(
        mapping=mapping_id,
        workload=layer.name,
        dataflow=dataflow,
        layout=layout.name,
        lines_per_cycle=report.avg_lines_per_cycle,
        slowdown=report.avg_slowdown,
        theoretical_utilization=theo,
        practical_utilization=report.effective_utilization(theo),
    )


def run() -> List[Fig4Row]:
    """Reproduce the eight mappings M1-M8 of Fig. 4."""
    layer1 = resnet50_layer(1)
    layer47 = resnet50_layer(47)

    channel_last_l1 = parse_layout("HWC_W2C3")
    row_major = parse_layout("HCW_W8")
    channel_last_l3 = parse_layout("HWC_W2C3")

    rows = [
        _evaluate("M1", layer1, "D1", channel_last_l1),
        _evaluate("M2", layer1, "D2", channel_last_l1),
        _evaluate("M3", layer1, "D1", row_major),
        _evaluate("M4", layer1, "D2", row_major),
        _evaluate("M5", layer47, "D1", channel_last_l3),
        _evaluate("M6", layer47, "D2", channel_last_l3),
        _evaluate("M7", layer47, "D1", row_major),
        _evaluate("M8", layer47, "D2", row_major),
    ]
    return rows


def feather_picks(rows: List[Fig4Row]) -> Dict[str, Fig4Row]:
    """The concordant picks the paper highlights (M4 for layer 1, M5 for layer 47)."""
    by_id = {r.mapping: r for r in rows}
    return {"layer1": by_id["M4"], "layer47": by_id["M5"]}
