"""Fig. 13 — FEATHER vs SoTA accelerators in Layoutloop (latency and pJ/MAC).

For BERT, ResNet-50 and MobileNet-V3 the paper compares nine accelerator
configurations (Table IV) after a per-layer (dataflow, layout) co-search with
the energy-delay-product objective, reporting per-design normalised latency
and normalised energy per MAC (both relative to FEATHER), average steady-state
utilization, the bank-conflict stall share and the off-chip reordering share.

This experiment runs the shared co-search engine
(:func:`repro.experiments.common.model_costs`) over the same workloads and
returns the same series.  ``max_mappings`` bounds the pruned-random mapping
search per layer; the default keeps a full-model run in the tens of seconds
while preserving the orderings.  ``workers`` fans unique layer shapes out
across processes (``None`` honours ``REPRO_SEARCH_WORKERS``); results are
bit-identical for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.baselines.registry import fig13_arch_suite
from repro.experiments.common import model_costs
from repro.layoutloop.cosearch import ModelCost
from repro.workloads.bert import bert_unique_gemms
from repro.workloads.mobilenet_v3 import mobilenet_v3_layers
from repro.workloads.resnet50 import resnet50_layers


@dataclass
class Fig13Series:
    """Normalised results for one workload chart."""

    workload: str
    reference: str
    normalized_latency: Dict[str, float] = field(default_factory=dict)
    normalized_energy_per_mac: Dict[str, float] = field(default_factory=dict)
    utilization: Dict[str, float] = field(default_factory=dict)
    stall_fraction: Dict[str, float] = field(default_factory=dict)
    reorder_fraction: Dict[str, float] = field(default_factory=dict)

    def arch_names(self) -> List[str]:
        return list(self.normalized_latency)


def _series(workload_name: str, costs: Dict[str, ModelCost],
            reference: str = "FEATHER") -> Fig13Series:
    ref = costs[reference]
    series = Fig13Series(workload=workload_name, reference=reference)
    for name, cost in costs.items():
        series.normalized_latency[name] = (
            cost.total_cycles / ref.total_cycles if ref.total_cycles else 0.0)
        series.normalized_energy_per_mac[name] = (
            cost.energy_per_mac_pj / ref.energy_per_mac_pj
            if ref.energy_per_mac_pj else 0.0)
        series.utilization[name] = cost.avg_utilization
        series.stall_fraction[name] = cost.stall_fraction
        series.reorder_fraction[name] = cost.reorder_fraction
    return series


def workloads_for(name: str, max_layers: Optional[int] = None) -> Sequence:
    """Layer list for one of the paper's three workloads."""
    if name == "bert":
        wls = bert_unique_gemms()
    elif name == "resnet50":
        wls = resnet50_layers(include_fc=False)
    elif name == "mobilenet_v3":
        wls = mobilenet_v3_layers(include_fc=False)
    else:
        raise ValueError(f"unknown workload {name!r}")
    if max_layers:
        wls = wls[:max_layers]
    return wls


def run(workload_names: Sequence[str] = ("bert", "resnet50", "mobilenet_v3"),
        rows: int = 16, cols: int = 16, max_mappings: int = 50,
        max_layers: Optional[int] = None,
        workers: Optional[int] = None, seed: int = 0) -> Dict[str, Fig13Series]:
    """Reproduce Fig. 13's three charts (or a subset of them)."""
    results: Dict[str, Fig13Series] = {}
    for name in workload_names:
        gemm = name == "bert"
        arches = fig13_arch_suite(rows, cols, gemm=gemm)
        costs = model_costs(arches, workloads_for(name, max_layers),
                            model_name=name, max_mappings=max_mappings,
                            workers=workers, seed=seed)
        results[name] = _series(name, costs)
    return results


# The paper's reported normalised latency / energy (for EXPERIMENTS.md and the
# shape checks in tests — keys follow the arch names of ``fig13_arch_suite``).
PAPER_LATENCY = {
    "bert": {"NVDLA-like": 2.00, "Eyeriss-like": 1.43, "SIGMA-like (MK_K32)": 1.00,
             "FEATHER": 1.00},
    "resnet50": {"NVDLA-like": 2.00, "Eyeriss-like": 1.27,
                 "SIGMA-like (HWC_C32)": 1.01, "SIGMA-like (HWC_C4W8)": 1.03,
                 "SIGMA-like (off-chip reorder)": 1.70, "Medusa-like": 1.01,
                 "MTIA-like": 1.15, "TPU-like": 1.15, "FEATHER": 1.00},
    "mobilenet_v3": {"NVDLA-like": 2.89, "Eyeriss-like": 1.87,
                     "SIGMA-like (HWC_C32)": 1.17, "SIGMA-like (HWC_C4W8)": 1.07,
                     "SIGMA-like (off-chip reorder)": 1.70, "Medusa-like": 1.18,
                     "MTIA-like": 1.36, "TPU-like": 1.36, "FEATHER": 1.00},
}

PAPER_ENERGY = {
    "bert": {"NVDLA-like": 6.43, "Eyeriss-like": 5.98, "SIGMA-like (MK_K32)": 1.44,
             "FEATHER": 1.00},
    "resnet50": {"NVDLA-like": 1.30, "Eyeriss-like": 3.09,
                 "SIGMA-like (HWC_C32)": 1.09, "SIGMA-like (HWC_C4W8)": 1.46,
                 "SIGMA-like (off-chip reorder)": 1.99, "Medusa-like": 1.90,
                 "MTIA-like": 2.20, "TPU-like": 2.20, "FEATHER": 1.00},
    "mobilenet_v3": {"NVDLA-like": 1.35, "Eyeriss-like": 1.92,
                     "SIGMA-like (HWC_C32)": 1.29, "SIGMA-like (HWC_C4W8)": 1.54,
                     "SIGMA-like (off-chip reorder)": 1.66, "Medusa-like": 1.85,
                     "MTIA-like": 2.06, "TPU-like": 2.06, "FEATHER": 1.00},
}
