"""Tables I, III, IV and V of the paper as structured data.

Tables I and III are qualitative feature comparisons (reproduced directly from
the baseline registry); Table IV is the evaluation setup (reproduced from the
architecture specs); Table V is the post-PnR area/power of FEATHER at several
shapes (paper values next to the analytical model's estimate).

:func:`search_stats_table` is reproduction tooling rather than a paper
table: it runs the shared co-search engine over one workload and reports
per-architecture engine statistics (evaluations, pruned candidates, cache
hit rate, wall time) — useful for sizing figure-reproduction runs.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, List, Optional, Sequence

from repro.area.asic import table_v
from repro.baselines.registry import (
    feature_table,
    fig13_arch_suite,
    reorder_support_table,
)
from repro.experiments.common import model_costs


def table_i() -> List[Dict[str, object]]:
    """Table I: dataflow switching / layout reordering support of prior work."""
    return [asdict(row) for row in feature_table()]


def table_iii() -> List[Dict[str, object]]:
    """Table III: on-chip reordering patterns and implementations."""
    return [asdict(row) for row in reorder_support_table()]


def table_iv() -> List[Dict[str, object]]:
    """Table IV: the Layoutloop evaluation setup, one row per architecture."""
    rows = []
    for arch in fig13_arch_suite():
        rows.append({
            "name": arch.name,
            "pes": arch.num_pes,
            "layout": "flexible" if arch.runtime_layout_flexible else (arch.fixed_layout or "fixed"),
            "dataflow": ("TOPS" if arch.flexible_parallelism and arch.flexible_order
                         and arch.flexible_shape else
                         ("TS" if arch.flexible_shape else "T")),
            "reorder_pattern": arch.reorder_pattern.value,
            "reorder_implementation": arch.reorder_implementation.value,
            "datatype": f"int{arch.mac_bits}",
        })
    return rows


def table_v_rows() -> List[Dict[str, float]]:
    """Table V: FEATHER post-PnR area/power across shapes (paper vs model)."""
    return table_v()


def search_stats_table(workloads: Sequence, model_name: str = "model",
                       rows: int = 16, cols: int = 16, gemm: bool = False,
                       max_mappings: int = 50,
                       workers: Optional[int] = None,
                       seed: int = 0) -> List[Dict[str, object]]:
    """Engine statistics of a Fig. 13-style co-search, one row per arch."""
    costs = model_costs(fig13_arch_suite(rows, cols, gemm=gemm), workloads,
                        model_name=model_name, max_mappings=max_mappings,
                        workers=workers, seed=seed)
    table = []
    for name, cost in costs.items():
        stats = cost.search_stats
        table.append({
            "arch": name,
            "unique_layers": stats.layers_unique,
            "evaluations": stats.evaluations,
            "pruned": stats.pruned,
            "cache_hit_rate": stats.cache.hit_rate,
            "workers": stats.workers,
            "elapsed_s": stats.elapsed_s,
        })
    return table
