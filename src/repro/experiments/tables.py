"""Tables I, III, IV and V of the paper as structured data.

Tables I and III are qualitative feature comparisons (reproduced directly from
the baseline registry); Table IV is the evaluation setup (reproduced from the
architecture specs); Table V is the post-PnR area/power of FEATHER at several
shapes (paper values next to the analytical model's estimate).
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, List

from repro.area.asic import table_v
from repro.baselines.registry import (
    feature_table,
    fig13_arch_suite,
    reorder_support_table,
)


def table_i() -> List[Dict[str, object]]:
    """Table I: dataflow switching / layout reordering support of prior work."""
    return [asdict(row) for row in feature_table()]


def table_iii() -> List[Dict[str, object]]:
    """Table III: on-chip reordering patterns and implementations."""
    return [asdict(row) for row in reorder_support_table()]


def table_iv() -> List[Dict[str, object]]:
    """Table IV: the Layoutloop evaluation setup, one row per architecture."""
    rows = []
    for arch in fig13_arch_suite():
        rows.append({
            "name": arch.name,
            "pes": arch.num_pes,
            "layout": "flexible" if arch.runtime_layout_flexible else (arch.fixed_layout or "fixed"),
            "dataflow": ("TOPS" if arch.flexible_parallelism and arch.flexible_order
                         and arch.flexible_shape else
                         ("TS" if arch.flexible_shape else "T")),
            "reorder_pattern": arch.reorder_pattern.value,
            "reorder_implementation": arch.reorder_implementation.value,
            "datatype": f"int{arch.mac_bits}",
        })
    return rows


def table_v_rows() -> List[Dict[str, float]]:
    """Table V: FEATHER post-PnR area/power across shapes (paper vs model)."""
    return table_v()
