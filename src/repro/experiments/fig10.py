"""Fig. 10 — FEATHER vs a rigid systolic array on skewed GEMMs.

Four GEMM workloads (A regular, B reduction-free, C mixed, D reduction-heavy)
run on (a) an output/weight-stationary systolic array with its single fixed
mapping and (b) FEATHER, whose BIRRD allows cross-column spatial reduction and
per-column independent mappings.  The paper's takeaway: FEATHER sustains near
full utilization on the skewed shapes where the systolic array collapses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.api import SearchRequest, Session
from repro.api.codec import arch_payload, workload_payload
from repro.baselines.systolic import SystolicArray
from repro.layoutloop.arch import feather_arch
from repro.workloads.gemm import GemmSpec, fig10_workloads


@dataclass
class Fig10Row:
    """Utilization of both designs on one workload."""

    workload: str
    m: int
    k: int
    n: int
    systolic_utilization: float
    feather_utilization: float

    @property
    def feather_advantage(self) -> float:
        if self.systolic_utilization <= 0:
            return float("inf")
        return self.feather_utilization / self.systolic_utilization


def run(array_rows: int = 4, array_cols: int = 4, max_mappings: int = 200,
        seed: int = 0) -> List[Fig10Row]:
    """Evaluate the four Fig. 10 workloads on a small array (4x4 as drawn).

    The FEATHER side runs through the :mod:`repro.api` façade: one
    :class:`~repro.api.SearchRequest` per GEMM on a shared
    :class:`~repro.api.Session`, whose evaluation cache plays the role the
    per-experiment ``SearchEngine`` cache used to (bit-identical results).
    """
    systolic = SystolicArray(array_rows, array_cols, name="systolic")
    arch = arch_payload(feather_arch(array_rows, array_cols))

    rows = []
    with Session(name="fig10") as session:
        for gemm in fig10_workloads():
            sa_util = systolic.steady_state_utilization_gemm(gemm)
            response = session.run(SearchRequest(
                workloads=(workload_payload(gemm),), arch=arch,
                model=gemm.name, metric="latency",
                max_mappings=max_mappings, seed=seed))
            feather_report = response.cost.layer_choices[0].result.best_report
            rows.append(Fig10Row(
                workload=gemm.name,
                m=gemm.m, k=gemm.k, n=gemm.n,
                systolic_utilization=sa_util,
                feather_utilization=feather_report.practical_utilization,
            ))
    return rows


def summary(rows: List[Fig10Row]) -> Dict[str, float]:
    """Aggregate comparison: average utilization of each design."""
    return {
        "systolic_avg_utilization": sum(r.systolic_utilization for r in rows) / len(rows),
        "feather_avg_utilization": sum(r.feather_utilization for r in rows) / len(rows),
    }
