"""Shared helpers for the experiment modules: the co-search front, plain-text
tables and geomeans.

All experiment co-searches run on the :mod:`repro.search` engine —
multi-architecture sweeps (fig13, tables) through :func:`model_costs`, the
batch front over :func:`repro.search.engine.search_models`; per-layer
experiments (fig2, fig10) through a
:class:`~repro.search.engine.SearchEngine` they construct directly.
``workers=None`` (the default here) honours the ``REPRO_SEARCH_WORKERS``
environment variable, letting a user parallelise the batch sweeps without
touching call sites.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence


def model_costs(arches: Sequence, workloads: Sequence, model_name: str = "model",
                metric: str = "edp", max_mappings: int = 50,
                workers: Optional[int] = None,
                vectorize: bool = True, seed: int = 0,
                backend: str = "analytical") -> Dict[str, object]:
    """Co-search ``workloads`` on every architecture via the shared façade.

    .. deprecated:: 1.1
        A thin shim over :mod:`repro.api`: one
        :class:`~repro.api.SearchRequest` per architecture, run on the
        module-default :class:`~repro.api.Session` (bit-identical to the
        legacy engine path, pinned by the experiment-equality tests).

    Returns ``{arch name: ModelCost}`` like
    :func:`repro.layoutloop.cosearch.compare_architectures`; each
    ``ModelCost`` carries its engine statistics in ``search_stats``.

    ``workers=None`` (the default) follows the session's resolution —
    explicit argument > ``REPRO_SEARCH_WORKERS`` > serial — and
    ``max_mappings=50`` matches the figure reproductions.  ``seed`` feeds
    the pruned-random mapping sampler and is forwarded unchanged so a
    recorded run can be reproduced exactly.  ``backend`` selects the
    :mod:`repro.backends` evaluation backend (the figures run the default
    analytical model; the simulator is for micro-scale cells only).
    """
    from repro.api import SearchRequest, default_session
    from repro.api.codec import arch_payload, workload_payload

    session = default_session()
    payloads = tuple(workload_payload(wl) for wl in workloads)
    costs = {}
    for arch in arches:
        response = session.run(SearchRequest(
            workloads=payloads, arch=arch_payload(arch), model=model_name,
            metric=metric, max_mappings=max_mappings, seed=seed,
            backend=backend, workers=workers, vectorize=vectorize,
            fresh_cache=True))
        costs[arch.name] = response.cost
    return costs


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of the positive entries of ``values``."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def format_table(rows: Sequence[Dict[str, object]], columns: Sequence[str] = None,
                 float_fmt: str = "{:.3f}") -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return "(empty)"
    columns = list(columns or rows[0].keys())
    rendered: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        line = []
        for col in columns:
            value = row.get(col, "")
            if isinstance(value, float):
                line.append(float_fmt.format(value))
            else:
                line.append(str(value))
        rendered.append(line)
    widths = [max(len(r[i]) for r in rendered) for i in range(len(columns))]
    lines = []
    for idx, r in enumerate(rendered):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(r)))
        if idx == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    return "\n".join(lines)


def normalize(values: Dict[str, float], reference_key: str) -> Dict[str, float]:
    """Normalize every entry by the reference entry (reference becomes 1.0)."""
    ref = values.get(reference_key)
    if not ref:
        return dict(values)
    return {k: v / ref for k, v in values.items()}
