"""Shared helpers for the experiment modules: plain-text tables and geomeans."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of the positive entries of ``values``."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def format_table(rows: Sequence[Dict[str, object]], columns: Sequence[str] = None,
                 float_fmt: str = "{:.3f}") -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return "(empty)"
    columns = list(columns or rows[0].keys())
    rendered: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        line = []
        for col in columns:
            value = row.get(col, "")
            if isinstance(value, float):
                line.append(float_fmt.format(value))
            else:
                line.append(str(value))
        rendered.append(line)
    widths = [max(len(r[i]) for r in rendered) for i in range(len(columns))]
    lines = []
    for idx, r in enumerate(rendered):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(r)))
        if idx == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    return "\n".join(lines)


def normalize(values: Dict[str, float], reference_key: str) -> Dict[str, float]:
    """Normalize every entry by the reference entry (reference becomes 1.0)."""
    ref = values.get(reference_key)
    if not ref:
        return dict(values)
    return {k: v / ref for k, v in values.items()}
