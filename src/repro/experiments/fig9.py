"""Fig. 9 — NEST walk-through: local temporal reduction + interleaved spatial reduction.

The paper illustrates a 4x4 NEST running a 2x2-kernel convolution with C = 2
input channels and M = 16 output channels on a 4x4 input, weight stationary
with two channels and two kernels per row and four kernels across rows.  The
takeaways the figure asserts (and the tests check against this experiment):

* all PEs of a column share one output bus without conflicts, because while
  one row drains (Phase 2) the others keep accumulating (Phase 1);
* the BIRRD performs a 4:2 spatial reduction per drained row;
* in steady state every PE is busy every cycle, and the AH^2 weight-loading
  latency is hidden behind computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.feather.accelerator import FeatherAccelerator, reference_conv
from repro.feather.config import FeatherConfig
from repro.workloads.conv import ConvLayerSpec


@dataclass
class Fig9Result:
    """Functional and timing outcome of the walk-through configuration."""

    correct: bool
    cycles: float
    utilization: float
    macs: int
    spatial_reduction_group: int
    outputs_per_row_drain: int
    weight_load_cycles_hidden: int
    row_drains: int


def walkthrough_layer() -> ConvLayerSpec:
    """The convolution of Fig. 9: 2x2 kernel, C=2, M=16 on a 4x4 iAct."""
    return ConvLayerSpec("fig9_walkthrough", m=16, c=2, h=4, w=4, r=2, s=2,
                         stride=1, padding=0)


def run(seed: int = 0) -> Fig9Result:
    layer = walkthrough_layer()
    rng = np.random.default_rng(seed)
    iacts = rng.integers(-4, 5, (layer.c, layer.h, layer.w))
    weights = rng.integers(-3, 4, (layer.m, layer.c, layer.r, layer.s))

    config = FeatherConfig(array_rows=4, array_cols=4, stab_lines=128)
    accelerator = FeatherAccelerator(config, route_birrd="auto")
    outputs, stats = accelerator.run_conv(layer, iacts, weights)
    reference = reference_conv(iacts, weights, layer)

    # The GEMM lowering has K = C*R*S = 8; with AW = 4 the array reduces 4
    # lanes spatially (one K slice per lane) and the rest temporally, i.e. a
    # 4:1 group per output — the figure's 4:2 case corresponds to two outputs
    # sharing a row, which the accelerator realises when col_k = 2.
    col_k = accelerator._choose_col_k(layer.c * layer.r * layer.s)
    timing = accelerator.nest.timing_for_tile(temporal_steps=layer.p * layer.q,
                                              macs_per_pe_per_step=2)

    return Fig9Result(
        correct=bool(np.array_equal(outputs, reference)),
        cycles=stats.cycles,
        utilization=stats.utilization,
        macs=stats.macs,
        spatial_reduction_group=col_k,
        outputs_per_row_drain=config.array_cols // col_k,
        weight_load_cycles_hidden=timing.weight_load_cycles_hidden,
        row_drains=accelerator.nest.total_row_drains,
    )
