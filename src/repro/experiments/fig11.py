"""Fig. 11 — RIR walk-through: channel-last to row-major switch without bank conflicts.

A small convolution reads iActs stored channel-last (HWC_C4) from StaB Ping
and, through reorder-in-reduction, writes its oActs into StaB Pong in the
row-major layout (MPQ_Q4 == CHW_W4 for the next layer).  The experiment
reproduces the figure's read/write traces and verifies the two claims the
figure makes:

* reads never touch more lines per bank than the port budget (no read-side
  bank conflicts under the concordant channel-last layout), and
* every cycle's oAct writes target distinct banks (or at most the write-port
  budget), so the layout conversion costs zero extra cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.feather.accelerator import FeatherAccelerator, reference_conv
from repro.feather.config import FeatherConfig
from repro.feather.rir import RirPlanner
from repro.layout.layout import parse_layout
from repro.workloads.conv import ConvLayerSpec


@dataclass
class Fig11Result:
    """Outcome of the RIR walk-through."""

    correct: bool
    input_layout: str
    output_layout: str
    read_slowdown: float
    write_serialization: float
    write_trace: List[Tuple[int, int]] = field(default_factory=list)
    writes_per_bank: Dict[int, int] = field(default_factory=dict)

    @property
    def conflict_free(self) -> bool:
        return self.read_slowdown <= 1.0 and self.write_serialization <= 1.0


def walkthrough_layer() -> ConvLayerSpec:
    """A small layer with C = 4 channels and M = 4 kernels (the figure's shape)."""
    return ConvLayerSpec("fig11_walkthrough", m=4, c=4, h=4, w=4, r=2, s=2,
                         stride=1, padding=0)


def run(seed: int = 0) -> Fig11Result:
    layer = walkthrough_layer()
    rng = np.random.default_rng(seed)
    iacts = rng.integers(-4, 5, (layer.c, layer.h, layer.w))
    weights = rng.integers(-3, 4, (layer.m, layer.c, layer.r, layer.s))

    input_layout = parse_layout("HWC_C4")      # channel-last iActs
    output_layout = parse_layout("MPQ_Q4")     # row-major oActs (next layer CHW_W4)

    config = FeatherConfig(array_rows=4, array_cols=4, stab_lines=64)
    accelerator = FeatherAccelerator(config, route_birrd="auto")
    outputs, stats = accelerator.run_conv(
        layer, iacts, weights, output_layout=output_layout, input_layout=input_layout)
    reference = reference_conv(iacts, weights, layer)

    # Reconstruct the oAct write trace the way the figure tabulates it.
    planner = RirPlanner(config.array_cols, output_layout,
                         {"M": layer.m, "P": layer.p, "Q": layer.q},
                         ports_per_bank=config.stab_ports_per_bank)
    write_trace = []
    writes_per_bank: Dict[int, int] = {}
    for m in range(layer.m):
        for p in range(layer.p):
            for q in range(layer.q):
                line, bank = planner.destination({"M": m, "P": p, "Q": q})
                write_trace.append((line, bank))
                writes_per_bank[bank] = writes_per_bank.get(bank, 0) + 1

    return Fig11Result(
        correct=bool(np.array_equal(outputs, reference)),
        input_layout=input_layout.name,
        output_layout=output_layout.name,
        read_slowdown=stats.read_slowdown,
        write_serialization=stats.write_serialization,
        write_trace=write_trace,
        writes_per_bank=writes_per_bank,
    )
