"""Experiment harnesses: one module per paper figure/table.

Each module exposes a ``run()`` entry point returning structured results; the
benchmarks in ``benchmarks/`` call these and print the paper-vs-measured
comparison, and EXPERIMENTS.md records the outcomes.
"""

from repro.experiments import (
    common,
    fig2,
    fig4,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    tables,
)

__all__ = [
    "common",
    "fig2",
    "fig4",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "tables",
]
