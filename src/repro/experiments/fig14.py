"""Fig. 14 — ASIC resource comparison.

(a) Area and power of the three reduction networks (MAERI's ART, SIGMA's FAN,
    FEATHER's BIRRD) from 16 to 256 inputs; the paper's relationships are that
    a same-sized BIRRD is ~1.43x/2.21x larger and ~1.17x/2.07x more power than
    FAN/ART, yet a single instance serves the whole 2D array.

(b) Full-accelerator area breakdown at 256 PEs: an Eyeriss-like fixed-dataflow
    design, SIGMA, and FEATHER, with BIRRD at ~4% of FEATHER's die and FEATHER
    only ~6% larger than the Eyeriss-like design while SIGMA is ~2.4x larger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.area.asic import (
    AreaBreakdown,
    eyeriss_like_breakdown,
    feather_breakdown,
    sigma_like_breakdown,
)
from repro.noc.area_models import reduction_network_comparison


@dataclass
class Fig14aRow:
    """Area/power of the three reduction networks at one input count."""

    inputs: int
    art_area_um2: float
    fan_area_um2: float
    birrd_area_um2: float
    art_power_mw: float
    fan_power_mw: float
    birrd_power_mw: float

    @property
    def birrd_over_fan_area(self) -> float:
        return self.birrd_area_um2 / self.fan_area_um2

    @property
    def birrd_over_art_area(self) -> float:
        return self.birrd_area_um2 / self.art_area_um2


@dataclass
class Fig14bResult:
    """Accelerator area breakdowns and headline ratios."""

    breakdowns: Dict[str, AreaBreakdown]

    @property
    def feather_over_eyeriss(self) -> float:
        return (self.breakdowns["FEATHER-256"].total_area_um2
                / self.breakdowns["Eyeriss-like-256"].total_area_um2)

    @property
    def sigma_over_feather(self) -> float:
        return (self.breakdowns["SIGMA-256"].total_area_um2
                / self.breakdowns["FEATHER-256"].total_area_um2)

    @property
    def birrd_area_fraction(self) -> float:
        return self.breakdowns["FEATHER-256"].area_fraction("Redn_NoC")


def run_fig14a(sizes: Tuple[int, ...] = (16, 32, 64, 128, 256)) -> List[Fig14aRow]:
    rows = []
    for size, nets in reduction_network_comparison(sizes).items():
        rows.append(Fig14aRow(
            inputs=size,
            art_area_um2=nets["ART"].area_um2,
            fan_area_um2=nets["FAN"].area_um2,
            birrd_area_um2=nets["BIRRD"].area_um2,
            art_power_mw=nets["ART"].power_mw,
            fan_power_mw=nets["FAN"].power_mw,
            birrd_power_mw=nets["BIRRD"].power_mw,
        ))
    return rows


def run_fig14b(pes: int = 256) -> Fig14bResult:
    rows = cols = int(pes ** 0.5)
    return Fig14bResult(breakdowns={
        f"Eyeriss-like-{pes}": eyeriss_like_breakdown(pes),
        f"SIGMA-{pes}": sigma_like_breakdown(pes),
        f"FEATHER-{pes}": feather_breakdown(rows, cols),
    })


def run() -> Dict[str, object]:
    """Both halves of Fig. 14."""
    return {"fig14a": run_fig14a(), "fig14b": run_fig14b()}
