"""Fig. 12 — per-layer throughput on real devices, normalised by PE count and clock.

The paper runs ResNet-50 layer by layer on FEATHER (ZCU104), the Xilinx DPU
(same board), Gemmini (FireSim) and a Coral Edge TPU, then reports throughput
normalised by the number of PEs and the clock — which reduces to achieved
MACs per PE per cycle, i.e. utilization of each design's dataflow.  This
experiment drives the device models over the same layer table and reports
per-layer normalised throughput plus the geomean speedups the paper headlines
(3.91x over Gemmini, 2.65x over the DPU, 4.56x geomean / 4.91x text over the
Edge TPU).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.baselines.devices import (
    DeviceModel,
    edge_tpu_device,
    feather_fpga_device,
    gemmini_device,
    xilinx_dpu_device,
)
from repro.experiments.common import geomean
from repro.workloads.conv import ConvLayerSpec, LayerKind
from repro.workloads.resnet50 import resnet50_layers


@dataclass
class Fig12Result:
    """Per-layer normalised throughput and geomean speedups."""

    layers: List[str]
    per_device: Dict[str, List[float]] = field(default_factory=dict)

    def geomean_speedup(self, baseline: str, target: str = "FEATHER") -> float:
        ratios = [
            t / b for t, b in zip(self.per_device[target], self.per_device[baseline])
            if b > 0
        ]
        return geomean(ratios)

    def speedups(self) -> Dict[str, float]:
        return {
            name: self.geomean_speedup(name)
            for name in self.per_device if name != "FEATHER"
        }


def run(max_layers: int = None) -> Fig12Result:
    """Run all ResNet-50 conv layers through the four device models."""
    layers = [l for l in resnet50_layers(include_fc=False)
              if l.kind is not LayerKind.FC]
    if max_layers:
        layers = layers[:max_layers]

    devices: List[DeviceModel] = [
        feather_fpga_device(),
        gemmini_device(),
        xilinx_dpu_device(),
        edge_tpu_device(),
    ]

    result = Fig12Result(layers=[l.name for l in layers])
    for device in devices:
        throughputs = [device.run_layer(layer).normalized_throughput_per_pe
                       for layer in layers]
        result.per_device[device.name] = throughputs
    return result
