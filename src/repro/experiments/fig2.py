"""Fig. 2 — the theory/practice latency gap on a 16x16 PE array.

For selected ResNet-50 and MobileNet-V3 layers (and the full models) the paper
compares four policies:

1. **fixed** — a fixed output-stationary dataflow with a fixed layout (the
   error bar spans the layouts); the conventional compromise.
2. **theory** — the best dataflow reported by a layout-blind search (what a
   Timeloop-style mapper promises).
3. **practice** — that same "best" dataflow executed under real layouts with
   bank conflicts (the error bar again spans layouts); this is where the up to
   128x theory/practice gap appears.
4. **feather** — FEATHER co-switching (dataflow, layout), which restores the
   theoretical latency.

The experiment returns, per workload entry, the latency of each policy
normalised to the FEATHER policy, plus the min/max across layouts for the
policies with layout error bars.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.api import EvalRequest, SearchRequest, Session
from repro.api.codec import arch_payload, mapping_payload, workload_payload
from repro.layout.library import conv_layout_library
from repro.layoutloop.arch import feather_arch
from repro.baselines.registry import sigma_like
from repro.workloads.conv import ConvLayerSpec
from repro.workloads.resnet50 import resnet50_layers, resnet50_motivation_layers
from repro.workloads.mobilenet_v3 import mobilenet_v3_layers, mobilenet_v3_motivation_layers
from repro.experiments.common import geomean


@dataclass
class Fig2Row:
    """Latency of the four policies for one workload entry."""

    workload: str
    fixed_latency: float
    fixed_latency_range: tuple
    theory_latency: float
    practice_latency: float
    practice_latency_range: tuple
    feather_latency: float

    @property
    def practice_gap(self) -> float:
        """Worst-case practice / theory latency ratio (the paper's 2-128x gap)."""
        return self.practice_latency_range[1] / self.theory_latency if self.theory_latency else 0.0

    @property
    def feather_vs_fixed(self) -> float:
        """Latency reduction of FEATHER over the fixed policy (paper: ~63% overall)."""
        return 1.0 - self.feather_latency / self.fixed_latency if self.fixed_latency else 0.0

    def normalized(self) -> Dict[str, float]:
        base = self.feather_latency or 1.0
        return {
            "fixed": self.fixed_latency / base,
            "theory": self.theory_latency / base,
            "practice": self.practice_latency / base,
            "feather": 1.0,
        }


def _policies_for_layer(layer: ConvLayerSpec, session: Session,
                        feather_payload: Dict, no_reorder_payload: Dict,
                        max_mappings: int, seed: int) -> Fig2Row:
    """Price the four policies for one layer through the façade.

    Policies 1 and 3 are plain cell evaluations
    (:class:`~repro.api.EvalRequest` on the no-reorder baseline arch);
    policies 2 and 4 are per-layer co-searches
    (:class:`~repro.api.SearchRequest` on FEATHER, policy 2 with the
    candidate library pinned to a single layout — the layout-blind
    "theory" search).  The shared session cache plays the old engine
    cache's role: revisited shapes skip the concordance analysis for
    every policy (keys embed the (arch, energy) signature, so the two
    architectures never collide).
    """
    layouts = conv_layout_library()
    workload = workload_payload(layer)

    def _eval_cycles(mapping, layout) -> float:
        response = session.run(EvalRequest(
            workload=workload, arch=no_reorder_payload, mapping=mapping,
            layout=layout.name))
        return response.backend_report.total_cycles

    def _search(layout_names=None):
        response = session.run(SearchRequest(
            workloads=(workload,), arch=feather_payload, model=layer.name,
            metric="latency", max_mappings=max_mappings, seed=seed,
            layouts=layout_names))
        return response.cost.layer_choices[0].result

    # Policy 1: fixed output-stationary dataflow across layouts.
    fixed_lat = [_eval_cycles("output_stationary", lay) for lay in layouts]

    # Policy 2: layout-blind best dataflow (slowdown ignored => FEATHER model).
    theory = _search(layout_names=(layouts[0].name,))
    theory_mapping = mapping_payload(theory.best_mapping)
    theory_lat = theory.best_report.total_cycles

    # Policy 3: that dataflow under real layouts with conflicts.
    practice_lat = [_eval_cycles(theory_mapping, lay) for lay in layouts]

    # Policy 4: FEATHER co-switching (dataflow, layout).
    feather_lat = _search().best_report.total_cycles

    return Fig2Row(
        workload=layer.name,
        fixed_latency=geomean(fixed_lat),
        fixed_latency_range=(min(fixed_lat), max(fixed_lat)),
        theory_latency=theory_lat,
        practice_latency=geomean(practice_lat),
        practice_latency_range=(min(practice_lat), max(practice_lat)),
        feather_latency=feather_lat,
    )


def _aggregate(rows: Sequence[Fig2Row], name: str) -> Fig2Row:
    return Fig2Row(
        workload=name,
        fixed_latency=sum(r.fixed_latency for r in rows),
        fixed_latency_range=(sum(r.fixed_latency_range[0] for r in rows),
                             sum(r.fixed_latency_range[1] for r in rows)),
        theory_latency=sum(r.theory_latency for r in rows),
        practice_latency=sum(r.practice_latency for r in rows),
        practice_latency_range=(sum(r.practice_latency_range[0] for r in rows),
                                sum(r.practice_latency_range[1] for r in rows)),
        feather_latency=sum(r.feather_latency for r in rows),
    )


def motivation_workloads(model: str) -> List[ConvLayerSpec]:
    """The Fig. 2 motivation layers of one model, in chart order.

    The same lists back the ``fig2_*_motivation`` workload sets of the
    scenario matrix, so the scenario-layer port searches exactly the
    workloads the legacy experiment does.
    """
    if model == "resnet50":
        return [layer for key, layer
                in sorted(resnet50_motivation_layers().items()) if key != 47]
    if model == "mobilenet_v3":
        return [layer for _, layer
                in sorted(mobilenet_v3_motivation_layers().items())]
    raise ValueError(f"unknown Fig. 2 model {model!r}")


def run(rows: int = 16, cols: int = 16, max_mappings: int = 60,
        full_model_layers: Optional[int] = 12, seed: int = 0,
        models: Sequence[str] = ("resnet50", "mobilenet_v3"),
        ) -> Dict[str, List[Fig2Row]]:
    """Reproduce Fig. 2.

    ``full_model_layers`` bounds how many (unique) layers feed the "Full
    Model" bar to keep the run fast; ``None`` uses every layer.  ``models``
    selects which of the two charts to produce; ``seed`` feeds the mapping
    sampler of the per-run session.

    All per-layer requests share one :class:`~repro.api.Session`, so
    repeated shapes (and the full-model bars, which revisit the motivation
    layers) hit the session's evaluation cache instead of re-pricing.
    """
    results: Dict[str, List[Fig2Row]] = {}
    feather_payload = arch_payload(feather_arch(rows, cols))
    # A plain no-reorder architecture; the layout under evaluation is supplied
    # per request inside ``_policies_for_layer``, so the fixed-layout name
    # here is irrelevant.
    no_reorder_payload = arch_payload(sigma_like(rows, cols, layout="HWC_C32",
                                                 reorder="none"))
    full_tables = {"resnet50": lambda: resnet50_layers(include_fc=False),
                   "mobilenet_v3": lambda: mobilenet_v3_layers(include_fc=False)}

    with Session(name="fig2") as session:
        for model in models:
            model_rows = [
                _policies_for_layer(layer, session, feather_payload,
                                    no_reorder_payload, max_mappings, seed)
                for layer in motivation_workloads(model)]
            all_layers = full_tables[model]()
            if full_model_layers:
                all_layers = all_layers[:full_model_layers]
            full = [_policies_for_layer(l, session, feather_payload,
                                        no_reorder_payload, max_mappings, seed)
                    for l in all_layers]
            model_rows.append(_aggregate(full, f"{model}_full_model"))
            results[model] = model_rows
    return results
