"""On-chip storage substrate: SRAM banks, logical 2D buffers, ping-pong buffers."""

from repro.buffer.sram import BankConflictError, SramBank
from repro.buffer.buffer import Buffer2D, BufferSpec, PingPongBuffer

__all__ = [
    "BankConflictError",
    "SramBank",
    "Buffer2D",
    "BufferSpec",
    "PingPongBuffer",
]
