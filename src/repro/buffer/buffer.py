"""Logical 2D buffer and ping-pong buffer built from SRAM banks.

The paper (Table II) describes on-chip storage as a logical 2D buffer of
``num_line x line_size`` stacking SRAM banks both vertically (more lines) and
horizontally (wider lines).  FEATHER's stationary buffer (StaB) instead uses
``AW`` one-word-wide banks so that every bank can take an independent write
address — that is what lets BIRRD scatter oActs into a new layout.  Both
organisations are expressible with :class:`BufferSpec`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.buffer.sram import BankConflictError, SramBank


@dataclass(frozen=True)
class BufferSpec:
    """Geometry of a logical 2D buffer.

    ``num_lines`` x ``line_size`` is the logical shape; ``banks`` is the number
    of physical banks the lines are distributed across (horizontally for
    word-interleaved StaB-style buffers, vertically for line-stacked
    scratchpads); ``ports_per_bank`` is the physical port count;
    ``word_bits`` the word width.

    ``interleaving`` selects how logical positions map to banks:

    * ``"line"`` — whole lines live in one bank; consecutive lines go to
      consecutive banks (the conventional scratchpad of §II-B, the paper's
      ``conflict_depth = num_lines / banks``).
    * ``"word"`` — each column of the logical buffer is its own bank
      (FEATHER's StaB: ``banks == line_size`` and every word of a line comes
      from a different bank).
    """

    num_lines: int
    line_size: int
    banks: int
    ports_per_bank: int = 2
    word_bits: int = 8
    interleaving: str = "line"
    name: str = "buffer"

    def __post_init__(self) -> None:
        if self.interleaving not in ("line", "word"):
            raise ValueError("interleaving must be 'line' or 'word'")
        if self.num_lines < 1 or self.line_size < 1 or self.banks < 1:
            raise ValueError("buffer geometry must be positive")
        if self.interleaving == "word" and self.banks != self.line_size:
            raise ValueError("word interleaving requires banks == line_size")

    @property
    def conflict_depth(self) -> int:
        """Lines per bank (paper §V-A's ``conflict_depth``)."""
        if self.interleaving == "word":
            return self.num_lines
        return math.ceil(self.num_lines / self.banks)

    @property
    def capacity_words(self) -> int:
        return self.num_lines * self.line_size

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_words * self.word_bits // 8

    @property
    def peak_words_per_cycle(self) -> int:
        """Upper bound on words served per cycle across all bank ports."""
        if self.interleaving == "word":
            return self.banks * self.ports_per_bank
        return self.banks * self.ports_per_bank * self.line_size


class Buffer2D:
    """A logical 2D buffer backed by :class:`SramBank` instances.

    Addressing is by ``(line, offset)``.  The buffer exposes cycle-level
    ``read_line`` / ``write_word`` operations that account for port usage in
    the underlying banks, and a :meth:`cycle_cost` helper that returns the
    slowdown a set of concurrent line reads would incur — the same
    ``max(lines_in_bank / ports, 1)`` rule as the analytical model, so the
    functional and analytical paths agree by construction.
    """

    def __init__(self, spec: BufferSpec):
        self.spec = spec
        if spec.interleaving == "word":
            entries = spec.num_lines
            self._banks = [
                SramBank(entries=entries, io_width=1, ports=spec.ports_per_bank,
                         name=f"{spec.name}.bank{i}")
                for i in range(spec.banks)
            ]
        else:
            entries = spec.conflict_depth
            self._banks = [
                SramBank(entries=entries, io_width=spec.line_size, ports=spec.ports_per_bank,
                         name=f"{spec.name}.bank{i}")
                for i in range(spec.banks)
            ]
        self.cycles = 0
        self.stall_cycles = 0

    # -------------------------------------------------------------- addressing
    def _locate_line(self, line: int) -> Tuple[int, int]:
        """Map a logical line to (bank index, entry within bank) for line interleaving."""
        if not 0 <= line < self.spec.num_lines:
            raise IndexError(f"line {line} outside buffer of {self.spec.num_lines} lines")
        if self.spec.interleaving == "word":
            raise RuntimeError("word-interleaved buffers address by (line, offset) words")
        bank = line // self.spec.conflict_depth
        entry = line % self.spec.conflict_depth
        return min(bank, self.spec.banks - 1), entry

    @property
    def banks(self) -> List[SramBank]:
        return self._banks

    # ------------------------------------------------------------------ timing
    def tick(self) -> None:
        """Advance one cycle on every bank."""
        self.cycles += 1
        for bank in self._banks:
            bank.tick()

    def cycle_cost(self, lines: Iterable[int]) -> float:
        """Slowdown for reading the given logical lines in one cycle."""
        per_bank: Dict[int, int] = {}
        for line in set(lines):
            if self.spec.interleaving == "word":
                # Every word of a line comes from a different bank, one entry each:
                # any number of distinct lines costs one access per bank per line.
                bank_count = 1  # placeholder; handled below
                per_bank[line] = 1
            else:
                bank, _ = self._locate_line(line)
                per_bank[bank] = per_bank.get(bank, 0) + 1
        if self.spec.interleaving == "word":
            # Reading L distinct lines touches every bank L times.
            lines_needed = len(per_bank)
            return max(lines_needed / self.spec.ports_per_bank, 1.0)
        worst = 1.0
        for count in per_bank.values():
            worst = max(worst, count / self.spec.ports_per_bank)
        return max(worst, 1.0)

    # ------------------------------------------------------------------ access
    def write_word(self, line: int, offset: int, value: int, strict: bool = False) -> None:
        """Write one word at (logical line, offset); ``strict`` forbids overwrite."""
        if not 0 <= offset < self.spec.line_size:
            raise IndexError(f"offset {offset} outside line of {self.spec.line_size}")
        if self.spec.interleaving == "word":
            if not 0 <= line < self.spec.num_lines:
                raise IndexError(f"line {line} outside buffer")
            self._banks[offset].write_word(line, 0, value, strict=strict)
        else:
            bank, entry = self._locate_line(line)
            self._banks[bank].write_word(entry, offset, value, strict=strict)

    def write_line(self, line: int, values: Sequence[int], strict: bool = False) -> None:
        """Write a whole logical line word by word."""
        for offset, value in enumerate(values):
            self.write_word(line, offset, value, strict=strict)

    def read_line(self, line: int, strict: bool = False) -> List[Optional[int]]:
        """Read a whole logical line (list of words, None where unwritten)."""
        if self.spec.interleaving == "word":
            if not 0 <= line < self.spec.num_lines:
                raise IndexError(f"line {line} outside buffer")
            return [bank.read(line, strict=strict)[0] for bank in self._banks]
        bank, entry = self._locate_line(line)
        return self._banks[bank].read(entry, strict=strict)

    def read_word(self, line: int, offset: int, strict: bool = False) -> Optional[int]:
        """Read one word, counting the access in the bank statistics."""
        if self.spec.interleaving == "word":
            return self._banks[offset].read(line, strict=strict)[0]
        bank, entry = self._locate_line(line)
        return self._banks[bank].read(entry, strict=strict)[offset]

    def peek_word(self, line: int, offset: int) -> Optional[int]:
        """Read one word without counting an access (debug/verification)."""
        if self.spec.interleaving == "word":
            return self._banks[offset].peek(line)[0]
        bank, entry = self._locate_line(line)
        return self._banks[bank].peek(entry)[offset]

    # ------------------------------------------------------------------- stats
    @property
    def total_reads(self) -> int:
        return sum(b.total_reads for b in self._banks)

    @property
    def total_writes(self) -> int:
        return sum(b.total_writes for b in self._banks)

    @property
    def conflict_stalls(self) -> int:
        return sum(b.conflict_stalls for b in self._banks)

    def reset_stats(self) -> None:
        """Zero all per-bank counters and the buffer's cycle/stall counts."""
        for bank in self._banks:
            bank.reset_stats()
        self.cycles = 0
        self.stall_cycles = 0


class PingPongBuffer:
    """Two identical buffers swapped between producer and consumer roles.

    FEATHER's StaB and StrB are both ping-pong pairs (§III-C1): the compute
    pipeline reads iActs from the Ping half and writes next-layer iActs
    (oActs) into the Pong half, then the roles swap at the layer boundary.
    """

    def __init__(self, spec: BufferSpec):
        self.spec = spec
        self._halves = (
            Buffer2D(BufferSpec(**{**spec.__dict__, "name": f"{spec.name}.ping"})),
            Buffer2D(BufferSpec(**{**spec.__dict__, "name": f"{spec.name}.pong"})),
        )
        self._read_idx = 0
        self.swaps = 0

    @property
    def read_half(self) -> Buffer2D:
        return self._halves[self._read_idx]

    @property
    def write_half(self) -> Buffer2D:
        return self._halves[1 - self._read_idx]

    def swap(self) -> None:
        """Exchange the read/write roles (layer boundary)."""
        self._read_idx = 1 - self._read_idx
        self.swaps += 1

    def tick(self) -> None:
        """Advance one cycle on both halves."""
        for half in self._halves:
            half.tick()

    @property
    def total_reads(self) -> int:
        return sum(h.total_reads for h in self._halves)

    @property
    def total_writes(self) -> int:
        return sum(h.total_writes for h in self._halves)
