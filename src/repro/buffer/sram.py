"""SRAM bank model.

A bank is a physical 2D SRAM of ``entries x io_width`` words with a limited
number of ports (Table II: TSMC 28nm offers at most two).  The model tracks
per-cycle port usage so that reads/writes exceeding the port budget are
detected — this is exactly the bank-conflict behaviour the paper's motivation
section builds on — and it counts accesses for the energy model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


class BankConflictError(RuntimeError):
    """Raised when a cycle requests more bank ports than physically exist."""


@dataclass
class SramBank:
    """A single SRAM bank with a fixed number of shared read/write ports."""

    entries: int
    io_width: int = 1
    ports: int = 2
    name: str = "bank"

    def __post_init__(self) -> None:
        if self.entries < 1 or self.io_width < 1 or self.ports < 1:
            raise ValueError("entries, io_width and ports must all be >= 1")
        self._data: Dict[int, List[Optional[int]]] = {}
        self._cycle = 0
        self._ports_used_this_cycle = 0
        self.total_reads = 0
        self.total_writes = 0
        self.conflict_stalls = 0

    # ----------------------------------------------------------------- timing
    def tick(self) -> None:
        """Advance one cycle, resetting per-cycle port accounting."""
        self._cycle += 1
        self._ports_used_this_cycle = 0

    def _use_port(self, strict: bool) -> None:
        self._ports_used_this_cycle += 1
        if self._ports_used_this_cycle > self.ports:
            self.conflict_stalls += 1
            if strict:
                raise BankConflictError(
                    f"{self.name}: {self._ports_used_this_cycle} accesses in cycle "
                    f"{self._cycle} but only {self.ports} ports"
                )

    @property
    def ports_available(self) -> int:
        return max(0, self.ports - self._ports_used_this_cycle)

    # ----------------------------------------------------------------- access
    def write(self, entry: int, values: List[int], strict: bool = False) -> None:
        """Write a full or partial line to ``entry``."""
        self._check_entry(entry)
        if len(values) > self.io_width:
            raise ValueError(f"line of width {len(values)} exceeds io width {self.io_width}")
        self._use_port(strict)
        line = self._data.setdefault(entry, [None] * self.io_width)
        for i, v in enumerate(values):
            line[i] = v
        self.total_writes += 1

    def write_word(self, entry: int, offset: int, value: int, strict: bool = False) -> None:
        """Write a single word at ``(entry, offset)``."""
        self._check_entry(entry)
        if not 0 <= offset < self.io_width:
            raise ValueError(f"offset {offset} outside io width {self.io_width}")
        self._use_port(strict)
        line = self._data.setdefault(entry, [None] * self.io_width)
        line[offset] = value
        self.total_writes += 1

    def read(self, entry: int, strict: bool = False) -> List[Optional[int]]:
        """Read a full line."""
        self._check_entry(entry)
        self._use_port(strict)
        self.total_reads += 1
        return list(self._data.get(entry, [None] * self.io_width))

    def peek(self, entry: int) -> List[Optional[int]]:
        """Read without consuming a port or counting an access (debug only)."""
        self._check_entry(entry)
        return list(self._data.get(entry, [None] * self.io_width))

    def _check_entry(self, entry: int) -> None:
        if not 0 <= entry < self.entries:
            raise IndexError(f"entry {entry} outside bank of {self.entries} entries")

    # ------------------------------------------------------------------ stats
    @property
    def total_accesses(self) -> int:
        return self.total_reads + self.total_writes

    def reset_stats(self) -> None:
        """Zero the read/write/stall counters."""
        self.total_reads = 0
        self.total_writes = 0
        self.conflict_stalls = 0

    def occupancy(self) -> int:
        """Number of entries that hold at least one written word."""
        return sum(1 for line in self._data.values() if any(v is not None for v in line))
