"""``python -m repro.serve`` — the façade as a stdlib-only JSON service.

One long-lived :class:`~repro.api.Session` behind a threading HTTP server;
the wire surface is exactly the :mod:`repro.api` request/response classes:

* ``POST /v1/eval``   — an :class:`~repro.api.EvalRequest` body
* ``POST /v1/search`` — a :class:`~repro.api.SearchRequest` body
* ``POST /v1/sweep``  — a :class:`~repro.api.SweepRequest` body
* ``GET  /v1/healthz`` — liveness + session counters
  (:meth:`~repro.api.Session.describe`)

Responses are the matching response classes' ``to_dict`` payloads.
Deliberate failures map to structured error bodies with **stable codes**
(:mod:`repro.errors`)::

    {"error": {"code": "invalid_request", "type": "InvalidRequestError",
               "message": "..."}}

``invalid_request``/``unknown_backend`` return 400, ``incompatible_cell``
422, unexpected exceptions 500 (code ``internal_error``).  Because every
handler thread shares the one session, concurrent identical requests
coalesce to a single evaluation and repeat traffic is served from the
session's caches — the server gets *faster* under load, not slower.

Concurrency and fleet sharing:

* ``--threads N`` sizes the session's dispatch pool: each HTTP handler
  thread enqueues its request via :meth:`~repro.api.Session.submit` and
  blocks on the future, so at most N requests execute concurrently while
  identical in-flight ones coalesce.  On a multi-core host a threaded
  server also enables the session's request-level *process offload* (cold
  analytical searches run whole in worker processes), which is what lets
  concurrent throughput scale past the GIL.
* ``--store PATH`` mounts a disk-backed
  :class:`~repro.store.ResultStore` shared across server processes: N
  replicas pointed at one store file serve each other's warm results
  (such responses report ``"served_from": "store"``).

No third-party dependencies: ``http.server`` + ``json`` + ``sqlite3``
only.

Usage::

    python -m repro.serve [--host 127.0.0.1] [--port 8080] [--threads N]
                          [--workers N] [--runs-dir DIR] [--store PATH]

``--port 0`` binds an ephemeral port; the chosen port is printed on the
``serving on http://host:port`` line (machine-parsable — the smoke test
and the e2e test read it).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import traceback
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import List, Optional

from repro.api import Session, request_from_dict
from repro.errors import ReproError

#: Maximum accepted request body (bytes) — a guard, not a limit anyone
#: legitimate hits (the largest inline request is a few hundred KB).
MAX_BODY_BYTES = 8 * 1024 * 1024

_ROUTES = {"/v1/eval": "eval", "/v1/search": "search", "/v1/sweep": "sweep"}


class ReproRequestHandler(BaseHTTPRequestHandler):
    """Routes the ``/v1`` surface onto the server's shared session."""

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ verbs
    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        if self.path.split("?", 1)[0] != "/v1/healthz":
            self._send_error_body(404, "not_found", "NotFound",
                                  f"no such endpoint {self.path!r}")
            return
        payload = dict(self.server.session.describe())
        payload["status"] = "ok"
        self._send_json(200, payload)

    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        kind = _ROUTES.get(self.path.split("?", 1)[0])
        if kind is None:
            self._send_error_body(404, "not_found", "NotFound",
                                  f"no such endpoint {self.path!r}; "
                                  f"POST one of {sorted(_ROUTES)}")
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            if length > MAX_BODY_BYTES:
                # The unread body would desynchronize a keep-alive
                # connection; drop it instead of draining it.
                self.close_connection = True
                self._send_error_body(413, "invalid_request",
                                      "InvalidRequestError",
                                      f"request body over {MAX_BODY_BYTES} "
                                      "bytes")
                return
            body = self.rfile.read(length)
            data = json.loads(body.decode("utf-8") or "{}")
            request = request_from_dict(kind, data)
            # Dispatch through the session's thread pool rather than
            # executing on this handler thread: the pool caps execution
            # concurrency at the session's --threads, and submit() is
            # where identical in-flight requests coalesce.
            response = self.server.session.submit(request).result()
        except json.JSONDecodeError as exc:
            self._send_error_body(400, "invalid_request",
                                  "InvalidRequestError",
                                  f"request body is not valid JSON: {exc}")
        except ReproError as exc:
            status = 422 if exc.code == "incompatible_cell" else 400
            self._send_json(status, {"error": exc.payload()})
        except Exception as exc:
            # Defensive 500 path: the client gets the structured
            # internal_error payload; the operator gets the traceback
            # (the payload's one-line message is useless for diagnosis).
            sys.stderr.write(traceback.format_exc())
            self._send_error_body(500, "internal_error", type(exc).__name__,
                                  str(exc))
        else:
            self._send_json(200, response.to_dict())

    # ---------------------------------------------------------------- helpers
    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_error_body(self, status: int, code: str, error_type: str,
                         message: str) -> None:
        self._send_json(status, {"error": {"code": code, "type": error_type,
                                           "message": message}})

    def log_message(self, fmt: str, *args) -> None:
        # One concise line per request on stderr (BaseHTTPRequestHandler's
        # default format, minus the noisy date duplication).
        sys.stderr.write(f"{self.address_string()} - {fmt % args}\n")


class ReproServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one shared :class:`Session`."""

    daemon_threads = True

    def __init__(self, address, session: Session):
        super().__init__(address, ReproRequestHandler)
        self.session = session


def create_server(host: str = "127.0.0.1", port: int = 0,
                  session: Optional[Session] = None) -> ReproServer:
    """Bind (but do not start) a server; ``port=0`` picks an ephemeral one.

    The caller owns the returned server: run ``serve_forever()`` (possibly
    on a thread) and ``shutdown()`` / ``server_close()`` when done.  The
    bound port is ``server.server_address[1]``.
    """
    return ReproServer((host, port), session or Session(name="serve"))


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover
    # Exercised end-to-end by tools/service_smoke.py in a subprocess (CI's
    # service job), which the in-process coverage run cannot see.
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="JSON service over the repro.api façade "
                    "(/v1/eval, /v1/search, /v1/sweep, /v1/healthz).")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: loopback only)")
    parser.add_argument("--port", type=int, default=8080,
                        help="TCP port; 0 binds an ephemeral port "
                             "(printed on startup)")
    parser.add_argument("--threads", type=int, default=4,
                        help="concurrent request executions (the session's "
                             "dispatch pool; default 4)")
    parser.add_argument("--workers", type=int, default=None,
                        help="session-default worker processes per search "
                             "(default: REPRO_SEARCH_WORKERS, then serial)")
    parser.add_argument("--runs-dir", type=Path, default=None,
                        help="artifact directory for sweep requests "
                             "(default: sweeps stay in memory)")
    parser.add_argument("--store", type=Path, default=None,
                        help="disk-backed result store shared across "
                             "replicas (default: in-memory caches only)")
    args = parser.parse_args(argv)

    # Request-level process offload only pays off when there is a core to
    # offload *to*; on a single-core host the threaded front still serves
    # (and coalesces/caches) concurrently, it just executes inline.
    offload = args.threads > 1 and (os.cpu_count() or 1) > 1
    session = Session(workers=args.workers, runs_dir=args.runs_dir,
                      name="serve", threads=args.threads,
                      store_path=args.store, offload=offload)
    server = create_server(args.host, args.port, session)
    host, port = server.server_address[:2]
    print(f"serving on http://{host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        session.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
