"""Weight-stationary systolic array model (the rigid baseline of Fig. 4 and Fig. 10).

The model captures the two rigidities the paper exploits in its comparisons:

* **Fixed parallelism** — an ``rows x cols`` weight-stationary systolic array
  maps one dataflow only: the reduction dimension flows down the columns and
  the output dimension across the rows (or vice versa), so layers whose
  dimensions do not divide the array shape leave PEs idle.
* **Linear reduction** — partial sums accumulate cycle-by-cycle through the
  column, so a reduction of length K costs K cycles of pipeline depth and a
  skewed GEMM cannot share columns between output rows (Fig. 10 workloads
  B/C/D).

It also doubles as the Gemmini / Xilinx DPU utilization model used in the
Fig. 12 reproduction (those devices are parameterised instances of it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.workloads.conv import ConvLayerSpec
from repro.workloads.gemm import GemmSpec


@dataclass(frozen=True)
class SystolicGemmReport:
    """Utilization/cycle estimate of one GEMM (or im2col'd conv) on the array."""

    workload: str
    rows: int
    cols: int
    macs: int
    cycles: float
    utilization: float
    fill_drain_cycles: int

    @property
    def macs_per_cycle(self) -> float:
        return self.macs / self.cycles if self.cycles else 0.0


class SystolicArray:
    """Output/weight-stationary systolic array with a fixed (M, K) mapping.

    ``parallel_m`` x ``parallel_k`` defaults to the full array: M (output
    channels / GEMM rows) across one axis, the reduction dimension K (input
    channels x kernel window for a conv) down the other.  ``extra_parallel``
    optionally models designs like the Xilinx DPU that additionally
    parallelise an output-pixel dimension across duplicated arrays.
    """

    def __init__(self, rows: int, cols: int, parallel_m: Optional[int] = None,
                 parallel_k: Optional[int] = None, extra_parallel: int = 1,
                 name: str = "systolic"):
        if rows < 1 or cols < 1:
            raise ValueError("array shape must be positive")
        self.rows = rows
        self.cols = cols
        self.parallel_m = parallel_m if parallel_m is not None else rows
        self.parallel_k = parallel_k if parallel_k is not None else cols
        self.extra_parallel = max(1, extra_parallel)
        self.name = name

    @property
    def num_pes(self) -> int:
        return self.rows * self.cols * self.extra_parallel

    # -------------------------------------------------------------------- GEMM
    def run_gemm(self, gemm: GemmSpec) -> SystolicGemmReport:
        """Estimate cycles/utilization of a GEMM with the fixed (M, K) mapping."""
        m_tiles = math.ceil(gemm.m / self.parallel_m)
        k_tiles = math.ceil(gemm.k / self.parallel_k)
        n_steps = gemm.n
        # Each (m_tile, k_tile) pass streams N columns through the array; the
        # pipeline needs rows + cols cycles to fill and drain per pass.
        fill_drain = self.parallel_m + self.parallel_k
        passes = m_tiles * k_tiles
        cycles = passes * (n_steps + fill_drain)
        macs = gemm.macs
        util = macs / (cycles * self.rows * self.cols) if cycles else 0.0
        return SystolicGemmReport(
            workload=gemm.name, rows=self.rows, cols=self.cols, macs=macs,
            cycles=cycles, utilization=min(1.0, util), fill_drain_cycles=fill_drain)

    # -------------------------------------------------------------------- conv
    def run_conv(self, layer: ConvLayerSpec) -> SystolicGemmReport:
        """Estimate a convolution by lowering it to the im2col GEMM."""
        m, k, n = layer.as_gemm_shape()
        gemm = GemmSpec(layer.name, m=m, k=k, n=n, bits=layer.bits)
        report = self.run_gemm(gemm)
        # Extra output-pixel parallelism (e.g. the DPU's H/W lanes) divides the
        # streamed N dimension but only helps when there are enough pixels.
        if self.extra_parallel > 1:
            effective = min(self.extra_parallel, max(1, n))
            cycles = report.cycles / effective
            util = report.macs / (cycles * self.num_pes) if cycles else 0.0
            report = SystolicGemmReport(
                workload=report.workload, rows=self.rows, cols=self.cols,
                macs=report.macs, cycles=cycles, utilization=min(1.0, util),
                fill_drain_cycles=report.fill_drain_cycles)
        return report

    # -------------------------------------------------- steady-state utilization
    def steady_state_utilization(self, layer: ConvLayerSpec) -> float:
        """Utilization ignoring fill/drain: how well the layer fills the array."""
        m, k, _ = layer.as_gemm_shape()
        m_eff = m / (math.ceil(m / self.parallel_m) * self.parallel_m)
        k_eff = k / (math.ceil(k / self.parallel_k) * self.parallel_k)
        return m_eff * k_eff

    def steady_state_utilization_gemm(self, gemm: GemmSpec) -> float:
        """Output-stationary steady-state utilization on a skewed GEMM (Fig. 10).

        Outputs (M x N) are tiled onto the rows x cols grid; the reduction K
        runs temporally inside each PE, so utilization is purely how well the
        output tile fills the grid — the rigidity FEATHER's cross-column
        reduction removes.
        """
        m_eff = gemm.m / (math.ceil(gemm.m / self.rows) * self.rows)
        n_eff = gemm.n / (math.ceil(gemm.n / self.cols) * self.cols)
        return m_eff * n_eff

    def describe(self) -> str:
        """One-line human-readable summary of the array configuration."""
        return (f"{self.name}: {self.rows}x{self.cols} weight-stationary, "
                f"parallel (M={self.parallel_m}, K={self.parallel_k}, "
                f"extra={self.extra_parallel})")
