"""Device-level throughput models for the real-hardware comparison (Fig. 12).

The paper deploys FEATHER on a ZCU104 FPGA and compares per-layer throughput
(normalised by PE count and clock frequency) against the Xilinx DPU (same
board), Gemmini (FireSim on AWS F1) and a Coral Edge TPU.  Because throughput
per PE per cycle *is* utilization, the figure is reproducible from per-layer
utilization models of each design's fixed dataflow — which is exactly what we
build here, substituting the physical boards with the documented dataflow of
each device (see DESIGN.md).

Each :class:`DeviceModel` knows its PE count, clock and a per-layer
utilization function; :func:`normalized_throughput` divides by PEs and clock
the same way the paper does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.baselines.systolic import SystolicArray
from repro.workloads.conv import ConvLayerSpec, LayerKind


@dataclass
class DeviceThroughput:
    """Per-layer result of running a device model."""

    device: str
    layer: str
    cycles: float
    macs: int
    num_pes: int
    frequency_mhz: float

    @property
    def utilization(self) -> float:
        if self.cycles <= 0:
            return 0.0
        return self.macs / (self.cycles * self.num_pes)

    @property
    def throughput_macs_per_s(self) -> float:
        seconds = self.cycles / (self.frequency_mhz * 1e6)
        return self.macs / seconds if seconds > 0 else 0.0

    @property
    def normalized_throughput_per_pe(self) -> float:
        """Throughput normalised by PE count and clock (the paper's metric).

        Equal to achieved MACs per PE per cycle, i.e. utilization.
        """
        return self.utilization


@dataclass
class DeviceModel:
    """A deployable accelerator characterised by its fixed (or flexible) dataflow."""

    name: str
    num_pes: int
    frequency_mhz: float
    layer_cycles: Callable[[ConvLayerSpec], float]
    controller_overhead: float = 1.0

    def run_layer(self, layer: ConvLayerSpec) -> DeviceThroughput:
        """Model one layer: cycles (incl. controller overhead) + throughput."""
        cycles = self.layer_cycles(layer) * self.controller_overhead
        return DeviceThroughput(
            device=self.name, layer=layer.name, cycles=cycles, macs=layer.macs,
            num_pes=self.num_pes, frequency_mhz=self.frequency_mhz)

    def run_model(self, layers) -> List[DeviceThroughput]:
        """Run every layer through :meth:`run_layer`, in order."""
        return [self.run_layer(layer) for layer in layers]


# ---------------------------------------------------------------------------
# Concrete devices.
# ---------------------------------------------------------------------------

def gemmini_device() -> DeviceModel:
    """Gemmini: 16x16 weight-stationary systolic array, fixed (M=16, C=16)."""
    array = SystolicArray(16, 16, parallel_m=16, parallel_k=16, name="Gemmini")

    def cycles(layer: ConvLayerSpec) -> float:
        return array.run_conv(layer).cycles

    return DeviceModel(name="Gemmini", num_pes=1024, frequency_mhz=100.0,
                       layer_cycles=cycles)


def xilinx_dpu_device() -> DeviceModel:
    """Xilinx DPU (B1152-like): fixed parallelism (M=12, C=12, pixel=8).

    1152 PEs arranged as 12 x 12 MACs with 8 pixel lanes running a single
    dataflow.  The fixed kernel-window schedule caps steady-state utilization
    at ~75% for 3x3 convolutions and ~22-60% for 7x7 stems (§VI-B2), on top of
    the ragged-tile losses when M, C or the output width do not divide the
    fixed parallelism.
    """
    array = SystolicArray(12, 12, parallel_m=12, parallel_k=12, extra_parallel=8,
                          name="Xilinx DPU")

    def kernel_efficiency(layer: ConvLayerSpec) -> float:
        window = layer.r * layer.s
        if window == 1:
            return 1.0
        if window <= 9:
            return 0.75
        if window <= 25:
            return 0.6
        return 0.45

    def cycles(layer: ConvLayerSpec) -> float:
        base = array.run_conv(layer).cycles
        # Pixel lanes pad the output width to a multiple of 8.
        q_eff = layer.q / (math.ceil(layer.q / 8) * 8)
        return base / (kernel_efficiency(layer) * max(q_eff, 1e-6))

    return DeviceModel(name="Xilinx DPU", num_pes=1152, frequency_mhz=100.0,
                       layer_cycles=cycles)


def edge_tpu_device() -> DeviceModel:
    """Coral Edge TPU: 1024 MACs, fixed dataflow, plus host-transfer overheads.

    The USB-attached accelerator pays a per-layer host round trip (activation
    transfer over USB plus invocation latency), which the paper's wall-clock
    measurements include; modelled as a transfer-proportional cycle adder.
    """
    array = SystolicArray(32, 32, parallel_m=32, parallel_k=32, name="Edge TPU")
    usb_bytes_per_cycle = 2.0        # ~1 GB/s effective at 500 MHz
    invocation_overhead_cycles = 50_000.0

    def cycles(layer: ConvLayerSpec) -> float:
        transfer_bytes = layer.iact_elems + layer.oact_elems
        return (array.run_conv(layer).cycles
                + transfer_bytes / usb_bytes_per_cycle
                + invocation_overhead_cycles)

    return DeviceModel(name="Edge TPU", num_pes=1024, frequency_mhz=500.0,
                       layer_cycles=cycles)


def feather_fpga_device(rows: int = 36, cols: int = 36) -> DeviceModel:
    """FEATHER on ZCU104: 1296 PEs with flexible parallelism in M/C/H/W.

    Per-layer cycles assume the best of a small set of parallelism choices
    (the two-layout simplification of §VI-A2), with a controller-overhead
    factor on deep layers where the paper notes the hand-written controller
    trails the DPU's.
    """
    num_pes = rows * cols

    def cycles(layer: ConvLayerSpec) -> float:
        m, k, n = layer.as_gemm_shape()
        best = math.inf
        for pm in (rows // 4, rows // 2, rows, rows * 2, rows * 4):
            if pm < 1:
                continue
            pk = max(1, num_pes // pm)
            m_tiles = math.ceil(m / pm)
            k_tiles = math.ceil(k / min(pk, max(1, k)))
            passes = m_tiles * k_tiles
            fill = rows  # row-by-row drain through BIRRD
            candidate = passes * (n + fill)
            best = min(best, candidate)
        # Controller overhead on deep, channel-heavy layers (§VI-B2).
        overhead = 1.08 if layer.c >= 512 else 1.0
        return best * overhead

    return DeviceModel(name="FEATHER", num_pes=num_pes, frequency_mhz=100.0,
                       layer_cycles=cycles)
