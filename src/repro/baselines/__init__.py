"""Baseline accelerator models: Layoutloop configurations and device-level models."""

from repro.baselines.registry import (
    FeatureRow,
    eyeriss_like,
    feather_layoutloop,
    feature_table,
    fig13_arch_suite,
    medusa_like,
    mtia_like,
    nvdla_like,
    reorder_support_table,
    sigma_like,
    tpu_like,
)
from repro.baselines.systolic import SystolicArray, SystolicGemmReport
from repro.baselines.devices import (
    DeviceModel,
    DeviceThroughput,
    edge_tpu_device,
    feather_fpga_device,
    gemmini_device,
    xilinx_dpu_device,
)

__all__ = [
    "FeatureRow",
    "eyeriss_like",
    "feather_layoutloop",
    "feature_table",
    "fig13_arch_suite",
    "medusa_like",
    "mtia_like",
    "nvdla_like",
    "reorder_support_table",
    "sigma_like",
    "tpu_like",
    "SystolicArray",
    "SystolicGemmReport",
    "DeviceModel",
    "DeviceThroughput",
    "edge_tpu_device",
    "feather_fpga_device",
    "gemmini_device",
    "xilinx_dpu_device",
]
