"""Layoutloop architecture configurations for every design in Table IV / Fig. 13.

Each factory returns an :class:`~repro.layoutloop.arch.ArchSpec` whose declared
flexibility matches the paper's characterisation:

* **NVDLA-like** — fixed weight/output-stationary dataflow (only tiling is
  flexible), fixed HWC_C32 layout, no reordering.
* **Eyeriss-like** — row-stationary; tiling and shape flexible, order fixed,
  fixed HWC_C32 layout, no reordering.
* **SIGMA-like** — fully flexible TOPS dataflow; evaluated with a fixed layout
  (HWC_C32 or HWC_C4W8), with off-chip reordering, with Medusa-style line
  rotation, with MTIA-style transpose, or with TPU-style transpose+row-reorder.
* **FEATHER** — fully flexible TOPS plus arbitrary reorder-in-reduction.

All configurations use a 16x16 int8 array (256 PEs) as in the Layoutloop
comparison of Table IV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.layout.patterns import ReorderImplementation, ReorderPattern
from repro.layoutloop.arch import ArchSpec, BufferGeometry, feather_arch

_DEFAULT_BUFFER = BufferGeometry(num_lines=2048, line_size=32, banks=32,
                                 ports_per_bank=2)


def nvdla_like(rows: int = 16, cols: int = 16) -> ArchSpec:
    """NVDLA: fixed dataflow (M x C weight stationary), fixed HWC_C32 layout."""
    return ArchSpec(
        name="NVDLA-like",
        pe_rows=rows,
        pe_cols=cols,
        flexible_order=False,
        flexible_parallelism=False,
        flexible_shape=False,
        fixed_parallelism=(("M", rows), ("C", cols), ("K", cols)),
        fixed_layout="HWC_C32",
        reorder_pattern=ReorderPattern.NONE,
        reorder_implementation=ReorderImplementation.NONE,
        buffer=_DEFAULT_BUFFER,
    )


def eyeriss_like(rows: int = 16, cols: int = 16) -> ArchSpec:
    """Eyeriss: row-stationary; tiling + shape flexible, fixed layout, no reorder."""
    return ArchSpec(
        name="Eyeriss-like",
        pe_rows=rows,
        pe_cols=cols,
        flexible_order=False,
        flexible_parallelism=True,
        flexible_shape=True,
        allowed_parallel_dims=("M", "P", "Q", "R", "S", "N"),
        max_parallel_dims=2,
        fixed_layout="HWC_C32",
        reorder_pattern=ReorderPattern.NONE,
        reorder_implementation=ReorderImplementation.NONE,
        buffer=_DEFAULT_BUFFER,
    )


def sigma_like(rows: int = 16, cols: int = 16, layout: Optional[str] = "HWC_C32",
               reorder: str = "none") -> ArchSpec:
    """SIGMA: fully flexible TOPS; layout handling selected by ``reorder``.

    ``reorder`` is one of ``"none"`` (fixed layout, no reordering),
    ``"offchip"`` (concordant layout via DRAM round trips), ``"line_rotation"``
    (Medusa-like), ``"transpose"`` (MTIA-like) or ``"transpose_row"``
    (TPU-like) — the five SIGMA-derived bars of Fig. 13.
    """
    table = {
        "none": (ReorderPattern.NONE, ReorderImplementation.NONE),
        "offchip": (ReorderPattern.ARBITRARY, ReorderImplementation.OFF_CHIP),
        "line_rotation": (ReorderPattern.LINE_ROTATION, ReorderImplementation.RAR),
        "transpose": (ReorderPattern.TRANSPOSE, ReorderImplementation.RAR),
        "transpose_row": (ReorderPattern.TRANSPOSE_ROW, ReorderImplementation.RAR),
    }
    if reorder not in table:
        raise ValueError(f"unknown reorder mode {reorder!r}")
    pattern, implementation = table[reorder]
    suffix = {"none": f" ({layout})", "offchip": " (off-chip reorder)",
              "line_rotation": " (line rotation)", "transpose": " (transpose)",
              "transpose_row": " (transpose+row)"}[reorder]
    name = {"line_rotation": "Medusa-like", "transpose": "MTIA-like",
            "transpose_row": "TPU-like"}.get(reorder, "SIGMA-like")
    fixed_layout = layout if reorder == "none" else None
    return ArchSpec(
        name=name + ("" if name != "SIGMA-like" else suffix),
        pe_rows=rows,
        pe_cols=cols,
        flexible_order=True,
        flexible_parallelism=True,
        flexible_shape=True,
        max_parallel_dims=2,
        runtime_layout_flexible=reorder != "none",
        fixed_layout=fixed_layout,
        reorder_pattern=pattern,
        reorder_implementation=implementation,
        buffer=_DEFAULT_BUFFER,
        offchip_bandwidth_gbps=128.0 if reorder == "offchip" else 25.6,
    )


def medusa_like(rows: int = 16, cols: int = 16) -> ArchSpec:
    """SIGMA enhanced with Medusa's line rotation."""
    return sigma_like(rows, cols, layout=None, reorder="line_rotation")


def mtia_like(rows: int = 16, cols: int = 16) -> ArchSpec:
    """SIGMA enhanced with MTIA's on-chip transpose (MLU)."""
    return sigma_like(rows, cols, layout=None, reorder="transpose")


def tpu_like(rows: int = 16, cols: int = 16) -> ArchSpec:
    """SIGMA enhanced with TPUv4-style transpose + row reorder."""
    return sigma_like(rows, cols, layout=None, reorder="transpose_row")


def feather_layoutloop(rows: int = 16, cols: int = 16) -> ArchSpec:
    """FEATHER as modelled in Layoutloop (16x16, RIR)."""
    return feather_arch(rows, cols)


def fig13_arch_suite(rows: int = 16, cols: int = 16, gemm: bool = False
                     ) -> List[ArchSpec]:
    """The architecture list of Fig. 13, in the paper's bar order.

    The BERT (GEMM) chart only includes NVDLA-like, Eyeriss-like, SIGMA-like
    (fixed MK_K32 layout) and FEATHER; the CNN charts add the off-chip /
    line-rotation / transpose / transpose+row variants.
    """
    if gemm:
        return [
            nvdla_like(rows, cols),
            eyeriss_like(rows, cols),
            sigma_like(rows, cols, layout="MK_K32", reorder="none"),
            feather_layoutloop(rows, cols),
        ]
    return [
        nvdla_like(rows, cols),
        eyeriss_like(rows, cols),
        sigma_like(rows, cols, layout="HWC_C32", reorder="none"),
        sigma_like(rows, cols, layout="HWC_C4W8", reorder="none"),
        sigma_like(rows, cols, layout=None, reorder="offchip"),
        medusa_like(rows, cols),
        mtia_like(rows, cols),
        tpu_like(rows, cols),
        feather_layoutloop(rows, cols),
    ]


# ---------------------------------------------------------------------------
# Feature tables (paper Table I and Table III).
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FeatureRow:
    """One row of the qualitative feature-comparison tables."""

    work: str
    dataflow_switching: bool
    layout_reorder: str
    dataflow_flexibility: str
    reorder_pattern: str
    implementation: str


def feature_table() -> List[FeatureRow]:
    """Table I: how FEATHER resolves the challenges of prior works."""
    return [
        FeatureRow("NVDLA", False, "no reorder", "T", "none", "none"),
        FeatureRow("Xilinx DPU", False, "no reorder", "T", "none", "none"),
        FeatureRow("Gemmini", False, "no reorder", "T", "none", "none"),
        FeatureRow("SIMBA", False, "no reorder", "T", "none", "none"),
        FeatureRow("Eyeriss", False, "no reorder", "TS", "none", "none"),
        FeatureRow("Eyeriss v2", True, "off-chip", "TOS", "arbitrary", "off-chip"),
        FeatureRow("SARA", True, "off-chip", "TOPS", "arbitrary", "off-chip"),
        FeatureRow("MAERI", True, "off-chip", "TOPS", "arbitrary", "off-chip"),
        FeatureRow("SIGMA", True, "off-chip", "TOPS", "arbitrary", "off-chip"),
        FeatureRow("FEATHER", True, "on-chip", "TOPS", "arbitrary", "RIR"),
    ]


def reorder_support_table() -> List[FeatureRow]:
    """Table III: on-chip reordering support of prior accelerators vs FEATHER."""
    return [
        FeatureRow("im2col", False, "on-chip", "N/A", "row-reorder", "RAR"),
        FeatureRow("Medusa", False, "on-chip", "N/A", "line rotation", "RAR"),
        FeatureRow("MTIA", True, "on-chip", "TOP", "transpose", "RAR"),
        FeatureRow("TPUv4", True, "on-chip", "TO", "transpose + row-reorder", "RAR"),
        FeatureRow("FEATHER", True, "on-chip", "TOPS", "arbitrary", "RIR"),
    ]
