"""Bulk-bounds search core: whole-universe bound pipelines, one numpy pass.

PRs 2 and 7 vectorized the evaluation inner loop (batched concordance,
optional numba jit) but the search *control plane* — admissible bound
computation, prune decisions, halving rung scores, frontier dominance
bounds — still ran one mapping at a time in pure Python, materializing every
sampled :class:`~repro.dataflow.mapping.Mapping` just to compute a trip-count
product that depends only on its parallelism assignment.

:class:`BulkUniverse` removes both costs.  It represents a per-shape mapping
universe *symbolically*, as the flat sample indices of a
:class:`~repro.dataflow.space.MappingSpace` (parallelism-major order) plus a
small materialized tail (the canonical weight-stationary baselines), and
computes for the entire universe in single numpy passes:

* ``compute_cycles()`` — exact padded trip-count products (int64), computed
  once per *parallelism candidate* and gathered per flat index, since loop
  order never changes the product;
* ``bounds(metric, statics)`` — the admissible
  :func:`repro.search.bounds.metric_lower_bound` per entry, replicating the
  scalar float op order exactly (int cycles -> float64 ``+ reorder_cycles``,
  then one multiply for EDP), so every value is bit-identical to the scalar
  oracle;
* ``footprints(arch)`` — the exact integer tile footprints of
  :func:`repro.search.frontier.buffer_footprint_bytes`.

Mappings are only materialized lazily, on first ``universe[i]`` access —
i.e. only for entries that actually survive the bulk prune mask.

Exactness of the integer trip counts: the scalar oracle computes
``math.ceil(extent / degree)`` (float true division); the bulk pipeline uses
int64 ``(extent + degree - 1) // degree``.  The two agree whenever the float
quotient rounds within the same unit interval, which holds for all extents
below 2**52 — astronomically beyond any layer shape — and is pinned by the
hypothesis equivalence tests.

:func:`adaptive_search` builds the adaptive universe behind
``max_mappings="auto"``: score a small seeded base sample (plus the
canonical tail), then grow evaluation *only* where the bound landscape is
tight — flat indices whose admissible bound is within ``slack`` of the
incumbent.  Because the bound is admissible and the growth filter keeps
every index whose bound does not strictly exceed the incumbent, every
skipped index satisfies ``value >= bound > best`` — it can neither beat nor
tie the winner — so the uncapped adaptive run returns exactly the
exhaustive lexicographic winner of the *full* space (the guarantee the
golden-cell property tests pin).
"""

from __future__ import annotations

import math
import random
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.search.bounds import BoundStatics, cached_bound_statics
from repro.search.frontier import buffer_footprint_bytes
from repro.workloads.conv import ConvLayerSpec
from repro.workloads.gemm import GemmSpec

#: Seeded base-sample size of the adaptive (``max_mappings="auto"``) universe.
AUTO_BASE: int = 32

#: Default relative slack of the adaptive growth threshold: flat indices with
#: ``bound <= best * (1 + slack)`` are grown.  0.0 grows exactly the indices
#: that could still win (or tie) — the minimum that preserves exactness.
AUTO_SLACK: float = 0.0


class BulkUniverse:
    """A per-shape mapping universe scored in bulk, materialized lazily.

    ``space`` + ``indices`` describe the sampled part (flat indices into the
    parallelism-major enumeration, in draw order — exactly the sequence
    ``MappingSpace.sample`` would materialize); ``tail`` holds already-built
    mappings appended after the sample (the canonical weight-stationary
    baselines, or the whole universe of a fixed-parallelism architecture).
    Supports ``len()``, indexing and iteration like the mapping list it
    replaces, so the budgeted policies run on it unchanged.
    """

    def __init__(self, space, indices: Sequence[int], tail: Sequence,
                 workload) -> None:
        self._space = space
        self._indices: List[int] = list(indices)
        self._tail = list(tail)
        self.workload = workload
        self._candidates = space.parallelism_candidates() if space else []
        self._n_orders = len(space.orders) if space else 1
        self._memo = {}
        self._cycles: Optional[np.ndarray] = None
        self._degrees: Optional[np.ndarray] = None
        self._footprints = {}

    @classmethod
    def from_mappings(cls, mappings: Sequence, workload) -> "BulkUniverse":
        """Wrap an explicit mapping list (fixed-parallelism architectures)."""
        return cls(None, (), mappings, workload)

    # ------------------------------------------------------------- sequence
    def __len__(self) -> int:
        return len(self._indices) + len(self._tail)

    def __getitem__(self, pos: int):
        mapping = self._memo.get(pos)
        if mapping is None:
            n_sampled = len(self._indices)
            if pos < 0 or pos >= len(self):
                raise IndexError(pos)
            if pos < n_sampled:
                mapping = self._space._mapping_at(self._candidates,
                                                  self._indices[pos])
            else:
                mapping = self._tail[pos - n_sampled]
            self._memo[pos] = mapping
        return mapping

    def __iter__(self) -> Iterator:
        return (self[pos] for pos in range(len(self)))

    # ------------------------------------------------------------ bulk math
    def _degree_matrix(self) -> np.ndarray:
        """(n_candidates, n_dims) spatial degrees, 1 where unparallelised."""
        if self._degrees is None:
            dim_names = list(self._space.dims)
            dim_pos = {d: j for j, d in enumerate(dim_names)}
            degrees = np.ones((len(self._candidates), len(dim_names)),
                              dtype=np.int64)
            for row, parallel in enumerate(self._candidates):
                for p in parallel:
                    degrees[row, dim_pos[p.dim]] *= p.degree
            self._degrees = degrees
        return self._degrees

    def compute_cycles(self) -> np.ndarray:
        """Exact per-entry compute cycles (int64), one pass for everything.

        Cycles depend only on the parallelism (loop order never changes the
        trip-count product), so the product is computed once per parallelism
        candidate and gathered per flat index with ``index // n_orders``
        (the parallelism-major flat layout of ``MappingSpace``).
        """
        if self._cycles is None:
            parts = []
            if self._indices:
                extents = np.asarray(list(self._space.dims.values()),
                                     dtype=np.int64)
                degrees = self._degree_matrix()
                trips = (extents + degrees - 1) // degrees
                per_candidate = trips.prod(axis=1)
                idx = np.asarray(self._indices, dtype=np.int64)
                parts.append(per_candidate[idx // self._n_orders])
            if self._tail:
                parts.append(np.asarray(
                    [m.compute_cycles(self.workload) for m in self._tail],
                    dtype=np.int64))
            self._cycles = (np.concatenate(parts) if parts
                            else np.zeros(0, dtype=np.int64))
        return self._cycles

    def cycles_floor(self, statics: BoundStatics) -> np.ndarray:
        """Admissible latency floor per entry (float64): cycles + reorder."""
        return self.compute_cycles().astype(np.float64) + statics.reorder_cycles

    def bounds(self, metric: str, statics: BoundStatics) -> np.ndarray:
        """Admissible metric lower bound per entry, bit-identical to the
        scalar :func:`repro.search.bounds.metric_lower_bound` (same float op
        order: int64 cycles -> float64 add, then one multiply for EDP)."""
        cycles_floor = self.cycles_floor(statics)
        if metric == "latency":
            return cycles_floor
        if metric == "energy":
            return np.full(len(self), statics.energy_floor_pj,
                           dtype=np.float64)
        if metric == "edp":
            return statics.energy_floor_pj * cycles_floor
        raise ValueError(f"unknown metric {metric!r}")

    def footprints(self, arch) -> np.ndarray:
        """Exact per-entry on-chip tile footprints (bytes, int64) — the bulk
        mirror of :func:`repro.search.frontier.buffer_footprint_bytes`
        (pure integer math, so exact by construction)."""
        bits = int(arch.mac_bits)
        cached = self._footprints.get(bits)
        if cached is not None:
            return cached
        parts = []
        if self._indices:
            per_candidate = self._candidate_footprints(bits)
            idx = np.asarray(self._indices, dtype=np.int64)
            parts.append(per_candidate[idx // self._n_orders])
        if self._tail:
            parts.append(np.asarray(
                [buffer_footprint_bytes(self.workload, m, arch)
                 for m in self._tail], dtype=np.int64))
        out = np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)
        self._footprints[bits] = out
        return out

    def _candidate_footprints(self, bits: int) -> np.ndarray:
        """Footprint bytes per parallelism candidate.  Space-sampled mappings
        have ``tile == parallel degrees``, so the scalar ``_tile_extent``
        (max of tile size and degree, clamped to the extent) reduces to
        ``max(1, min(extent, degree))`` per dimension."""
        workload = self.workload
        dim_names = list(self._space.dims)
        degrees = self._degree_matrix()

        def tile(dim: str, extent: int) -> np.ndarray:
            column = degrees[:, dim_names.index(dim)]
            return np.maximum(1, np.minimum(int(extent), column))

        if isinstance(workload, ConvLayerSpec):
            n_t = tile("N", workload.n)
            m_t = tile("M", workload.m)
            c_t = tile("C", workload.c // workload.groups)
            p_t = tile("P", workload.p)
            q_t = tile("Q", workload.q)
            r_t = tile("R", workload.r)
            s_t = tile("S", workload.s)
            h_t = np.minimum(workload.h, (p_t - 1) * workload.stride + r_t)
            w_t = np.minimum(workload.w, (q_t - 1) * workload.stride + s_t)
            iact = n_t * c_t * h_t * w_t
            weight = m_t * c_t * r_t * s_t
            oact = n_t * m_t * p_t * q_t
        elif isinstance(workload, GemmSpec):
            m_t = tile("M", workload.m)
            k_t = tile("K", workload.k)
            n_t = tile("N", workload.n)
            iact = m_t * k_t
            weight = k_t * n_t
            oact = m_t * n_t
        else:
            raise TypeError(f"unsupported workload type {type(workload)!r}")
        return (iact * bits) // 8 + (weight * bits) // 8 + (oact * bits) // 8

    # -------------------------------------------------------- adaptive seeds
    def seed_positions(self, count: int, seed: int) -> List[int]:
        """Positions of the adaptive base sample: a seeded draw of ``count``
        sampled positions (every one when the sample is small) plus the
        whole tail — the canonical baselines are always scored."""
        n_sampled = len(self._indices)
        if count >= n_sampled:
            picks = list(range(n_sampled))
        else:
            picks = random.Random(seed).sample(range(n_sampled), count)
        return picks + list(range(n_sampled, len(self)))


# ------------------------------------------------------------- constructors
def candidate_universe(mapper, workload) -> BulkUniverse:
    """The mapper's candidate universe as a :class:`BulkUniverse` — exactly
    the entries of ``Mapper.candidate_mappings`` in the same order (seeded
    sample, then canonical tail), without materializing any of them."""
    space = mapper._mapping_space(workload)
    if space is None:
        return BulkUniverse.from_mappings(
            mapper._fixed_parallelism_mappings(workload), workload)
    indices = space.sample_indices(mapper.max_mappings, seed=mapper.seed)
    return BulkUniverse(space, indices, mapper._canonical_tail(workload),
                        workload)


def full_universe(mapper, workload) -> BulkUniverse:
    """The *entire* structured space (every flat index, in flat order) plus
    the canonical tail — the reference universe of the adaptive search."""
    space = mapper._mapping_space(workload)
    if space is None:
        return BulkUniverse.from_mappings(
            mapper._fixed_parallelism_mappings(workload), workload)
    return BulkUniverse(space, range(space.size()),
                        mapper._canonical_tail(workload), workload)


# ---------------------------------------------------------- adaptive search
def adaptive_search(mapper, workload, layouts: Optional[Sequence] = None,
                    base: int = AUTO_BASE, slack: float = AUTO_SLACK):
    """The ``max_mappings="auto"`` search: seeded base, bound-driven growth.

    Phase 1 scores a seeded base sample of ``base`` flat positions plus the
    canonical tail (skipping positions whose bound already strictly exceeds
    the incumbent).  Phase 2 grows into the rest of the *full* space, but
    only where the bound landscape is tight: positions whose admissible
    bound is within ``slack`` of the incumbent, visited in (bound, position)
    order with a dynamic strict re-check as the incumbent improves.

    Exactness (``slack >= 0``): the incumbent value is monotone
    non-increasing and the bound admissible, so every position never scored
    satisfies ``value >= bound > best_final`` — it can neither beat nor tie
    the winner.  The returned winner is therefore the lexicographic minimum
    of ``(value, flat position, layout index)`` over the **whole** space,
    i.e. exactly what an uncapped exhaustive scan returns.  ``pruned``
    counts the pairs the growth policy never scored.

    Requires the analytical backend (admissible bounds are statements about
    the analytical model); the mapper constructor enforces this.
    """
    from repro.layoutloop.mapper import SearchResult, _metric_value

    layouts = list(layouts) if layouts else mapper.candidate_layouts(workload)
    universe = full_universe(mapper, workload)
    total = len(universe)
    statics = cached_bound_statics(mapper.cost_model, workload)
    bounds = universe.bounds(mapper.metric, statics).tolist()

    best_key = None          # (value, flat position, layout index)
    best_report = None
    best_mapping = None
    best_layout = None
    evaluated = 0
    cache_hits = 0

    def score(pos: int) -> None:
        nonlocal best_key, best_report, best_mapping, best_layout
        nonlocal evaluated, cache_hits
        mapping = universe[pos]
        if mapper.vectorize:
            scored = mapper.evaluation_cache.evaluate_batch(
                mapper.cost_model, workload, mapping, layouts)
        else:
            scored = [mapper.evaluation_cache.evaluate(
                mapper.cost_model, workload, mapping, layout)
                for layout in layouts]
        for layout_idx, (report, hit) in enumerate(scored):
            evaluated += 1
            cache_hits += int(hit)
            value = _metric_value(report, mapper.metric)
            key = (value, pos, layout_idx)
            if best_key is None or key < best_key:
                best_key = key
                best_report = report
                best_mapping = mapping
                best_layout = layouts[layout_idx]

    seeds = universe.seed_positions(base, mapper.seed)
    for pos in seeds:
        if best_key is not None and bounds[pos] > best_key[0]:
            continue
        score(pos)

    visited = set(seeds)
    best_value = best_key[0] if best_key is not None else math.inf
    threshold = best_value * (1.0 + slack)
    growth = [pos for pos in range(total)
              if pos not in visited and bounds[pos] <= threshold]
    growth.sort(key=lambda pos: (bounds[pos], pos))
    for pos in growth:
        if bounds[pos] > best_key[0]:
            continue
        score(pos)

    return SearchResult(
        workload=getattr(workload, "name", str(workload)),
        arch=mapper.arch.name,
        best_report=best_report,
        best_mapping=best_mapping,
        best_layout=best_layout,
        evaluated=evaluated,
        metric=mapper.metric,
        pruned=total * len(layouts) - evaluated,
        cache_hits=cache_hits,
    )
