"""Budgeted search policies: spend evaluations where they can still win.

The exhaustive :meth:`repro.layoutloop.mapper.Mapper.search` scores every
sampled mapping under every candidate layout (minus admissibly-pruned
mappings).  The policies here keep the same candidate universe — the
mapper's seeded sample plus the canonical weight-stationary mapping — but
order and cap the full-fidelity evaluations:

* :func:`halving_search` — successive halving collapsed to its exact limit:
  rank every mapping by its cheap-rung score (the admissible
  :func:`repro.search.bounds.metric_lower_bound` on the analytical backend,
  a full analytical pre-pass on any other), then evaluate in rank order.
  Evaluating rungs of size 1 in bound order dominates any coarser halving
  schedule — no candidate is ever evaluated after the bound already proves
  it cannot win — and keeps the exhaustive guarantee: with an admissible
  bound and an uncapped budget the search stops only when every mapping
  whose bound could still beat the incumbent has been scored, so the winner
  is exactly the exhaustive one.
* :func:`evolutionary_search` — seeded population search over the same
  universe, warm-started from per-shape winners already memoized in the
  mapper's whole-result cache (repeat sessions start at the previous
  optimum), with elites mutated to their cheap-rank neighbours plus seeded
  random exploration.  No exactness guarantee at a capped budget, but
  seed-deterministic and exact once the budget covers the universe.

``budget=None`` is uncapped for *both* policies (use
:func:`default_budget` for the legacy quarter-universe refinement cap).

Budget accounting matches :class:`~repro.layoutloop.mapper.SearchResult`:
``evaluated`` counts scored (mapping, layout) pairs *including* evaluation-
cache hits, and a policy never starts a mapping it cannot finish — so
``evaluated <= budget`` whenever ``budget >= len(layouts)`` (one mapping is
always scored, even under a smaller budget, so the result is well-defined).

Winner selection is the lexicographic minimum of ``(value, mapping_index,
layout_index)``.  The exhaustive loop scans mappings and layouts in index
order and replaces only on strict improvement, so its winner *is* that
lexicographic minimum — tracking it explicitly makes the policies
tie-stable even though they visit candidates out of index order.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, Tuple

from repro.layoutloop.mapper import Mapper, SearchResult, _metric_value
from repro.search.bounds import cached_bound_statics, metric_lower_bound
from repro.search.bulk import BulkUniverse, candidate_universe
from repro.search.signatures import mapping_signature, workload_signature

POLICIES: Tuple[str, ...] = ("exhaustive", "halving", "evolutionary")
"""Search policies accepted by ``Mapper``/``SearchEngine``/``SearchRequest``."""


def default_budget(n_mappings: int, n_layouts: int) -> int:
    """Quarter-universe evaluation budget (at least one mapping's worth).

    ``budget=None`` means *uncapped* for every policy; callers who want the
    refinement-style cap :func:`evolutionary_search` used to default to
    pass this explicitly: ``budget=default_budget(len(mappings),
    len(layouts))``.
    """
    pair_cost = max(1, int(n_layouts))
    return max(pair_cost, (int(n_mappings) * pair_cost) // 4)


def _score_mapping(mapper: Mapper, workload, mapping, layouts
                   ) -> List[Tuple[object, bool]]:
    """Score one mapping under every layout, exactly as the exhaustive loop.

    Returns ``[(report, was_cache_hit), ...]`` in layout order; the three
    branches (backend / batched cache / scalar cache) mirror
    :meth:`Mapper.search` so every policy produces bit-identical reports.
    """
    if not mapper._analytical:
        return [(report, False) for report in
                mapper.backend.evaluate_mapping(workload, mapping, layouts)]
    if mapper.vectorize:
        return mapper.evaluation_cache.evaluate_batch(
            mapper.cost_model, workload, mapping, layouts)
    return [mapper.evaluation_cache.evaluate(
        mapper.cost_model, workload, mapping, layout) for layout in layouts]


def _candidates(mapper: Mapper, workload):
    """The mapper's candidate universe — a lazily-materialized
    :class:`~repro.search.bulk.BulkUniverse` when the bulk control plane is
    on, the materialized mapping list otherwise.  Same entries, same order;
    both support ``len``/indexing/iteration, so the policies are agnostic."""
    if getattr(mapper, "bulk", False):
        return candidate_universe(mapper, workload)
    return mapper.candidate_mappings(workload)


def _cheap_rung(mapper: Mapper, workload, mappings, layouts
                ) -> Tuple[List[float], bool]:
    """Per-mapping cheap-rung scores and whether they are admissible bounds.

    Analytical backend: the admissible metric lower bound (orders of
    magnitude cheaper than an evaluation) — ranking *and* sound pruning.
    On a :class:`~repro.search.bulk.BulkUniverse` the whole rung is one
    vectorized pass (bit-identical floats, so the rank order is unchanged).
    Any other backend: the full analytical value (minimum over the candidate
    layouts), i.e. the multi-fidelity ladder's cheap rung — a fast-model
    ranking with no admissibility claim about the expensive model, so the
    caller may order by it but never prune on it.
    """
    if mapper._analytical:
        statics = cached_bound_statics(mapper.cost_model, workload)
        if isinstance(mappings, BulkUniverse):
            return (mappings.bounds(mapper.metric, statics).tolist(),
                    mapper.prune)
        return ([metric_lower_bound(mapper.metric,
                                    mapping.compute_cycles(workload), statics)
                 for mapping in mappings],
                mapper.prune)
    scores = []
    for mapping in mappings:
        reports = mapper.cost_model.evaluate_mapping_batch(workload, mapping,
                                                           layouts)
        scores.append(min(_metric_value(report, mapper.metric)
                          for report in reports))
    return scores, False


def _finish(mapper: Mapper, workload, state) -> SearchResult:
    """Package the incumbent into a :class:`SearchResult`."""
    best, best_mapping, best_layout, evaluated, pruned, cache_hits = state
    return SearchResult(
        workload=getattr(workload, "name", str(workload)),
        arch=mapper.arch.name,
        best_report=best,
        best_mapping=best_mapping,
        best_layout=best_layout,
        evaluated=evaluated,
        metric=mapper.metric,
        pruned=pruned,
        cache_hits=cache_hits,
    )


class _Incumbent:
    """Lexicographic-minimum tracker over scored (mapping, layout) pairs."""

    def __init__(self, mapper: Mapper, workload, layouts):
        self.mapper = mapper
        self.workload = workload
        self.layouts = layouts
        self.key: Optional[Tuple[float, int, int]] = None
        self.report = None
        self.mapping = None
        self.layout = None
        self.min_values = {}  # mapping index -> min metric value over layouts
        self.evaluated = 0
        self.cache_hits = 0

    def score(self, index: int, mapping) -> None:
        """Fully evaluate one mapping and fold it into the incumbent."""
        scored = _score_mapping(self.mapper, self.workload, mapping,
                                self.layouts)
        vmin = math.inf
        for layout_idx, (report, hit) in enumerate(scored):
            self.evaluated += 1
            self.cache_hits += int(hit)
            value = _metric_value(report, self.mapper.metric)
            if value < vmin:
                vmin = value
            key = (value, index, layout_idx)
            if self.key is None or key < self.key:
                self.key = key
                self.report = report
                self.mapping = mapping
                self.layout = self.layouts[layout_idx]
        self.min_values[index] = vmin

    @property
    def best_value(self) -> float:
        return math.inf if self.key is None else self.key[0]


def halving_search(mapper: Mapper, workload,
                   layouts: Optional[Sequence] = None,
                   budget: Optional[int] = None) -> SearchResult:
    """Bound-ordered successive halving over the mapper's candidate universe.

    Mappings are evaluated in ascending cheap-rung order; on the analytical
    backend the search additionally stops as soon as the next bound strictly
    exceeds the incumbent value, counting the remainder as ``pruned`` — the
    bound-order makes the stop cover every remaining mapping at once.  The
    stop is strict (``>``, not ``>=``) so exact ties with the incumbent are
    still evaluated: the exhaustive winner is the lexicographic minimum of
    ``(value, mapping_index, layout_index)``, and a tie at the incumbent
    value with a smaller mapping index must not be skipped.  With an
    uncapped budget (or one covering the whole universe) the result is
    therefore exactly the exhaustive one.

    ``budget`` caps ``evaluated`` (scored pairs, cache hits included); the
    search never starts a mapping it cannot finish, except the very first —
    every search scores at least one mapping.
    """
    layouts = list(layouts) if layouts else mapper.candidate_layouts(workload)
    mappings = _candidates(mapper, workload)
    pair_cost = len(layouts)
    rung, admissible = _cheap_rung(mapper, workload, mappings, layouts)
    order = sorted(range(len(mappings)), key=lambda i: (rung[i], i))

    incumbent = _Incumbent(mapper, workload, layouts)
    pruned = 0
    for rank, index in enumerate(order):
        if (admissible and incumbent.key is not None
                and rung[index] > incumbent.best_value):
            # Bound order: every remaining mapping's bound is >= this one's,
            # so none of them can contain a pair below (or tying) the
            # incumbent — admissibly prune them all.
            pruned += pair_cost * (len(order) - rank)
            break
        if (budget is not None and incumbent.evaluated
                and incumbent.evaluated + pair_cost > budget):
            break
        incumbent.score(index, mappings[index])

    return _finish(mapper, workload,
                   (incumbent.report, incumbent.mapping, incumbent.layout,
                    incumbent.evaluated, pruned, incumbent.cache_hits))


def evolutionary_search(mapper: Mapper, workload,
                        layouts: Optional[Sequence] = None,
                        budget: Optional[int] = None) -> SearchResult:
    """Seeded evolutionary refinement over the mapper's candidate universe.

    The population is seeded from (a) per-shape winners already memoized in
    the mapper's whole-result cache — any prior search of the same workload
    shape under the same metric, regardless of policy, contributes its
    winning mapping, so warm sessions start at the previous optimum — (b)
    the canonical weight-stationary mapping, and (c) seeded random picks.
    Each generation fully evaluates the population, keeps the top three
    elites, and breeds the next generation from the elites' unevaluated
    neighbours in cheap-rung rank order (mappings with adjacent lower
    bounds behave similarly) plus seeded random exploration.

    Deterministic for a fixed ``(mapper.seed, cache state, budget)``.
    ``budget=None`` is uncapped — the same contract as
    :func:`halving_search`, under which the search covers the whole
    universe and returns exactly the exhaustive winner; pass
    :func:`default_budget` for the legacy quarter-universe refinement cap.
    """
    layouts = list(layouts) if layouts else mapper.candidate_layouts(workload)
    mappings = _candidates(mapper, workload)
    n = len(mappings)
    pair_cost = len(layouts)
    rng = random.Random(mapper.seed)
    rung, _ = _cheap_rung(mapper, workload, mappings, layouts)
    order = sorted(range(n), key=lambda i: (rung[i], i))
    rank_of = {index: rank for rank, index in enumerate(order)}

    # Warm start: previous winners for this shape, mapped back into the
    # universe by structural signature (names never matter).
    sig_to_index = {}
    for index, mapping in enumerate(mappings):
        sig_to_index.setdefault(mapping_signature(mapping), index)
    shape_sig = workload_signature(workload)
    seeds = sorted({
        sig_to_index[mapping_signature(prior.best_mapping)]
        for key, prior in mapper._cache.items()
        if key[1] == shape_sig and key[2] == mapper.metric
        and mapping_signature(prior.best_mapping) in sig_to_index
    })
    population = list(seeds)
    canonical = n - 1  # candidate_mappings appends the canonical WS mapping
    if canonical not in population:
        population.append(canonical)
    population_size = max(4, min(n, 8))
    unseen_pool = [i for i in order if i not in set(population)]
    while len(population) < population_size and unseen_pool:
        population.append(unseen_pool.pop(rng.randrange(len(unseen_pool))))

    incumbent = _Incumbent(mapper, workload, layouts)
    seen = set()
    exhausted = False
    frontier = population
    while True:
        for index in frontier:
            if index in seen:
                continue
            if (budget is not None and incumbent.evaluated
                    and incumbent.evaluated + pair_cost > budget):
                exhausted = True
                break
            seen.add(index)
            incumbent.score(index, mappings[index])
        if exhausted or len(seen) >= n:
            break
        elites = sorted(incumbent.min_values,
                        key=lambda i: (incumbent.min_values[i], i))[:3]
        children: List[int] = []
        for elite in elites:
            rank = rank_of[elite]
            for delta in (1, -1, 2, -2):
                neighbour_rank = rank + delta
                if 0 <= neighbour_rank < n:
                    candidate = order[neighbour_rank]
                    if candidate not in seen and candidate not in children:
                        children.append(candidate)
        remaining = [i for i in order if i not in seen and i not in set(children)]
        while len(children) < population_size and remaining:
            children.append(remaining.pop(rng.randrange(len(remaining))))
        if not children:
            break
        frontier = children

    return _finish(mapper, workload,
                   (incumbent.report, incumbent.mapping, incumbent.layout,
                    incumbent.evaluated, 0, incumbent.cache_hits))
