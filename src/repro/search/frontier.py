"""Pareto-frontier co-search over (EDP, latency, energy, buffer footprint).

The scalar search (:meth:`repro.layoutloop.mapper.Mapper.search`) returns one
lexicographic winner per shape.  The paper's core claim — reorder-in-reduction
lets the layout choice trade bank conflicts against reorder energy — is
inherently multi-objective, so :func:`frontier_search` keeps the whole
non-dominated set over four objectives per (mapping, layout) candidate:

* ``edp`` — energy-delay product (pJ * cycles),
* ``total_cycles`` — end-to-end latency,
* ``total_energy_pj`` — total energy,
* ``buffer_footprint_bytes`` — the on-chip tile footprint of the mapping
  (:func:`buffer_footprint_bytes`; layout-independent by construction).

The scan visits exactly the candidates the exhaustive scalar loop visits and
tracks the scalar incumbent with the identical strict-improvement rule, so
the returned :class:`~repro.layoutloop.mapper.SearchResult` is bit-identical
to :meth:`Mapper.search` — and the winner is a frontier member by
construction (a metric tie can strictly dominate the lexicographic winner;
it is inserted regardless, so ``frontier=`` strictly generalizes the scalar
result).

Dominance pruning reuses the admissible bounds of :mod:`repro.search.bounds`:
a mapping's *bound vector* — (EDP bound, cycles floor, energy floor, exact
footprint) — never exceeds any of its candidates componentwise, so when an
already-kept frontier point is ``<=`` the bound vector on every component,
every candidate of that mapping is dominated (or an exact duplicate of the
earlier point) and the mapping is skipped soundly: the frontier *and* the
scalar winner come out identical to the unpruned scan.  Like the scalar
prune, this is a statement about the analytical model only.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.search.bounds import cached_bound_statics
from repro.workloads.conv import ConvLayerSpec
from repro.workloads.gemm import GemmSpec

#: Objective names, in vector order (the order every frontier point uses).
OBJECTIVES: Tuple[str, ...] = ("edp", "total_cycles", "total_energy_pj",
                               "buffer_footprint_bytes")


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Strict Pareto dominance: ``a <= b`` everywhere and ``<`` somewhere.

    Irreflexive (a point never dominates itself) and transitive — the two
    properties the frontier maintenance below relies on (pinned by the
    hypothesis tests).
    """
    return (all(x <= y for x, y in zip(a, b))
            and any(x < y for x, y in zip(a, b)))


def pareto_fold(front: List[Tuple[Tuple[float, ...], object]],
                vector: Tuple[float, ...], payload: object) -> None:
    """Fold one scored vector into a running Pareto front, in place.

    First-seen representatives: a vector that is dominated *or equalled* by
    an existing entry is discarded, so ties keep the earliest (lexicographic
    scan-order) candidate; otherwise every entry the new vector dominates is
    removed and ``(vector, payload)`` appended.
    """
    for kept, _ in front:
        if all(k <= v for k, v in zip(kept, vector)):
            return
    front[:] = [(kept, item) for kept, item in front
                if not all(v <= k for v, k in zip(vector, kept))]
    front.append((vector, payload))


# ------------------------------------------------------------- tile footprint
def _tile_extent(mapping, dim: str, extent: int) -> int:
    """On-chip tile extent of one dimension: the declared level-1 tile size
    or the spatial parallel degree, whichever is larger, capped at the
    workload extent (a tile never exceeds the tensor)."""
    degree = max(mapping.tile.size(dim), mapping.parallel_degree(dim))
    return max(1, min(int(extent), int(degree)))


def tile_footprints(workload, mapping, arch) -> Tuple[int, int, int]:
    """Per-tensor on-chip tile sizes in bytes: ``(iact, weight, oact)``.

    Deterministic and layout-independent: the bytes a level-1 tile of each
    tensor occupies under the mapping's tile/parallel degrees, with the
    input-activation halo derived from the output tile
    (``H_t = (P_t - 1) * stride + R_t``, capped at the tensor extent).
    This is the fourth frontier objective and the legality measure of the
    fused two-layer search.
    """
    if isinstance(workload, ConvLayerSpec):
        n_t = _tile_extent(mapping, "N", workload.n)
        m_t = _tile_extent(mapping, "M", workload.m)
        c_t = _tile_extent(mapping, "C", workload.c // workload.groups)
        p_t = _tile_extent(mapping, "P", workload.p)
        q_t = _tile_extent(mapping, "Q", workload.q)
        r_t = _tile_extent(mapping, "R", workload.r)
        s_t = _tile_extent(mapping, "S", workload.s)
        h_t = min(workload.h, (p_t - 1) * workload.stride + r_t)
        w_t = min(workload.w, (q_t - 1) * workload.stride + s_t)
        iact = n_t * c_t * h_t * w_t
        weight = m_t * c_t * r_t * s_t
        oact = n_t * m_t * p_t * q_t
    elif isinstance(workload, GemmSpec):
        m_t = _tile_extent(mapping, "M", workload.m)
        k_t = _tile_extent(mapping, "K", workload.k)
        n_t = _tile_extent(mapping, "N", workload.n)
        iact = m_t * k_t
        weight = k_t * n_t
        oact = m_t * n_t
    else:
        raise TypeError(f"unsupported workload type {type(workload)!r}")
    bits = arch.mac_bits
    return ((iact * bits) // 8, (weight * bits) // 8, (oact * bits) // 8)


def buffer_footprint_bytes(workload, mapping, arch) -> int:
    """Total on-chip tile footprint of a mapping (bytes, all three tensors)."""
    return sum(tile_footprints(workload, mapping, arch))


# ------------------------------------------------------------ frontier types
@dataclass(frozen=True)
class FrontierPoint:
    """One non-dominated (mapping, layout) candidate of a shape's frontier."""

    mapping: str
    """Name of the candidate's dataflow mapping."""
    layout: str
    """Name of the candidate's streaming-tensor layout."""
    mapping_index: int
    """Scan-order index of the mapping (lexicographic tie-break key)."""
    layout_index: int
    """Scan-order index of the layout (lexicographic tie-break key)."""
    edp: float
    """Energy-delay product of the candidate (pJ * cycles)."""
    total_cycles: float
    """End-to-end latency of the candidate (cycles)."""
    total_energy_pj: float
    """Total energy of the candidate (pJ)."""
    buffer_footprint_bytes: int
    """On-chip tile footprint of the candidate's mapping (bytes)."""

    @property
    def objectives(self) -> Tuple[float, float, float, int]:
        """The objective vector, in :data:`OBJECTIVES` order."""
        return (self.edp, self.total_cycles, self.total_energy_pj,
                self.buffer_footprint_bytes)

    def to_dict(self) -> Dict[str, object]:
        return {"mapping": self.mapping, "layout": self.layout,
                "mapping_index": self.mapping_index,
                "layout_index": self.layout_index,
                "edp": self.edp, "total_cycles": self.total_cycles,
                "total_energy_pj": self.total_energy_pj,
                "buffer_footprint_bytes": self.buffer_footprint_bytes}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FrontierPoint":
        return cls(**data)


@dataclass
class ShapeFrontier:
    """The Pareto frontier of one workload shape on one architecture.

    ``points`` are canonically ordered — sorted by (objective vector,
    mapping index, layout index) — so two runs of the same cell produce the
    same JSON byte for byte; the scalar lexicographic winner is always a
    member (``winner_index``).  Serialization uses only plain JSON types,
    and the stdlib's shortest-round-trip float repr makes
    ``to_dict -> json -> from_dict`` bit-identical (the same guarantee
    :class:`~repro.scenarios.record.ScenarioRecord` documents).
    """

    workload: str
    """Name of the searched workload."""
    arch: str
    """Name of the architecture."""
    metric: str
    """Scalar objective the winner minimised (``edp``/``latency``/``energy``)."""
    points: List[FrontierPoint]
    """The non-dominated set, canonically ordered."""
    winner_index: int
    """Index (into ``points``) of the scalar lexicographic winner."""
    evaluated: int
    """(mapping, layout) candidates scored, including evaluation-cache hits."""
    pruned: int
    """Candidates skipped by the frontier dominance bound."""

    def winner(self) -> FrontierPoint:
        """The frontier member equal to the scalar search's winner."""
        return self.points[self.winner_index]

    def to_dict(self) -> Dict[str, object]:
        return {"workload": self.workload, "arch": self.arch,
                "metric": self.metric,
                "points": [p.to_dict() for p in self.points],
                "winner_index": self.winner_index,
                "evaluated": self.evaluated, "pruned": self.pruned}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ShapeFrontier":
        fields = dict(data)
        points = [FrontierPoint.from_dict(p) for p in fields.pop("points")]
        return cls(points=points, **fields)


# ------------------------------------------------------------------- search
def frontier_search(mapper, workload,
                    layouts: Optional[Sequence] = None):
    """Scan the mapper's candidate universe keeping the Pareto frontier.

    Returns ``(result, frontier)`` where ``result`` is a
    :class:`~repro.layoutloop.mapper.SearchResult` bit-identical to
    :meth:`Mapper.search` on the same configuration (same winner report,
    mapping and layout — the counters reflect *this* scan's frontier
    pruning) and ``frontier`` is the shape's :class:`ShapeFrontier`.

    Requires the analytical backend and the exhaustive policy — the
    admissible bounds the dominance prune builds on are statements about
    the analytical model, and budgeted policies deliberately skip
    candidates the frontier must see.
    """
    from repro.layoutloop.mapper import SearchResult, _metric_value

    if mapper.policy != "exhaustive":
        raise ValueError(
            "frontier search requires policy='exhaustive', "
            f"got {mapper.policy!r}")
    if not mapper._analytical:
        raise ValueError(
            "frontier search requires the analytical backend, "
            f"got {mapper.backend.name!r}")

    layouts = list(layouts) if layouts else mapper.candidate_layouts(workload)
    statics = (cached_bound_statics(mapper.cost_model, workload)
               if mapper.prune else None)
    arch = mapper.arch
    use_bulk = getattr(mapper, "bulk", False)
    if use_bulk:
        # Bulk control plane: footprints and cycle floors for the whole
        # universe in one numpy pass; mappings materialize lazily, so
        # dominance-pruned entries are never built.  The floats are
        # bit-identical to the scalar computation below, so prune
        # decisions, counters and the frontier itself are unchanged.
        from repro.search.bulk import candidate_universe

        mappings = candidate_universe(mapper, workload)
        footprints = mappings.footprints(arch).tolist()
        cycle_floors = (mappings.cycles_floor(statics).tolist()
                        if statics is not None else None)
    else:
        mappings = mapper.candidate_mappings(workload)
        footprints = None
        cycle_floors = None

    best = None
    best_value = math.inf
    best_mapping = None
    best_layout = None
    winner_key: Optional[Tuple[int, int]] = None
    evaluated = 0
    pruned = 0
    cache_hits = 0
    # Running front: [(objective vector, (m_idx, l_idx, mapping, layout))].
    front: List[Tuple[Tuple[float, ...], Tuple]] = []
    front_arr: Optional[np.ndarray] = None  # numpy mirror, rebuilt after folds

    for m_idx in range(len(mappings)):
        footprint = (footprints[m_idx] if footprints is not None
                     else buffer_footprint_bytes(workload, mappings[m_idx],
                                                 arch))
        if statics is not None and front:
            cycles_floor = (cycle_floors[m_idx]
                            if cycle_floors is not None
                            else (mappings[m_idx].compute_cycles(workload)
                                  + statics.reorder_cycles))
            lower = (statics.energy_floor_pj * cycles_floor, cycles_floor,
                     statics.energy_floor_pj, footprint)
            # A kept point <= the bound vector everywhere dominates (or
            # exactly duplicates) every candidate of this mapping: skip it.
            # The point is from an earlier mapping, so the scalar incumbent
            # also survives any metric tie (lexicographic order).
            if use_bulk:
                if front_arr is None:
                    front_arr = np.asarray([kept for kept, _ in front],
                                           dtype=np.float64)
                dominated = bool(np.any(np.all(
                    front_arr <= np.asarray(lower, dtype=np.float64),
                    axis=1)))
            else:
                dominated = any(all(k <= b for k, b in zip(kept, lower))
                                for kept, _ in front)
            if dominated:
                pruned += len(layouts)
                continue
        mapping = mappings[m_idx]
        if mapper.vectorize:
            scored = mapper.evaluation_cache.evaluate_batch(
                mapper.cost_model, workload, mapping, layouts)
        else:
            scored = [mapper.evaluation_cache.evaluate(
                mapper.cost_model, workload, mapping, layout)
                for layout in layouts]
        for l_idx, (layout, (report, hit)) in enumerate(zip(layouts, scored)):
            evaluated += 1
            cache_hits += hit
            value = _metric_value(report, mapper.metric)
            if best is None or value < best_value:
                best, best_mapping, best_layout = report, mapping, layout
                best_value = value
                winner_key = (m_idx, l_idx)
            vector = (report.edp, report.total_cycles,
                      report.total_energy_pj, footprint)
            pareto_fold(front, vector, (m_idx, l_idx, mapping, layout))
        front_arr = None  # folds may have grown or thinned the front

    # The lexicographic winner can be strictly dominated through a metric
    # tie; insert it by construction so frontier mode strictly generalizes
    # the scalar result.
    if winner_key is not None and not any(
            payload[:2] == winner_key for _, payload in front):
        front.append(((best.edp, best.total_cycles, best.total_energy_pj,
                       buffer_footprint_bytes(workload, best_mapping, arch)),
                      (winner_key[0], winner_key[1], best_mapping,
                       best_layout)))

    front.sort(key=lambda entry: (entry[0], entry[1][0], entry[1][1]))
    points = [FrontierPoint(
        mapping=payload[2].name, layout=payload[3].name,
        mapping_index=payload[0], layout_index=payload[1],
        edp=vector[0], total_cycles=vector[1], total_energy_pj=vector[2],
        buffer_footprint_bytes=vector[3])
        for vector, payload in front]
    winner_index = next(index for index, (_, payload) in enumerate(front)
                        if payload[:2] == winner_key)

    result = SearchResult(
        workload=getattr(workload, "name", str(workload)),
        arch=arch.name,
        best_report=best,
        best_mapping=best_mapping,
        best_layout=best_layout,
        evaluated=evaluated,
        metric=mapper.metric,
        pruned=pruned,
        cache_hits=cache_hits,
    )
    frontier = ShapeFrontier(
        workload=result.workload, arch=arch.name, metric=mapper.metric,
        points=points, winner_index=winner_index, evaluated=evaluated,
        pruned=pruned)
    return result, frontier
