"""Process-level fan-out helpers for the co-search engine.

The engine parallelises over *unique layer shapes* (the unit of work after
deduplication): each worker process rebuilds the search configuration from a
picklable payload and runs the same deterministic per-shape search the
serial path runs, so parallel results are bit-identical to serial ones.

``workers`` resolution order (used by :func:`resolve_workers`):

1. an explicit integer wins;
2. ``None`` consults the ``REPRO_SEARCH_WORKERS`` environment variable;
3. otherwise the engine stays serial (``1``) — fan-out is opt-in because the
   analytical model is fast enough that process startup dominates for small
   jobs.

If a process pool cannot be created at all (restricted environments,
missing ``fork``/semaphore support), :func:`run_fanout` degrades to the
serial fallback instead of failing; genuine errors raised *inside* a worker
still propagate.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")
R = TypeVar("R")

WORKERS_ENV_VAR = "REPRO_SEARCH_WORKERS"


def resolve_workers(workers: Optional[int]) -> int:
    """Resolve a ``workers`` argument to a concrete positive worker count."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV_VAR} must be an integer, got {raw!r}")
        else:
            workers = 1
    return max(1, int(workers))


def chunked(items: Sequence[T], chunk_size: int) -> List[List[T]]:
    """Split ``items`` into consecutive chunks of at most ``chunk_size``."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [list(items[i:i + chunk_size])
            for i in range(0, len(items), chunk_size)]


def default_chunk_size(num_items: int, workers: int) -> int:
    """Chunk so every worker gets ~4 chunks (bounded load imbalance)."""
    return max(1, num_items // max(1, workers * 4))


def run_fanout(fn: Callable[[T], R], payloads: Sequence[T],
               workers: int,
               executor: Optional[ProcessPoolExecutor] = None
               ) -> Tuple[List[R], int]:
    """Apply ``fn`` to every payload, fanning out across processes.

    Returns ``(results, effective_workers)`` with results in payload order;
    ``effective_workers`` is 1 whenever the work actually ran serially, so
    callers report the truth rather than the request.  Serial execution is
    used when ``workers <= 1``, when there is at most one payload, or when
    the process pool cannot be started; exceptions raised by ``fn`` itself
    always propagate unchanged.

    ``executor`` (if given) is a caller-owned persistent pool — the
    amortization layer of :class:`repro.api.Session` — used as-is and
    **not** shut down here; without one, a pool is created and torn down
    per call.  Results are bit-identical either way.
    """
    if workers <= 1 or len(payloads) <= 1:
        return [fn(p) for p in payloads], 1
    pool_size = min(workers, len(payloads))
    if executor is not None:
        return list(executor.map(fn, payloads)), pool_size
    try:
        executor = ProcessPoolExecutor(max_workers=pool_size)
    except (OSError, NotImplementedError):  # no fork / no semaphores
        return [fn(p) for p in payloads], 1
    try:
        return list(executor.map(fn, payloads)), pool_size
    finally:
        executor.shutdown()
