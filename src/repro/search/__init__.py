"""Parallel, cached (dataflow, layout) co-search engine.

This package is the performance substrate under every figure reproduction:

* :mod:`repro.search.signatures` — canonical cache keys,
* :mod:`repro.search.cache` — memoized cost-model evaluations,
* :mod:`repro.search.bounds` — admissible pruning bounds,
* :mod:`repro.search.budget` — budgeted search policies (successive
  halving on the bounds, seeded evolutionary refinement),
* :mod:`repro.search.parallel` — process fan-out with serial fallback,
* :mod:`repro.search.engine` — the :func:`search_model` batch API.

See ``docs/architecture.md`` for the full design (cache keying, pruning
soundness argument, worker model and the determinism guarantee).
"""

from repro.search.bounds import (
    BoundStatics,
    bound_statics,
    cached_bound_statics,
    metric_lower_bound,
)
from repro.search.cache import CacheStats, EvaluationCache
from repro.search.parallel import WORKERS_ENV_VAR, resolve_workers
from repro.search.signatures import (
    arch_signature,
    layout_signature,
    mapping_signature,
    workload_signature,
)

__all__ = [
    "BoundStatics",
    "bound_statics",
    "cached_bound_statics",
    "metric_lower_bound",
    "CacheStats",
    "EvaluationCache",
    "WORKERS_ENV_VAR",
    "resolve_workers",
    "arch_signature",
    "layout_signature",
    "mapping_signature",
    "workload_signature",
    # Lazily imported (see __getattr__): the engine and the budget policies
    # import the layoutloop mapper, which itself imports the submodules
    # above.
    "SearchEngine",
    "SearchStats",
    "search_model",
    "search_models",
    "POLICIES",
    "halving_search",
    "evolutionary_search",
]

_ENGINE_NAMES = ("SearchEngine", "SearchStats", "search_model",
                 "search_models")
_BUDGET_NAMES = ("POLICIES", "halving_search", "evolutionary_search")


def __getattr__(name):
    # ``repro.layoutloop.mapper`` imports ``repro.search.bounds``/``cache``;
    # importing the engine (or the budget policies, which build on the
    # mapper) eagerly here would close an import cycle, so those surfaces
    # resolve lazily (PEP 562).
    if name in _ENGINE_NAMES:
        from repro.search import engine

        return getattr(engine, name)
    if name in _BUDGET_NAMES:
        from repro.search import budget

        return getattr(budget, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
