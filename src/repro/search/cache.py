"""Memoization of cost-model evaluations.

The co-search evaluates the same (workload-shape, arch, mapping, layout)
tuple many times: repeated layer shapes inside one model, the same shapes
across experiments (Fig. 9-14 all sweep ResNet-50), and the canonical
weight-stationary mapping that the mapper appends to every sampled space.
:class:`EvaluationCache` memoizes the resulting
:class:`~repro.layoutloop.cost_model.CostReport` objects and keeps hit/miss
accounting so callers can report cache effectiveness.

Caches are plain dictionaries: a cache is owned by one process (workers in
the parallel engine each build their own) and reports are immutable
dataclasses, so sharing the cached instance is safe.  A cache may also be
shared by the *threads* of one process (a :class:`repro.api.Session`
serving concurrent requests): entry storage and hit/miss accounting are
guarded by a lock, so concurrent lookups never corrupt the dict or lose
counter increments.  The lock is per-operation — two threads missing the
same key both evaluate and both ``put`` (idempotent: evaluations are
deterministic), which keeps the hot hit path cheap.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.search.signatures import (
    arch_signature,
    layout_signature,
    mapping_signature,
    workload_signature,
)


@dataclass
class CacheStats:
    """Hit/miss counters of one cache (or the merged counters of several)."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never used)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return the element-wise sum of two counters (both unchanged)."""
        return CacheStats(hits=self.hits + other.hits,
                          misses=self.misses + other.misses)

    def __str__(self) -> str:
        return (f"{self.hits} hits / {self.misses} misses "
                f"({self.hit_rate:.1%} hit rate)")


class EvaluationCache:
    """Memoizes ``CostModel.evaluate`` results.

    Keys are built from :mod:`repro.search.signatures`, so the cache keys on
    the (workload-shape, arch, mapping, layout) tuple — never on layer or
    mapping names — and one instance may be shared by mappers for different
    architectures or energy calibrations.
    """

    def __init__(self) -> None:
        self._reports: Dict[Tuple, object] = {}
        self.stats = CacheStats()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._reports)

    @staticmethod
    def key(arch, energy, workload, mapping, layout) -> Tuple:
        """Canonical cache key of one evaluation."""
        return (arch_signature(arch, energy), workload_signature(workload),
                mapping_signature(mapping), layout_signature(layout))

    def get(self, key: Tuple):
        """Look up a report; counts a hit or miss. Returns None on miss."""
        with self._lock:
            report = self._reports.get(key)
            if report is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
        return report

    def put(self, key: Tuple, report) -> None:
        """Store the report computed for ``key``."""
        with self._lock:
            self._reports[key] = report

    def evaluate(self, cost_model, workload, mapping, layout):
        """Memoized ``cost_model.evaluate``; returns ``(report, was_hit)``.

        Cache keys exclude free-text names, so a hit may come from a
        different layer/mapping label than the current call's; hits are
        returned as copies relabelled with the caller's names and carrying
        their own breakdown dict, so no returned report aliases mutable
        state with the cached entry (``put`` stores a private copy for the
        same reason).
        """
        key = self.key(cost_model.arch, cost_model.energy, workload, mapping,
                       layout)
        report = self.get(key)
        if report is not None:
            return self._relabel(report, workload, mapping, layout), True
        report = cost_model.evaluate(workload, mapping, layout)
        self.put(key, replace(
            report, energy_breakdown_pj=dict(report.energy_breakdown_pj)))
        return report, False

    def evaluate_batch(self, cost_model, workload, mapping, layouts
                       ) -> List[Tuple[object, bool]]:
        """Memoized batch evaluation of one mapping under many layouts.

        Returns ``[(report, was_hit), ...]`` in layout order with exactly
        the semantics of calling :meth:`evaluate` per layout — the same
        hit/miss accounting, the same relabelling of hits, the same private
        copies stored — but the arch/workload/mapping signatures are
        computed once and all cache misses are evaluated together through
        the vectorized :meth:`~repro.layoutloop.cost_model.CostModel.evaluate_mapping_batch`.
        """
        prefix = (arch_signature(cost_model.arch, cost_model.energy),
                  workload_signature(workload), mapping_signature(mapping))
        keys = [prefix + (layout_signature(layout),) for layout in layouts]
        out: List = [None] * len(keys)
        missing = {}   # first occurrence of each missing key -> position
        deferred = []  # repeats of a missing key: hits once the batch lands
        for i, (key, layout) in enumerate(zip(keys, layouts)):
            if key in missing:
                deferred.append(i)
                continue
            report = self.get(key)
            if report is not None:
                out[i] = (self._relabel(report, workload, mapping, layout), True)
            else:
                missing[key] = i
        if missing:
            indices = list(missing.values())
            fresh = cost_model.evaluate_mapping_batch(
                workload, mapping, [layouts[i] for i in indices])
            for i, report in zip(indices, fresh):
                self.put(keys[i], replace(
                    report, energy_breakdown_pj=dict(report.energy_breakdown_pj)))
                out[i] = (report, False)
        for i in deferred:
            # Same accounting as the scalar loop: a duplicate layout is a
            # miss on first sight and a (counted) hit on every repeat.
            report = self.get(keys[i])
            out[i] = (self._relabel(report, workload, mapping, layouts[i]), True)
        return out

    @staticmethod
    def _relabel(report, workload, mapping, layout):
        """Copy of a cached report with the current call's identity labels
        and a fresh breakdown dict (never the cached entry's)."""
        return replace(report,
                       workload=getattr(workload, "name", str(workload)),
                       mapping=mapping.name, layout=layout.name,
                       energy_breakdown_pj=dict(report.energy_breakdown_pj))

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._reports.clear()
            self.stats = CacheStats()
