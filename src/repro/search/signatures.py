"""Canonical hashable signatures used as cache keys by the search engine.

Every memoization layer in :mod:`repro.search` keys on *structure*, not on
object identity or free-text names:

* two workloads with the same shape share a signature even if their layer
  names differ (``resnet50_layer5`` and ``resnet50_layer8`` are the same
  3x3/64ch convolution),
* two mappings with the same (shape, parallelism, tile, order) share a
  signature even if the mapper labelled them differently,
* two architectures share a signature only when every field the cost model
  reads is equal (including the buffer geometry and the energy table).

Keeping the signature functions in one module guarantees the result-level
cache (:class:`repro.layoutloop.mapper.Mapper`), the evaluation-level cache
(:class:`repro.search.cache.EvaluationCache`) and the shape deduplication in
:func:`repro.layoutloop.cosearch.unique_workloads` can never disagree about
what "the same" means.
"""

from __future__ import annotations

from typing import Tuple

from repro.workloads.conv import ConvLayerSpec
from repro.workloads.gemm import GemmSpec


def workload_signature(workload) -> Tuple:
    """Shape signature of a workload (layer names are deliberately excluded)."""
    if isinstance(workload, ConvLayerSpec):
        return ("conv", workload.m, workload.c, workload.h, workload.w,
                workload.r, workload.s, workload.stride, workload.padding,
                workload.groups, workload.n, workload.kind.value, workload.bits)
    if isinstance(workload, GemmSpec):
        return ("gemm", workload.m, workload.k, workload.n, workload.bits)
    raise TypeError(f"unsupported workload {type(workload)!r}")


def mapping_signature(mapping) -> Tuple:
    """Structural signature of a mapping (the free-text name is excluded)."""
    return (
        mapping.array_rows,
        mapping.array_cols,
        tuple((p.dim, p.degree) for p in mapping.parallel),
        mapping.tile.sizes,
        mapping.order,
        tuple(sorted(mapping.reduction_dims)),
    )


def layout_signature(layout) -> str:
    """Signature of a layout: its canonical name string is already unique."""
    return layout.name


def arch_signature(arch, energy) -> Tuple:
    """Signature of an (architecture, energy table) evaluation context.

    Includes every :class:`~repro.layoutloop.arch.ArchSpec` field the cost
    model reads plus the full energy table, so a cache may safely be shared
    across architectures and calibrations.
    """
    buf = arch.buffer
    return (
        arch.name,
        arch.pe_rows, arch.pe_cols,
        arch.flexible_order, arch.flexible_parallelism, arch.flexible_shape,
        arch.allowed_parallel_dims, arch.max_parallel_dims,
        arch.fixed_parallelism,
        arch.runtime_layout_flexible, arch.compile_time_layout_flexible,
        arch.fixed_layout,
        arch.reorder_pattern.value, arch.reorder_implementation.value,
        (buf.num_lines, buf.line_size, buf.banks, buf.ports_per_bank,
         buf.word_bits),
        arch.offchip_bandwidth_gbps, arch.frequency_mhz, arch.mac_bits,
        (energy.mac_int8_pj, energy.register_access_pj,
         energy.buffer_read_per_word_pj, energy.buffer_write_per_word_pj,
         energy.noc_hop_per_word_pj, energy.dram_access_per_byte_pj,
         energy.reorder_unit_per_word_pj, energy.birrd_per_word_pj),
    )
