"""The batch co-search engine: one API every figure reproduction shares.

:func:`search_model` is the single entry point for whole-model (dataflow,
layout) co-search.  It composes the three optimisations this package exists
for:

1. **Shape deduplication** — DNNs repeat layer shapes; only unique shapes
   are searched and each result is weighted by its occurrence count
   (:func:`repro.layoutloop.cosearch.unique_workloads`).
2. **Memoization + pruning** — every per-shape search runs through a
   :class:`~repro.layoutloop.mapper.Mapper` configured with an
   :class:`~repro.search.cache.EvaluationCache` and the admissible metric
   bounds of :mod:`repro.search.bounds`.
3. **Process fan-out** — with ``workers > 1`` unique shapes are chunked
   across a ``ProcessPoolExecutor`` (:mod:`repro.search.parallel`); each
   worker runs the identical deterministic per-shape search, so parallel
   results are bit-identical to serial ones.

The returned :class:`~repro.layoutloop.cosearch.ModelCost` carries a
:class:`SearchStats` record (evaluations, pruned candidates, cache hit
rate, worker count, wall time) in its ``search_stats`` field.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import InvalidRequestError
from repro.layoutloop.arch import ArchSpec
from repro.layoutloop.cosearch import LayerChoice, ModelCost, unique_workloads
from repro.layoutloop.energy import EnergyTable
from repro.layoutloop.mapper import Mapper, SearchResult
from repro.search.cache import CacheStats, EvaluationCache
from repro.search.parallel import (
    chunked,
    default_chunk_size,
    run_fanout,
)


@dataclass
class SearchStats:
    """Bookkeeping of one :func:`search_model` run."""

    model: str
    arch: str
    layers_total: int
    """Number of layers in the input model (before deduplication)."""
    layers_unique: int
    """Number of unique layer shapes actually searched."""
    evaluations: int = 0
    """(mapping, layout) candidates scored, including cache hits."""
    backend: str = "analytical"
    """Evaluation backend the candidates were scored on."""
    policy: str = "exhaustive"
    """Search policy the candidates were selected by."""
    budget: Optional[int] = None
    """Per-shape cap on scored pairs (budgeted policies only)."""
    pruned: int = 0
    """Candidates skipped by the admissible lower bound."""
    repaired: int = 0
    """(mapping, layout) pairs of the raw universe that constraint repair
    merged into an already-seen legal candidate (0 with no ConstraintSet
    bound).  ``evaluations + pruned + repaired`` covers the raw universe."""
    repair: Optional[Dict] = None
    """Aggregated :class:`repro.constraints.RepairLog` counters across the
    unique shapes (``None`` with no ConstraintSet bound); carries
    ``universe_pairs`` so coverage checks line up per run."""
    cache: CacheStats = field(default_factory=CacheStats)
    """Merged evaluation-cache counters across all workers."""
    workers: int = 1
    """Worker processes used (1 = serial)."""
    elapsed_s: float = 0.0
    """Wall-clock time of the whole search in seconds."""

    def __str__(self) -> str:
        return (f"search[{self.model} on {self.arch}]: "
                f"{self.layers_unique}/{self.layers_total} unique layers, "
                f"{self.evaluations} evaluations (+{self.pruned} pruned), "
                f"cache {self.cache}, {self.workers} worker(s), "
                f"{self.elapsed_s:.2f}s")


# --------------------------------------------------------------------- engine
class SearchEngine:
    """A configured co-search context with a persistent evaluation cache.

    Wraps a :class:`~repro.layoutloop.mapper.Mapper` so that repeated
    per-layer searches (and whole-model batches) share one cache.  Use the
    module-level :func:`search_model` for one-shot batch searches; use an
    engine when several experiments over the same architecture should share
    memoized evaluations.
    """

    def __init__(self, arch: ArchSpec, energy: Optional[EnergyTable] = None,
                 metric: str = "edp", max_mappings=200, seed: int = 0,
                 prune: bool = True, cache: Optional[EvaluationCache] = None,
                 vectorize: bool = True, backend: str = "analytical",
                 policy: str = "exhaustive", budget: Optional[int] = None,
                 compile: bool = False, frontier: bool = False,
                 fused: bool = False, bulk: bool = True, constraints=None):
        self.arch = arch
        self.energy = energy
        self.metric = metric
        self.max_mappings = max_mappings
        self.seed = seed
        self.prune = prune
        self.vectorize = vectorize
        self.backend = backend
        self.policy = policy
        self.budget = budget
        self.compile = compile
        self.frontier = frontier
        self.fused = fused
        self.bulk = bulk
        self.cache = cache if cache is not None else EvaluationCache()
        self.mapper = Mapper(arch, energy=energy, metric=metric,
                             max_mappings=max_mappings, seed=seed,
                             prune=prune, evaluation_cache=self.cache,
                             vectorize=vectorize, backend=backend,
                             policy=policy, budget=budget, compile=compile,
                             bulk=bulk, constraints=constraints)
        self.constraints = self.mapper.constraints

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss counters of this engine's evaluation cache."""
        return self.cache.stats

    def search_layer(self, workload, layouts: Optional[Sequence] = None
                     ) -> SearchResult:
        """Co-search the best (mapping, layout) pair for one layer."""
        return self.mapper.search(workload, layouts=layouts)

    def search_layer_frontier(self, workload,
                              layouts: Optional[Sequence] = None):
        """Co-search one layer keeping the whole Pareto frontier.

        Returns ``(result, frontier)`` — see
        :meth:`repro.layoutloop.mapper.Mapper.search_frontier`.
        """
        return self.mapper.search_frontier(workload, layouts=layouts)

    def search_model(self, workloads: Sequence, model_name: str = "model",
                     workers: Optional[int] = 1,
                     chunk_size: Optional[int] = None) -> ModelCost:
        """Batch co-search of a whole model with this engine's settings.

        The engine's evaluation cache is shared with the batch on the
        serial path only — worker processes cannot see in-process state
        and always build their own.  Either way, the per-shape results are
        adopted into the engine afterwards, so follow-up
        :meth:`search_layer` calls for the same shapes return instantly.
        The engine's live backend *instance* is forwarded, so on a
        non-analytical backend repeat batches reuse its simulation memos
        (the analytical instance resolves to the normal fan-out path).
        """
        backend = self.mapper.backend
        cost = search_model(self.arch, workloads, model_name=model_name,
                            metric=self.metric, max_mappings=self.max_mappings,
                            energy=self.energy, workers=workers,
                            chunk_size=chunk_size, prune=self.prune,
                            seed=self.seed, cache=self.cache,
                            vectorize=self.vectorize, backend=backend,
                            policy=self.policy, budget=self.budget,
                            compile=self.compile, frontier=self.frontier,
                            fused=self.fused, bulk=self.bulk,
                            constraints=self.constraints)
        for (workload, _), choice in zip(unique_workloads(workloads),
                                         cost.layer_choices):
            self.mapper.adopt_result(workload, choice.result)
        return cost


# ----------------------------------------------------------------- batch API
def _search_chunk(payload: Tuple) -> Tuple[List[SearchResult], int, int]:
    """Worker entry point: search one chunk of unique shapes.

    Must stay a module-level function (pickled by ``ProcessPoolExecutor``).
    The payload carries everything needed to rebuild the exact serial search
    configuration, so a chunk's results do not depend on which process (or
    how many) ran it.
    """
    (arch, energy, metric, max_mappings, seed, prune, vectorize, layouts,
     policy, budget, compile_flag, bulk, constraints, shapes) = payload
    mapper = Mapper(arch, energy=energy, metric=metric,
                    max_mappings=max_mappings, seed=seed, prune=prune,
                    evaluation_cache=EvaluationCache(), vectorize=vectorize,
                    policy=policy, budget=budget, compile=compile_flag,
                    bulk=bulk, constraints=constraints)
    results = [mapper.search(wl, layouts=layouts) for wl in shapes]
    stats = mapper.evaluation_cache.stats
    return results, stats.hits, stats.misses


def _search_model_impl(arch: ArchSpec, workloads: Sequence,
                       model_name: str = "model", metric: str = "edp",
                       max_mappings=200,
                       energy: Optional[EnergyTable] = None,
                       workers: int = 1, chunk_size: Optional[int] = None,
                       prune: bool = True, seed: int = 0,
                       cache: Optional[EvaluationCache] = None,
                       vectorize: bool = True, backend="analytical",
                       layouts: Optional[Sequence] = None,
                       executor=None,
                       mapper: Optional[Mapper] = None,
                       policy: str = "exhaustive",
                       budget: Optional[int] = None,
                       compile: bool = False, frontier: bool = False,
                       fused: bool = False, bulk: bool = True,
                       constraints=None) -> ModelCost:
    """The whole-model co-search engine behind :func:`search_model`.

    This is the execution layer: ``workers`` must already be a concrete
    count (user-facing resolution — explicit argument over the
    ``REPRO_SEARCH_WORKERS`` environment variable over the serial default —
    happens in exactly one place, :meth:`repro.api.Session.resolve_workers`).
    ``layouts`` optionally restricts the candidate layout library (used by
    policy studies like Fig. 2's layout-blind "theory" search), and
    ``executor`` is an optional caller-owned persistent process pool
    (see :func:`repro.search.parallel.run_fanout`).

    ``mapper`` (serial paths only) is a caller-owned persistent
    :class:`Mapper` whose configuration must match the other arguments —
    the :class:`repro.api.Session` passes one per configuration so repeat
    requests hit its whole-result memo instead of re-sampling; determinism
    makes the memoized results identical to fresh ones, but the engine
    counters then report the memo (zero evaluations on a full hit), which
    is why per-call-deterministic callers (records, golden files) do not
    pass one.
    """
    workloads = list(workloads)
    if not workloads:
        raise InvalidRequestError(
            f"search_model({model_name!r}) requires at least one workload")

    from repro.backends import AnalyticalBackend

    if isinstance(backend, AnalyticalBackend):
        # An analytical *instance* is configuration, not a detour: adopt
        # its cache (unless one was passed explicitly) and vectorize/compile
        # flags, then run the full analytical path — fan-out, pruning, stats.
        if cache is None:
            cache = backend.cache
        vectorize = backend.vectorize
        compile = backend.compile
        backend = "analytical"
    analytical = backend is None or backend == "analytical"
    if max_mappings == "auto":
        # The adaptive universe is a statement about the analytical model's
        # admissible bounds and is defined for the scalar winner only.
        if not analytical:
            raise InvalidRequestError(
                "max_mappings='auto' requires the analytical backend")
        if policy != "exhaustive":
            raise InvalidRequestError(
                "max_mappings='auto' requires policy='exhaustive'")
        if constraints is not None and constraints != "none":
            raise InvalidRequestError(
                "max_mappings='auto' grows the raw structured universe and "
                "cannot be combined with a ConstraintSet; use an integer "
                "max_mappings")
        if frontier or fused:
            raise InvalidRequestError(
                "frontier/fused search requires an integer max_mappings")
    if frontier or fused:
        # Frontier/fused searches are statements about the analytical
        # model (the dominance prune reuses its admissible bounds, the
        # fused energy/cycle discounts its DRAM terms) and must see the
        # whole candidate universe.
        if not analytical:
            raise InvalidRequestError(
                "frontier/fused search requires the analytical backend")
        if policy != "exhaustive":
            raise InvalidRequestError(
                "frontier/fused search requires policy='exhaustive'")
        if fused and len(workloads) < 2:
            raise InvalidRequestError(
                "fused search requires at least two workloads "
                "(adjacency is what gets fused)")
        # Frontier objects and fused pairs live on the ModelCost, which
        # the fan-out's chunked workers cannot assemble: run serially
        # (results are bit-identical for any worker count anyway).
        workers = 1
    start = time.perf_counter()
    grouped = unique_workloads(workloads)
    shapes = [wl for wl, _ in grouped]
    workers = max(1, int(workers)) if analytical else 1
    layouts = list(layouts) if layouts else None

    backend_name = ("analytical" if analytical
                    else getattr(backend, "name", None) or str(backend))
    stats = SearchStats(model=model_name, arch=arch.name,
                        layers_total=len(workloads),
                        layers_unique=len(grouped), workers=workers,
                        backend=backend_name, policy=policy, budget=budget)

    shape_frontiers = None
    if not analytical:
        if mapper is None:
            mapper = Mapper(arch, energy=energy, metric=metric,
                            max_mappings=max_mappings, seed=seed, prune=prune,
                            vectorize=vectorize, backend=backend,
                            policy=policy, budget=budget, bulk=bulk,
                            constraints=constraints)
        results = [mapper.search(wl, layouts=layouts) for wl in shapes]
    elif workers <= 1 or len(shapes) <= 1:
        stats.workers = 1
        if mapper is None:
            eval_cache = cache if cache is not None else EvaluationCache()
            mapper = Mapper(arch, energy=energy, metric=metric,
                            max_mappings=max_mappings, seed=seed, prune=prune,
                            evaluation_cache=eval_cache, vectorize=vectorize,
                            policy=policy, budget=budget, compile=compile,
                            bulk=bulk, constraints=constraints)
        else:
            eval_cache = mapper.evaluation_cache
        # Shared caches outlive this call: report this run's delta, not the
        # cache's cumulative counters.
        before_hits = eval_cache.stats.hits
        before_misses = eval_cache.stats.misses
        if frontier:
            pairs = [mapper.search_frontier(wl, layouts=layouts)
                     for wl in shapes]
            results = [result for result, _ in pairs]
            shape_frontiers = [shape_frontier for _, shape_frontier in pairs]
        else:
            results = [mapper.search(wl, layouts=layouts) for wl in shapes]
        stats.cache = CacheStats(hits=eval_cache.stats.hits - before_hits,
                                 misses=eval_cache.stats.misses - before_misses)
    else:
        size = chunk_size or default_chunk_size(len(shapes), workers)
        payloads = [(arch, energy, metric, max_mappings, seed, prune,
                     vectorize, layouts, policy, budget, compile, bulk,
                     constraints, chunk)
                    for chunk in chunked(shapes, size)]
        chunk_outputs, stats.workers = run_fanout(_search_chunk, payloads,
                                                  workers, executor=executor)
        results = []
        for chunk_results, hits, misses in chunk_outputs:
            results.extend(chunk_results)
            stats.cache = stats.cache.merge(CacheStats(hits=hits,
                                                       misses=misses))

    cost = ModelCost(arch=arch.name, model=model_name)
    for index, (result, (_, count)) in enumerate(zip(results, grouped)):
        choice = LayerChoice(result=result, count=count)
        if shape_frontiers is not None:
            choice.frontier = shape_frontiers[index]
        cost.layer_choices.append(choice)
        stats.evaluations += result.evaluated
        stats.pruned += result.pruned
        stats.repaired += result.repaired
        if result.repair is not None:
            # Sum the numeric repair-log counters over unique shapes; the
            # non-numeric fields (the ConstraintSet name) agree by
            # construction, keep the first.
            agg = dict(stats.repair or {})
            for rkey, rval in result.repair.items():
                if isinstance(rval, (int, float)):
                    agg[rkey] = agg.get(rkey, 0) + rval
                else:
                    agg.setdefault(rkey, rval)
            stats.repair = agg
    if shape_frontiers is not None:
        cost.frontiers = shape_frontiers
    if fused:
        from repro.layoutloop.cosearch import fused_model_search

        # Adjacency is positional: the fused pass walks the original layer
        # order, not the deduplicated shapes.  The per-layout consumer
        # searches memoize in the same mapper, so repeat pairs stay cheap.
        cost.fused_pairs = fused_model_search(mapper, workloads,
                                              layouts=layouts)
    stats.elapsed_s = time.perf_counter() - start
    cost.search_stats = stats
    return cost


def search_model(arch: ArchSpec, workloads: Sequence, model_name: str = "model",
                 metric: str = "edp", max_mappings=200,
                 energy: Optional[EnergyTable] = None,
                 workers: Optional[int] = 1,
                 chunk_size: Optional[int] = None, prune: bool = True,
                 seed: int = 0, cache: Optional[EvaluationCache] = None,
                 vectorize: bool = True,
                 backend="analytical", policy: str = "exhaustive",
                 budget: Optional[int] = None,
                 compile: bool = False, frontier: bool = False,
                 fused: bool = False, bulk: bool = True,
                 constraints=None) -> ModelCost:
    """Co-search a whole model on one architecture and aggregate the cost.

    .. deprecated:: 1.1
        This is now a thin shim over the :mod:`repro.api` façade: it builds
        a :class:`~repro.api.SearchRequest` and runs it on the module-default
        :class:`~repro.api.Session` (bit-identical outputs, pinned by the
        golden tests).  New code should construct a ``Session`` and call
        :meth:`~repro.api.Session.run` directly — a long-lived session
        amortizes its evaluation cache and worker pool across requests,
        which this per-call front deliberately does not
        (``fresh_cache=True`` preserves the legacy per-call semantics).

    Parameters mirror :class:`~repro.layoutloop.mapper.Mapper`; the batch
    level adds:

    * ``workers`` — worker processes for the fan-out over unique shapes.
      ``1`` (default) runs serially; ``None`` consults the
      ``REPRO_SEARCH_WORKERS`` environment variable.  Results are
      bit-identical regardless of the worker count.
    * ``chunk_size`` — unique shapes per worker task (default: balanced
      so each worker receives ~4 chunks).
    * ``cache`` — a shared :class:`EvaluationCache` (serial path only;
      worker processes always build their own).
    * ``vectorize`` — run the :mod:`repro.kernel` fast path (streaming
      mapping sampling + batched layout evaluation).  ``False`` runs the
      scalar reference oracle; results are bit-identical either way.
    * ``backend`` — the :mod:`repro.backends` evaluation backend scoring
      the candidates: a registry name (default ``"analytical"``) or an
      already-constructed backend instance (reused as-is, keeping its
      simulation memos warm).  Non-analytical backends run serially (their
      in-process state — accelerator instances, simulation memos — does
      not ship to worker processes) and without pruning.
    * ``policy``/``budget`` — budgeted search policy over the same
      candidate universe (``"exhaustive"``, ``"halving"``,
      ``"evolutionary"``; see :mod:`repro.search.budget`) and its cap on
      scored pairs per unique shape.
    * ``compile`` — route the kernel inner loops through the optional
      numba-jitted variants (bit-identical; no-op without numba).
    * ``bulk`` — compute bounds/rungs/dominance vectors for each shape's
      whole candidate universe in one numpy pass and materialize mappings
      lazily (:mod:`repro.search.bulk`; analytical backend only,
      bit-identical results and counters either way).
    * ``max_mappings="auto"`` — adaptive universe (analytical backend,
      exhaustive policy): a small seeded sample grown only where the bound
      landscape is tight, returning exactly the uncapped exhaustive winner
      of the full structured space.
    * ``constraints`` — a :class:`repro.constraints.ConstraintSet` (or the
      request strings ``"none"``/``"default"``) binding platform rules to
      the search: every candidate is repaired to legality before scoring
      and the stats carry the repair-log counters.  ``None`` (default)
      inherits the backend's own constraints — the analytical and
      simulator backends carry none, ``systolic``/``noc:*`` carry their
      presets.

    Raises ``ValueError`` on an empty workload list — silently returning an
    all-zero :class:`ModelCost` hid bugs in callers.
    """
    from repro.api import SearchRequest, default_session
    from repro.api.codec import arch_payload, workload_payload

    workloads = list(workloads)
    if not workloads:
        raise InvalidRequestError(
            f"search_model({model_name!r}) requires at least one workload")
    session = default_session()
    # Live objects (a shared cache, an energy calibration, a constructed
    # backend instance) and the chunking override are engine configuration
    # a serializable request cannot carry; those calls go straight to the
    # execution layer with the same session-resolved worker count.
    if (energy is not None or cache is not None or chunk_size is not None
            or not (backend is None or isinstance(backend, str))
            or not (constraints is None or isinstance(constraints, str))):
        return _search_model_impl(
            arch, workloads, model_name=model_name, metric=metric,
            max_mappings=max_mappings, energy=energy,
            workers=session.resolve_workers(workers), chunk_size=chunk_size,
            prune=prune, seed=seed, cache=cache, vectorize=vectorize,
            backend=backend, policy=policy, budget=budget, compile=compile,
            frontier=frontier, fused=fused, bulk=bulk,
            constraints=constraints)
    request = SearchRequest(
        workloads=tuple(workload_payload(wl) for wl in workloads),
        arch=arch_payload(arch), model=model_name, metric=metric,
        max_mappings=max_mappings, seed=seed, prune=prune,
        backend=backend or "analytical", workers=workers,
        vectorize=vectorize, fresh_cache=True, policy=policy, budget=budget,
        compile=compile, frontier=frontier, fused=fused, bulk=bulk,
        constraints=constraints)
    return session.run(request).cost


def search_models(arches: Sequence[ArchSpec], workloads: Sequence,
                  model_name: str = "model", metric: str = "edp",
                  max_mappings: int = 200,
                  energy: Optional[EnergyTable] = None,
                  workers: Optional[int] = 1,
                  chunk_size: Optional[int] = None, prune: bool = True,
                  seed: int = 0, vectorize: bool = True,
                  backend: str = "analytical", policy: str = "exhaustive",
                  budget: Optional[int] = None,
                  compile: bool = False,
                  constraints=None) -> Dict[str, ModelCost]:
    """Run :func:`search_model` for several architectures (Fig. 13 style)."""
    return {
        arch.name: search_model(arch, workloads, model_name=model_name,
                                metric=metric, max_mappings=max_mappings,
                                energy=energy, workers=workers,
                                chunk_size=chunk_size, prune=prune, seed=seed,
                                vectorize=vectorize, backend=backend,
                                policy=policy, budget=budget, compile=compile,
                                constraints=constraints)
        for arch in arches
    }
