"""Admissible lower bounds used to prune mapping candidates before full
cost-model evaluation.

The expensive part of scoring a (mapping, layout) candidate is the
bank-conflict concordance analysis inside
:meth:`repro.layoutloop.cost_model.CostModel.evaluate`.  Everything below
computes *sound* lower bounds from quantities that are either workload-only
(tensor footprints, reorder-mechanism cost) or mapping-only (padded compute
cycles) — both orders of magnitude cheaper than a full evaluation:

* ``total_cycles  >= compute_cycles + exposed reorder cycles`` because the
  bank-conflict slowdown is always >= 1 (it is ``max(lines/ports, 1)``);
* ``total_energy  >= energy floor`` where the floor keeps exactly the terms
  of the energy breakdown that do not depend on the mapping or layout: MAC
  and register energy, compulsory buffer/NoC/DRAM traffic (every tensor
  element is moved at least once) and the reorder-mechanism energy.

Because the bounds never exceed the true metric value, skipping a candidate
whose bound is already >= the incumbent best can never drop the optimum —
the pruned search returns bit-identical results to the exhaustive one (see
``tests/test_search_engine.py`` for the property test).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class BoundStatics:
    """Workload-level (mapping-independent) bound components.

    Computed once per search; combined with per-mapping compute cycles by
    :func:`metric_lower_bound`.
    """

    energy_floor_pj: float
    """Lower bound on total energy (pJ) over all mappings and layouts."""

    reorder_cycles: float
    """Exact exposed latency (cycles) of the arch's reorder mechanism."""


def bound_statics(cost_model, workload) -> BoundStatics:
    """Precompute the workload-level bound components for one cost model."""
    table = cost_model.energy
    arch = cost_model.arch
    macs = workload.macs
    iact, weight, oact = cost_model._tensor_elems(workload)
    elems = iact + weight + oact
    bytes_per_elem = arch.mac_bits / 8.0
    reorder_cycles, reorder_energy_pj = cost_model.reorder_costs(workload)

    energy_floor_pj = (
        macs * table.mac_int8_pj
        + 2.0 * macs * table.register_access_pj
        # buffer_read >= (iact + weight) reads even at slowdown 1 and
        # unbounded reuse, because reads are floored at the tensor footprint.
        + (iact + weight) * table.buffer_read_per_word_pj
        # buffer_write >= fills from DRAM plus one write per output element.
        + elems * table.buffer_write_per_word_pj
        + elems * table.noc_hop_per_word_pj
        + elems * bytes_per_elem * table.dram_access_per_byte_pj
        + reorder_energy_pj
    )
    return BoundStatics(energy_floor_pj=energy_floor_pj,
                        reorder_cycles=reorder_cycles)


_STATICS_CACHE: Dict[Tuple, BoundStatics] = {}
_STATICS_LOCK = threading.Lock()


def cached_bound_statics(cost_model, workload) -> BoundStatics:
    """Memoized :func:`bound_statics`, keyed on (arch+energy, shape) signature.

    The statics depend only on what the signatures capture — every cost
    model with the same architecture and energy table produces the same
    floor for the same workload shape — so one process-wide map is safe to
    share across mappers, sessions and threads.  ``BoundStatics`` is frozen,
    so returning the shared instance is safe too.
    """
    from repro.search.signatures import arch_signature, workload_signature

    key = (arch_signature(cost_model.arch, cost_model.energy),
           workload_signature(workload))
    with _STATICS_LOCK:
        statics = _STATICS_CACHE.get(key)
    if statics is None:
        statics = bound_statics(cost_model, workload)
        with _STATICS_LOCK:
            _STATICS_CACHE.setdefault(key, statics)
    return statics


def metric_lower_bound(metric: str, compute_cycles: float,
                       statics: BoundStatics) -> float:
    """Lower bound of ``metric`` for any layout under the given mapping."""
    cycles_floor = compute_cycles + statics.reorder_cycles
    if metric == "latency":
        return cycles_floor
    if metric == "energy":
        return statics.energy_floor_pj
    if metric == "edp":
        return statics.energy_floor_pj * cycles_floor
    raise ValueError(f"unknown metric {metric!r}")
