"""Analytical area/power models for reduction networks (paper Fig. 14a).

The paper reports post-layout numbers at TSMC 28nm; without the PDK we use a
component-count model with per-component constants calibrated so that the
reported relationships hold: an AW-input BIRRD has ``2*log2(AW)`` stages of
``AW/2`` switches, each switch carrying an int32 adder plus mux/config logic,
and comes out roughly 1.43x / 2.21x larger (1.17x / 2.07x more power) than
SIGMA's FAN / MAERI's ART at the same input count — yet a *single* BIRRD
instance serves the whole 2D array, which is where FEATHER's overall saving
comes from (§VI-D1).

FAN and ART are distributed across the 1D PE array in their host accelerators
and therefore pay a wire-length penalty (``wire_length_factor``), whereas
BIRRD sits outside the array as a compact standalone block — this is the
structural reason the ratios are far smaller than the raw switch-count ratio.

Constants are calibrated, not measured; the experiments compare the *shape*
of the scaling curves and the cross-network ratios, not absolute micrometres.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

# Calibrated per-component constants (TSMC 28nm-like, int32 datapath).
INT32_ADDER_AREA_UM2 = 60.0
INT32_ADDER_POWER_MW = 0.022
MUX2_32B_AREA_UM2 = 14.0
MUX2_32B_POWER_MW = 0.004
PIPE_REG_32B_AREA_UM2 = 28.0
PIPE_REG_32B_POWER_MW = 0.009
CONFIG_BIT_AREA_UM2 = 1.2
WIRE_TRACK_AREA_UM2 = 1.8
WIRE_TRACK_POWER_MW = 0.0007


@dataclass(frozen=True)
class NetworkAreaModel:
    """Area/power estimate for one reduction network instance."""

    name: str
    inputs: int
    adders: int
    muxes: int
    registers: int
    config_bits: int
    wire_tracks: int
    wire_length_factor: float = 1.0

    @property
    def area_um2(self) -> float:
        return (self.adders * INT32_ADDER_AREA_UM2
                + self.muxes * MUX2_32B_AREA_UM2
                + self.registers * PIPE_REG_32B_AREA_UM2
                + self.config_bits * CONFIG_BIT_AREA_UM2
                + self.wire_tracks * self.wire_length_factor * WIRE_TRACK_AREA_UM2)

    @property
    def power_mw(self) -> float:
        return (self.adders * INT32_ADDER_POWER_MW
                + self.muxes * MUX2_32B_POWER_MW
                + self.registers * PIPE_REG_32B_POWER_MW
                + self.wire_tracks * self.wire_length_factor * WIRE_TRACK_POWER_MW)

    def as_dict(self) -> Dict[str, float]:
        """Component counts plus area (um^2) and power (mW) as a dict."""
        return {
            "name": self.name,
            "inputs": self.inputs,
            "adders": self.adders,
            "area_um2": self.area_um2,
            "power_mw": self.power_mw,
        }


def _log2(n: int) -> int:
    if n < 2 or n & (n - 1):
        raise ValueError(f"inputs must be a power of two >= 2, got {n}")
    return int(math.log2(n))


def birrd_area_power(inputs: int) -> NetworkAreaModel:
    """BIRRD: 2*log2(N) stages of N/2 Eggs; each Egg = adder + 2 muxes + 2 cfg bits.

    Every stage is pipelined (one 32-bit register per port per stage) and the
    block is placed as a compact standalone macro, so wires stay short.
    """
    stages = 3 if inputs == 4 else (1 if inputs == 2 else 2 * _log2(inputs))
    switches = stages * inputs // 2
    return NetworkAreaModel(
        name="BIRRD",
        inputs=inputs,
        adders=switches,
        muxes=2 * switches,
        registers=stages * inputs,
        config_bits=2 * switches,
        wire_tracks=stages * inputs * 2,
        wire_length_factor=1.0,
    )


def fan_area_power(inputs: int) -> NetworkAreaModel:
    """FAN (SIGMA): adder tree + forwarding links and VN-boundary comparators.

    Fewer adders than BIRRD, but each node carries forwarding muxes and the
    network is stretched across the 1D PE array (long wires).
    """
    levels = _log2(inputs)
    adders = inputs - 1
    return NetworkAreaModel(
        name="FAN",
        inputs=inputs,
        adders=adders,
        muxes=4 * adders,
        registers=2 * inputs + levels * inputs // 2,
        config_bits=8 * adders,
        wire_tracks=levels * inputs * 4,
        wire_length_factor=9.0,
    )


def art_area_power(inputs: int) -> NetworkAreaModel:
    """ART (MAERI): augmented reduction tree with per-node bypass links."""
    levels = _log2(inputs)
    adders = inputs - 1
    return NetworkAreaModel(
        name="ART",
        inputs=inputs,
        adders=adders,
        muxes=2 * adders,
        registers=inputs + levels * inputs // 4,
        config_bits=4 * adders,
        wire_tracks=levels * inputs * 3,
        wire_length_factor=7.5,
    )


def reduction_network_comparison(sizes=(16, 32, 64, 128, 256)) -> Dict[int, Dict[str, NetworkAreaModel]]:
    """Fig. 14a data: area/power of ART, FAN and BIRRD across input counts."""
    out: Dict[int, Dict[str, NetworkAreaModel]] = {}
    for n in sizes:
        out[n] = {
            "ART": art_area_power(n),
            "FAN": fan_area_power(n),
            "BIRRD": birrd_area_power(n),
        }
    return out
