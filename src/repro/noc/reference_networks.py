"""Reference reduction networks the paper compares BIRRD against.

* :class:`LinearReductionChain` — the systolic-style linear accumulation used
  by Xilinx DPU / Gemmini (Table I: "linear reduction"), which needs O(N)
  cycles to reduce N values.
* :class:`AdderTree` — MAERI's ART, a binary adder tree augmented with the
  ability to produce partial results at intermediate levels (modelled here as
  a plain tree that can emit any aligned power-of-two subgroup sum).
* :class:`ForwardingAdderNetwork` — SIGMA's FAN, a tree with forwarding links
  that supports arbitrary *contiguous* group sizes in logarithmic depth.

These exist (a) so the baselines in the evaluation actually execute their
reduction strategy in the functional simulators, and (b) to give the area
model concrete component counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class ReductionOutcome:
    """Result of reducing one vector of partial sums."""

    outputs: List
    cycles: int
    adds: int


class LinearReductionChain:
    """Accumulate N inputs one per cycle, as a systolic column does."""

    def __init__(self, width: int):
        if width < 1:
            raise ValueError("width must be >= 1")
        self.width = width

    def reduce(self, values: Sequence, group_size: int) -> ReductionOutcome:
        """Reduce contiguous groups of ``group_size`` by sequential accumulation."""
        _check_groups(len(values), group_size)
        outputs = []
        adds = 0
        for start in range(0, len(values), group_size):
            total = values[start]
            for v in values[start + 1:start + group_size]:
                total = total + v
                adds += 1
            outputs.append(total)
        # One cycle per accumulation step per group, groups run back-to-back
        # through the same chain (the column bus serialises them).
        cycles = max(1, group_size) * (len(values) // group_size)
        return ReductionOutcome(outputs, cycles, adds)

    @property
    def adder_count(self) -> int:
        return self.width

    @property
    def depth(self) -> int:
        return self.width


class AdderTree:
    """Binary adder tree (MAERI ART-like): log-depth, aligned power-of-2 groups."""

    def __init__(self, width: int):
        if width < 1 or width & (width - 1):
            raise ValueError("width must be a power of two")
        self.width = width

    def reduce(self, values: Sequence, group_size: int) -> ReductionOutcome:
        """Reduce aligned power-of-two groups in log-depth."""
        if group_size & (group_size - 1):
            raise ValueError("adder tree only supports power-of-two group sizes")
        _check_groups(len(values), group_size)
        outputs = []
        adds = 0
        for start in range(0, len(values), group_size):
            level = list(values[start:start + group_size])
            while len(level) > 1:
                nxt = []
                for i in range(0, len(level), 2):
                    nxt.append(level[i] + level[i + 1])
                    adds += 1
                level = nxt
            outputs.append(level[0])
        cycles = max(1, int(math.log2(max(group_size, 1))) or 1)
        return ReductionOutcome(outputs, cycles, adds)

    @property
    def adder_count(self) -> int:
        return self.width - 1

    @property
    def depth(self) -> int:
        return int(math.log2(self.width))


class ForwardingAdderNetwork:
    """FAN (SIGMA): log-depth reduction of arbitrary contiguous groups.

    The forwarding links let adders skip levels so that group boundaries need
    not be aligned to powers of two; functionally we reduce each contiguous
    group in ceil(log2(group)) levels.
    """

    def __init__(self, width: int):
        if width < 1 or width & (width - 1):
            raise ValueError("width must be a power of two")
        self.width = width

    def reduce_groups(self, values: Sequence, boundaries: Sequence[int]) -> ReductionOutcome:
        """Reduce groups delimited by ``boundaries`` (list of group start indices)."""
        starts = list(boundaries)
        if not starts or starts[0] != 0:
            raise ValueError("boundaries must start at 0")
        starts.append(len(values))
        outputs = []
        adds = 0
        max_group = 1
        for a, b in zip(starts, starts[1:]):
            if b <= a:
                raise ValueError("group boundaries must be increasing")
            group = list(values[a:b])
            max_group = max(max_group, len(group))
            while len(group) > 1:
                nxt = []
                for i in range(0, len(group) - 1, 2):
                    nxt.append(group[i] + group[i + 1])
                    adds += 1
                if len(group) % 2:
                    nxt.append(group[-1])
                group = nxt
            outputs.append(group[0])
        cycles = max(1, math.ceil(math.log2(max_group)) if max_group > 1 else 1)
        return ReductionOutcome(outputs, cycles, adds)

    def reduce(self, values: Sequence, group_size: int) -> ReductionOutcome:
        """Reduce uniform contiguous groups (any size) in log-depth."""
        _check_groups(len(values), group_size)
        boundaries = list(range(0, len(values), group_size))
        return self.reduce_groups(values, boundaries)

    @property
    def adder_count(self) -> int:
        return self.width - 1

    @property
    def depth(self) -> int:
        return int(math.log2(self.width))


def _check_groups(total: int, group_size: int) -> None:
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    if total % group_size != 0:
        raise ValueError(f"group_size {group_size} must divide input width {total}")
