"""Routing for BIRRD: reduce arbitrary groups of inputs to arbitrary output ports.

From a routing perspective the paper treats reduction as reverse multicasting
(§III-B3): several inputs target the same output port and get summed whenever
they meet inside an Egg.  The paper uses the non-blocking multicast routing
algorithm of Arora/Leighton/Maggs and falls back to brute force when a
connection cannot be established; we implement the same spirit with a
depth-first configuration search over switch settings, guided by which
settings can possibly help (only merge values that belong to the same
reduction group, never double-count a value) and bounded by a node budget
with randomized restarts.

The searched configurations are *exact*: a returned configuration is verified
by symbolic evaluation, so the numeric result of the real network is
guaranteed to match the requested reduction.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.noc.birrd import BirrdNetwork, BirrdTopology, EggConfig


@dataclass(frozen=True)
class ReductionRequest:
    """A single reduction group: ``inputs`` are summed and delivered to ``output_port``."""

    output_port: int
    inputs: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.inputs:
            raise ValueError("a reduction group needs at least one input")
        if len(set(self.inputs)) != len(self.inputs):
            raise ValueError("duplicate inputs in reduction group")


@dataclass
class RoutingResult:
    """Outcome of a routing attempt."""

    aw: int
    requests: Tuple[ReductionRequest, ...]
    configs: Optional[List[List[EggConfig]]]
    routed: bool
    nodes_explored: int = 0

    @property
    def config_bits(self) -> int:
        topo = BirrdTopology(self.aw)
        return topo.config_bits_per_cycle


class BirrdRouter:
    """Search-based router for a BIRRD instance.

    ``node_budget`` bounds the number of states the DFS may expand before a
    randomized restart; ``restarts`` controls how many restarts are attempted.
    Permutation-only requests restrict the per-switch choices to PASS/SWAP
    which makes the search tiny (the topology is strictly non-blocking for
    unicast, so these always succeed for the sizes used in tests).
    """

    def __init__(self, aw: int, node_budget: int = 100_000, restarts: int = 4,
                 seed: int = 0):
        self.network = BirrdNetwork(aw)
        self.topology = self.network.topology
        self.node_budget = node_budget
        self.restarts = restarts
        self.seed = seed
        self._cache: Dict[Tuple, RoutingResult] = {}
        self._reach: Optional[List[List[FrozenSet[int]]]] = None

    # ------------------------------------------------------------- public API
    def route(self, requests: Sequence[ReductionRequest]) -> RoutingResult:
        """Find switch configurations realising the requested reductions.

        Results are memoised per request tuple: the accelerator issues the same
        reduction/destination pattern for many consecutive drain cycles, so
        repeated routes are free.
        """
        requests = tuple(requests)
        cache_key = tuple((r.output_port, r.inputs) for r in requests)
        if cache_key in self._cache:
            return self._cache[cache_key]
        self._validate(requests)
        goals: Dict[int, FrozenSet[int]] = {
            r.output_port: frozenset(r.inputs) for r in requests
        }
        active = sorted({i for r in requests for i in r.inputs})

        total_nodes = 0
        result = None
        for attempt in range(self.restarts):
            rng = random.Random(self.seed + attempt)
            configs, nodes = self._search(goals, active, rng, shuffle=attempt > 0)
            total_nodes += nodes
            if configs is not None:
                result = RoutingResult(self.topology.aw, requests, configs, True,
                                       total_nodes)
                break
        if result is None:
            result = RoutingResult(self.topology.aw, requests, None, False, total_nodes)
        self._cache[cache_key] = result
        return result

    def route_permutation(self, permutation: Dict[int, int]) -> RoutingResult:
        """Route a pure reorder: ``permutation[input_port] = output_port``."""
        requests = [ReductionRequest(output_port=dst, inputs=(src,))
                    for src, dst in permutation.items()]
        return self.route(requests)

    def route_or_ideal(self, requests: Sequence[ReductionRequest]) -> RoutingResult:
        """Route, but never fail: an unrouted result carries ``routed=False``.

        Mirrors the paper's brute-force fallback; callers that only need the
        functional outcome (e.g. the cost model) can proceed either way.
        """
        try:
            return self.route(requests)
        except ValueError:
            raise
        except Exception:  # pragma: no cover - defensive
            return RoutingResult(self.topology.aw, tuple(requests), None, False, 0)

    # -------------------------------------------------------------- validation
    def _validate(self, requests: Sequence[ReductionRequest]) -> None:
        aw = self.topology.aw
        seen_outputs = set()
        seen_inputs = set()
        for req in requests:
            if not 0 <= req.output_port < aw:
                raise ValueError(f"output port {req.output_port} outside 0..{aw - 1}")
            if req.output_port in seen_outputs:
                raise ValueError(f"output port {req.output_port} assigned twice")
            seen_outputs.add(req.output_port)
            for i in req.inputs:
                if not 0 <= i < aw:
                    raise ValueError(f"input port {i} outside 0..{aw - 1}")
                if i in seen_inputs:
                    raise ValueError(f"input {i} appears in two reduction groups")
                seen_inputs.add(i)

    # ---------------------------------------------------------- reachability
    def _reach_sets(self) -> List[List[FrozenSet[int]]]:
        """``reach[stage][port]``: output-buffer ports reachable from that wire.

        Both wires of a switch share a reach set (a value can leave on either
        output port), so the sets are computed backwards from the outputs
        through the inter-stage wiring.  Used as an exact pruning condition:
        a live partial sum sitting on a wire that cannot reach its group's
        destination can never contribute to the final result there.

        Depends only on the (immutable) topology, so it is computed once per
        router and reused across every route call and randomized restart.
        """
        if self._reach is not None:
            return self._reach
        topo = self.topology
        aw = topo.aw
        reach: List[List[FrozenSet[int]]] = [
            [frozenset()] * aw for _ in range(topo.num_stages + 1)
        ]
        reach[topo.num_stages] = [frozenset({p}) for p in range(aw)]
        for stage in range(topo.num_stages - 1, -1, -1):
            for sw in range(topo.switches_per_stage):
                left, right = 2 * sw, 2 * sw + 1
                union = (reach[stage + 1][topo.inter_stage_dest(stage, left)]
                         | reach[stage + 1][topo.inter_stage_dest(stage, right)])
                reach[stage][left] = union
                reach[stage][right] = union
        self._reach = reach
        return reach

    # ------------------------------------------------------------------ search
    def _search(self, goals: Dict[int, FrozenSet[int]], active: List[int],
                rng: random.Random, shuffle: bool) -> Tuple[Optional[List[List[EggConfig]]], int]:
        topo = self.topology
        aw = topo.aw
        group_sets = list(goals.values())
        initial = tuple(frozenset({i}) if i in set(active) else frozenset()
                        for i in range(aw))
        reach = self._reach_sets()
        # Map every input index to the destination port of its group.
        dest_of_input: Dict[int, int] = {}
        for port, group in goals.items():
            for i in group:
                dest_of_input[i] = port

        nodes = 0
        visited = set()

        def goal_met(state: Tuple[FrozenSet[int], ...]) -> bool:
            return all(state[port] == group for port, group in goals.items())

        def feasible(stage: int, state: Tuple[FrozenSet[int], ...],
                     live: Tuple[bool, ...]) -> bool:
            """Exact necessary condition: every live partial sum must still be
            able to reach its group's destination port."""
            for port in range(aw):
                content = state[port]
                if not content or not live[port]:
                    continue
                member = next(iter(content))
                dest = dest_of_input.get(member)
                if dest is not None and dest not in reach[stage][port]:
                    return False
            return True

        def useful_configs(left: FrozenSet[int], right: FrozenSet[int]) -> List[EggConfig]:
            options: List[EggConfig] = []
            can_add = (left and right and not (left & right)
                       and any((left | right) <= g for g in group_sets))
            if can_add:
                options.append(EggConfig.ADD_LEFT)
                options.append(EggConfig.ADD_RIGHT)
            options.append(EggConfig.PASS)
            if left != right:
                options.append(EggConfig.SWAP)
            if shuffle:
                rng.shuffle(options)
            return options

        def permute(stage: int, wires: List, fill) -> Tuple:
            out = [fill] * aw
            for port in range(aw):
                out[topo.inter_stage_dest(stage, port)] = wires[port]
            return tuple(out)

        initial_live = tuple(bool(content) for content in initial)

        def dfs(stage: int, state: Tuple[FrozenSet[int], ...],
                live: Tuple[bool, ...]) -> Optional[List[List[EggConfig]]]:
            nonlocal nodes
            if stage == topo.num_stages:
                return [] if goal_met(state) else None
            if nodes > self.node_budget:
                return None
            if not feasible(stage, state, live):
                return None
            key = (stage, state, live)
            if key in visited:
                return None
            visited.add(key)
            nodes += 1

            per_switch_options = []
            for sw in range(topo.switches_per_stage):
                left, right = state[2 * sw], state[2 * sw + 1]
                per_switch_options.append(useful_configs(left, right))

            for combo in itertools.product(*per_switch_options):
                wires = list(state)
                lives = list(live)
                for sw, cfg in enumerate(combo):
                    li, ri = 2 * sw, 2 * sw + 1
                    left, right = wires[li], wires[ri]
                    if cfg is EggConfig.PASS:
                        new_l, new_r = left, right
                        live_l, live_r = lives[li], lives[ri]
                    elif cfg is EggConfig.SWAP:
                        new_l, new_r = right, left
                        live_l, live_r = lives[ri], lives[li]
                    elif cfg is EggConfig.ADD_LEFT:
                        new_l, new_r = left | right, right
                        live_l, live_r = True, False
                    else:  # ADD_RIGHT
                        new_l, new_r = left, left | right
                        live_l, live_r = False, True
                    wires[li], wires[ri] = new_l, new_r
                    lives[li], lives[ri] = live_l, live_r
                next_state = permute(stage, wires, frozenset())
                next_live = permute(stage, lives, False)
                result = dfs(stage + 1, next_state, next_live)
                if result is not None:
                    return [list(combo)] + result
            return None

        configs = dfs(0, initial, initial_live)
        if configs is None:
            return None, nodes

        # Double-check by symbolic evaluation (defence against search bugs).
        outputs = self.network.evaluate_symbolic(active, configs)
        for port, group in goals.items():
            if outputs[port] != group:
                return None, nodes
        return configs, nodes


def contiguous_reduction_requests(group_size: int, aw: int,
                                  destinations: Optional[Sequence[int]] = None,
                                  ) -> List[ReductionRequest]:
    """Helper: contiguous groups of ``group_size`` inputs, one request per group.

    ``destinations`` optionally scatters group results to arbitrary banks;
    by default group ``g`` targets output port ``g``.
    """
    if aw % group_size != 0:
        raise ValueError("group_size must divide AW")
    num_groups = aw // group_size
    if destinations is None:
        destinations = list(range(num_groups))
    if len(destinations) != num_groups:
        raise ValueError("need one destination per group")
    if len(set(destinations)) != num_groups:
        raise ValueError("destinations must be distinct")
    requests = []
    for g in range(num_groups):
        inputs = tuple(range(g * group_size, (g + 1) * group_size))
        requests.append(ReductionRequest(output_port=destinations[g], inputs=inputs))
    return requests
