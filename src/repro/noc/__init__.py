"""Networks-on-chip: the BIRRD reduction/reordering network and reference networks."""

from repro.noc.birrd import (
    BirrdNetwork,
    BirrdTopology,
    EggConfig,
    reverse_bits,
)
from repro.noc.routing import (
    BirrdRouter,
    ReductionRequest,
    RoutingResult,
    contiguous_reduction_requests,
)
from repro.noc.reference_networks import (
    AdderTree,
    ForwardingAdderNetwork,
    LinearReductionChain,
)
from repro.noc.area_models import (
    NetworkAreaModel,
    art_area_power,
    birrd_area_power,
    fan_area_power,
    reduction_network_comparison,
)

__all__ = [
    "BirrdNetwork",
    "BirrdTopology",
    "EggConfig",
    "reverse_bits",
    "BirrdRouter",
    "ReductionRequest",
    "RoutingResult",
    "contiguous_reduction_requests",
    "AdderTree",
    "ForwardingAdderNetwork",
    "LinearReductionChain",
    "NetworkAreaModel",
    "art_area_power",
    "birrd_area_power",
    "fan_area_power",
    "reduction_network_comparison",
]
