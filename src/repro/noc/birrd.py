"""BIRRD: Butterfly Interconnect for Reduction and Reordering in Dataflows.

The topology follows Algorithm 1 of the paper: an ``AW``-input network of
``2 * log2(AW)`` stages (three stages for the merged AW = 4 special case),
``AW / 2`` two-input/two-output switches ("Eggs") per stage, with inter-stage
wiring given by a partial bit-reversal whose width grows then shrinks — two
butterfly networks placed back to back.

Each Egg supports four configurations (Fig. 8):

* ``PASS``      — left/right inputs go straight through,
* ``SWAP``      — left and right are exchanged,
* ``ADD_LEFT``  — the sum of both inputs leaves on the left port and the
  right output inherits the right input,
* ``ADD_RIGHT`` — the sum leaves on the right port and the left output
  inherits the left input.

:class:`BirrdNetwork` simulates the network cycle-functionally over arbitrary
Python values (ints, floats, numpy scalars) and also symbolically over sets of
input indices, which is what the router uses to verify that a configuration
realises a requested reduction/reordering.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple


def reverse_bits(data: int, bit_range: int) -> int:
    """Reverse the low ``bit_range`` bits of ``data`` (Alg. 1 lines 2-9)."""
    if bit_range < 0:
        raise ValueError("bit_range must be >= 0")
    mask = (1 << bit_range) - 1
    reversed_bits = 0
    for i in range(bit_range):
        if data & (1 << i):
            reversed_bits |= 1 << (bit_range - 1 - i)
    return (data & ~mask) | reversed_bits


class EggConfig(enum.Enum):
    """Configuration of one 2x2 reorder-reduction switch."""

    PASS = "="
    SWAP = "x"
    ADD_LEFT = "add_left"
    ADD_RIGHT = "add_right"

    @property
    def control_bits(self) -> int:
        """Two-bit control word (Fig. 8 says each Egg uses 2 bits)."""
        return {"=": 0b00, "x": 0b01, "add_left": 0b10, "add_right": 0b11}[self.value]


@dataclass(frozen=True)
class BirrdTopology:
    """Static structure of an ``AW``-input BIRRD."""

    aw: int

    def __post_init__(self) -> None:
        if self.aw < 2 or self.aw & (self.aw - 1):
            raise ValueError(f"AW must be a power of two >= 2, got {self.aw}")

    @property
    def log_aw(self) -> int:
        return int(math.log2(self.aw))

    @property
    def num_stages(self) -> int:
        """Number of switch stages.

        ``2 * log2(AW)`` in general; the paper's footnote 1 merges the middle
        stages for AW = 4 giving three stages, and a 2-input network is a
        single switch.
        """
        if self.aw == 2:
            return 1
        if self.aw == 4:
            return 3
        return 2 * self.log_aw

    @property
    def switches_per_stage(self) -> int:
        return self.aw // 2

    @property
    def num_switches(self) -> int:
        return self.num_stages * self.switches_per_stage

    def stage_bit_range(self, stage: int) -> int:
        """Width of the bit reversal applied after ``stage`` (Alg. 1 line 12)."""
        if not 0 <= stage < self.num_stages:
            raise IndexError(f"stage {stage} out of range")
        return min(self.log_aw, 2 + stage, self.num_stages - stage)

    def inter_stage_dest(self, stage: int, port: int) -> int:
        """Input port at ``stage + 1`` that output ``port`` of ``stage`` drives.

        For the final stage this gives the output-buffer bank index.
        """
        if not 0 <= port < self.aw:
            raise IndexError(f"port {port} out of range")
        return reverse_bits(port, self.stage_bit_range(stage))

    def connectivity(self) -> List[List[int]]:
        """Full wiring table: ``table[stage][port] -> next-stage port``."""
        return [
            [self.inter_stage_dest(stage, port) for port in range(self.aw)]
            for stage in range(self.num_stages)
        ]

    @property
    def config_bits_per_cycle(self) -> int:
        """Instruction width: 2 bits per switch (compare Fig. 8's IB sizing)."""
        return 2 * self.num_switches


class BirrdNetwork:
    """Functional simulator for a configured BIRRD instance.

    The network is purely combinational within a cycle: :meth:`evaluate` takes
    one value (or ``None``) per input port plus a full configuration and
    returns one value (or ``None``) per output port.  ``add`` controls how two
    values are combined, defaulting to ``+`` — substituting set-union turns
    the same machinery into the symbolic evaluator the router relies on.
    """

    def __init__(self, aw: int):
        self.topology = BirrdTopology(aw)

    @property
    def aw(self) -> int:
        return self.topology.aw

    # -------------------------------------------------------------- evaluation
    @staticmethod
    def _combine(left, right, add: Callable):
        if left is None:
            return right
        if right is None:
            return left
        return add(left, right)

    def _apply_switch(self, config: EggConfig, left, right, add: Callable):
        if config is EggConfig.PASS:
            return left, right
        if config is EggConfig.SWAP:
            return right, left
        if config is EggConfig.ADD_LEFT:
            return self._combine(left, right, add), right
        if config is EggConfig.ADD_RIGHT:
            return left, self._combine(left, right, add)
        raise ValueError(f"unknown config {config!r}")

    def evaluate(self, inputs: Sequence, configs: Sequence[Sequence[EggConfig]],
                 add: Callable = lambda a, b: a + b) -> List:
        """Propagate ``inputs`` through the network under ``configs``.

        ``configs[stage][switch]`` names the Egg configuration; a missing
        switch config defaults to ``PASS``.
        """
        topo = self.topology
        if len(inputs) != topo.aw:
            raise ValueError(f"expected {topo.aw} inputs, got {len(inputs)}")
        if len(configs) != topo.num_stages:
            raise ValueError(
                f"expected {topo.num_stages} stages of configs, got {len(configs)}")

        wires = list(inputs)
        for stage in range(topo.num_stages):
            stage_cfg = list(configs[stage])
            if len(stage_cfg) < topo.switches_per_stage:
                stage_cfg += [EggConfig.PASS] * (topo.switches_per_stage - len(stage_cfg))
            # Switch evaluation.
            switched = [None] * topo.aw
            for sw in range(topo.switches_per_stage):
                left_idx, right_idx = 2 * sw, 2 * sw + 1
                out_l, out_r = self._apply_switch(
                    stage_cfg[sw], wires[left_idx], wires[right_idx], add)
                switched[left_idx], switched[right_idx] = out_l, out_r
            # Inter-stage permutation (also applies after the final stage,
            # mapping onto the output-buffer banks).
            permuted = [None] * topo.aw
            for port in range(topo.aw):
                permuted[topo.inter_stage_dest(stage, port)] = switched[port]
            wires = permuted
        return wires

    def evaluate_symbolic(self, active_inputs: Sequence[int],
                          configs: Sequence[Sequence[EggConfig]]) -> List[frozenset]:
        """Propagate input-index sets; output ``p`` holds the set of inputs summed there."""
        inputs = [frozenset({i}) if i in set(active_inputs) else None
                  for i in range(self.aw)]
        outputs = self.evaluate(inputs, configs, add=lambda a, b: a | b)
        return [o if o is not None else frozenset() for o in outputs]

    # ------------------------------------------------------------------ checks
    def verify(self, inputs: Sequence, configs: Sequence[Sequence[EggConfig]],
               expected: Dict[int, object], add: Callable = lambda a, b: a + b,
               ) -> bool:
        """Check that the configured network produces ``expected[port] == value``."""
        outputs = self.evaluate(inputs, configs, add=add)
        return all(outputs[port] == value for port, value in expected.items())

    def identity_configuration(self) -> List[List[EggConfig]]:
        """All-PASS configuration (the data still traverses the wiring permutation)."""
        topo = self.topology
        return [[EggConfig.PASS] * topo.switches_per_stage for _ in range(topo.num_stages)]
