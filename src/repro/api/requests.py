"""Typed, JSON-round-trippable request dataclasses.

One request class per verb of the façade:

* :class:`EvalRequest` — price one (workload, mapping, layout) cell on one
  architecture and backend (the :class:`~repro.backends.base.BackendReport`
  vocabulary).
* :class:`SearchRequest` — whole-model (dataflow, layout) co-search: the
  verb behind ``search_model`` / ``evaluate_model`` / every figure
  co-search.
* :class:`SweepRequest` — a scenario-matrix sweep: named cells (or a
  filter over the built-in matrix) executed with content-addressed
  artifact caching.

Requests are frozen dataclasses with **plain-JSON field values only**
(strings, numbers, booleans, lists/objects), so ``to_json -> from_json``
reconstructs an equal request; every request carries a ``schema_version``
(rejected when unsupported — wire formats drift, silent coercion hides
it) and resolves to a sha256 **content key** (via
:func:`repro.api.session.content_key`) that reuses the scenario-record
hashing: keys are computed over resolved *structure* — workload shape
signatures, the full architecture signature, the search-config identity —
plus the labels that appear in the response, never over the request's
spelling.  Execution knobs that are guaranteed result-neutral
(``workers``, ``vectorize``, ``compile``, ``bulk``, ``fresh_cache``) stay
out of the key, which is what lets identical in-flight requests coalesce across
callers that parallelise differently; result-shaping knobs (``policy``,
``budget``) are part of the key.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from typing import Dict, Optional, Tuple, Union

from repro.errors import InvalidRequestError

#: Version of the request/response wire format (bumped on breaking change).
API_SCHEMA_VERSION = 4

_METRICS = ("edp", "latency", "energy")
_POLICIES = ("exhaustive", "halving", "evolutionary")


def _check_schema_version(version: int, what: str) -> None:
    if version != API_SCHEMA_VERSION:
        raise InvalidRequestError(
            f"{what} schema_version {version!r} is not supported "
            f"(this build speaks version {API_SCHEMA_VERSION})")


def _from_dict(cls, data: Dict[str, object]):
    """Shared ``from_dict``: reject unknown fields, surface bad values."""
    if not isinstance(data, dict):
        raise InvalidRequestError(
            f"{cls.__name__} payload must be an object, "
            f"got {type(data).__name__}")
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise InvalidRequestError(
            f"{cls.__name__} does not accept field(s) {unknown}; "
            f"known fields: {sorted(known)}")
    try:
        return cls(**data)
    except TypeError as exc:
        raise InvalidRequestError(f"bad {cls.__name__}: {exc}") from exc


class _RequestBase:
    """JSON round trip shared by all request classes."""

    def to_dict(self) -> Dict[str, object]:
        """The request as plain JSON-compatible data."""
        return asdict(self)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, object]):
        return _from_dict(cls, dict(data))

    @classmethod
    def from_json(cls, text: str):
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise InvalidRequestError(f"request is not valid JSON: {exc}"
                                      ) from exc
        return cls.from_dict(data)


def _normalize(obj, name: str, value):
    """Convert a JSON list field back to the tuple the dataclass declares."""
    object.__setattr__(obj, name, value)


@dataclass(frozen=True)
class EvalRequest(_RequestBase):
    """Price one (workload, mapping, layout) cell on one backend."""

    workload: Union[str, Dict[str, object]]
    """``"<set spec>#<index>"`` (registry form) or an inline payload
    (:func:`repro.api.codec.workload_payload`)."""
    arch: Union[str, Dict[str, object]]
    """Architecture registry name or inline payload."""
    layout: str
    """Layout name string (``"HWC_C32"``-style, parsed exactly)."""
    mapping: Union[str, Dict[str, object]] = "output_stationary"
    """``"output_stationary"`` (derived from workload + arch) or an inline
    mapping payload."""
    backend: str = "analytical"
    """Evaluation-backend registry name."""
    seed: int = 0
    """Deterministic-generation seed of stochastic backends (simulator)."""
    schema_version: int = API_SCHEMA_VERSION

    def __post_init__(self) -> None:
        _check_schema_version(self.schema_version, "EvalRequest")
        if not isinstance(self.backend, str) or not self.backend:
            raise InvalidRequestError(
                f"backend must be a registry name, got {self.backend!r}")
        _normalize(self, "seed", int(self.seed))


@dataclass(frozen=True)
class SearchRequest(_RequestBase):
    """Whole-model (dataflow, layout) co-search on one architecture.

    ``workers``/``vectorize``/``compile``/``fresh_cache`` are execution
    knobs the engine guarantees result-neutral; they are carried for
    execution but excluded from the content key (``policy``/``budget``
    change the result and are keyed).  ``fresh_cache=True`` gives the search
    a private evaluation cache instead of the session's shared one — the
    deprecation shims and the scenario runner use it so per-call cache
    counters (embedded in records and golden files) stay deterministic;
    native façade callers leave it off and get cross-request reuse.
    """

    workloads: Union[str, Tuple[Dict[str, object], ...]]
    """Workload-set spec (``"resnet50[:4]"``) or inline payload tuple."""
    arch: Union[str, Dict[str, object]]
    """Architecture registry name or inline payload."""
    model: str = "model"
    """Model label carried into the response (and per-layer weighting)."""
    metric: str = "edp"
    """Objective: ``edp``, ``latency`` or ``energy``."""
    max_mappings: Union[int, str] = 50
    """Pruned-random mapping budget per unique layer shape, or ``"auto"``
    for the adaptive universe (:mod:`repro.search.bulk`): a small seeded
    sample grown only where the bound landscape is tight, returning exactly
    the uncapped exhaustive winner of the full structured space.  ``"auto"``
    requires the analytical backend and the exhaustive policy (and is
    incompatible with ``frontier``/``fused``)."""
    seed: int = 0
    """RNG seed of the mapping sampler."""
    prune: bool = True
    """Admissible lower-bound pruning (exact)."""
    policy: str = "exhaustive"
    """Search policy: ``exhaustive`` (default), ``halving`` (bound-ordered
    successive halving, exact at full budget) or ``evolutionary`` (seeded
    refinement warm-started from memoized per-shape winners)."""
    budget: Optional[int] = None
    """Per-shape cap on scored (mapping, layout) pairs; only meaningful
    with a non-exhaustive ``policy``."""
    compile: bool = False
    """Route the vectorized kernels through the optional numba-compiled
    inner loops (bit-identical; silent numpy fallback without numba)."""
    backend: str = "analytical"
    """Evaluation-backend registry name, or ``"crossval"`` for the
    analytical-search + simulator-execution composite."""
    frontier: bool = False
    """Keep the whole Pareto frontier over (EDP, latency, energy, buffer
    footprint) per shape instead of only the scalar winner (which is still
    returned, bit-identical, and is always a frontier member).  Requires
    the analytical backend and the exhaustive policy."""
    fused: bool = False
    """Additionally search fused two-layer mappings over every fusible
    adjacent pair: shared on-chip intermediate tile, the producer's output
    layout constraining the consumer's input layout.  Requires the
    analytical backend, the exhaustive policy and at least two layers."""
    layouts: Optional[Tuple[str, ...]] = None
    """Optional restriction of the candidate layout library (names)."""
    workers: Optional[int] = None
    """Worker processes; None resolves through the session (env/default)."""
    vectorize: bool = True
    """Vectorized kernel fast path (bit-identical to the scalar oracle)."""
    bulk: bool = True
    """Bulk-bounds control plane (:mod:`repro.search.bulk`): bounds, halving
    rungs and frontier dominance vectors for each shape's whole candidate
    universe in one numpy pass, mappings materialized lazily.  Analytical
    backend only (others fall back to the scalar loop); result-neutral and
    excluded from the content key, like ``vectorize``."""
    fresh_cache: bool = False
    """Use a private evaluation cache for this request (legacy semantics)."""
    constraints: Optional[str] = None
    """Constraint-aware search mode (:mod:`repro.constraints`): ``None``
    (default) inherits the backend's own ConstraintSet — none for
    ``analytical``/``simulator``, the presets for ``systolic``/``noc:*`` —
    ``"none"`` forces the layer off even on a constrained backend, and
    ``"default"`` binds the architecture's own physical rules.  When a set
    is bound, every candidate mapping is repaired to legality before
    scoring and the response stats carry the repair-log counters.
    Result-shaping, so part of the content key (only when a set actually
    binds — unconstrained requests key identically to schema v3 ones)."""
    schema_version: int = API_SCHEMA_VERSION

    def __post_init__(self) -> None:
        _check_schema_version(self.schema_version, "SearchRequest")
        if self.constraints is not None:
            if self.constraints not in ("none", "default"):
                raise InvalidRequestError(
                    "constraints must be None, 'none' or 'default', "
                    f"got {self.constraints!r}")
            if self.max_mappings == "auto" and self.constraints == "default":
                raise InvalidRequestError(
                    "max_mappings='auto' grows the raw structured universe "
                    "and cannot be combined with constraints='default'")
        if self.metric not in _METRICS:
            raise InvalidRequestError(
                f"metric must be one of {_METRICS}, got {self.metric!r}")
        if self.policy not in _POLICIES:
            raise InvalidRequestError(
                f"policy must be one of {_POLICIES}, got {self.policy!r}")
        if self.budget is not None:
            if int(self.budget) < 1:
                raise InvalidRequestError(
                    f"budget must be >= 1 (or None), got {self.budget}")
            if self.policy == "exhaustive":
                raise InvalidRequestError(
                    "budget requires policy='halving' or 'evolutionary'")
        if isinstance(self.max_mappings, str):
            if self.max_mappings != "auto":
                raise InvalidRequestError(
                    "max_mappings must be a positive integer or 'auto', "
                    f"got {self.max_mappings!r}")
        elif int(self.max_mappings) < 1:
            raise InvalidRequestError(
                f"max_mappings must be >= 1, got {self.max_mappings}")
        if self.workers is not None and int(self.workers) < 1:
            raise InvalidRequestError(
                f"workers must be >= 1 (or None), got {self.workers}")
        if not isinstance(self.backend, str) or not self.backend:
            raise InvalidRequestError(
                f"backend must be a registry name, got {self.backend!r}")
        _normalize(self, "frontier", bool(self.frontier))
        _normalize(self, "fused", bool(self.fused))
        _normalize(self, "bulk", bool(self.bulk))
        if self.max_mappings == "auto":
            # The adaptive universe is a statement about the analytical
            # model's admissible bounds and defines the scalar winner only.
            if self.backend != "analytical":
                raise InvalidRequestError(
                    "max_mappings='auto' requires backend='analytical', "
                    f"got {self.backend!r}")
            if self.policy != "exhaustive":
                raise InvalidRequestError(
                    "max_mappings='auto' requires policy='exhaustive', "
                    f"got {self.policy!r}")
            if self.frontier or self.fused:
                raise InvalidRequestError(
                    "frontier/fused search requires an integer max_mappings")
        if self.frontier or self.fused:
            # The dominance prune and the fused-pair cost discounts are
            # statements about the analytical model, and budgeted policies
            # skip candidates the frontier must see.
            if self.backend != "analytical":
                raise InvalidRequestError(
                    "frontier/fused search requires backend='analytical', "
                    f"got {self.backend!r}")
            if self.policy != "exhaustive":
                raise InvalidRequestError(
                    "frontier/fused search requires policy='exhaustive', "
                    f"got {self.policy!r}")
        if not isinstance(self.workloads, str):
            _normalize(self, "workloads", tuple(self.workloads))
        if self.layouts is not None:
            _normalize(self, "layouts",
                       tuple(str(n) for n in self.layouts))
        if self.max_mappings != "auto":
            _normalize(self, "max_mappings", int(self.max_mappings))
        _normalize(self, "seed", int(self.seed))
        if self.budget is not None:
            _normalize(self, "budget", int(self.budget))
        if self.workers is not None:
            _normalize(self, "workers", int(self.workers))


@dataclass(frozen=True)
class SweepRequest(_RequestBase):
    """Run a scenario-matrix sweep (the ``python -m repro.scenarios run``
    verb as a request).

    Exactly one of ``scenarios`` (inline cell payloads) or ``filter``
    (substring filter over the built-in matrix; ``None`` filter with no
    scenarios means the whole built-in matrix) selects the cells.
    """

    scenarios: Optional[Tuple[Dict[str, object], ...]] = None
    """Inline scenario payloads (:func:`repro.api.codec.scenario_payload`)."""
    filter: Optional[str] = None
    """Substring filter over the built-in matrix (when no inline cells)."""
    backend: Optional[str] = None
    """Override every cell's declared evaluation backend for this sweep."""
    skip_incompatible: bool = False
    """Skip (with reasons) cells the backend cannot run by design."""
    force: bool = False
    """Recompute cells even when a fresh artifact exists."""
    workers: Optional[int] = None
    """Worker processes per cell; None resolves through the session."""
    vectorize: bool = True
    """Vectorized kernel fast path."""
    schema_version: int = API_SCHEMA_VERSION

    def __post_init__(self) -> None:
        _check_schema_version(self.schema_version, "SweepRequest")
        if self.scenarios is not None:
            if not self.scenarios:
                raise InvalidRequestError(
                    "scenarios, when given, must not be empty")
            if self.filter is not None:
                raise InvalidRequestError(
                    "pass either inline scenarios or a filter, not both")
            _normalize(self, "scenarios", tuple(self.scenarios))
        if self.workers is not None and int(self.workers) < 1:
            raise InvalidRequestError(
                f"workers must be >= 1 (or None), got {self.workers}")
        if self.workers is not None:
            _normalize(self, "workers", int(self.workers))


#: Union of the three request types (isinstance checks, annotations).
Request = Union[EvalRequest, SearchRequest, SweepRequest]

_REQUEST_TYPES: Dict[str, type] = {"eval": EvalRequest,
                                   "search": SearchRequest,
                                   "sweep": SweepRequest}


def request_type_name(request: Request) -> str:
    """The wire name of a request's type (``eval``/``search``/``sweep``)."""
    for name, cls in _REQUEST_TYPES.items():
        if isinstance(request, cls):
            return name
    raise InvalidRequestError(
        f"unsupported request type {type(request).__name__!r}")


def request_from_dict(kind: str, data: Dict[str, object]) -> Request:
    """Build the request class named ``kind`` from plain data."""
    try:
        cls = _REQUEST_TYPES[kind]
    except KeyError:
        raise InvalidRequestError(
            f"unknown request kind {kind!r}; expected one of "
            f"{sorted(_REQUEST_TYPES)}") from None
    return cls.from_dict(data)
