"""Payload codecs: domain objects <-> plain-JSON dictionaries.

The request dataclasses of :mod:`repro.api.requests` reference workloads,
architectures, mappings and layouts either **by registry name** (the
:mod:`repro.scenarios.registry` path — what a wire client should use) or
**inline** as the payload dictionaries defined here (what the deprecation
shims use, since they receive already-constructed objects).  Both forms are
plain JSON; this module owns the encode/decode pair for each object kind
and guarantees the round trip is exact — a decoded object produces the
same :mod:`repro.search.signatures` signature as the original, so content
keys and cache keys never depend on which form a request arrived in.

Decoding validates: malformed payloads raise
:class:`~repro.errors.InvalidRequestError` (stable ``invalid_request``
code) rather than ``KeyError``/``TypeError`` leaking from constructors.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.dataflow.mapping import Mapping, ParallelSpec, TileLevel
from repro.errors import InvalidRequestError
from repro.layout.layout import Layout, parse_layout
from repro.layout.patterns import ReorderImplementation, ReorderPattern
from repro.layoutloop.arch import ArchSpec, BufferGeometry
from repro.workloads.conv import ConvLayerSpec, LayerKind
from repro.workloads.gemm import GemmSpec

Payload = Dict[str, object]


def _require(payload: Payload, keys: Sequence[str], what: str) -> None:
    missing = [k for k in keys if k not in payload]
    if missing:
        raise InvalidRequestError(
            f"{what} payload is missing field(s) {missing}; got keys "
            f"{sorted(payload)}")


# -------------------------------------------------------------- workloads
def workload_payload(workload) -> Payload:
    """Encode a :class:`ConvLayerSpec` or :class:`GemmSpec` inline."""
    if isinstance(workload, ConvLayerSpec):
        return {"type": "conv", "name": workload.name, "n": workload.n,
                "m": workload.m, "c": workload.c, "h": workload.h,
                "w": workload.w, "r": workload.r, "s": workload.s,
                "stride": workload.stride, "padding": workload.padding,
                "kind": workload.kind.value, "bits": workload.bits,
                "groups": workload.groups}
    if isinstance(workload, GemmSpec):
        return {"type": "gemm", "name": workload.name, "m": workload.m,
                "k": workload.k, "n": workload.n, "bits": workload.bits}
    raise InvalidRequestError(
        f"unsupported workload type {type(workload).__name__!r}")


def workload_from_payload(payload: Payload):
    """Decode an inline workload payload back into its spec dataclass."""
    if not isinstance(payload, dict):
        raise InvalidRequestError(
            f"workload payload must be an object, got {type(payload).__name__}")
    kind = payload.get("type")
    try:
        if kind == "conv":
            _require(payload, ("name", "m", "c", "h", "w"), "conv workload")
            return ConvLayerSpec(
                name=str(payload["name"]), n=int(payload.get("n", 1)),
                m=int(payload["m"]), c=int(payload["c"]),
                h=int(payload["h"]), w=int(payload["w"]),
                r=int(payload.get("r", 1)), s=int(payload.get("s", 1)),
                stride=int(payload.get("stride", 1)),
                padding=int(payload.get("padding", 0)),
                kind=LayerKind(payload.get("kind", "conv")),
                bits=int(payload.get("bits", 8)),
                groups=int(payload.get("groups", 1)))
        if kind == "gemm":
            _require(payload, ("name", "m", "k", "n"), "gemm workload")
            return GemmSpec(name=str(payload["name"]), m=int(payload["m"]),
                            k=int(payload["k"]), n=int(payload["n"]),
                            bits=int(payload.get("bits", 8)))
    except (TypeError, ValueError) as exc:
        if isinstance(exc, InvalidRequestError):
            raise
        raise InvalidRequestError(f"bad workload payload: {exc}") from exc
    raise InvalidRequestError(
        f"workload payload type must be 'conv' or 'gemm', got {kind!r}")


def resolve_workloads(workloads: Union[str, Sequence[Payload]]) -> List:
    """A request's ``workloads`` field -> list of workload objects.

    A string is a workload-set spec resolved through the scenario registry
    (slices like ``"resnet50[:4]"`` included); a sequence is decoded
    payload by payload.
    """
    if isinstance(workloads, str):
        from repro.scenarios.registry import resolve_workload_set

        return resolve_workload_set(workloads)
    if not workloads:
        raise InvalidRequestError("workloads must name a registered set or "
                                  "carry at least one inline payload")
    return [workload_from_payload(p) for p in workloads]


def resolve_workload(workload: Union[str, Payload]):
    """A request's single-``workload`` field -> one workload object.

    Strings take the form ``"<set spec>#<index>"`` (e.g. ``"fig10_gemms#0"``,
    default index 0); anything else is an inline payload.
    """
    if isinstance(workload, str):
        spec, sep, index_text = workload.partition("#")
        try:
            index = int(index_text) if sep else 0
        except ValueError:
            raise InvalidRequestError(
                f"workload index in {workload!r} must be an integer") from None
        workloads = resolve_workloads(spec)
        if not 0 <= index < len(workloads):
            raise InvalidRequestError(
                f"workload index {index} out of range for set {spec!r} "
                f"({len(workloads)} workload(s))")
        return workloads[index]
    return workload_from_payload(workload)


# ----------------------------------------------------------- architectures
def arch_payload(arch: ArchSpec) -> Payload:
    """Encode an :class:`ArchSpec` inline (every cost-model-visible field)."""
    buf = arch.buffer
    return {
        "name": arch.name, "pe_rows": arch.pe_rows, "pe_cols": arch.pe_cols,
        "flexible_order": arch.flexible_order,
        "flexible_parallelism": arch.flexible_parallelism,
        "flexible_shape": arch.flexible_shape,
        "allowed_parallel_dims": (None if arch.allowed_parallel_dims is None
                                  else list(arch.allowed_parallel_dims)),
        "max_parallel_dims": arch.max_parallel_dims,
        "fixed_parallelism": (None if arch.fixed_parallelism is None
                              else [[d, n] for d, n in arch.fixed_parallelism]),
        "runtime_layout_flexible": arch.runtime_layout_flexible,
        "compile_time_layout_flexible": arch.compile_time_layout_flexible,
        "fixed_layout": arch.fixed_layout,
        "reorder_pattern": arch.reorder_pattern.value,
        "reorder_implementation": arch.reorder_implementation.value,
        "buffer": {"num_lines": buf.num_lines, "line_size": buf.line_size,
                   "banks": buf.banks, "ports_per_bank": buf.ports_per_bank,
                   "word_bits": buf.word_bits},
        "offchip_bandwidth_gbps": arch.offchip_bandwidth_gbps,
        "frequency_mhz": arch.frequency_mhz,
        "mac_bits": arch.mac_bits,
    }


def arch_from_payload(payload: Payload) -> ArchSpec:
    """Decode an inline architecture payload back into an :class:`ArchSpec`."""
    if not isinstance(payload, dict):
        raise InvalidRequestError(
            f"arch payload must be an object, got {type(payload).__name__}")
    _require(payload, ("name", "pe_rows", "pe_cols"), "arch")
    try:
        buf = payload.get("buffer") or {}
        fixed = payload.get("fixed_parallelism")
        allowed = payload.get("allowed_parallel_dims")
        return ArchSpec(
            name=str(payload["name"]), pe_rows=int(payload["pe_rows"]),
            pe_cols=int(payload["pe_cols"]),
            flexible_order=bool(payload.get("flexible_order", True)),
            flexible_parallelism=bool(payload.get("flexible_parallelism",
                                                  True)),
            flexible_shape=bool(payload.get("flexible_shape", True)),
            allowed_parallel_dims=(None if allowed is None
                                   else tuple(str(d) for d in allowed)),
            max_parallel_dims=int(payload.get("max_parallel_dims", 2)),
            fixed_parallelism=(None if fixed is None else
                               tuple((str(d), int(n)) for d, n in fixed)),
            runtime_layout_flexible=bool(
                payload.get("runtime_layout_flexible", False)),
            compile_time_layout_flexible=bool(
                payload.get("compile_time_layout_flexible", True)),
            fixed_layout=payload.get("fixed_layout"),
            reorder_pattern=ReorderPattern(
                payload.get("reorder_pattern", "none")),
            reorder_implementation=ReorderImplementation(
                payload.get("reorder_implementation", "none")),
            buffer=BufferGeometry(
                num_lines=int(buf.get("num_lines", 2048)),
                line_size=int(buf.get("line_size", 32)),
                banks=int(buf.get("banks", 32)),
                ports_per_bank=int(buf.get("ports_per_bank", 2)),
                word_bits=int(buf.get("word_bits", 8))),
            offchip_bandwidth_gbps=float(
                payload.get("offchip_bandwidth_gbps", 25.6)),
            frequency_mhz=float(payload.get("frequency_mhz", 1000.0)),
            mac_bits=int(payload.get("mac_bits", 8)))
    except (TypeError, ValueError) as exc:
        if isinstance(exc, InvalidRequestError):
            raise
        raise InvalidRequestError(f"bad arch payload: {exc}") from exc


def resolve_arch(arch: Union[str, Payload]) -> ArchSpec:
    """A request's ``arch`` field -> an :class:`ArchSpec` (name or inline)."""
    if isinstance(arch, str):
        from repro.scenarios.registry import resolve_arch as registry_arch

        return registry_arch(arch)
    return arch_from_payload(arch)


# --------------------------------------------------------------- mappings
def mapping_payload(mapping: Mapping) -> Payload:
    """Encode a :class:`~repro.dataflow.mapping.Mapping` inline."""
    return {
        "name": mapping.name,
        "array_rows": mapping.array_rows, "array_cols": mapping.array_cols,
        "parallel": [[p.dim, p.degree] for p in mapping.parallel],
        "tile": [[d, n] for d, n in mapping.tile.sizes],
        "order": list(mapping.order),
        "reduction_dims": sorted(mapping.reduction_dims),
    }


def mapping_from_payload(payload: Payload) -> Mapping:
    """Decode an inline mapping payload back into a :class:`Mapping`."""
    if not isinstance(payload, dict):
        raise InvalidRequestError(
            f"mapping payload must be an object, got {type(payload).__name__}")
    _require(payload, ("name", "array_rows", "array_cols", "parallel",
                       "tile", "order", "reduction_dims"), "mapping")
    try:
        return Mapping(
            name=str(payload["name"]),
            array_rows=int(payload["array_rows"]),
            array_cols=int(payload["array_cols"]),
            parallel=tuple(ParallelSpec(str(d), int(n))
                           for d, n in payload["parallel"]),
            tile=TileLevel(tuple((str(d), int(n))
                                 for d, n in payload["tile"])),
            order=tuple(str(d) for d in payload["order"]),
            reduction_dims=frozenset(str(d)
                                     for d in payload["reduction_dims"]))
    except (TypeError, ValueError) as exc:
        if isinstance(exc, InvalidRequestError):
            raise
        raise InvalidRequestError(f"bad mapping payload: {exc}") from exc


def resolve_mapping(mapping: Union[str, Payload], workload,
                    arch: ArchSpec) -> Mapping:
    """A request's ``mapping`` field -> a concrete :class:`Mapping`.

    The one named mapping is ``"output_stationary"`` — the canonical
    policy mapping derived from the workload and the architecture's PE
    array; anything else must be an inline payload.
    """
    if isinstance(mapping, str):
        if mapping != "output_stationary":
            raise InvalidRequestError(
                f"unknown named mapping {mapping!r}; use "
                "'output_stationary' or an inline mapping payload")
        from repro.dataflow.mapping import output_stationary_mapping

        return output_stationary_mapping(workload, arch.pe_rows,
                                         arch.pe_cols)
    return mapping_from_payload(mapping)


# ----------------------------------------------------------------- layouts
def resolve_layout(name: str) -> Layout:
    """A layout name string (``"HWC_C32"``-style) -> a :class:`Layout`."""
    if not isinstance(name, str) or not name:
        raise InvalidRequestError(
            f"layout must be a non-empty name string, got {name!r}")
    try:
        return parse_layout(name)
    except (TypeError, ValueError) as exc:
        raise InvalidRequestError(f"bad layout {name!r}: {exc}") from exc


def resolve_layouts(names: Optional[Sequence[str]]) -> Optional[List[Layout]]:
    """A request's optional layout restriction -> layout objects (or None)."""
    if names is None:
        return None
    layouts = [resolve_layout(n) for n in names]
    if not layouts:
        raise InvalidRequestError("layouts, when given, must not be empty")
    return layouts


# --------------------------------------------------------------- scenarios
def scenario_payload(scenario) -> Payload:
    """Encode a :class:`~repro.scenarios.spec.Scenario` inline."""
    return {"name": scenario.name, "workload_set": scenario.workload_set,
            "arch": scenario.arch, "config": scenario.config.as_dict(),
            "tags": list(scenario.tags), "backend": scenario.backend}


def scenario_from_payload(payload: Payload):
    """Decode an inline scenario payload back into a :class:`Scenario`."""
    from repro.scenarios.spec import Scenario, SearchConfig

    if not isinstance(payload, dict):
        raise InvalidRequestError(
            f"scenario payload must be an object, got {type(payload).__name__}")
    _require(payload, ("name", "workload_set", "arch", "config"), "scenario")
    try:
        return Scenario(
            name=str(payload["name"]),
            workload_set=str(payload["workload_set"]),
            arch=str(payload["arch"]),
            config=SearchConfig.from_dict(payload["config"]),
            tags=tuple(str(t) for t in payload.get("tags", ())),
            backend=str(payload.get("backend", "analytical")))
    except (TypeError, KeyError, ValueError) as exc:
        if isinstance(exc, InvalidRequestError):
            raise
        raise InvalidRequestError(f"bad scenario payload: {exc}") from exc
