"""Typed response dataclasses matching the request classes.

Responses are built on the repo's existing result vocabulary — an
:class:`EvalResponse` payload is a
:class:`~repro.backends.base.BackendReport` field for field (plus the
derived energy metrics), a :class:`SearchResponse` carries the same
``totals`` / ``layers`` / ``search`` rows a
:class:`~repro.scenarios.record.ScenarioRecord` embeds (produced by the
same helpers), and a :class:`SweepResponse` carries full record payloads —
so a wire client and a Python caller read the same numbers under the same
names.

Each response also keeps a **live-object handle** for in-process callers
(``EvalResponse.backend_report``, ``SearchResponse.cost``,
``SweepResponse.results``): that is what lets the deprecation shims return
bit-identical legacy objects.  The handles are excluded from ``to_dict`` /
equality, so JSON round trips compare equal.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Optional, Tuple

from repro.api.requests import API_SCHEMA_VERSION
from repro.errors import InvalidRequestError


class _ResponseBase:
    """JSON round trip shared by all response classes."""

    _HANDLES: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        """The response as plain JSON-compatible data (handles excluded)."""
        data = {}
        for f in fields(self):
            if f.name in self._HANDLES:
                continue
            value = getattr(self, f.name)
            data[f.name] = asdict(value) if hasattr(value, "__dataclass_fields__") else value
        return data

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, object]):
        if not isinstance(data, dict):
            raise InvalidRequestError(
                f"{cls.__name__} payload must be an object, "
                f"got {type(data).__name__}")
        known = {f.name for f in fields(cls)} - set(cls._HANDLES)
        unknown = sorted(set(data) - known)
        if unknown:
            raise InvalidRequestError(
                f"{cls.__name__} does not accept field(s) {unknown}")
        try:
            return cls(**data)
        except TypeError as exc:
            raise InvalidRequestError(f"bad {cls.__name__}: {exc}") from exc

    @classmethod
    def from_json(cls, text: str):
        return cls.from_dict(json.loads(text))


@dataclass
class EvalResponse(_ResponseBase):
    """One cell priced: a :class:`BackendReport` as plain data."""

    _HANDLES = ("backend_report",)

    report: Dict[str, object]
    """The backend report, field for field, plus the derived
    ``total_energy_pj`` / ``energy_per_mac_pj`` / ``edp`` metrics."""
    backend: str
    """Backend registry name that produced the report."""
    key: str
    """sha256 content key of the resolved request."""
    elapsed_s: float = 0.0
    """Wall-clock time of the evaluation (seconds; run metadata)."""
    schema_version: int = API_SCHEMA_VERSION
    served_from: Optional[str] = None
    """``"store"`` when a shared :class:`repro.store.ResultStore` satisfied
    the request without executing; ``None`` when this session computed it
    (run metadata — excluded from content keys like ``elapsed_s``)."""
    backend_report: object = field(default=None, compare=False, repr=False)
    """The live :class:`BackendReport` (in-process callers only; ``None``
    on store-served responses)."""


@dataclass
class SearchResponse(_ResponseBase):
    """A whole-model co-search result in scenario-record vocabulary."""

    _HANDLES = ("cost",)

    model: str
    """Model label of the request."""
    arch: str
    """Resolved architecture name."""
    backend: str
    """Backend the candidates were scored on (or ``"crossval"``)."""
    key: str
    """sha256 content key of the resolved request."""
    totals: Dict[str, float]
    """Whole-model aggregates (:func:`repro.scenarios.record.model_cost_totals`)."""
    layers: List[Dict[str, object]]
    """Per-unique-shape winners (:class:`~repro.scenarios.record.LayerRecord`
    rows as plain data, first-seen order)."""
    search: Dict[str, object]
    """Deterministic engine counters
    (:func:`repro.scenarios.record.search_stats_payload`)."""
    crossval: Optional[Dict[str, object]] = None
    """Analytical-vs-simulated deltas (``backend="crossval"`` only)."""
    frontiers: Optional[List[Dict[str, object]]] = None
    """Per-unique-shape Pareto frontiers
    (:meth:`repro.search.frontier.ShapeFrontier.to_dict` payloads, same
    order as ``layers``; ``frontier=True`` requests only)."""
    fused: Optional[List[Dict[str, object]]] = None
    """Fused adjacent-pair results
    (:meth:`repro.layoutloop.cosearch.FusedPairResult.to_dict` payloads,
    model order; ``fused=True`` requests only)."""
    workers: int = 1
    """Worker processes actually used (run metadata, result-neutral)."""
    elapsed_s: float = 0.0
    """Wall-clock time of the search (seconds; run metadata)."""
    schema_version: int = API_SCHEMA_VERSION
    served_from: Optional[str] = None
    """``"store"`` when a shared :class:`repro.store.ResultStore` satisfied
    the request without executing; ``None`` when this session computed it
    (run metadata — excluded from content keys like ``elapsed_s``)."""
    cost: object = field(default=None, compare=False, repr=False)
    """The live :class:`~repro.layoutloop.cosearch.ModelCost` (in-process
    callers only — this is what the deprecation shims return; ``None`` on
    store-served responses)."""


@dataclass
class SweepResponse(_ResponseBase):
    """A scenario sweep: one full record payload per executed cell."""

    _HANDLES = ("results",)

    records: List[Dict[str, object]]
    """Full :class:`~repro.scenarios.record.ScenarioRecord` payloads, in
    plan order."""
    cached: List[bool]
    """Per-cell: True when the content-addressed artifact satisfied the
    request without a search."""
    skipped: List[Dict[str, str]]
    """Cells the backend override could not run:
    ``{"scenario", "reason"}`` rows."""
    key: str = ""
    """sha256 content key of the resolved request."""
    elapsed_s: float = 0.0
    """Wall-clock time of the sweep (seconds; run metadata)."""
    schema_version: int = API_SCHEMA_VERSION
    results: object = field(default=None, compare=False, repr=False)
    """The live :class:`~repro.scenarios.runner.MatrixRun` (in-process
    callers only)."""
