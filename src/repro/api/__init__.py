"""``repro.api`` — the typed request/response façade of the whole repo.

Every capability the packages below expose — pricing one cell on an
evaluation backend, whole-model (dataflow, layout) co-search, scenario
sweeps — is reachable through **one surface**: build a request dataclass
(:class:`EvalRequest` / :class:`SearchRequest` / :class:`SweepRequest`,
each JSON-round-trippable and versioned), hand it to a long-lived
:class:`Session`, and read a typed response built on the existing
:class:`~repro.backends.base.BackendReport` /
:class:`~repro.scenarios.record.ScenarioRecord` vocabulary.

The same requests arrive identically from Python (``session.run``),
asynchronously (``session.submit``, with in-flight dedup by content key),
or over the wire (``python -m repro.serve`` exposes ``/v1/eval``,
``/v1/search``, ``/v1/sweep`` on a shared session).  The legacy entry
points (``search_model``, ``evaluate_model``, ``compare_architectures``,
``model_costs``) survive as thin deprecation shims over the module-default
session and stay bit-identical.

Quick start::

    from repro.api import SearchRequest, Session

    with Session() as session:
        response = session.run(SearchRequest(
            workloads="resnet50[:4]", arch="FEATHER",
            model="resnet50-head", max_mappings=20))
        print(response.totals["total_cycles"], response.key[:12])

Deliberate errors raise the :mod:`repro.errors` hierarchy
(:class:`~repro.errors.InvalidRequestError`,
:class:`~repro.errors.UnknownBackendError`,
:class:`~repro.errors.IncompatibleCellError`), each with a stable wire
code.
"""

from repro.api.requests import (
    API_SCHEMA_VERSION,
    EvalRequest,
    Request,
    SearchRequest,
    SweepRequest,
    request_from_dict,
    request_type_name,
)
from repro.api.responses import EvalResponse, SearchResponse, SweepResponse
from repro.api.session import (
    Session,
    SessionStats,
    content_key,
    default_session,
    reset_default_session,
)
from repro.errors import (
    IncompatibleCellError,
    InvalidRequestError,
    ReproError,
    UnknownBackendError,
)

__all__ = [
    "API_SCHEMA_VERSION",
    "EvalRequest",
    "EvalResponse",
    "IncompatibleCellError",
    "InvalidRequestError",
    "ReproError",
    "Request",
    "SearchRequest",
    "SearchResponse",
    "Session",
    "SessionStats",
    "SweepRequest",
    "SweepResponse",
    "UnknownBackendError",
    "content_key",
    "default_session",
    "request_from_dict",
    "request_type_name",
    "reset_default_session",
]
