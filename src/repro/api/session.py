"""The long-lived :class:`Session`: one object behind every façade request.

A ``Session`` is the amortization layer the per-call entry points never
had.  It owns, for its whole lifetime:

* the **evaluation cache** (:class:`~repro.search.cache.EvaluationCache`)
  shared by every analytical evaluation it runs — a second request touching
  the same (shape, arch, mapping, layout) cells is served from memory;
* the **backend instances** (one per (backend, architecture, seed)), so a
  simulator backend keeps its simulation memos warm across requests;
* a **persistent** ``ProcessPoolExecutor`` reused by every parallel search
  instead of paying pool startup per call;
* the **in-flight request table**: two identical requests submitted while
  the first is still running coalesce to one evaluation and share the same
  response object.

Worker-count resolution lives here and only here (explicit request value
over the session default over the ``REPRO_SEARCH_WORKERS`` environment
variable over serial) — the engine below executes a concrete count, and
the scenarios CLI, the experiments and the deprecation shims all inherit
the same precedence by routing through a session.

``run`` executes synchronously in the calling thread; ``submit`` returns a
``concurrent.futures.Future`` from a session-owned thread pool of
``threads`` workers.  Responses of coalesced requests are shared objects —
treat them (and the ``ModelCost`` handles they carry) as immutable.

Two optional layers turn a session into a service node:

* ``store_path`` mounts a disk-backed :class:`repro.store.ResultStore`
  under the in-memory tiers.  Eval and (non-``fresh_cache``) search
  requests consult it before executing and publish their responses after;
  because it is keyed by the same content keys and safely shared across
  processes, N serve replicas pointed at one store file serve each other's
  warm results (``response.served_from == "store"``).
* ``offload=True`` (the threaded service front enables it on multi-core
  hosts) makes cold analytical serial searches run as whole units in the
  session's persistent process pool, so concurrent submitters scale past
  the GIL: the submitting thread blocks on a pickled-result future instead
  of holding the interpreter.  Results are adopted back into the mapper
  memo, so repeat traffic still short-circuits in memory.  Offloaded
  searches are bit-identical to inline ones (same engine, same seed, fresh
  per-call evaluation cache in the worker).

The module-default session (:func:`default_session`) is what the
deprecation shims and ``python -m repro.serve`` use; construct your own
``Session`` for isolated caches or an artifact directory.
"""

from __future__ import annotations

import hashlib
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import repro
from repro.api import codec
from repro.api.requests import (
    API_SCHEMA_VERSION,
    EvalRequest,
    Request,
    SearchRequest,
    SweepRequest,
)
from repro.api.responses import EvalResponse, SearchResponse, SweepResponse
from repro.errors import InvalidRequestError
from repro.search.cache import EvaluationCache
from repro.search.parallel import resolve_workers as _env_workers
from repro.search.signatures import (
    arch_signature,
    layout_signature,
    mapping_signature,
    workload_signature,
)


@dataclass
class SessionStats:
    """Request counters of one session (monotonic, thread-safe enough)."""

    requests: int = 0
    """Requests accepted (run + submit, coalesced ones included)."""
    executed: int = 0
    """Requests that actually ran an evaluation."""
    coalesced: int = 0
    """Requests served by joining an identical in-flight request."""
    store_hits: int = 0
    """Requests served from the shared :class:`~repro.store.ResultStore`
    without executing (store-enabled sessions only)."""


def _digest(payload: Tuple) -> str:
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


def _offloaded_search(payload: Dict):
    """Worker entry point of the request-level process offload.

    Must stay a module-level function (pickled by ``ProcessPoolExecutor``).
    Runs one whole search on the exact fresh serial path a cold inline
    request would take (``cache=None`` builds a per-call evaluation cache),
    so the returned :class:`~repro.layoutloop.cosearch.ModelCost` — engine
    counters included — is bit-identical to inline execution.
    """
    from repro.search.engine import _search_model_impl

    return _search_model_impl(**payload)


@dataclass
class _Resolved:
    """Domain objects a request resolved to — computed once per request
    (key derivation and execution share them, never re-resolve)."""

    workload: object = None
    workloads: Optional[list] = None
    arch: object = None
    mapping: object = None
    layout: object = None
    layouts: Optional[list] = None
    cells: Optional[list] = None


def _resolve_request(request: Request) -> Tuple[str, _Resolved]:
    """Resolve a request's references and derive its content key.

    Raises :class:`InvalidRequestError` when the request does not resolve.
    """
    from repro.layoutloop.cost_model import DEFAULT_ENERGY_TABLE

    if isinstance(request, EvalRequest):
        resolved = _Resolved(
            workload=codec.resolve_workload(request.workload),
            arch=codec.resolve_arch(request.arch))
        resolved.mapping = codec.resolve_mapping(request.mapping,
                                                 resolved.workload,
                                                 resolved.arch)
        resolved.layout = codec.resolve_layout(request.layout)
        return _digest((
            "eval", API_SCHEMA_VERSION, repro.__version__,
            workload_signature(resolved.workload),
            getattr(resolved.workload, "name", ""),
            arch_signature(resolved.arch, DEFAULT_ENERGY_TABLE),
            mapping_signature(resolved.mapping), resolved.mapping.name,
            layout_signature(resolved.layout), request.backend,
            request.seed)), resolved
    if isinstance(request, SearchRequest):
        resolved = _Resolved(
            workloads=codec.resolve_workloads(request.workloads),
            arch=codec.resolve_arch(request.arch),
            layouts=codec.resolve_layouts(request.layouts))
        # ``constraints`` is result-shaping, so it is keyed — but only when
        # set, so unconstrained requests keep the exact key tuple of the
        # previous schema (the no-constraints bit-identity promise).
        constraints_part = (() if request.constraints is None
                            else (("constraints", request.constraints),))
        return _digest((
            "search", API_SCHEMA_VERSION, repro.__version__, request.model,
            tuple(workload_signature(w) for w in resolved.workloads),
            tuple(getattr(w, "name", "") for w in resolved.workloads),
            arch_signature(resolved.arch, DEFAULT_ENERGY_TABLE),
            (request.metric, request.max_mappings, request.seed,
             request.prune, request.policy, request.budget,
             request.frontier, request.fused),
            request.layouts, request.backend) + constraints_part), resolved
    if isinstance(request, SweepRequest):
        from repro.scenarios.runner import cell_key

        resolved = _Resolved(cells=_sweep_cells(request))
        return _digest((
            "sweep", API_SCHEMA_VERSION, repro.__version__,
            tuple(cell_key(c) for c in resolved.cells), request.backend,
            request.force, request.skip_incompatible)), resolved
    raise InvalidRequestError(
        f"unsupported request type {type(request).__name__!r}")


def content_key(request: Request) -> str:
    """sha256 content address of a resolved request.

    Reuses the scenario-record hashing discipline
    (:func:`repro.scenarios.runner.cell_key`): keys cover resolved
    *structure* — workload shape signatures, the full architecture
    signature, the search-config identity (``policy``/``budget``
    included — they change the result), the package version — plus the
    labels that appear in the response; the guaranteed result-neutral
    execution knobs (``workers``, ``vectorize``, ``compile``,
    ``fresh_cache``) stay out.  Raises :class:`InvalidRequestError` when
    the request does not resolve.
    """
    return _resolve_request(request)[0]


def _sweep_cells(request: SweepRequest):
    """The deduplicated plan-order cells a sweep request selects."""
    from repro.scenarios.builtin import builtin_matrix
    from repro.scenarios.spec import ScenarioMatrix

    if request.scenarios is not None:
        matrix = ScenarioMatrix(name="request", scenarios=[
            codec.scenario_from_payload(p) for p in request.scenarios])
        return list(matrix.dedup())
    return list(builtin_matrix().filter(request.filter).dedup())


class Session:
    """A configured, long-lived façade context (see module docstring).

    Parameters:

    * ``workers`` — session-default worker count; ``None`` falls through
      to the ``REPRO_SEARCH_WORKERS`` environment variable, then serial.
    * ``runs_dir`` — artifact directory for sweep requests
      (content-addressed per-cell records + summaries); ``None`` keeps
      sweeps in memory.
    * ``name`` — label in ``describe()`` output (service health checks).
    * ``threads`` — size of the thread pool behind :meth:`submit` (also
      the concurrency the service front can push into one session);
      default 4.
    * ``store_path`` — optional disk-backed :class:`~repro.store.ResultStore`
      shared across replicas (see the module docstring);
      ``store_max_bytes`` bounds it.
    * ``offload`` — run cold analytical serial searches as whole units in
      the process pool so concurrent submitters scale past the GIL.  Off
      by default (in-process callers keep exact legacy counter/cache
      semantics); the service front enables it when ``--threads > 1`` on
      a multi-core host.

    Sessions are usable from several threads (the JSON service shares one
    across its handler threads); close with :meth:`close` or use as a
    context manager.
    """

    def __init__(self, workers: Optional[int] = None,
                 runs_dir: Optional[Path] = None, name: str = "session",
                 threads: Optional[int] = None,
                 store_path: Optional[Path] = None,
                 store_max_bytes: Optional[int] = None,
                 offload: bool = False):
        from repro.store import ResultStore

        self.name = name
        self.workers = workers
        self.runs_dir = Path(runs_dir) if runs_dir is not None else None
        self.threads = 4 if threads is None else max(1, int(threads))
        self.store = None
        if store_path is not None:
            self.store = (ResultStore(store_path)
                          if store_max_bytes is None
                          else ResultStore(store_path,
                                           max_bytes=store_max_bytes))
        self._offload_enabled = bool(offload) and self.threads > 1
        self.cache = EvaluationCache()
        self.stats = SessionStats()
        self.created_at = time.time()
        self._backends: Dict[Tuple, object] = {}
        self._mappers: Dict[Tuple, object] = {}
        self._lock = threading.Lock()
        self._inflight: Dict[str, Future] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_size = 0
        self._pool_busy = 0
        self._pool_unavailable = False
        self._threads: Optional[ThreadPoolExecutor] = None
        self._store_pending: List[Tuple[str, dict, str]] = []
        self._store_flush_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Shut down the worker pools (idempotent; caches are kept until
        the session is garbage collected)."""
        with self._lock:
            pool, self._pool = self._pool, None
            threads, self._threads = self._threads, None
            self._pool_size = 0
            self._closed = True
        if pool is not None:
            pool.shutdown()
        if threads is not None:
            threads.shutdown()
        if self.store is not None:
            self._flush_store()
            self.store.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- workers
    def resolve_workers(self, explicit: Optional[int] = None) -> int:
        """The one place worker counts are resolved.

        Precedence: explicit argument > session default >
        ``REPRO_SEARCH_WORKERS`` environment variable > 1 (serial).
        Results are bit-identical for any resolved count.
        """
        if explicit is not None:
            return max(1, int(explicit))
        if self.workers is not None:
            return max(1, int(self.workers))
        return _env_workers(None)

    def _executor_for(self, workers: int) -> Optional[ProcessPoolExecutor]:
        """The persistent process pool (None = serial, or pools unavailable
        in this environment).

        Grown to ``workers`` only while no other request is using it — a
        concurrent user keeps the existing (possibly smaller) pool, which
        is safe because the engine caps effective workers at the pool
        size.  A pool broken by a dead worker process is replaced rather
        than cached forever; if replacement also fails, parallel requests
        degrade to serial (bit-identical either way).
        """
        if workers <= 1:
            return None
        with self._lock:
            if self._closed or self._pool_unavailable:
                return None
            pool = self._pool
            broken = pool is not None and getattr(pool, "_broken", False)
            if pool is not None and not broken:
                if self._pool_size >= workers or self._pool_busy > 0:
                    self._pool_busy += 1
                    return pool
            stale = pool
            try:
                self._pool = ProcessPoolExecutor(max_workers=workers)
            except (OSError, NotImplementedError):
                self._pool = None
                self._pool_size = 0
                self._pool_unavailable = True
                return None
            self._pool_size = workers
            self._pool_busy = 1
        if stale is not None:
            stale.shutdown(wait=False)
        return self._pool

    def _release_executor(self, pool: Optional[ProcessPoolExecutor]) -> None:
        if pool is None:
            return
        with self._lock:
            if pool is self._pool and self._pool_busy > 0:
                self._pool_busy -= 1

    def _thread_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._closed:
                raise RuntimeError(f"Session {self.name!r} is closed")
            if self._threads is None:
                self._threads = ThreadPoolExecutor(
                    max_workers=self.threads,
                    thread_name_prefix=f"repro-{self.name}")
            return self._threads

    # ------------------------------------------------------------- backends
    def backend_for(self, name: str, arch, seed: int = 0):
        """The session's memoized backend instance for (name, arch, seed).

        Analytical backends share the session evaluation cache; stateful
        backends (the simulator) keep their memos warm across requests.
        Unknown names raise :class:`~repro.errors.UnknownBackendError`.
        """
        from repro.backends import create_backend
        from repro.layoutloop.cost_model import DEFAULT_ENERGY_TABLE

        key = (name, arch_signature(arch, DEFAULT_ENERGY_TABLE), seed)
        with self._lock:
            instance = self._backends.get(key)
        if instance is not None:
            return instance
        if name == "analytical":
            instance = create_backend(name, arch, cache=self.cache)
        else:
            instance = create_backend(name, arch, seed=seed)
            # Stateful backends mutate internal state (simulation buffers,
            # memos) while evaluating; concurrent searches on the shared
            # instance serialize on this lock (see _execute_search).
            instance._session_serialize = threading.Lock()
        with self._lock:
            return self._backends.setdefault(key, instance)

    def _mapper_for(self, arch, request: SearchRequest, backend):
        """A persistent per-configuration mapper (shared-cache serial path).

        Its whole-result memo is what makes repeat search requests near
        instant: determinism guarantees the memoized
        :class:`~repro.layoutloop.mapper.SearchResult` objects equal a
        fresh search's, so only the engine *counters* differ (a full memo
        hit reports zero evaluations) — ``fresh_cache`` requests bypass
        this layer for exactly that reason.
        """
        from repro.layoutloop.cost_model import DEFAULT_ENERGY_TABLE
        from repro.layoutloop.mapper import Mapper

        key = (arch_signature(arch, DEFAULT_ENERGY_TABLE), request.metric,
               request.max_mappings, request.seed, request.prune,
               request.backend, request.vectorize, request.policy,
               request.budget, request.compile, request.bulk,
               request.constraints)
        with self._lock:
            mapper = self._mappers.get(key)
        if mapper is not None:
            return mapper
        mapper = Mapper(arch, metric=request.metric,
                        max_mappings=request.max_mappings, seed=request.seed,
                        prune=request.prune, evaluation_cache=self.cache,
                        vectorize=request.vectorize, backend=backend,
                        policy=request.policy, budget=request.budget,
                        compile=request.compile, bulk=request.bulk,
                        constraints=request.constraints)
        with self._lock:
            return self._mappers.setdefault(key, mapper)

    # ------------------------------------------------------------ run/submit
    def run(self, request: Request):
        """Execute a request synchronously and return its typed response.

        An identical in-flight request (same content key and cache policy)
        is joined rather than re-executed — both callers receive the same
        response object.
        """
        key, resolved, future, owner = self._claim(request)
        if not owner:
            return future.result()
        try:
            response = self._execute(request, resolved, key)
        except BaseException as exc:
            future.set_exception(exc)
            self._release(request, key)
            raise
        future.set_result(response)
        self._release(request, key)
        return response

    def submit(self, request: Request) -> "Future":
        """Enqueue a request on the session's thread pool; returns a future.

        Two identical in-flight submissions return the *same* future (one
        engine evaluation, shared response object).
        """
        key, resolved, future, owner = self._claim(request)
        if not owner:
            return future

        def _work() -> None:
            try:
                future.set_result(self._execute(request, resolved, key))
            except BaseException as exc:  # delivered via future.result()
                future.set_exception(exc)
            finally:
                self._release(request, key)

        self._thread_pool().submit(_work)
        return future

    @staticmethod
    def _dedup_key(request: Request, key: str) -> str:
        # fresh_cache requests promise per-call-deterministic engine
        # counters; joining them onto a warm shared-cache execution (or
        # vice versa) would leak the other policy's counters into records,
        # so the two policies never coalesce with each other.
        if isinstance(request, SearchRequest) and request.fresh_cache:
            return key + ":fresh"
        return key

    def _claim(self, request: Request
               ) -> Tuple[str, _Resolved, Future, bool]:
        if self._closed:
            raise RuntimeError(f"Session {self.name!r} is closed")
        key, resolved = _resolve_request(request)
        dedup = self._dedup_key(request, key)
        with self._lock:
            self.stats.requests += 1
            existing = self._inflight.get(dedup)
            if existing is not None:
                self.stats.coalesced += 1
                return key, resolved, existing, False
            future: Future = Future()
            self._inflight[dedup] = future
            return key, resolved, future, True

    def _release(self, request: Request, key: str) -> None:
        with self._lock:
            self._inflight.pop(self._dedup_key(request, key), None)

    # ------------------------------------------------------------- execution
    def _execute(self, request: Request, resolved: _Resolved, key: str):
        stored = self._serve_from_store(request, resolved, key)
        if stored is not None:
            return stored
        with self._lock:
            self.stats.executed += 1
        if isinstance(request, EvalRequest):
            response = self._execute_eval(request, resolved, key)
        elif isinstance(request, SearchRequest):
            response = self._execute_search(request, resolved, key)
        elif isinstance(request, SweepRequest):
            return self._execute_sweep(request, resolved, key)
        else:
            raise InvalidRequestError(
                f"unsupported request type {type(request).__name__!r}")
        self._offer_to_store(request, key, response)
        return response

    # ----------------------------------------------------------- store tier
    @staticmethod
    def _store_kind(request: Request) -> Optional[str]:
        """The store record kind of a request, or None when it must not be
        store-served: sweeps have their own content-addressed artifact tier
        (``runs_dir``), and ``fresh_cache`` searches promise per-call engine
        counters and a live ``cost`` handle (the deprecation shims, the
        scenario runner and the golden records depend on both)."""
        if isinstance(request, EvalRequest):
            return "eval"
        if isinstance(request, SearchRequest) and not request.fresh_cache:
            return "search"
        return None

    def _serve_from_store(self, request: Request, resolved: _Resolved,
                          key: str):
        """A finished response from the shared disk store, or None.

        A search whose every shape is already in this session's whole-result
        memo is *not* store-served — the in-memory path is faster and keeps
        the live ``cost`` handle.  Payloads that fail to reconstruct (a
        foreign or corrupt record) are treated as misses.
        """
        if self.store is None:
            return None
        kind = self._store_kind(request)
        if kind is None:
            return None
        if kind == "search" and self._memo_has(request, resolved):
            return None
        start = time.perf_counter()
        payload = self.store.get(key)
        if payload is None:
            return None
        cls = EvalResponse if kind == "eval" else SearchResponse
        try:
            response = cls.from_dict(payload)
        except (InvalidRequestError, KeyError, TypeError, ValueError,
                AttributeError):
            # A foreign or hand-edited row (wrong fields, wrong types,
            # wrong nesting) can raise any of these out of from_dict; it
            # can never serve a hit, so delete it and treat it as a miss
            # instead of crashing the serving thread.
            self.store.delete(key)
            return None
        if response.key != key:
            self.store.delete(key)
            return None
        response.served_from = "store"
        response.elapsed_s = time.perf_counter() - start
        with self._lock:
            self.stats.store_hits += 1
        return response

    def _offer_to_store(self, request: Request, key: str, response) -> None:
        kind = self._store_kind(request)
        if self.store is None or kind is None:
            return
        with self._lock:
            self._store_pending.append((key, response.to_dict(), kind))
        self._flush_store()

    def _flush_store(self) -> None:
        """Drain pending publishes into the store as batched transactions.

        Publishes are coalesced: whichever thread holds the flush lock
        drains the whole buffer with a single :meth:`ResultStore.put_many`
        call per batch, so concurrent handler threads pay one WAL commit
        for many results instead of one each.  The outer ``while`` re-checks
        the buffer after releasing the lock so an entry appended between the
        holder's final drain and the release is never stranded.
        """
        while self._store_pending:
            if not self._store_flush_lock.acquire(blocking=False):
                return
            try:
                with self._lock:
                    batch = self._store_pending
                    self._store_pending = []
                if batch:
                    self.store.put_many(batch)
            finally:
                self._store_flush_lock.release()

    def _memo_has(self, request: SearchRequest, resolved: _Resolved) -> bool:
        """Whether the serial in-memory path would serve this search from
        the per-configuration mapper's whole-result memo."""
        from repro.layoutloop.cosearch import unique_workloads

        if request.backend == "crossval":
            return False
        if request.frontier or request.fused:
            # Frontier/fused payloads live on the ModelCost, not in the
            # mapper's whole-result memo — never claim a memo hit for them.
            return False
        if self.resolve_workers(request.workers) > 1:
            return False
        backend = ("analytical" if request.backend == "analytical"
                   else self.backend_for(request.backend, resolved.arch,
                                         request.seed))
        mapper = self._mapper_for(resolved.arch, request, backend)
        return all(mapper.has_result(wl, resolved.layouts)
                   for wl, _ in unique_workloads(resolved.workloads))

    # -------------------------------------------------------------- offload
    def _offload(self, request: SearchRequest, resolved: _Resolved):
        """Run one analytical search whole in the process pool; returns the
        :class:`ModelCost`, or None when no pool is available (caller runs
        inline — bit-identical either way)."""
        from concurrent.futures.process import BrokenProcessPool

        pool = self._executor_for(max(2, self.threads))
        if pool is None:
            return None
        payload = dict(
            arch=resolved.arch, workloads=list(resolved.workloads),
            model_name=request.model, metric=request.metric,
            max_mappings=request.max_mappings, workers=1,
            prune=request.prune, seed=request.seed,
            vectorize=request.vectorize, backend="analytical",
            layouts=resolved.layouts, policy=request.policy,
            budget=request.budget, compile=request.compile,
            bulk=request.bulk, constraints=request.constraints)
        try:
            return pool.submit(_offloaded_search, payload).result()
        except (BrokenProcessPool, OSError):
            # Pool infrastructure died (a killed worker, fork limits):
            # degrade to inline execution.  Real search errors propagate.
            return None
        finally:
            self._release_executor(pool)

    def _execute_eval(self, request: EvalRequest, resolved: _Resolved,
                      key: str) -> EvalResponse:
        workload, arch = resolved.workload, resolved.arch
        mapping, layout = resolved.mapping, resolved.layout
        backend = self.backend_for(request.backend, arch, request.seed)
        start = time.perf_counter()
        report = backend.evaluate(workload, mapping, layout)
        elapsed = time.perf_counter() - start
        payload = asdict(report)
        payload["total_energy_pj"] = report.total_energy_pj
        payload["energy_per_mac_pj"] = report.energy_per_mac_pj
        payload["edp"] = report.edp
        return EvalResponse(report=payload, backend=request.backend, key=key,
                            elapsed_s=elapsed, backend_report=report)

    def _execute_search(self, request: SearchRequest, resolved: _Resolved,
                        key: str) -> SearchResponse:
        from repro.layoutloop.cosearch import unique_workloads

        workloads, arch = resolved.workloads, resolved.arch
        layouts = resolved.layouts
        workers = self.resolve_workers(request.workers)
        crossval = request.backend == "crossval"
        if crossval and layouts is not None:
            raise InvalidRequestError(
                "crossval does not support a layout restriction")
        start = time.perf_counter()
        search_backend = request.backend
        if crossval or request.backend == "analytical":
            search_backend = "analytical"
        else:
            search_backend = self.backend_for(request.backend, arch,
                                              request.seed)
        mapper = (self._mapper_for(arch, request, search_backend)
                  if not request.fresh_cache and workers <= 1 and not crossval
                  else None)
        # Stateful backend instances (the simulator) are memoized per
        # session and mutate internal state while evaluating — concurrent
        # searches on the same instance must serialize.  Analytical
        # requests stay fully concurrent (the evaluation cache is locked).
        serialize = nullcontext()
        if crossval:
            # Fail fast on incompatible cells before burning a co-search,
            # exactly like the legacy front.
            simulator = self.backend_for("simulator", arch, request.seed)
            serialize = getattr(simulator, "_session_serialize", serialize)
            for workload, _ in unique_workloads(workloads):
                simulator.check_cell(workload)
        elif not isinstance(search_backend, str):
            serialize = getattr(search_backend, "_session_serialize",
                                serialize)
        with serialize:
            return self._execute_search_body(
                request, resolved, key, workers, crossval, search_backend,
                mapper, simulator if crossval else None, start)

    def _execute_search_body(self, request, resolved, key, workers, crossval,
                             search_backend, mapper, simulator, start):
        """The execution leg of :meth:`_execute_search`, run while holding
        the stateful backend's serialization lock (a no-op context for
        analytical requests)."""
        from repro.scenarios.record import (
            model_cost_layers,
            model_cost_totals,
            search_stats_payload,
        )
        from repro.search.engine import _search_model_impl

        from repro.layoutloop.cosearch import unique_workloads

        workloads, arch = resolved.workloads, resolved.arch
        layouts = resolved.layouts
        crossval_payload = None
        cost = None
        if (self._offload_enabled and mapper is not None
                and search_backend == "analytical"
                and not request.frontier and not request.fused
                and not all(mapper.has_result(wl, layouts)
                            for wl, _ in unique_workloads(workloads))):
            # Cold search on a threaded session: run it whole in a worker
            # process so this submitting thread blocks GIL-free and the
            # other handler threads keep the cores busy.  The worker runs
            # the exact fresh serial path (same engine, same seed), so the
            # result — counters included — is bit-identical to inline
            # execution on a cold session.
            cost = self._offload(request, resolved)
            if cost is not None:
                for (workload, _), choice in zip(unique_workloads(workloads),
                                                 cost.layer_choices):
                    mapper.adopt_result(workload, choice.result,
                                        layouts=layouts)
        if cost is None:
            pool = self._executor_for(workers)
            try:
                cost = _search_model_impl(
                    arch, workloads, model_name=request.model,
                    metric=request.metric, max_mappings=request.max_mappings,
                    workers=workers, prune=request.prune, seed=request.seed,
                    cache=None if request.fresh_cache else self.cache,
                    vectorize=request.vectorize, backend=search_backend,
                    layouts=layouts, executor=pool, mapper=mapper,
                    policy=request.policy, budget=request.budget,
                    compile=request.compile, frontier=request.frontier,
                    fused=request.fused, bulk=request.bulk,
                    constraints=request.constraints)
            finally:
                self._release_executor(pool)
        if crossval:
            from repro.backends.crossval import cross_validate_model

            # The analytical co-search above ran with this session's
            # caches/pool; the simulator leg reuses the session's memoized
            # backend instance.  The validation embeds the arch label the
            # caller asked for (the registry name when the request came by
            # name).
            label = (request.arch if isinstance(request.arch, str)
                     else arch.name)
            cost, validation = cross_validate_model(
                arch, workloads, model_name=request.model,
                metric=request.metric, max_mappings=request.max_mappings,
                seed=request.seed, prune=request.prune, arch_label=label,
                cost=cost, simulator=simulator)
            crossval_payload = validation.as_dict()
        elapsed = time.perf_counter() - start
        stats = cost.search_stats
        arch_label = (request.arch if isinstance(request.arch, str)
                      else cost.arch)
        frontiers_payload = (
            [frontier.to_dict() for frontier in cost.frontiers]
            if request.frontier and cost.frontiers is not None else None)
        fused_payload = (
            [pair.to_dict() for pair in cost.fused_pairs]
            if request.fused and cost.fused_pairs is not None else None)
        return SearchResponse(
            model=request.model, arch=arch_label, backend=request.backend,
            key=key, totals=model_cost_totals(cost),
            layers=[asdict(layer) for layer in model_cost_layers(cost)],
            search=search_stats_payload(stats), crossval=crossval_payload,
            frontiers=frontiers_payload, fused=fused_payload,
            workers=stats.workers, elapsed_s=elapsed, cost=cost)

    def _execute_sweep(self, request: SweepRequest, resolved: _Resolved,
                       key: str) -> SweepResponse:
        from repro.scenarios.runner import run_matrix
        from repro.scenarios.spec import ScenarioMatrix

        matrix = ScenarioMatrix(name="request", scenarios=resolved.cells)
        start = time.perf_counter()
        run = run_matrix(matrix, workers=request.workers,
                         vectorize=request.vectorize, runs_dir=self.runs_dir,
                         force=request.force, backend=request.backend,
                         skip_incompatible=request.skip_incompatible,
                         session=self)
        elapsed = time.perf_counter() - start
        return SweepResponse(
            records=[r.record.to_dict() for r in run.results],
            cached=[r.cached for r in run.results],
            skipped=[{"scenario": s.name, "reason": reason}
                     for s, reason in run.skipped],
            key=key, elapsed_s=elapsed, results=run)

    # ------------------------------------------------------------ inspection
    def describe(self) -> Dict[str, object]:
        """Health/inspection payload (what ``/v1/healthz`` reports)."""
        from repro.backends import backend_names
        from repro.kernel.compiled import _compile

        compiled = _compile.cache_info()
        return {
            "name": self.name,
            "version": repro.__version__,
            "schema_version": API_SCHEMA_VERSION,
            "uptime_s": time.time() - self.created_at,
            "requests": self.stats.requests,
            "executed": self.stats.executed,
            "coalesced": self.stats.coalesced,
            "store_hits": self.stats.store_hits,
            "inflight": len(self._inflight),
            "threads": self.threads,
            "offload": self._offload_enabled,
            "store": (self.store.describe()
                      if self.store is not None else None),
            "evaluation_cache_entries": len(self.cache),
            "evaluation_cache_hits": self.cache.stats.hits,
            "evaluation_cache_misses": self.cache.stats.misses,
            "compiled_layout_cache_entries": compiled.currsize,
            "backend_instances": len(self._backends),
            "backends": backend_names(),
            "workers_default": self.resolve_workers(),
            "pool_size": self._pool_size,
        }


# ------------------------------------------------------------ default session
_DEFAULT_LOCK = threading.Lock()
_DEFAULT: Optional[Session] = None


def default_session() -> Session:
    """The lazily-created module-default session.

    This is the session behind the deprecation shims
    (``search_model``/``evaluate_model``/``model_costs``), the scenario
    runner's default, and ``python -m repro.serve``; sharing it is what
    turns N independent call sites into one warm cache and one pool.
    """
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = Session(name="default")
        return _DEFAULT


def reset_default_session() -> Session:
    """Replace the module-default session with a fresh one (tests)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        old, _DEFAULT = _DEFAULT, Session(name="default")
    if old is not None:
        old.close()
    return _DEFAULT
