"""The long-lived :class:`Session`: one object behind every façade request.

A ``Session`` is the amortization layer the per-call entry points never
had.  It owns, for its whole lifetime:

* the **evaluation cache** (:class:`~repro.search.cache.EvaluationCache`)
  shared by every analytical evaluation it runs — a second request touching
  the same (shape, arch, mapping, layout) cells is served from memory;
* the **backend instances** (one per (backend, architecture, seed)), so a
  simulator backend keeps its simulation memos warm across requests;
* a **persistent** ``ProcessPoolExecutor`` reused by every parallel search
  instead of paying pool startup per call;
* the **in-flight request table**: two identical requests submitted while
  the first is still running coalesce to one evaluation and share the same
  response object.

Worker-count resolution lives here and only here (explicit request value
over the session default over the ``REPRO_SEARCH_WORKERS`` environment
variable over serial) — the engine below executes a concrete count, and
the scenarios CLI, the experiments and the deprecation shims all inherit
the same precedence by routing through a session.

``run`` executes synchronously in the calling thread; ``submit`` returns a
``concurrent.futures.Future`` from a small session-owned thread pool.
Responses of coalesced requests are shared objects — treat them (and the
``ModelCost`` handles they carry) as immutable.

The module-default session (:func:`default_session`) is what the
deprecation shims and ``python -m repro.serve`` use; construct your own
``Session`` for isolated caches or an artifact directory.
"""

from __future__ import annotations

import hashlib
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

import repro
from repro.api import codec
from repro.api.requests import (
    API_SCHEMA_VERSION,
    EvalRequest,
    Request,
    SearchRequest,
    SweepRequest,
)
from repro.api.responses import EvalResponse, SearchResponse, SweepResponse
from repro.errors import InvalidRequestError
from repro.search.cache import EvaluationCache
from repro.search.parallel import resolve_workers as _env_workers
from repro.search.signatures import (
    arch_signature,
    layout_signature,
    mapping_signature,
    workload_signature,
)


@dataclass
class SessionStats:
    """Request counters of one session (monotonic, thread-safe enough)."""

    requests: int = 0
    """Requests accepted (run + submit, coalesced ones included)."""
    executed: int = 0
    """Requests that actually ran an evaluation."""
    coalesced: int = 0
    """Requests served by joining an identical in-flight request."""


def _digest(payload: Tuple) -> str:
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


@dataclass
class _Resolved:
    """Domain objects a request resolved to — computed once per request
    (key derivation and execution share them, never re-resolve)."""

    workload: object = None
    workloads: Optional[list] = None
    arch: object = None
    mapping: object = None
    layout: object = None
    layouts: Optional[list] = None
    cells: Optional[list] = None


def _resolve_request(request: Request) -> Tuple[str, _Resolved]:
    """Resolve a request's references and derive its content key.

    Raises :class:`InvalidRequestError` when the request does not resolve.
    """
    from repro.layoutloop.cost_model import DEFAULT_ENERGY_TABLE

    if isinstance(request, EvalRequest):
        resolved = _Resolved(
            workload=codec.resolve_workload(request.workload),
            arch=codec.resolve_arch(request.arch))
        resolved.mapping = codec.resolve_mapping(request.mapping,
                                                 resolved.workload,
                                                 resolved.arch)
        resolved.layout = codec.resolve_layout(request.layout)
        return _digest((
            "eval", API_SCHEMA_VERSION, repro.__version__,
            workload_signature(resolved.workload),
            getattr(resolved.workload, "name", ""),
            arch_signature(resolved.arch, DEFAULT_ENERGY_TABLE),
            mapping_signature(resolved.mapping), resolved.mapping.name,
            layout_signature(resolved.layout), request.backend,
            request.seed)), resolved
    if isinstance(request, SearchRequest):
        resolved = _Resolved(
            workloads=codec.resolve_workloads(request.workloads),
            arch=codec.resolve_arch(request.arch),
            layouts=codec.resolve_layouts(request.layouts))
        return _digest((
            "search", API_SCHEMA_VERSION, repro.__version__, request.model,
            tuple(workload_signature(w) for w in resolved.workloads),
            tuple(getattr(w, "name", "") for w in resolved.workloads),
            arch_signature(resolved.arch, DEFAULT_ENERGY_TABLE),
            (request.metric, request.max_mappings, request.seed,
             request.prune),
            request.layouts, request.backend)), resolved
    if isinstance(request, SweepRequest):
        from repro.scenarios.runner import cell_key

        resolved = _Resolved(cells=_sweep_cells(request))
        return _digest((
            "sweep", API_SCHEMA_VERSION, repro.__version__,
            tuple(cell_key(c) for c in resolved.cells), request.backend,
            request.force, request.skip_incompatible)), resolved
    raise InvalidRequestError(
        f"unsupported request type {type(request).__name__!r}")


def content_key(request: Request) -> str:
    """sha256 content address of a resolved request.

    Reuses the scenario-record hashing discipline
    (:func:`repro.scenarios.runner.cell_key`): keys cover resolved
    *structure* — workload shape signatures, the full architecture
    signature, the search-config identity, the package version — plus the
    labels that appear in the response; the guaranteed result-neutral
    execution knobs (``workers``, ``vectorize``, ``fresh_cache``) stay
    out.  Raises :class:`InvalidRequestError` when the request does not
    resolve.
    """
    return _resolve_request(request)[0]


def _sweep_cells(request: SweepRequest):
    """The deduplicated plan-order cells a sweep request selects."""
    from repro.scenarios.builtin import builtin_matrix
    from repro.scenarios.spec import ScenarioMatrix

    if request.scenarios is not None:
        matrix = ScenarioMatrix(name="request", scenarios=[
            codec.scenario_from_payload(p) for p in request.scenarios])
        return list(matrix.dedup())
    return list(builtin_matrix().filter(request.filter).dedup())


class Session:
    """A configured, long-lived façade context (see module docstring).

    Parameters:

    * ``workers`` — session-default worker count; ``None`` falls through
      to the ``REPRO_SEARCH_WORKERS`` environment variable, then serial.
    * ``runs_dir`` — artifact directory for sweep requests
      (content-addressed per-cell records + summaries); ``None`` keeps
      sweeps in memory.
    * ``name`` — label in ``describe()`` output (service health checks).

    Sessions are usable from several threads (the JSON service shares one
    across its handler threads); close with :meth:`close` or use as a
    context manager.
    """

    def __init__(self, workers: Optional[int] = None,
                 runs_dir: Optional[Path] = None, name: str = "session"):
        self.name = name
        self.workers = workers
        self.runs_dir = Path(runs_dir) if runs_dir is not None else None
        self.cache = EvaluationCache()
        self.stats = SessionStats()
        self.created_at = time.time()
        self._backends: Dict[Tuple, object] = {}
        self._mappers: Dict[Tuple, object] = {}
        self._lock = threading.Lock()
        self._inflight: Dict[str, Future] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_size = 0
        self._pool_busy = 0
        self._pool_unavailable = False
        self._threads: Optional[ThreadPoolExecutor] = None
        self._closed = False

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Shut down the worker pools (idempotent; caches are kept until
        the session is garbage collected)."""
        with self._lock:
            pool, self._pool = self._pool, None
            threads, self._threads = self._threads, None
            self._pool_size = 0
            self._closed = True
        if pool is not None:
            pool.shutdown()
        if threads is not None:
            threads.shutdown()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- workers
    def resolve_workers(self, explicit: Optional[int] = None) -> int:
        """The one place worker counts are resolved.

        Precedence: explicit argument > session default >
        ``REPRO_SEARCH_WORKERS`` environment variable > 1 (serial).
        Results are bit-identical for any resolved count.
        """
        if explicit is not None:
            return max(1, int(explicit))
        if self.workers is not None:
            return max(1, int(self.workers))
        return _env_workers(None)

    def _executor_for(self, workers: int) -> Optional[ProcessPoolExecutor]:
        """The persistent process pool (None = serial, or pools unavailable
        in this environment).

        Grown to ``workers`` only while no other request is using it — a
        concurrent user keeps the existing (possibly smaller) pool, which
        is safe because the engine caps effective workers at the pool
        size.  A pool broken by a dead worker process is replaced rather
        than cached forever; if replacement also fails, parallel requests
        degrade to serial (bit-identical either way).
        """
        if workers <= 1:
            return None
        with self._lock:
            if self._closed or self._pool_unavailable:
                return None
            pool = self._pool
            broken = pool is not None and getattr(pool, "_broken", False)
            if pool is not None and not broken:
                if self._pool_size >= workers or self._pool_busy > 0:
                    self._pool_busy += 1
                    return pool
            stale = pool
            try:
                self._pool = ProcessPoolExecutor(max_workers=workers)
            except (OSError, NotImplementedError):
                self._pool = None
                self._pool_size = 0
                self._pool_unavailable = True
                return None
            self._pool_size = workers
            self._pool_busy = 1
        if stale is not None:
            stale.shutdown(wait=False)
        return self._pool

    def _release_executor(self, pool: Optional[ProcessPoolExecutor]) -> None:
        if pool is None:
            return
        with self._lock:
            if pool is self._pool and self._pool_busy > 0:
                self._pool_busy -= 1

    def _thread_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._closed:
                raise RuntimeError(f"Session {self.name!r} is closed")
            if self._threads is None:
                self._threads = ThreadPoolExecutor(
                    max_workers=4, thread_name_prefix=f"repro-{self.name}")
            return self._threads

    # ------------------------------------------------------------- backends
    def backend_for(self, name: str, arch, seed: int = 0):
        """The session's memoized backend instance for (name, arch, seed).

        Analytical backends share the session evaluation cache; stateful
        backends (the simulator) keep their memos warm across requests.
        Unknown names raise :class:`~repro.errors.UnknownBackendError`.
        """
        from repro.backends import create_backend
        from repro.layoutloop.cost_model import DEFAULT_ENERGY_TABLE

        key = (name, arch_signature(arch, DEFAULT_ENERGY_TABLE), seed)
        with self._lock:
            instance = self._backends.get(key)
        if instance is not None:
            return instance
        if name == "analytical":
            instance = create_backend(name, arch, cache=self.cache)
        else:
            instance = create_backend(name, arch, seed=seed)
        with self._lock:
            return self._backends.setdefault(key, instance)

    def _mapper_for(self, arch, request: SearchRequest, backend):
        """A persistent per-configuration mapper (shared-cache serial path).

        Its whole-result memo is what makes repeat search requests near
        instant: determinism guarantees the memoized
        :class:`~repro.layoutloop.mapper.SearchResult` objects equal a
        fresh search's, so only the engine *counters* differ (a full memo
        hit reports zero evaluations) — ``fresh_cache`` requests bypass
        this layer for exactly that reason.
        """
        from repro.layoutloop.cost_model import DEFAULT_ENERGY_TABLE
        from repro.layoutloop.mapper import Mapper

        key = (arch_signature(arch, DEFAULT_ENERGY_TABLE), request.metric,
               request.max_mappings, request.seed, request.prune,
               request.backend, request.vectorize)
        with self._lock:
            mapper = self._mappers.get(key)
        if mapper is not None:
            return mapper
        mapper = Mapper(arch, metric=request.metric,
                        max_mappings=request.max_mappings, seed=request.seed,
                        prune=request.prune, evaluation_cache=self.cache,
                        vectorize=request.vectorize, backend=backend)
        with self._lock:
            return self._mappers.setdefault(key, mapper)

    # ------------------------------------------------------------ run/submit
    def run(self, request: Request):
        """Execute a request synchronously and return its typed response.

        An identical in-flight request (same content key and cache policy)
        is joined rather than re-executed — both callers receive the same
        response object.
        """
        key, resolved, future, owner = self._claim(request)
        if not owner:
            return future.result()
        try:
            response = self._execute(request, resolved, key)
        except BaseException as exc:
            future.set_exception(exc)
            self._release(request, key)
            raise
        future.set_result(response)
        self._release(request, key)
        return response

    def submit(self, request: Request) -> "Future":
        """Enqueue a request on the session's thread pool; returns a future.

        Two identical in-flight submissions return the *same* future (one
        engine evaluation, shared response object).
        """
        key, resolved, future, owner = self._claim(request)
        if not owner:
            return future

        def _work() -> None:
            try:
                future.set_result(self._execute(request, resolved, key))
            except BaseException as exc:  # delivered via future.result()
                future.set_exception(exc)
            finally:
                self._release(request, key)

        self._thread_pool().submit(_work)
        return future

    @staticmethod
    def _dedup_key(request: Request, key: str) -> str:
        # fresh_cache requests promise per-call-deterministic engine
        # counters; joining them onto a warm shared-cache execution (or
        # vice versa) would leak the other policy's counters into records,
        # so the two policies never coalesce with each other.
        if isinstance(request, SearchRequest) and request.fresh_cache:
            return key + ":fresh"
        return key

    def _claim(self, request: Request
               ) -> Tuple[str, _Resolved, Future, bool]:
        if self._closed:
            raise RuntimeError(f"Session {self.name!r} is closed")
        key, resolved = _resolve_request(request)
        dedup = self._dedup_key(request, key)
        with self._lock:
            self.stats.requests += 1
            existing = self._inflight.get(dedup)
            if existing is not None:
                self.stats.coalesced += 1
                return key, resolved, existing, False
            future: Future = Future()
            self._inflight[dedup] = future
            return key, resolved, future, True

    def _release(self, request: Request, key: str) -> None:
        with self._lock:
            self._inflight.pop(self._dedup_key(request, key), None)

    # ------------------------------------------------------------- execution
    def _execute(self, request: Request, resolved: _Resolved, key: str):
        with self._lock:
            self.stats.executed += 1
        if isinstance(request, EvalRequest):
            return self._execute_eval(request, resolved, key)
        if isinstance(request, SearchRequest):
            return self._execute_search(request, resolved, key)
        if isinstance(request, SweepRequest):
            return self._execute_sweep(request, resolved, key)
        raise InvalidRequestError(
            f"unsupported request type {type(request).__name__!r}")

    def _execute_eval(self, request: EvalRequest, resolved: _Resolved,
                      key: str) -> EvalResponse:
        workload, arch = resolved.workload, resolved.arch
        mapping, layout = resolved.mapping, resolved.layout
        backend = self.backend_for(request.backend, arch, request.seed)
        start = time.perf_counter()
        report = backend.evaluate(workload, mapping, layout)
        elapsed = time.perf_counter() - start
        payload = asdict(report)
        payload["total_energy_pj"] = report.total_energy_pj
        payload["energy_per_mac_pj"] = report.energy_per_mac_pj
        payload["edp"] = report.edp
        return EvalResponse(report=payload, backend=request.backend, key=key,
                            elapsed_s=elapsed, backend_report=report)

    def _execute_search(self, request: SearchRequest, resolved: _Resolved,
                        key: str) -> SearchResponse:
        from repro.scenarios.record import (
            model_cost_layers,
            model_cost_totals,
            search_stats_payload,
        )
        from repro.search.engine import _search_model_impl

        from repro.layoutloop.cosearch import unique_workloads

        workloads, arch = resolved.workloads, resolved.arch
        layouts = resolved.layouts
        workers = self.resolve_workers(request.workers)
        crossval = request.backend == "crossval"
        if crossval and layouts is not None:
            raise InvalidRequestError(
                "crossval does not support a layout restriction")
        crossval_payload = None
        start = time.perf_counter()
        search_backend = request.backend
        if crossval or request.backend == "analytical":
            search_backend = "analytical"
        else:
            search_backend = self.backend_for(request.backend, arch,
                                              request.seed)
        mapper = (self._mapper_for(arch, request, search_backend)
                  if not request.fresh_cache and workers <= 1 and not crossval
                  else None)
        if crossval:
            # Fail fast on incompatible cells before burning a co-search,
            # exactly like the legacy front.
            simulator = self.backend_for("simulator", arch, request.seed)
            for workload, _ in unique_workloads(workloads):
                simulator.check_cell(workload)
        pool = self._executor_for(workers)
        try:
            cost = _search_model_impl(
                arch, workloads, model_name=request.model,
                metric=request.metric, max_mappings=request.max_mappings,
                workers=workers, prune=request.prune, seed=request.seed,
                cache=None if request.fresh_cache else self.cache,
                vectorize=request.vectorize, backend=search_backend,
                layouts=layouts, executor=pool, mapper=mapper)
        finally:
            self._release_executor(pool)
        if crossval:
            from repro.backends.crossval import cross_validate_model

            # The analytical co-search above ran with this session's
            # caches/pool; the simulator leg reuses the session's memoized
            # backend instance.  The validation embeds the arch label the
            # caller asked for (the registry name when the request came by
            # name).
            label = (request.arch if isinstance(request.arch, str)
                     else arch.name)
            cost, validation = cross_validate_model(
                arch, workloads, model_name=request.model,
                metric=request.metric, max_mappings=request.max_mappings,
                seed=request.seed, prune=request.prune, arch_label=label,
                cost=cost, simulator=simulator)
            crossval_payload = validation.as_dict()
        elapsed = time.perf_counter() - start
        stats = cost.search_stats
        arch_label = (request.arch if isinstance(request.arch, str)
                      else cost.arch)
        return SearchResponse(
            model=request.model, arch=arch_label, backend=request.backend,
            key=key, totals=model_cost_totals(cost),
            layers=[asdict(layer) for layer in model_cost_layers(cost)],
            search=search_stats_payload(stats), crossval=crossval_payload,
            workers=stats.workers, elapsed_s=elapsed, cost=cost)

    def _execute_sweep(self, request: SweepRequest, resolved: _Resolved,
                       key: str) -> SweepResponse:
        from repro.scenarios.runner import run_matrix
        from repro.scenarios.spec import ScenarioMatrix

        matrix = ScenarioMatrix(name="request", scenarios=resolved.cells)
        start = time.perf_counter()
        run = run_matrix(matrix, workers=request.workers,
                         vectorize=request.vectorize, runs_dir=self.runs_dir,
                         force=request.force, backend=request.backend,
                         skip_incompatible=request.skip_incompatible,
                         session=self)
        elapsed = time.perf_counter() - start
        return SweepResponse(
            records=[r.record.to_dict() for r in run.results],
            cached=[r.cached for r in run.results],
            skipped=[{"scenario": s.name, "reason": reason}
                     for s, reason in run.skipped],
            key=key, elapsed_s=elapsed, results=run)

    # ------------------------------------------------------------ inspection
    def describe(self) -> Dict[str, object]:
        """Health/inspection payload (what ``/v1/healthz`` reports)."""
        from repro.backends import backend_names
        from repro.kernel.compiled import _compile

        compiled = _compile.cache_info()
        return {
            "name": self.name,
            "version": repro.__version__,
            "schema_version": API_SCHEMA_VERSION,
            "uptime_s": time.time() - self.created_at,
            "requests": self.stats.requests,
            "executed": self.stats.executed,
            "coalesced": self.stats.coalesced,
            "inflight": len(self._inflight),
            "evaluation_cache_entries": len(self.cache),
            "evaluation_cache_hits": self.cache.stats.hits,
            "evaluation_cache_misses": self.cache.stats.misses,
            "compiled_layout_cache_entries": compiled.currsize,
            "backend_instances": len(self._backends),
            "backends": backend_names(),
            "workers_default": self.resolve_workers(),
            "pool_size": self._pool_size,
        }


# ------------------------------------------------------------ default session
_DEFAULT_LOCK = threading.Lock()
_DEFAULT: Optional[Session] = None


def default_session() -> Session:
    """The lazily-created module-default session.

    This is the session behind the deprecation shims
    (``search_model``/``evaluate_model``/``model_costs``), the scenario
    runner's default, and ``python -m repro.serve``; sharing it is what
    turns N independent call sites into one warm cache and one pool.
    """
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = Session(name="default")
        return _DEFAULT


def reset_default_session() -> Session:
    """Replace the module-default session with a fresh one (tests)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        old, _DEFAULT = _DEFAULT, Session(name="default")
    if old is not None:
        old.close()
    return _DEFAULT
