"""NEST: FEATHER's neural engine with spatial forwarding and temporal reduction."""

from repro.nest.pe import ProcessingElement
from repro.nest.array import NestArray, NestTiming, RowResult

__all__ = [
    "ProcessingElement",
    "NestArray",
    "NestTiming",
    "RowResult",
]
