"""Processing element of the NEST array.

Each PE (Fig. 8) holds a small ping-pong weight register file, multiplies an
incoming (zero-point-corrected) iAct with a locally held weight, and
accumulates the product into a local 32-bit register — the *local temporal
reduction* of Phase 1.  When its row's turn on the shared column output bus
arrives (Phase 2), the PE drains the accumulated partial sum and resets.

The ping-pong weight registers let the next tile's weights stream in while
the current tile is still computing, which is how FEATHER hides the AH^2
weight-loading latency mentioned in Fig. 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass
class ProcessingElement:
    """One multiply-accumulate PE with ping-pong weight registers."""

    row: int
    col: int
    weight_capacity: int = 16
    iact_zero_point: int = 0
    weight_zero_point: int = 0

    def __post_init__(self) -> None:
        self._weights: List[List[int]] = [[], []]
        self._active_bank = 0
        self.accumulator: int = 0
        self.macs_performed: int = 0
        self.weight_loads: int = 0

    # ----------------------------------------------------------------- weights
    @property
    def weights(self) -> List[int]:
        """The weights currently used for computation (active bank)."""
        return list(self._weights[self._active_bank])

    @property
    def shadow_weights(self) -> List[int]:
        return list(self._weights[1 - self._active_bank])

    def load_weights(self, values: Sequence[int], into_shadow: bool = True) -> None:
        """Load a weight vector into the shadow (or active) register bank."""
        values = list(values)
        if len(values) > self.weight_capacity:
            raise ValueError(
                f"PE({self.row},{self.col}): {len(values)} weights exceed capacity "
                f"{self.weight_capacity}")
        bank = 1 - self._active_bank if into_shadow else self._active_bank
        self._weights[bank] = values
        self.weight_loads += len(values)

    def swap_weight_banks(self) -> None:
        """Make the shadow bank active (start of a new stationary tile)."""
        self._active_bank = 1 - self._active_bank

    # ----------------------------------------------------------------- compute
    def multiply_accumulate(self, iact: int, weight_index: int = 0) -> int:
        """Phase 1 step: acc += (iact - zp_i) * (w - zp_w); returns the product."""
        weights = self._weights[self._active_bank]
        if not 0 <= weight_index < len(weights):
            raise IndexError(
                f"PE({self.row},{self.col}): weight index {weight_index} out of range "
                f"({len(weights)} loaded)")
        product = (int(iact) - self.iact_zero_point) * (
            int(weights[weight_index]) - self.weight_zero_point)
        self.accumulator += product
        self.macs_performed += 1
        return product

    def drain(self) -> int:
        """Phase 2 step: emit the locally reduced partial sum and clear it."""
        value = self.accumulator
        self.accumulator = 0
        return value

    def reset(self) -> None:
        """Clear the accumulator (start of a new output)."""
        self.accumulator = 0

    # ------------------------------------------------------------------- stats
    def stats(self) -> dict:
        """Position and activity counters of this PE."""
        return {
            "row": self.row,
            "col": self.col,
            "macs": self.macs_performed,
            "weight_loads": self.weight_loads,
        }
