"""NEST array: 2D PE grid with local temporal reduction and time-multiplexed
spatial reduction (paper §III-A and Fig. 9).

The array is ``AH`` rows by ``AW`` columns.  Computation proceeds in two
interleaved phases:

* **Phase 1 — local temporal reduction.**  Every PE multiplies streaming
  iActs with its locally held weights and accumulates into a local register.
* **Phase 2 — interleaved spatial forwarding/reduction.**  One row at a time
  drains its ``AW`` locally reduced partial sums onto the column output buses
  (one bus per column) and hands them to BIRRD for spatial reduction.  While
  a row occupies the buses, the other rows keep doing Phase 1, so in steady
  state every PE is busy every cycle and the single BIRRD instance serves the
  whole 2D array.

:class:`NestArray` provides a functional GEMM executor (which the FEATHER
top-level uses for both GEMMs and im2col'd convolutions) plus the
:class:`NestTiming` model that reproduces the paper's cycle accounting
(``AH^2`` weight-load latency hidden behind computation, one row of global
reduction per cycle in steady state).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.nest.pe import ProcessingElement


@dataclass(frozen=True)
class RowResult:
    """Partial sums drained by one row during one Phase-2 turn."""

    cycle: int
    row: int
    partial_sums: Tuple[int, ...]
    temporal_tile: Tuple[int, ...]


@dataclass(frozen=True)
class NestTiming:
    """Cycle accounting for running one stationary tile on the array."""

    warmup_cycles: int
    steady_cycles: int
    drain_cycles: int
    weight_load_cycles_hidden: int
    total_macs: int

    @property
    def total_cycles(self) -> int:
        return self.warmup_cycles + self.steady_cycles + self.drain_cycles

    @property
    def achieved_macs_per_cycle(self) -> float:
        return self.total_macs / self.total_cycles if self.total_cycles else 0.0


class NestArray:
    """Functional + timing model of an ``AH x AW`` NEST.

    The functional executor targets GEMMs of the form
    ``out[M, N] = sum_K  w[M, K] * x[K, N]`` with the weight matrix held
    stationary: rows of the array carry distinct ``M`` indices, columns carry
    ``(K, M)`` sub-tiles (``col_k`` reduction lanes times ``col_m`` output
    lanes), and the K reduction beyond the column lanes is performed
    temporally inside each PE — exactly the structure of the Fig. 9
    walk-through (there ``col_k = 2`` channels and ``col_m = 2`` kernels).
    """

    def __init__(self, rows: int, cols: int, weight_capacity: int = 64):
        if rows < 1 or cols < 1:
            raise ValueError("array must have at least one row and one column")
        self.rows = rows
        self.cols = cols
        self.pes = [
            [ProcessingElement(r, c, weight_capacity=weight_capacity) for c in range(cols)]
            for r in range(rows)
        ]
        self.total_row_drains = 0

    # ---------------------------------------------------------------- geometry
    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    def pe(self, row: int, col: int) -> ProcessingElement:
        """The processing element at (row, col)."""
        return self.pes[row][col]

    # ------------------------------------------------------------------ timing
    def timing_for_tile(self, temporal_steps: int, macs_per_pe_per_step: int,
                        utilization: float = 1.0) -> NestTiming:
        """Cycle count for one stationary tile.

        ``temporal_steps`` is the number of Phase-1/Phase-2 rounds (each round
        every PE accumulates ``macs_per_pe_per_step`` products and then each
        row takes one bus turn).  Steady state issues one row drain per cycle,
        so a round costs ``max(macs_per_pe_per_step, rows)`` cycles once the
        pipeline is full; warm-up costs one full local-reduction phase, and
        the tail drains the last ``rows`` bus turns.
        """
        if temporal_steps < 0 or macs_per_pe_per_step < 0:
            raise ValueError("temporal_steps and macs_per_pe_per_step must be >= 0")
        if temporal_steps == 0:
            return NestTiming(0, 0, 0, 0, 0)
        per_round = max(macs_per_pe_per_step, self.rows)
        warmup = macs_per_pe_per_step
        steady = per_round * max(0, temporal_steps - 1)
        drain = self.rows
        macs = int(temporal_steps * macs_per_pe_per_step * self.num_pes * utilization)
        return NestTiming(
            warmup_cycles=warmup,
            steady_cycles=steady,
            drain_cycles=drain,
            weight_load_cycles_hidden=self.rows * self.rows,
            total_macs=macs,
        )

    # --------------------------------------------------------------- execution
    def run_gemm_tile(self, weights: np.ndarray, iacts: np.ndarray,
                      col_k: Optional[int] = None) -> Iterator[RowResult]:
        """Execute ``out = weights @ iacts`` with weights stationary.

        ``weights`` is ``(M, K)``, ``iacts`` is ``(K, N)``; ``M`` must not
        exceed ``rows * (cols // col_k)`` for a single stationary tile — the
        FEATHER top level tiles larger problems before calling this.

        ``col_k`` is the number of reduction lanes per row (the spatial
        reduction group size BIRRD will see).  The remaining ``cols // col_k``
        lanes carry distinct M values within the row.  K beyond ``col_k`` is
        reduced temporally inside the PEs.

        Yields one :class:`RowResult` per (output column, row) drain — i.e.
        the raw vectors that feed BIRRD, ordered exactly as Phase 2 emits
        them.  Each partial-sum vector contains, for every column lane, the
        local temporal reduction of that lane's K sub-slice.
        """
        weights = np.asarray(weights)
        iacts = np.asarray(iacts)
        if weights.ndim != 2 or iacts.ndim != 2:
            raise ValueError("weights and iacts must be 2D")
        m_total, k_total = weights.shape
        k_check, n_total = iacts.shape
        if k_check != k_total:
            raise ValueError(f"K mismatch: weights K={k_total}, iacts K={k_check}")

        if col_k is None:
            col_k = min(self.cols, 2 ** int(math.log2(max(k_total, 1))) or 1)
            col_k = max(1, min(col_k, self.cols))
        if self.cols % col_k != 0:
            raise ValueError(f"col_k={col_k} must divide array cols={self.cols}")
        col_m = self.cols // col_k

        m_per_tile = self.rows * col_m
        if m_total > m_per_tile:
            raise ValueError(
                f"stationary tile supports at most {m_per_tile} output rows, got {m_total}")

        # Distribute K across col_k lanes; each lane reduces its slice temporally.
        k_per_lane = math.ceil(k_total / col_k)

        # Load weights: PE (r, c) with c = m_lane * col_k + k_lane holds the
        # weights of output row (r * col_m + m_lane) for K slice k_lane.
        for r in range(self.rows):
            for m_lane in range(col_m):
                m_idx = r * col_m + m_lane
                for k_lane in range(col_k):
                    pe = self.pes[r][m_lane * col_k + k_lane]
                    if m_idx < m_total:
                        k_slice = weights[m_idx, k_lane * k_per_lane:(k_lane + 1) * k_per_lane]
                        pe.load_weights([int(v) for v in k_slice], into_shadow=False)
                    else:
                        pe.load_weights([], into_shadow=False)

        cycle = 0
        for n_idx in range(n_total):
            # Phase 1: every PE accumulates its K slice for this output column.
            for r in range(self.rows):
                for m_lane in range(col_m):
                    m_idx = r * col_m + m_lane
                    for k_lane in range(col_k):
                        pe = self.pes[r][m_lane * col_k + k_lane]
                        if m_idx >= m_total:
                            continue
                        k_start = k_lane * k_per_lane
                        for local_idx, k_idx in enumerate(
                                range(k_start, min(k_start + k_per_lane, k_total))):
                            pe.multiply_accumulate(int(iacts[k_idx, n_idx]), local_idx)
                            cycle += 1 if r == 0 and m_lane == 0 and k_lane == 0 else 0
            # Phase 2: rows drain one after another onto the column buses.
            for r in range(self.rows):
                sums = tuple(self.pes[r][c].drain() for c in range(self.cols))
                self.total_row_drains += 1
                yield RowResult(cycle=cycle + r, row=r, partial_sums=sums,
                                temporal_tile=(n_idx,))
            cycle += self.rows

    # ------------------------------------------------------------------- stats
    def total_macs(self) -> int:
        """MAC operations performed across the whole array (count)."""
        return sum(pe.macs_performed for row in self.pes for pe in row)

    def reset(self) -> None:
        """Clear accumulators and statistics (start of a new layer)."""
        for row in self.pes:
            for pe in row:
                pe.reset()
                pe.macs_performed = 0
                pe.weight_loads = 0
        self.total_row_drains = 0
