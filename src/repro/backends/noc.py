"""Reduction-NoC evaluation backends: the paper's reference topologies.

Promotes the reference reduction networks of
:mod:`repro.noc.reference_networks` (Table I's comparison points against
BIRRD) to first-class evaluation backends — ``noc:linear`` (systolic-style
accumulation chain), ``noc:tree`` (MAERI ART-like binary adder tree) and
``noc:fan`` (SIGMA's forwarding adder network) — so one scenario sweep can
compare FEATHER against alternative reduction topologies on the same
workload grid.

Each backend starts from the analytical cost of the cell and adds the
*exposed* cost of its reduction topology: every array activation produces
spatial-reduction groups of ``mapping.spatial_reduction_size`` partial
sums, the reference network's ``reduce()`` prices one group merge, and
every reduction cycle beyond the single accumulate-per-step the baseline
model already assumes lands on the critical path.  A linear chain pays
O(group) per step, the trees pay O(log2(group)), and a serial mapping
(group 1) pays nothing — so searches on these backends trade spatial
reduction against its network cost, which is exactly the design question
the paper's Table I poses.

Constraints ride along (:func:`~repro.constraints.noc_constraints`): the
adder tree only reduces power-of-two groups, so ``noc:tree`` searches
repair reduction-dim parallel degrees down to powers of two, and direct
evaluations of an illegal cell fail with the violated constraint named.
"""

from __future__ import annotations

from typing import Optional

from repro.backends.base import BackendReport, EvaluationBackend
from repro.backends.simulator import BackendCompatibilityError
from repro.constraints import noc_constraints
from repro.layoutloop.arch import ArchSpec
from repro.layoutloop.cost_model import CostModel
from repro.noc.reference_networks import (
    AdderTree,
    ForwardingAdderNetwork,
    LinearReductionChain,
)
from repro.search.cache import EvaluationCache

#: Topology name -> reference network class.
TOPOLOGIES = {
    "linear": LinearReductionChain,
    "tree": AdderTree,
    "fan": ForwardingAdderNetwork,
}


class NocBackend(EvaluationBackend):
    """Analytical cell cost plus the exposed cost of one reduction topology."""

    def __init__(self, topology: str, arch: ArchSpec, energy=None,
                 seed: int = 0):
        if topology not in TOPOLOGIES:
            raise ValueError(f"unknown NoC topology {topology!r}; expected "
                             f"one of {sorted(TOPOLOGIES)}")
        super().__init__(arch)
        self.topology = topology
        self.name = f"noc:{topology}"
        self.seed = seed
        self._cost_model = CostModel(arch, energy)
        self._energy_cache = EvaluationCache()
        self.constraints = noc_constraints(topology, arch)

    # ------------------------------------------------------------- reduction
    def _reduction_cycles(self, mapping) -> tuple:
        """(cycles, adds) one group merge costs on this topology.

        Prices the merge by actually running the reference network on one
        group of partial sums — the functional models are the spec.
        """
        group = mapping.spatial_reduction_size
        if group <= 1:
            return 0, 0
        if self.topology == "tree":
            if group & (group - 1):
                raise BackendCompatibilityError(
                    f"constraint 'pow2-spatial-reduction' violated: the "
                    f"adder tree of backend {self.name!r} reduces "
                    f"power-of-two groups only, but mapping "
                    f"{mapping.name!r} spatially reduces {group} partial "
                    f"sums; search with the backend's ConstraintSet (or "
                    f"repair the mapping) instead")
            outcome = AdderTree(group).reduce([0] * group, group)
        elif self.topology == "fan":
            width = 1 << (group - 1).bit_length()
            outcome = ForwardingAdderNetwork(width).reduce_groups(
                [0] * group, [0])
        else:
            outcome = LinearReductionChain(group).reduce([0] * group, group)
        return outcome.cycles, outcome.adds

    # -------------------------------------------------------------- evaluate
    def evaluate(self, workload, mapping, layout) -> BackendReport:
        cost, _ = self._energy_cache.evaluate(self._cost_model, workload,
                                              mapping, layout)
        cycles_per_step, adds_per_step = self._reduction_cycles(mapping)
        # The analytical model already accounts one accumulate per step;
        # anything beyond it is exposed reduction latency.
        exposed_per_step = max(0, cycles_per_step - 1)
        steps = mapping.compute_cycles(workload)
        exposed = float(exposed_per_step) * float(steps)
        total_cycles = cost.total_cycles + exposed
        num_pes = self.arch.num_pes
        practical = (cost.macs / (total_cycles * num_pes)
                     if total_cycles else 0.0)
        return BackendReport(
            backend=self.name,
            workload=cost.workload,
            arch=cost.arch,
            mapping=cost.mapping,
            layout=cost.layout,
            macs=cost.macs,
            compute_cycles=cost.compute_cycles,
            slowdown=cost.slowdown,
            stall_cycles=cost.stall_cycles + exposed,
            reorder_cycles_exposed=cost.reorder_cycles_exposed,
            total_cycles=total_cycles,
            utilization=cost.utilization,
            practical_utilization=min(1.0, practical),
            energy_breakdown_pj=dict(cost.energy_breakdown_pj),
            extra={
                "reduction_group": float(mapping.spatial_reduction_size),
                "reduction_cycles_per_step": float(cycles_per_step),
                "reduction_adds_per_step": float(adds_per_step),
                "reduction_cycles_exposed": exposed,
            },
        )
