"""Cross-validation of the analytical model against the cycle-level simulator.

The paper's central claim — reorder-in-reduction makes layout switching
free, so co-searched (mapping, layout) pairs never stall on bank conflicts
or write serialization — is encoded in the analytical model as
``slowdown = 1.0`` for RIR architectures.  Cross-validation machine-checks
that encoding: run the analytical co-search, then *execute* every winning
pair on the simulator and record the per-cell analytical-vs-simulated
cycle and utilization deltas alongside the simulator's independently
measured read slowdown and write serialization.

:func:`cross_validate_model` is the library API;
``python -m repro.scenarios run`` embeds its output in the records of
``backend="crossval"`` scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.backends.simulator import SimulatorBackend
from repro.layoutloop.arch import ArchSpec
from repro.layoutloop.cosearch import ModelCost
from repro.layoutloop.energy import EnergyTable


@dataclass(frozen=True)
class CellValidation:
    """Analytical-vs-simulated comparison of one co-searched winner."""

    workload: str
    count: int
    mapping: str
    layout: str
    analytical_cycles: float
    simulated_cycles: float
    cycle_delta: float
    """Relative latency gap ``simulated / analytical - 1`` (0.0 = exact)."""
    analytical_utilization: float
    """Analytical practical utilization (0..1)."""
    simulated_utilization: float
    """Simulated practical utilization (0..1)."""
    utilization_delta: float
    """``simulated - analytical`` utilization (absolute, -1..1)."""
    analytical_slowdown: float
    """The model's bank-conflict slowdown (1.0 for RIR by construction)."""
    simulated_read_slowdown: float
    """The simulator's measured StaB read slowdown."""
    simulated_write_serialization: float
    """The simulator's measured oAct write serialization (the RIR claim
    says this is 1.0 for co-searched pairs)."""

    def as_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "count": self.count,
            "mapping": self.mapping,
            "layout": self.layout,
            "analytical_cycles": self.analytical_cycles,
            "simulated_cycles": self.simulated_cycles,
            "cycle_delta": self.cycle_delta,
            "analytical_utilization": self.analytical_utilization,
            "simulated_utilization": self.simulated_utilization,
            "utilization_delta": self.utilization_delta,
            "analytical_slowdown": self.analytical_slowdown,
            "simulated_read_slowdown": self.simulated_read_slowdown,
            "simulated_write_serialization": self.simulated_write_serialization,
        }


@dataclass
class CrossValidation:
    """Per-cell deltas of one cross-validated co-search."""

    arch: str
    model: str
    seed: int
    cells: List[CellValidation] = field(default_factory=list)

    @property
    def max_abs_cycle_delta(self) -> float:
        """Largest relative latency gap across cells (0.0 when empty)."""
        return max((abs(c.cycle_delta) for c in self.cells), default=0.0)

    @property
    def rir_claim_holds(self) -> bool:
        """True when no co-searched cell stalled in the simulator —
        every read slowdown and write serialization is exactly 1.0."""
        return all(c.simulated_read_slowdown == 1.0
                   and c.simulated_write_serialization == 1.0
                   for c in self.cells)

    def as_dict(self) -> Dict[str, object]:
        return {
            "arch": self.arch,
            "model": self.model,
            "seed": self.seed,
            "max_abs_cycle_delta": self.max_abs_cycle_delta,
            "rir_claim_holds": self.rir_claim_holds,
            "cells": [cell.as_dict() for cell in self.cells],
        }


def cross_validate_model(arch: ArchSpec, workloads: Sequence,
                         model_name: str = "model", metric: str = "edp",
                         max_mappings: int = 50, seed: int = 0,
                         energy: Optional[EnergyTable] = None,
                         workers: Optional[int] = 1, vectorize: bool = True,
                         prune: bool = True,
                         arch_label: Optional[str] = None,
                         cost: Optional[ModelCost] = None,
                         simulator: Optional[SimulatorBackend] = None,
                         ) -> Tuple[ModelCost, CrossValidation]:
    """Analytical co-search plus simulator execution of every winner.

    Returns ``(analytical ModelCost, CrossValidation)``; the analytical
    cost is exactly what :func:`repro.search.engine.search_model` returns
    for the same arguments, so cross-validation scenarios stay comparable
    with plain analytical ones cell for cell.  ``arch_label`` overrides
    the architecture name embedded in the validation (the scenario runner
    passes its registry name so record and payload agree).

    ``cost`` (if given) is an already-computed analytical co-search of
    exactly these arguments and skips the internal search — the
    :class:`repro.api.Session` passes its own so the analytical leg runs
    on the session's caches and pool rather than this function's;
    ``simulator`` likewise substitutes a caller-owned (memo-warm) backend
    instance for the same ``(arch, energy, seed)``.  Results are
    bit-identical either way.

    Simulator compatibility is checked *before* the analytical search —
    an incompatible cell (non-RIR arch, workload over the MAC bound)
    fails fast instead of burning a full co-search first.
    """
    from repro.layoutloop.cosearch import unique_workloads
    from repro.search.engine import search_model

    workloads = list(workloads)
    if simulator is None:
        simulator = SimulatorBackend(arch, energy=energy, seed=seed)
    for workload, _ in unique_workloads(workloads):
        simulator.check_cell(workload)
    if cost is None:
        cost = search_model(arch, workloads, model_name=model_name,
                            metric=metric, max_mappings=max_mappings,
                            energy=energy, workers=workers, seed=seed,
                            vectorize=vectorize, prune=prune)
    validation = CrossValidation(arch=arch_label or cost.arch,
                                 model=cost.model, seed=seed)
    for choice, (workload, count) in zip(cost.layer_choices,
                                         unique_workloads(workloads)):
        result = choice.result
        analytical = result.best_report
        simulated = simulator.evaluate(workload, result.best_mapping,
                                       result.best_layout)
        cycle_delta = (simulated.total_cycles / analytical.total_cycles - 1.0
                       if analytical.total_cycles else 0.0)
        validation.cells.append(CellValidation(
            workload=result.workload,
            count=count,
            mapping=result.best_mapping.name,
            layout=result.best_layout.name,
            analytical_cycles=analytical.total_cycles,
            simulated_cycles=simulated.total_cycles,
            cycle_delta=cycle_delta,
            analytical_utilization=analytical.practical_utilization,
            simulated_utilization=simulated.practical_utilization,
            utilization_delta=(simulated.practical_utilization
                               - analytical.practical_utilization),
            analytical_slowdown=analytical.slowdown,
            simulated_read_slowdown=simulated.extra["read_slowdown"],
            simulated_write_serialization=(
                simulated.extra["write_serialization"]),
        ))
    return cost, validation
