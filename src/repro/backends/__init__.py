"""Unified evaluation backends: analytical model and cycle-level simulator.

One protocol (:class:`EvaluationBackend`), one comparable result type
(:class:`BackendReport`, in :class:`CostReport` vocabulary), two built-in
implementations behind a name registry:

* ``"analytical"`` — the Timeloop-style Layoutloop cost model (§V),
  memoized + vectorized, bit-identical to calling it directly;
* ``"simulator"`` — the numerically-exact cycle-accounting FEATHER
  simulator (§III), with deterministic seeded weight/iAct generation.

On top of the protocol:

* :func:`multifidelity_search` — analytical shortlist, simulator
  verification of the top-k (mapping, layout) pairs per shape;
* :func:`cross_validate_model` — execute every analytically co-searched
  winner on the simulator and record per-cell cycle/utilization deltas
  (the machine-check of the paper's reorder-in-reduction claim).

`repro.search`, `repro.layoutloop.mapper` and `repro.scenarios` all take a
``backend=`` argument resolved through this registry (default
``"analytical"``); ``python -m repro.scenarios run --backend simulator``
is the CLI front.
"""

from repro.backends.analytical import AnalyticalBackend
from repro.backends.base import (
    DEFAULT_BACKEND,
    BackendReport,
    EvaluationBackend,
    backend_names,
    create_backend,
    register_backend,
    report_from_cost,
)
from repro.backends.crossval import (
    CellValidation,
    CrossValidation,
    cross_validate_model,
)
from repro.backends.multifidelity import (
    MultiFidelityModelResult,
    MultiFidelityResult,
    VerifiedCandidate,
    multifidelity_search,
    multifidelity_search_layer,
)
from repro.backends.simulator import (
    BackendCompatibilityError,
    SimulatorBackend,
    cell_rng,
    feather_config_for,
    seeded_conv_tensors,
    seeded_gemm_tensors,
)

register_backend("analytical", AnalyticalBackend)
register_backend("simulator", SimulatorBackend)

__all__ = [
    "AnalyticalBackend",
    "BackendCompatibilityError",
    "BackendReport",
    "CellValidation",
    "CrossValidation",
    "DEFAULT_BACKEND",
    "EvaluationBackend",
    "MultiFidelityModelResult",
    "MultiFidelityResult",
    "SimulatorBackend",
    "VerifiedCandidate",
    "backend_names",
    "cell_rng",
    "create_backend",
    "cross_validate_model",
    "feather_config_for",
    "multifidelity_search",
    "multifidelity_search_layer",
    "register_backend",
    "report_from_cost",
    "seeded_conv_tensors",
    "seeded_gemm_tensors",
]
