"""Unified evaluation backends: analytical model and cycle-level simulator.

One protocol (:class:`EvaluationBackend`), one comparable result type
(:class:`BackendReport`, in :class:`CostReport` vocabulary), the built-in
implementations behind a name registry:

* ``"analytical"`` — the Timeloop-style Layoutloop cost model (§V),
  memoized + vectorized, bit-identical to calling it directly;
* ``"simulator"`` — the numerically-exact cycle-accounting FEATHER
  simulator (§III), with deterministic seeded weight/iAct generation;
* ``"systolic"`` — the rigid weight-stationary array baseline (Fig. 4),
  carrying :func:`~repro.constraints.systolic_constraints`;
* ``"noc:linear"`` / ``"noc:tree"`` / ``"noc:fan"`` — analytical cost
  plus the exposed latency of a reference reduction topology (Table I),
  carrying :func:`~repro.constraints.noc_constraints`.

On top of the protocol:

* :func:`multifidelity_search` — analytical shortlist, simulator
  verification of the top-k (mapping, layout) pairs per shape;
* :func:`cross_validate_model` — execute every analytically co-searched
  winner on the simulator and record per-cell cycle/utilization deltas
  (the machine-check of the paper's reorder-in-reduction claim).

`repro.search`, `repro.layoutloop.mapper` and `repro.scenarios` all take a
``backend=`` argument resolved through this registry (default
``"analytical"``); ``python -m repro.scenarios run --backend simulator``
is the CLI front.
"""

from functools import partial

from repro.backends.analytical import AnalyticalBackend
from repro.backends.base import (
    DEFAULT_BACKEND,
    BackendReport,
    EvaluationBackend,
    backend_names,
    create_backend,
    register_backend,
    report_from_cost,
)
from repro.backends.crossval import (
    CellValidation,
    CrossValidation,
    cross_validate_model,
)
from repro.backends.multifidelity import (
    MultiFidelityModelResult,
    MultiFidelityResult,
    VerifiedCandidate,
    multifidelity_search,
    multifidelity_search_layer,
)
from repro.backends.noc import TOPOLOGIES, NocBackend
from repro.backends.simulator import (
    BackendCompatibilityError,
    SimulatorBackend,
    cell_rng,
    feather_config_for,
    seeded_conv_tensors,
    seeded_gemm_tensors,
)
from repro.backends.systolic import SystolicBackend

register_backend("analytical", AnalyticalBackend)
register_backend("simulator", SimulatorBackend)
register_backend("systolic", SystolicBackend)
for _topology in TOPOLOGIES:
    register_backend(f"noc:{_topology}", partial(NocBackend, _topology))
del _topology

__all__ = [
    "AnalyticalBackend",
    "BackendCompatibilityError",
    "BackendReport",
    "CellValidation",
    "CrossValidation",
    "DEFAULT_BACKEND",
    "EvaluationBackend",
    "MultiFidelityModelResult",
    "MultiFidelityResult",
    "NocBackend",
    "SimulatorBackend",
    "SystolicBackend",
    "TOPOLOGIES",
    "VerifiedCandidate",
    "backend_names",
    "cell_rng",
    "create_backend",
    "cross_validate_model",
    "feather_config_for",
    "multifidelity_search",
    "multifidelity_search_layer",
    "register_backend",
    "report_from_cost",
    "seeded_conv_tensors",
    "seeded_gemm_tensors",
]
