"""The simulator backend: cycle-accounting FEATHER runs behind the protocol.

Where the analytical backend *estimates* a cell, this backend *executes*
it: the workload's tensors are generated deterministically from a seed,
lowered onto a :class:`~repro.feather.accelerator.FeatherAccelerator`
instance shaped like the cell's architecture, checked against the numpy
reference, and the accelerator's :class:`ExecutionStats` (bank-conflict
read slowdown, oAct write serialization, BIRRD cycles) are mapped into the
common :class:`~repro.backends.base.BackendReport`.

Scope and conventions:

* only FEATHER-like architectures (reorder-in-reduction, power-of-two
  array width) can be simulated — anything else raises immediately;
* timing is data-independent, so the seed affects the functional values
  (which are verified exactly) but never the cycle counts; the seed is
  still embedded in every report so records replay bit-identically;
* the simulator does not model energy.  Reports borrow the analytical
  energy breakdown for the same cell, so energy columns stay comparable
  across backends and the *cycles/utilization* deltas are the signal;
* cells are bounded by ``max_macs`` — the functional NEST is a Python-loop
  model, so simulator sweeps are meant for micro-cells (the built-in
  ``simulator``/``crossval`` scenarios), not for full ResNet layers.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple

import numpy as np

from repro.backends.base import BackendReport, EvaluationBackend
from repro.errors import IncompatibleCellError
from repro.feather.accelerator import (
    ExecutionStats,
    FeatherAccelerator,
    reference_conv,
)
from repro.feather.config import FeatherConfig
from repro.layout.patterns import ReorderImplementation
from repro.layoutloop.arch import ArchSpec
from repro.layoutloop.cost_model import CostModel
from repro.layoutloop.energy import EnergyTable
from repro.search.cache import EvaluationCache
from repro.search.signatures import workload_signature
from repro.workloads.conv import ConvLayerSpec
from repro.workloads.gemm import GemmSpec

#: Default per-cell MAC bound: keeps a sweep-wide `--backend simulator` on
#: paper-scale cells from looking like a hang (the functional NEST is a
#: Python-loop model, ~2e5 MACs/s, and a co-search simulates one cell per
#: candidate layout).  Raise it explicitly for one-off large simulations.
DEFAULT_MAX_MACS = 500_000


class BackendCompatibilityError(IncompatibleCellError):
    """A cell this backend cannot run by design (not a configuration bug):
    a non-RIR architecture, a non-power-of-two array width, or a workload
    over the simulator's MAC bound.  ``run_matrix(skip_incompatible=True)``
    skips exactly these; any other ``ValueError`` still propagates.

    Subclasses :class:`repro.errors.IncompatibleCellError` (the API-level
    error the service maps to a stable ``incompatible_cell`` code); kept
    under its historical name for existing callers.
    """


def cell_rng(seed: int, workload) -> np.random.Generator:
    """Deterministic RNG of one (seed, workload-shape) cell.

    The stream depends on the workload's *shape signature*, never its
    free-text name, mirroring how every cache in :mod:`repro.search` keys —
    so renaming a layer cannot change the simulated tensors.
    """
    digest = hashlib.sha256(repr(workload_signature(workload)).encode("utf-8"))
    words = [int.from_bytes(digest.digest()[i:i + 4], "big")
             for i in range(0, 16, 4)]
    return np.random.default_rng([int(seed)] + words)


def seeded_conv_tensors(layer: ConvLayerSpec, seed: int = 0
                        ) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic ``(iacts (C,H,W), weights (M,C/groups,R,S))`` int8-range data."""
    rng = cell_rng(seed, layer)
    iacts = rng.integers(-4, 5, (layer.c, layer.h, layer.w), dtype=np.int64)
    weights = rng.integers(-3, 4, (layer.m, layer.c // layer.groups,
                                   layer.r, layer.s), dtype=np.int64)
    return iacts, weights


def seeded_gemm_tensors(gemm: GemmSpec, seed: int = 0
                        ) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic ``(inputs (M,K), weights (N,K))`` int8-range data."""
    rng = cell_rng(seed, gemm)
    inputs = rng.integers(-4, 5, (gemm.m, gemm.k), dtype=np.int64)
    weights = rng.integers(-3, 4, (gemm.n, gemm.k), dtype=np.int64)
    return inputs, weights


def feather_config_for(arch: ArchSpec) -> FeatherConfig:
    """The :class:`FeatherConfig` matching an RIR :class:`ArchSpec`.

    Raises :class:`BackendCompatibilityError` for architectures the
    simulator cannot model: anything without reorder-in-reduction, or
    with a non-power-of-two array width (BIRRD's input count).
    """
    if arch.reorder_implementation is not ReorderImplementation.RIR:
        raise BackendCompatibilityError(
            f"constraint 'reorder-in-reduction' violated: the simulator "
            f"backend models FEATHER (reorder-in-reduction) only, but "
            f"{arch.name!r} reorders via "
            f"{arch.reorder_implementation.value!r} — evaluate it on the "
            f"'analytical' backend instead")
    cols = arch.pe_cols
    if cols < 2 or cols & (cols - 1):
        raise BackendCompatibilityError(
            f"constraint 'pow2-array-width' violated: {arch.name!r} has "
            f"array width {cols}, not a power of two; BIRRD (and therefore "
            f"the simulator) requires one")
    return FeatherConfig(
        array_rows=arch.pe_rows,
        array_cols=cols,
        stab_lines=arch.buffer.num_lines,
        stab_ports_per_bank=arch.buffer.ports_per_bank,
        frequency_mhz=arch.frequency_mhz,
    )


class SimulatorBackend(EvaluationBackend):
    """Numerically-exact FEATHER execution with cycle accounting.

    ``seed`` drives the deterministic weight/iAct generation (embedded in
    ``extra["seed"]`` of every report); ``route_birrd`` is forwarded to the
    accelerator (``"never"`` by default — functional outcomes without
    switch-level routing, the fast path); ``max_macs`` bounds the cell size
    (see :data:`DEFAULT_MAX_MACS`).
    """

    name = "simulator"

    def __init__(self, arch: ArchSpec, energy: Optional[EnergyTable] = None,
                 seed: int = 0, route_birrd: str = "never",
                 max_macs: int = DEFAULT_MAX_MACS):
        super().__init__(arch)
        self.seed = int(seed)
        self.max_macs = max_macs
        self.config = feather_config_for(arch)
        self.accelerator = FeatherAccelerator(self.config,
                                              route_birrd=route_birrd)
        # Analytical companion for the energy breakdown (and for callers
        # that want side-by-side estimates without building two backends).
        self._cost_model = CostModel(arch, energy)
        self._energy_cache = EvaluationCache()
        # Timing is layout-dependent but mapping-independent (FEATHER runs
        # its own internal dataflow), so simulations memoize on the
        # (workload shape, layout) pair.
        self._stats: Dict[Tuple, ExecutionStats] = {}

    # -------------------------------------------------------------- protocol
    def evaluate(self, workload, mapping, layout) -> BackendReport:
        stats = self._simulate(workload, layout)
        cost, _ = self._energy_cache.evaluate(self._cost_model, workload,
                                              mapping, layout)
        batches = getattr(workload, "n", 1) if isinstance(
            workload, ConvLayerSpec) else 1
        macs = workload.macs
        total_cycles = stats.cycles * batches
        slowdown = stats.slowdown
        compute_cycles = total_cycles / slowdown
        num_pes = self.config.num_pes
        return BackendReport(
            backend=self.name,
            workload=getattr(workload, "name", str(workload)),
            arch=self.arch.name,
            mapping=mapping.name,
            layout=layout.name,
            macs=macs,
            compute_cycles=compute_cycles,
            slowdown=slowdown,
            stall_cycles=total_cycles - compute_cycles,
            reorder_cycles_exposed=0.0,  # RIR: reordering rides the reduction
            total_cycles=total_cycles,
            utilization=(macs / (compute_cycles * num_pes)
                         if compute_cycles else 0.0),
            practical_utilization=(macs / (total_cycles * num_pes)
                                   if total_cycles else 0.0),
            energy_breakdown_pj=dict(cost.energy_breakdown_pj),
            extra={
                "seed": float(self.seed),
                "read_slowdown": stats.read_slowdown,
                "write_serialization": stats.write_serialization,
                "stab_reads": float(stats.stab_reads * batches),
                "stab_writes": float(stats.stab_writes * batches),
                "strb_reads": float(stats.strb_reads * batches),
                "birrd_cycles": float(stats.birrd_cycles * batches),
                "birrd_routed_fraction": stats.routed_fraction,
            },
        )

    def check_cell(self, workload) -> None:
        """Raise :class:`BackendCompatibilityError` if ``workload`` exceeds
        the simulator's MAC bound.  Callers that would otherwise do
        expensive work before the first ``evaluate`` (e.g. cross-validation,
        which co-searches first) use this to fail fast."""
        if workload.macs > self.max_macs:
            raise BackendCompatibilityError(
                f"constraint 'max-macs' violated: "
                f"{getattr(workload, 'name', workload)} has {workload.macs} "
                f"MACs, over the simulator cell bound ({self.max_macs}); "
                f"the cycle-level backend is for micro-cells — use the "
                f"'analytical' backend or raise max_macs explicitly")

    # ------------------------------------------------------------- execution
    def _simulate(self, workload, layout) -> ExecutionStats:
        """Run (or recall) one seeded simulation of ``workload`` under ``layout``."""
        key = (workload_signature(workload), layout.name)
        stats = self._stats.get(key)
        if stats is None:
            self.check_cell(workload)
            if isinstance(workload, ConvLayerSpec):
                stats = self._simulate_conv(workload, layout)
            elif isinstance(workload, GemmSpec):
                stats = self._simulate_gemm(workload, layout)
            else:
                raise TypeError(f"unsupported workload {type(workload)!r}")
            self._stats[key] = stats
        return stats

    def _simulate_conv(self, layer: ConvLayerSpec, layout) -> ExecutionStats:
        iacts, weights = seeded_conv_tensors(layer, self.seed)
        if layer.groups == 1:
            outputs, stats = self.accelerator.run_conv(
                layer, iacts, weights, input_layout=layout)
            reference = reference_conv(iacts, weights, layer)
        else:
            outputs, stats, reference = self._simulate_grouped_conv(
                layer, iacts, weights, layout)
        if not np.array_equal(outputs, reference):
            raise AssertionError(
                f"simulator output mismatch on {layer.name} under "
                f"{layout.name} — the functional model must be exact")
        return stats

    def _simulate_grouped_conv(self, layer: ConvLayerSpec, iacts, weights,
                               layout):
        """Group-by-group execution of a grouped/depthwise convolution."""
        from repro.feather.model_runner import iter_conv_groups

        outputs = np.zeros((layer.m, layer.p, layer.q), dtype=np.int64)
        reference = np.zeros_like(outputs)
        total = ExecutionStats()
        for sub, sub_acts, sub_weights, m_slice in iter_conv_groups(
                layer, iacts, weights):
            sub_out, stats = self.accelerator.run_conv(
                sub, sub_acts, sub_weights, input_layout=layout)
            outputs[m_slice] = sub_out
            reference[m_slice] = reference_conv(sub_acts, sub_weights, sub)
            # merge() sums the cycle/traffic counters and maxes the
            # slowdowns — the whole-layer conventions we want here.
            total = total.merge(stats)
        return outputs, total, reference

    def _simulate_gemm(self, gemm: GemmSpec, layout) -> ExecutionStats:
        """Execute ``out[M,N] = in[M,K] @ w[N,K]^T`` with inputs stationary.

        The paper's streaming (layout-bearing) GEMM tensor is the input
        matrix ``M x K``, which lives in StaB; ``run_gemm`` computes
        ``W[M',K'] @ I[K',N']`` with ``I`` in StaB, so the cell runs
        transposed — ``W' = weights (N,K)``, ``I' = inputs^T (K,M)`` — and
        the layout addresses StaB reads through (M, K) coordinates.
        """
        inputs, weights = seeded_gemm_tensors(gemm, self.seed)

        def input_coord_fn(k_idx: int, col: int) -> Dict[str, int]:
            return {"M": col, "K": k_idx}

        def coord_fn(row: int, col: int) -> Dict[str, int]:
            # run_gemm's (row, col) is our (N, M) output coordinate.
            return {"M": col, "N": row}

        outputs, stats = self.accelerator.run_gemm(
            weights, inputs.T,
            output_dims={"M": gemm.m, "N": gemm.n}, coord_fn=coord_fn,
            input_layout=layout, input_dims={"M": gemm.m, "K": gemm.k},
            input_coord_fn=input_coord_fn)
        reference = inputs @ weights.T
        if not np.array_equal(outputs.T, reference):
            raise AssertionError(
                f"simulator output mismatch on {gemm.name} under "
                f"{layout.name} — the functional model must be exact")
        return stats

