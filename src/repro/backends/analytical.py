"""The analytical backend: Layoutloop's cost model behind the protocol.

A thin, state-carrying wrapper over :class:`~repro.layoutloop.cost_model.CostModel`
plus an :class:`~repro.search.cache.EvaluationCache`.  The wrapper is what
:class:`~repro.layoutloop.mapper.Mapper` builds on: the mapper keeps using
``backend.cost_model`` / ``backend.cache`` directly on its hot path (cached
batch evaluation, admissible pruning), so the analytical numbers are
bit-identical to the pre-backend code — the protocol adds a uniform surface,
not a new code path.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.backends.base import BackendReport, EvaluationBackend, report_from_cost
from repro.layoutloop.arch import ArchSpec
from repro.layoutloop.cost_model import CostModel
from repro.layoutloop.energy import EnergyTable
from repro.search.cache import EvaluationCache


class AnalyticalBackend(EvaluationBackend):
    """Timeloop-style analytical evaluation (§V), memoized and vectorized.

    ``cache`` may be shared across backends/mappers (keys embed the full
    arch + energy signature); ``vectorize`` selects the :mod:`repro.kernel`
    batch path and ``compile`` additionally routes its inner fold through
    the optional numba-jitted kernels — results are bit-identical in every
    combination.  ``seed`` is accepted for registry-signature uniformity
    and ignored: the analytical model is deterministic by construction.
    """

    name = "analytical"

    def __init__(self, arch: ArchSpec, energy: Optional[EnergyTable] = None,
                 seed: int = 0, cache: Optional[EvaluationCache] = None,
                 vectorize: bool = True, compile: bool = False):
        super().__init__(arch)
        del seed  # deterministic: nothing to seed
        self.cost_model = CostModel(arch, energy, compile=compile)
        self.cache = cache if cache is not None else EvaluationCache()
        self.vectorize = vectorize
        self.compile = compile

    @property
    def energy(self):
        """The energy table the cost model prices components with."""
        return self.cost_model.energy

    def evaluate(self, workload, mapping, layout) -> BackendReport:
        report, _ = self.cache.evaluate(self.cost_model, workload, mapping,
                                        layout)
        return report_from_cost(report, backend=self.name)

    def evaluate_mapping(self, workload, mapping,
                         layouts: Sequence) -> List[BackendReport]:
        if self.vectorize:
            scored = self.cache.evaluate_batch(self.cost_model, workload,
                                               mapping, layouts)
        else:
            scored = [self.cache.evaluate(self.cost_model, workload, mapping,
                                          layout) for layout in layouts]
        return [report_from_cost(report, backend=self.name)
                for report, _ in scored]
