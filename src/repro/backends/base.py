"""The evaluation-backend protocol: one cell, one comparable report.

A *cell* is a (workload, mapping, layout) triple on one architecture.  The
repo has two ways to price a cell — the Timeloop-style analytical model
(:mod:`repro.layoutloop.cost_model`) and the numerically-exact
cycle-accounting FEATHER simulator (:mod:`repro.feather`) — and this module
defines the contract that lets the search engine, the scenario matrix and
the experiments treat them interchangeably:

* :class:`BackendReport` — the common result type.  Field names follow
  :class:`~repro.layoutloop.cost_model.CostReport` conventions exactly
  (``total_cycles``, ``stall_cycles``, ``practical_utilization``,
  ``energy_per_mac_pj``, ``edp``...), so everything downstream that
  aggregates reports (:class:`~repro.layoutloop.cosearch.ModelCost`,
  :class:`~repro.scenarios.record.ScenarioRecord`) works with either
  backend unchanged, and cross-backend diffs compare like for like.
* :class:`EvaluationBackend` — the abstract interface: an arch-bound
  object with ``evaluate(workload, mapping, layout)`` (and a batched
  ``evaluate_mapping`` that backends may override for speed).
* a name registry (:func:`register_backend` / :func:`create_backend`),
  shipping ``"analytical"`` and ``"simulator"`` and open to downstream
  registration, mirroring the workload-set/architecture registries of
  :mod:`repro.scenarios.registry`.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import UnknownBackendError
from repro.layoutloop.arch import ArchSpec

#: The default backend everywhere a ``backend=`` parameter exists.
DEFAULT_BACKEND = "analytical"


@dataclass(frozen=True)
class BackendReport:
    """Latency/energy estimate of one cell, in :class:`CostReport` vocabulary.

    Instances are immutable and may be memoized/shared exactly like
    :class:`~repro.layoutloop.cost_model.CostReport`; ``extra`` carries
    backend-specific counters (e.g. the simulator's ``write_serialization``
    or BIRRD routing statistics) that have no analytical counterpart.
    """

    backend: str
    """Registry name of the backend that produced the report."""
    workload: str
    """Name of the evaluated workload."""
    arch: str
    """Name of the architecture."""
    mapping: str
    """Name of the evaluated mapping (dataflow)."""
    layout: str
    """Name of the evaluated streaming-tensor layout."""
    macs: int
    """Multiply-accumulate operations the cell performs (count)."""
    compute_cycles: float
    """Ideal compute latency (cycles), before stalls."""
    slowdown: float
    """Average bank-conflict slowdown factor (dimensionless, >= 1)."""
    stall_cycles: float
    """Cycles lost to bank-conflict stalls (and, for the simulator, write
    serialization)."""
    reorder_cycles_exposed: float
    """Cycles the layout-reordering mechanism adds on the critical path."""
    total_cycles: float
    """End-to-end latency (cycles): compute + stalls + exposed reorder."""
    utilization: float
    """Steady-state MAC utilization of the array (fraction, 0..1)."""
    practical_utilization: float
    """Utilization including stall and reorder cycles (fraction, 0..1)."""
    energy_breakdown_pj: Dict[str, float] = field(default_factory=dict)
    """Energy per component (pJ).  The simulator backend borrows the
    analytical breakdown (it does not model energy), so energy columns stay
    comparable across backends; the cycles are what differs."""
    extra: Dict[str, float] = field(default_factory=dict)
    """Backend-specific counters (read-only by convention)."""

    @property
    def total_energy_pj(self) -> float:
        """Total energy over all components (pJ)."""
        return sum(self.energy_breakdown_pj.values())

    @property
    def energy_per_mac_pj(self) -> float:
        """Energy per MAC (pJ/MAC); ``inf`` for 0 MACs with nonzero energy."""
        if self.macs:
            return self.total_energy_pj / self.macs
        return math.inf if self.total_energy_pj > 0 else 0.0

    @property
    def edp(self) -> float:
        """Energy-delay product (pJ * cycles)."""
        return self.total_energy_pj * self.total_cycles

    def latency_seconds(self, frequency_mhz: float) -> float:
        """Wall-clock latency (seconds) at the given clock (MHz)."""
        return self.total_cycles / (frequency_mhz * 1e6)


def report_from_cost(report, backend: str = DEFAULT_BACKEND,
                     extra: Optional[Dict[str, float]] = None) -> BackendReport:
    """Wrap a :class:`CostReport` as a :class:`BackendReport`, field for field."""
    return BackendReport(
        backend=backend,
        workload=report.workload,
        arch=report.arch,
        mapping=report.mapping,
        layout=report.layout,
        macs=report.macs,
        compute_cycles=report.compute_cycles,
        slowdown=report.slowdown,
        stall_cycles=report.stall_cycles,
        reorder_cycles_exposed=report.reorder_cycles_exposed,
        total_cycles=report.total_cycles,
        utilization=report.utilization,
        practical_utilization=report.practical_utilization,
        energy_breakdown_pj=dict(report.energy_breakdown_pj),
        extra=dict(extra) if extra else {},
    )


class EvaluationBackend(abc.ABC):
    """An arch-bound evaluator of (workload, mapping, layout) cells.

    Implementations must be deterministic: the same cell on the same
    backend instance (and, for stochastic backends, the same ``seed``)
    must return identical reports — the scenario records' replay contract
    extends to every backend.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    def __init__(self, arch: ArchSpec):
        self.arch = arch

    @abc.abstractmethod
    def evaluate(self, workload, mapping, layout) -> BackendReport:
        """Price one cell into the common report."""

    def evaluate_mapping(self, workload, mapping,
                         layouts: Sequence) -> List[BackendReport]:
        """Reports of one mapping under every candidate layout, in order.

        The default loops over :meth:`evaluate`; backends with a batched
        fast path (the analytical kernel) override it.
        """
        return [self.evaluate(workload, mapping, layout) for layout in layouts]


# ------------------------------------------------------------------ registry
_BACKENDS: Dict[str, Callable[..., EvaluationBackend]] = {}


def register_backend(name: str, factory: Callable[..., EvaluationBackend],
                     overwrite: bool = False) -> None:
    """Register a backend factory ``factory(arch, energy=None, seed=0, ...)``."""
    if name in _BACKENDS and not overwrite:
        raise ValueError(f"backend {name!r} is already registered")
    _BACKENDS[name] = factory


def backend_names() -> List[str]:
    """Registered backend names, sorted."""
    return sorted(_BACKENDS)


def create_backend(backend, arch: ArchSpec, **kwargs) -> EvaluationBackend:
    """Materialize a backend from its registry name (or pass one through).

    ``backend`` may be a name (``"analytical"``, ``"simulator"``), an
    already-constructed :class:`EvaluationBackend` (returned as-is, the
    keyword arguments must then be empty), or ``None`` for the default.
    """
    if isinstance(backend, EvaluationBackend):
        if kwargs:
            raise ValueError(
                "cannot reconfigure an already-constructed backend; pass a "
                f"registry name instead (got options {sorted(kwargs)})")
        return backend
    name = DEFAULT_BACKEND if backend is None else str(backend)
    try:
        factory = _BACKENDS[name]
    except KeyError:
        raise UnknownBackendError(
            f"unknown backend {name!r}; registered: "
            f"{', '.join(backend_names())}") from None
    return factory(arch, **kwargs)
