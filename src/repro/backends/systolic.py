"""Systolic-array evaluation backend: the rigid baseline, first class.

Promotes the weight-stationary :class:`~repro.baselines.systolic.SystolicArray`
timing model (Fig. 4 / Fig. 10 baseline, also the Gemmini/DPU utilization
model) from passive comparison data to a registered
:class:`~repro.backends.base.EvaluationBackend`, so scenario sweeps and
``SearchRequest(backend="systolic")`` searches can put it on the same grid
as FEATHER's analytical model.

Timing comes from the systolic pipeline: the mapping's M-parallel and
reduction-parallel degrees configure the array's two physical axes, and
cycles are the ``passes * (stream + fill/drain)`` estimate of
:meth:`SystolicArray.run_gemm` (convs lower through im2col).  Energy is
borrowed from the analytical cost model per (mapping, layout) cell —
mirroring the simulator backend — so energy columns stay comparable across
backends and the layout axis stays meaningful.

The backend carries :func:`~repro.constraints.systolic_constraints` as its
``constraints`` attribute: searches on it repair every candidate to the
array's legal loop orders and M x C/K parallelism before scoring.
"""

from __future__ import annotations

from typing import Optional

from repro.backends.base import BackendReport, EvaluationBackend
from repro.baselines.systolic import SystolicArray
from repro.constraints import systolic_constraints
from repro.layoutloop.arch import ArchSpec
from repro.layoutloop.cost_model import CostModel
from repro.search.cache import EvaluationCache
from repro.workloads.conv import ConvLayerSpec


class SystolicBackend(EvaluationBackend):
    """Price cells on a weight-stationary systolic array of the arch's shape."""

    name = "systolic"

    def __init__(self, arch: ArchSpec, energy=None, seed: int = 0):
        super().__init__(arch)
        self.seed = seed
        # Energy companion: the analytical model prices the same cell's
        # energy so cross-backend energy columns compare like for like.
        self._cost_model = CostModel(arch, energy)
        self._energy_cache = EvaluationCache()
        self.constraints = systolic_constraints(arch)

    def _array_for(self, mapping) -> SystolicArray:
        """The array the mapping configures: M on one axis, reduction on
        the other.  Serial mappings degrade to a 1x1 pipeline — exactly
        the rigidity the constraints steer the search away from."""
        parallel_m = max(1, mapping.parallel_degree("M"))
        parallel_k = max(1, mapping.spatial_reduction_size)
        return SystolicArray(self.arch.pe_rows, self.arch.pe_cols,
                             parallel_m=parallel_m, parallel_k=parallel_k,
                             name=f"systolic:{self.arch.name}")

    def evaluate(self, workload, mapping, layout) -> BackendReport:
        cost, _ = self._energy_cache.evaluate(self._cost_model, workload,
                                              mapping, layout)
        array = self._array_for(mapping)
        if isinstance(workload, ConvLayerSpec):
            timing = array.run_conv(workload)
        else:
            timing = array.run_gemm(workload)
        total_cycles = float(timing.cycles)
        compute = float(timing.macs) / max(
            1, array.parallel_m * array.parallel_k)
        stall = max(0.0, total_cycles - compute)
        num_pes = self.arch.num_pes
        practical = (timing.macs / (total_cycles * num_pes)
                     if total_cycles else 0.0)
        return BackendReport(
            backend=self.name,
            workload=cost.workload,
            arch=cost.arch,
            mapping=cost.mapping,
            layout=cost.layout,
            macs=timing.macs,
            compute_cycles=compute,
            slowdown=total_cycles / compute if compute else 1.0,
            stall_cycles=stall,
            reorder_cycles_exposed=0.0,
            total_cycles=total_cycles,
            utilization=min(1.0, timing.utilization),
            practical_utilization=min(1.0, practical),
            energy_breakdown_pj=dict(cost.energy_breakdown_pj),
            extra={
                "fill_drain_cycles": float(timing.fill_drain_cycles),
                "parallel_m": float(array.parallel_m),
                "parallel_k": float(array.parallel_k),
                "macs_per_cycle": float(timing.macs_per_cycle),
            },
        )
