"""Multi-fidelity co-search: analytical shortlist, simulator verification.

The analytical model can rank thousands of (mapping, layout) candidates per
second; the cycle-level simulator prices one candidate in milliseconds-to-
seconds but is numerically exact.  Multi-fidelity search composes them the
way hardware DSE tools do: the analytical backend scores the *full*
candidate space of a shape and keeps the top-k pairs, then the simulator
re-prices only those k and picks the verified winner.

Tie handling preserves the analytical ranking (the simulator winner must be
*strictly* better to displace a higher-ranked candidate), so whenever the
simulator agrees with the model — in particular on concordant co-searched
pairs, where both see slowdown 1.0 — multi-fidelity returns exactly the
winner pure-analytical search returns, now carrying simulated evidence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.backends.analytical import AnalyticalBackend
from repro.backends.base import BackendReport
from repro.backends.simulator import SimulatorBackend
from repro.layoutloop.arch import ArchSpec
from repro.layoutloop.cosearch import unique_workloads
from repro.layoutloop.energy import EnergyTable
from repro.layoutloop.mapper import Mapper, _metric_value


@dataclass
class VerifiedCandidate:
    """One shortlisted (mapping, layout) pair with both backends' reports."""

    rank: int
    """Analytical rank within the shortlist (0 = analytical winner)."""
    mapping: object
    """The candidate dataflow mapping."""
    layout: object
    """The candidate streaming-tensor layout."""
    analytical: BackendReport
    """The analytical backend's report of the pair."""
    simulated: BackendReport
    """The simulator backend's report of the pair."""

    def cycle_delta(self) -> float:
        """Relative simulated-vs-analytical latency gap (0.0 = exact)."""
        if not self.analytical.total_cycles:
            return 0.0
        return (self.simulated.total_cycles / self.analytical.total_cycles
                - 1.0)


@dataclass
class MultiFidelityResult:
    """Outcome of one shape's multi-fidelity search."""

    workload: str
    arch: str
    metric: str
    top_k: int
    candidates: List[VerifiedCandidate]
    """The shortlist in analytical rank order (length <= ``top_k``)."""
    best: VerifiedCandidate
    """The simulator-verified winner."""
    analytical_evaluated: int
    """(mapping, layout) pairs the analytical stage scored."""

    @property
    def agreement(self) -> bool:
        """True when verification kept the analytical winner (rank 0)."""
        return self.best.rank == 0


@dataclass
class MultiFidelityModelResult:
    """Per-unique-shape multi-fidelity results for a whole model."""

    arch: str
    model: str
    metric: str
    layers: List[Tuple[MultiFidelityResult, int]] = field(default_factory=list)
    """(result, occurrence count) per unique shape, first-seen order."""

    @property
    def agreement(self) -> bool:
        """True when every shape's verified winner is the analytical one."""
        return all(result.agreement for result, _ in self.layers)

    @property
    def total_cycles(self) -> float:
        """Whole-model simulated latency of the verified winners (cycles)."""
        return sum(result.best.simulated.total_cycles * count
                   for result, count in self.layers)


def multifidelity_search_layer(
        arch: ArchSpec, workload, metric: str = "edp",
        max_mappings: int = 50, top_k: int = 3, seed: int = 0,
        energy: Optional[EnergyTable] = None,
        analytical: Optional[AnalyticalBackend] = None,
        simulator: Optional[SimulatorBackend] = None) -> MultiFidelityResult:
    """Multi-fidelity co-search of one shape.

    The analytical stage enumerates exactly the candidate space
    :class:`~repro.layoutloop.mapper.Mapper` searches (same mapping sampler,
    same seed, same layout library) and ranks every pair without pruning;
    the simulator stage re-prices the ``top_k`` best pairs.  Backends may
    be passed in to share caches across shapes.
    """
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    analytical = analytical or AnalyticalBackend(arch, energy=energy)
    simulator = simulator or SimulatorBackend(arch, energy=energy, seed=seed)
    mapper = Mapper(arch, energy=energy, metric=metric,
                    max_mappings=max_mappings, seed=seed,
                    evaluation_cache=analytical.cache)

    layouts = mapper.candidate_layouts(workload)
    ranked: List[Tuple[float, int, object, object, BackendReport]] = []
    order = 0
    for mapping in mapper.candidate_mappings(workload):
        for layout, report in zip(
                layouts, analytical.evaluate_mapping(workload, mapping,
                                                     layouts)):
            ranked.append((_metric_value(report, metric), order, mapping,
                           layout, report))
            order += 1
    # Stable sort on (value, first-seen order): the top-1 entry is exactly
    # the strict-improvement winner Mapper.search selects.
    ranked.sort(key=lambda item: (item[0], item[1]))
    shortlist = ranked[:top_k]

    candidates = []
    for rank, (_, _, mapping, layout, analytical_report) in enumerate(shortlist):
        simulated = simulator.evaluate(workload, mapping, layout)
        candidates.append(VerifiedCandidate(
            rank=rank, mapping=mapping, layout=layout,
            analytical=analytical_report, simulated=simulated))

    best = candidates[0]
    best_value = _metric_value(best.simulated, metric)
    for candidate in candidates[1:]:
        value = _metric_value(candidate.simulated, metric)
        if value < best_value:  # strict: ties keep the analytical ranking
            best, best_value = candidate, value

    return MultiFidelityResult(
        workload=getattr(workload, "name", str(workload)),
        arch=arch.name, metric=metric, top_k=top_k,
        candidates=candidates, best=best, analytical_evaluated=order)


def multifidelity_search(arch: ArchSpec, workloads: Sequence,
                         model_name: str = "model", metric: str = "edp",
                         max_mappings: int = 50, top_k: int = 3,
                         seed: int = 0,
                         energy: Optional[EnergyTable] = None,
                         ) -> MultiFidelityModelResult:
    """Multi-fidelity co-search over a whole model (shape-deduplicated).

    Shares one analytical cache and one simulator instance across the
    unique shapes, exactly as :func:`repro.search.engine.search_model`
    shares its evaluation cache.
    """
    workloads = list(workloads)
    if not workloads:
        raise ValueError(
            f"multifidelity_search({model_name!r}) requires at least one "
            f"workload")
    analytical = AnalyticalBackend(arch, energy=energy)
    simulator = SimulatorBackend(arch, energy=energy, seed=seed)
    out = MultiFidelityModelResult(arch=arch.name, model=model_name,
                                   metric=metric)
    for workload, count in unique_workloads(workloads):
        result = multifidelity_search_layer(
            arch, workload, metric=metric, max_mappings=max_mappings,
            top_k=top_k, seed=seed, energy=energy,
            analytical=analytical, simulator=simulator)
        out.layers.append((result, count))
    return out
