"""Workload specifications: convolution layers, GEMMs and DNN model tables."""

from repro.workloads.conv import (
    CONV_DIMS,
    IACT_DIMS,
    OACT_DIMS,
    WEIGHT_DIMS,
    ConvLayerSpec,
    LayerKind,
)
from repro.workloads.gemm import GemmSpec, fig10_workloads
from repro.workloads.resnet50 import (
    resnet50_layer,
    resnet50_layers,
    resnet50_motivation_layers,
)
from repro.workloads.mobilenet_v3 import (
    mobilenet_v3_depthwise_layers,
    mobilenet_v3_layer,
    mobilenet_v3_layers,
    mobilenet_v3_motivation_layers,
    mobilenet_v3_pointwise_layers,
)
from repro.workloads.bert import (
    bert_base_gemms,
    bert_head_gemm_sweep,
    bert_unique_gemms,
)
from repro.workloads.micro import (
    bert_head_micro,
    micro_conv_layers,
    micro_gemm_layers,
    resnet50_head_micro,
)

__all__ = [
    "CONV_DIMS",
    "IACT_DIMS",
    "OACT_DIMS",
    "WEIGHT_DIMS",
    "ConvLayerSpec",
    "LayerKind",
    "GemmSpec",
    "fig10_workloads",
    "resnet50_layer",
    "resnet50_layers",
    "resnet50_motivation_layers",
    "mobilenet_v3_depthwise_layers",
    "mobilenet_v3_layer",
    "mobilenet_v3_layers",
    "mobilenet_v3_motivation_layers",
    "mobilenet_v3_pointwise_layers",
    "bert_base_gemms",
    "bert_head_gemm_sweep",
    "bert_head_micro",
    "bert_unique_gemms",
    "micro_conv_layers",
    "micro_gemm_layers",
    "resnet50_head_micro",
]
