"""BERT-base GEMM table.

The paper evaluates BERT as a cloud workload in Layoutloop.  A BERT-base
encoder layer with hidden size 768, 12 heads and FFN size 3072 at sequence
length 512 decomposes into the GEMMs below; the model has 12 identical
encoder layers.
"""

from __future__ import annotations

from repro.workloads.gemm import GemmSpec

HIDDEN = 768
FFN = 3072
HEADS = 12
HEAD_DIM = HIDDEN // HEADS


def bert_base_gemms(seq_len: int = 512, layers: int = 12, per_layer: bool = False) -> list:
    """Return the GEMMs of BERT-base.

    ``per_layer=True`` returns one encoder layer's GEMMs only (useful for
    quick tests); otherwise each GEMM's name carries the encoder index so the
    full model is covered.
    """
    one_layer = [
        GemmSpec("bert_qkv_proj", m=seq_len, k=HIDDEN, n=3 * HIDDEN),
        GemmSpec("bert_attn_scores", m=seq_len * HEADS, k=HEAD_DIM, n=seq_len),
        GemmSpec("bert_attn_context", m=seq_len * HEADS, k=seq_len, n=HEAD_DIM),
        GemmSpec("bert_attn_out", m=seq_len, k=HIDDEN, n=HIDDEN),
        GemmSpec("bert_ffn_up", m=seq_len, k=HIDDEN, n=FFN),
        GemmSpec("bert_ffn_down", m=seq_len, k=FFN, n=HIDDEN),
    ]
    if per_layer:
        return one_layer

    gemms = []
    for layer in range(layers):
        for g in one_layer:
            gemms.append(GemmSpec(f"{g.name}_L{layer}", m=g.m, k=g.k, n=g.n, bits=g.bits))
    return gemms


def bert_unique_gemms(seq_len: int = 512) -> list:
    """The six distinct GEMM shapes of a BERT-base encoder layer.

    Because all 12 encoder layers share shapes, cost-model sweeps only need to
    evaluate these and weight the results by 12.
    """
    return bert_base_gemms(seq_len=seq_len, per_layer=True)


def bert_head_gemm_sweep(seq_lens: tuple = (64, 128, 256, 512),
                         head_dim: int = HEAD_DIM) -> list:
    """Skewed per-head attention GEMMs across sequence lengths.

    One attention head computes a score GEMM (``seq x head_dim x seq``) and
    a context GEMM (``seq x seq x head_dim``); at long sequence lengths both
    are strongly skewed (K or N far smaller than the other dims), the regime
    where rigid reduction fabrics collapse.  The paper only evaluates the
    head-folded batch shapes, so this sweep widens the GEMM coverage of the
    scenario matrix.
    """
    gemms = []
    for seq in seq_lens:
        gemms.append(GemmSpec(f"bert_head_scores_s{seq}", m=seq, k=head_dim,
                              n=seq))
        gemms.append(GemmSpec(f"bert_head_context_s{seq}", m=seq, k=seq,
                              n=head_dim))
    return gemms
