"""ResNet-50 layer table.

The table lists every convolution layer of ResNet-50 (ImageNet, 224x224 input)
in execution order, including the 1x1 projection shortcuts.  Layer indices
follow the paper's numbering (conv1 is layer 1, the final 1x1 of the last
bottleneck is layer 53).  The FC layer is included as a 1x1 convolution so
full-model sweeps cover all MACs.
"""

from __future__ import annotations

from functools import lru_cache

from repro.workloads.conv import ConvLayerSpec, LayerKind


def _bottleneck(layers, idx, c_in, width, h, stride, project):
    """Append the three (or four, with projection) convs of one bottleneck block."""
    # 1x1 reduce
    layers.append(ConvLayerSpec(f"resnet50_layer{idx}", m=width, c=c_in, h=h, w=h,
                                r=1, s=1, stride=1, padding=0, kind=LayerKind.POINTWISE))
    idx += 1
    # 3x3 (may be strided)
    h_out = h // stride
    layers.append(ConvLayerSpec(f"resnet50_layer{idx}", m=width, c=width, h=h, w=h,
                                r=3, s=3, stride=stride, padding=1))
    idx += 1
    # 1x1 expand
    layers.append(ConvLayerSpec(f"resnet50_layer{idx}", m=4 * width, c=width, h=h_out,
                                w=h_out, r=1, s=1, stride=1, padding=0,
                                kind=LayerKind.POINTWISE))
    idx += 1
    if project:
        layers.append(ConvLayerSpec(f"resnet50_layer{idx}_proj", m=4 * width, c=c_in,
                                    h=h, w=h, r=1, s=1, stride=stride, padding=0,
                                    kind=LayerKind.POINTWISE))
        idx += 1
    return idx, 4 * width, h_out


@lru_cache(maxsize=1)
def _build() -> tuple:
    layers = []
    # conv1: 7x7/2, 3 -> 64 channels on 224x224 input.
    layers.append(ConvLayerSpec("resnet50_layer1", m=64, c=3, h=224, w=224,
                                r=7, s=7, stride=2, padding=3))
    idx = 2
    c_in, h = 64, 56  # after 3x3/2 max-pool

    stage_cfg = [
        (64, 3, 1),    # conv2_x
        (128, 4, 2),   # conv3_x
        (256, 6, 2),   # conv4_x
        (512, 3, 2),   # conv5_x
    ]
    for width, blocks, first_stride in stage_cfg:
        for b in range(blocks):
            stride = first_stride if b == 0 else 1
            project = b == 0
            idx, c_in, h = _bottleneck(layers, idx, c_in, width, h, stride, project)

    # Final FC 2048 -> 1000 expressed as a 1x1 conv on a 1x1 feature map.
    layers.append(ConvLayerSpec("resnet50_fc", m=1000, c=2048, h=1, w=1,
                                r=1, s=1, stride=1, padding=0, kind=LayerKind.FC))
    return tuple(layers)


def resnet50_layers(include_fc: bool = True) -> list:
    """Return the ResNet-50 convolution layers in execution order."""
    layers = list(_build())
    if not include_fc:
        layers = [l for l in layers if l.kind is not LayerKind.FC]
    return layers


def resnet50_layer(index: int) -> ConvLayerSpec:
    """Layer lookup by the paper's 1-based index (shortcut projections excluded)."""
    main = [l for l in _build() if not l.name.endswith("_proj") and l.kind is not LayerKind.FC]
    if not 1 <= index <= len(main):
        raise IndexError(f"ResNet-50 has {len(main)} main conv layers, got index {index}")
    return main[index - 1]


def resnet50_residual_block() -> list:
    """The three convs of the second conv2_x bottleneck (layers 6-8).

    This is the canonical fused-mapping demo chain: a 1x1 reduce
    (64x256 on 56x56), a padded 3x3 (64x64) and a 1x1 expand (256x64),
    with no projection shortcut and no stride — every adjacent pair is
    fusible (the producer's output tensor is exactly the consumer's
    input tensor).  Selected by *name* rather than through
    :func:`resnet50_layer`, whose paper-style indexing skips the
    ``_proj`` shortcut layers and therefore disagrees with the
    ``resnet50_layer{N}`` name suffixes past layer 5.
    """
    wanted = ("resnet50_layer6", "resnet50_layer7", "resnet50_layer8")
    by_name = {layer.name: layer for layer in _build()}
    return [by_name[name] for name in wanted]


def resnet50_motivation_layers() -> dict:
    """Layers highlighted by the paper's motivation figures (Fig. 2 and Fig. 4).

    Fig. 2 uses layers 1, 14 and 41; Fig. 4 additionally analyses layer 47
    (a late 3x3 with many channels on a 7x7 feature map).
    """
    return {
        1: resnet50_layer(1),
        14: resnet50_layer(14),
        41: resnet50_layer(41),
        47: resnet50_layer(47),
    }
