"""Micro workloads sized for the cycle-level simulator backend.

The functional FEATHER model executes every MAC in Python, so
simulator-backed scenario cells need shapes a few orders of magnitude
smaller than the paper's networks.  These tables keep one representative
of each conv family (dense 3x3, pointwise 1x1, depthwise) plus a
scaled-down ResNet-50 stem and BERT attention head, all small enough that
a full co-search-and-simulate cell finishes in seconds.
"""

from __future__ import annotations

from typing import List

from repro.workloads.conv import ConvLayerSpec, LayerKind
from repro.workloads.gemm import GemmSpec


def micro_conv_layers() -> List[ConvLayerSpec]:
    """One tiny layer per conv family (dense, pointwise, depthwise)."""
    return [
        ConvLayerSpec("micro_conv3x3", m=8, c=4, h=8, w=8, r=3, s=3,
                      padding=1),
        ConvLayerSpec("micro_pointwise", m=8, c=8, h=6, w=6, r=1, s=1,
                      kind=LayerKind.POINTWISE),
        ConvLayerSpec("micro_depthwise", m=4, c=4, h=6, w=6, r=3, s=3,
                      padding=1, kind=LayerKind.DEPTHWISE),
    ]


def resnet50_head_micro() -> ConvLayerSpec:
    """The ResNet-50 stem convolution at 1/16 spatial scale.

    Same kernel/stride/padding structure as ``conv1`` (7x7/2, 3 input
    channels) with M and H/W shrunk so the cell simulates in about a
    second — the shape the backend-parity tests machine-check the RIR
    claim on.
    """
    return ConvLayerSpec("resnet50_head_micro", m=16, c=3, h=14, w=14,
                         r=7, s=7, stride=2, padding=3)


def bert_head_micro(seq_len: int = 32, head_dim: int = 16) -> GemmSpec:
    """A scaled-down BERT attention-score GEMM (``seq x head_dim x seq``)."""
    return GemmSpec(f"bert_head_micro_s{seq_len}", m=seq_len, k=head_dim,
                    n=seq_len)


def micro_gemm_layers() -> List[GemmSpec]:
    """Tiny GEMMs spanning square, skewed-K and skewed-N shapes."""
    return [
        GemmSpec("micro_gemm_square", m=12, k=8, n=12),
        GemmSpec("micro_gemm_deep", m=6, k=24, n=4),
        bert_head_micro(),
    ]
