"""MobileNet-V3 (Large) layer table.

MobileNet-V3-Large alternates pointwise expansions, depthwise convolutions
(3x3 or 5x5, some strided) and pointwise projections.  The table below follows
the architecture of Howard et al. (2019) for a 224x224 input; squeeze-excite
FC layers are omitted because they contribute a negligible MAC count and the
paper's evaluation treats the network as its conv layers.
"""

from __future__ import annotations

from functools import lru_cache

from repro.workloads.conv import ConvLayerSpec, LayerKind


# (expansion channels, out channels, kernel, stride) per bottleneck, with the
# input resolution tracked as we go.  From the MobileNetV3-Large paper table.
_BNECK_CFG = [
    # exp, out, k, s
    (16, 16, 3, 1),
    (64, 24, 3, 2),
    (72, 24, 3, 1),
    (72, 40, 5, 2),
    (120, 40, 5, 1),
    (120, 40, 5, 1),
    (240, 80, 3, 2),
    (200, 80, 3, 1),
    (184, 80, 3, 1),
    (184, 80, 3, 1),
    (480, 112, 3, 1),
    (672, 112, 3, 1),
    (672, 160, 5, 2),
    (960, 160, 5, 1),
    (960, 160, 5, 1),
]


@lru_cache(maxsize=1)
def _build() -> tuple:
    layers = []
    idx = 1

    def add(spec):
        nonlocal idx
        layers.append(spec)
        idx += 1

    # Stem: 3x3/2, 3 -> 16.
    h = 224
    add(ConvLayerSpec(f"mobilenet_v3_layer{idx}", m=16, c=3, h=h, w=h, r=3, s=3,
                      stride=2, padding=1))
    h //= 2
    c_in = 16

    for exp, out, k, stride in _BNECK_CFG:
        if exp != c_in:
            add(ConvLayerSpec(f"mobilenet_v3_layer{idx}", m=exp, c=c_in, h=h, w=h,
                              r=1, s=1, kind=LayerKind.POINTWISE))
        add(ConvLayerSpec(f"mobilenet_v3_layer{idx}", m=exp, c=exp, h=h, w=h,
                          r=k, s=k, stride=stride, padding=k // 2,
                          kind=LayerKind.DEPTHWISE))
        h //= stride
        add(ConvLayerSpec(f"mobilenet_v3_layer{idx}", m=out, c=exp, h=h, w=h,
                          r=1, s=1, kind=LayerKind.POINTWISE))
        c_in = out

    # Head: 1x1 160 -> 960, pool, 1x1 960 -> 1280, FC 1280 -> 1000.
    add(ConvLayerSpec(f"mobilenet_v3_layer{idx}", m=960, c=c_in, h=h, w=h, r=1, s=1,
                      kind=LayerKind.POINTWISE))
    add(ConvLayerSpec(f"mobilenet_v3_layer{idx}", m=1280, c=960, h=1, w=1, r=1, s=1,
                      kind=LayerKind.FC))
    add(ConvLayerSpec("mobilenet_v3_fc", m=1000, c=1280, h=1, w=1, r=1, s=1,
                      kind=LayerKind.FC))
    return tuple(layers)


def mobilenet_v3_layers(include_fc: bool = True) -> list:
    """Return MobileNet-V3-Large conv layers in execution order."""
    layers = list(_build())
    if not include_fc:
        layers = [l for l in layers if l.kind is not LayerKind.FC]
    return layers


def mobilenet_v3_layer(index: int) -> ConvLayerSpec:
    """1-based lookup into the layer table (FC layers excluded)."""
    main = [l for l in _build() if l.kind is not LayerKind.FC]
    if not 1 <= index <= len(main):
        raise IndexError(f"MobileNet-V3 has {len(main)} conv layers, got index {index}")
    return main[index - 1]


def mobilenet_v3_motivation_layers() -> dict:
    """Layers 7, 25 and 40 used in the paper's Fig. 2 motivation study."""
    return {i: mobilenet_v3_layer(i) for i in (7, 25, 40)}


def mobilenet_v3_depthwise_layers() -> list:
    """All depthwise convolutions, in execution order.

    Depthwise layers stress the mapping space differently from dense convs
    (each output channel reads one input channel, so C cannot be spatially
    reduced); the scenario matrix sweeps them as a standalone workload set.
    """
    return [l for l in _build() if l.kind is LayerKind.DEPTHWISE]


def mobilenet_v3_pointwise_layers() -> list:
    """All pointwise (1x1 expansion/projection) convolutions, in order.

    Pointwise layers are pure channel-mixing GEMM-like convs (R = S = 1)
    and dominate MobileNet-V3's MAC count; the final FC head is excluded.
    """
    return [l for l in _build() if l.kind is LayerKind.POINTWISE]
