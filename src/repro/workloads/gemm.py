"""GEMM workload specification.

The paper evaluates BERT as a sequence of GEMMs and uses small skewed GEMMs
(Workloads A-D of Fig. 10) to contrast FEATHER's flexible reduction with a
rigid systolic array.  Following the paper's notation the operand shapes are
``inputs: M x K``, ``weights: N x K`` and ``outputs: M x N``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.conv import ConvLayerSpec, LayerKind


@dataclass(frozen=True)
class GemmSpec:
    """Shape of a GEMM ``out[M, N] = sum_K in[M, K] * w[N, K]``."""

    name: str
    m: int
    k: int
    n: int
    bits: int = 8

    def __post_init__(self) -> None:
        for attr in ("m", "k", "n"):
            if getattr(self, attr) < 1:
                raise ValueError(f"{attr} must be >= 1")

    @property
    def macs(self) -> int:
        return self.m * self.k * self.n

    @property
    def input_elems(self) -> int:
        return self.m * self.k

    @property
    def weight_elems(self) -> int:
        return self.n * self.k

    @property
    def output_elems(self) -> int:
        return self.m * self.n

    def dim(self, name: str) -> int:
        """Extent of a GEMM dimension by its canonical name (M, K or N)."""
        table = {"M": self.m, "K": self.k, "N": self.n}
        try:
            return table[name.upper()]
        except KeyError as exc:
            raise KeyError(f"unknown GEMM dimension {name!r}") from exc

    def with_batch(self, batch: int) -> "GemmSpec":
        """Return a copy with ``batch`` stacked input matrices.

        A batched GEMM concatenates the batch along the output rows
        (``M' = batch * M``), matching how the BERT attention GEMMs already
        fold their head count into M.
        """
        if batch < 1:
            raise ValueError(f"batch size must be >= 1, got {batch}")
        if batch == 1:
            return self
        return GemmSpec(name=f"{self.name}_b{batch}", m=batch * self.m,
                        k=self.k, n=self.n, bits=self.bits)

    def as_conv(self) -> ConvLayerSpec:
        """Express the GEMM as a 1x1 convolution so conv-only tooling can run it.

        The reduction dimension K maps to input channels C, the M output rows map
        to output channels, and the N columns map to output spatial positions.
        """
        return ConvLayerSpec(
            name=f"{self.name}_as_conv",
            n=1,
            m=self.m,
            c=self.k,
            h=1,
            w=self.n,
            r=1,
            s=1,
            stride=1,
            padding=0,
            kind=LayerKind.FC,
            bits=self.bits,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}(M{self.m} K{self.k} N{self.n})"


def fig10_workloads() -> list:
    """The four skewed GEMM workloads used in Fig. 10.

    Shapes are reconstructed from the figure: Workload A is a regular 8x8x4
    GEMM; B is reduction-free (K=1) with many columns; C has a small K=2 with
    uneven column demand; D is reduction-heavy (K=16) with a single column.
    """
    return [
        GemmSpec("workload_A", m=8, k=8, n=4),
        GemmSpec("workload_B", m=6, k=1, n=8),
        GemmSpec("workload_C", m=5, k=12, n=3),
        GemmSpec("workload_D", m=4, k=16, n=1),
    ]
