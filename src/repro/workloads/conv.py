"""Convolution layer specification.

The paper (Fig. 1) describes a convolution with seven dimensions:

* ``N`` — batch
* ``M`` — output channels (kernels)
* ``C`` — input channels
* ``H`` / ``W`` — input activation height / width
* ``R`` / ``S`` — kernel height / width

plus stride and padding.  Output spatial dimensions are conventionally named
``P`` (output height) and ``Q`` (output width).  Everything downstream — the
dataflow mapping space, the Layoutloop cost model and the FEATHER functional
simulator — consumes this specification.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from dataclasses import dataclass, field


class LayerKind(enum.Enum):
    """Kind of layer a :class:`ConvLayerSpec` describes.

    Depthwise convolutions constrain the mapping space (each output channel
    reads a single input channel) and pointwise convolutions have R = S = 1;
    both matter when reproducing MobileNet-V3 results.
    """

    CONV = "conv"
    DEPTHWISE = "depthwise"
    POINTWISE = "pointwise"
    FC = "fc"


# Canonical dimension names used across the package.
CONV_DIMS = ("N", "M", "C", "P", "Q", "R", "S")
IACT_DIMS = ("N", "C", "H", "W")
WEIGHT_DIMS = ("M", "C", "R", "S")
OACT_DIMS = ("N", "M", "P", "Q")


@dataclass(frozen=True)
class ConvLayerSpec:
    """Shape of a single convolution (or FC treated as 1x1 conv) layer.

    Parameters mirror the paper's terminology in Fig. 1.  ``name`` is a free
    label used in experiment output (e.g. ``"resnet50_layer1"``).
    """

    name: str
    n: int = 1
    m: int = 1
    c: int = 1
    h: int = 1
    w: int = 1
    r: int = 1
    s: int = 1
    stride: int = 1
    padding: int = 0
    kind: LayerKind = LayerKind.CONV
    bits: int = 8
    groups: int = field(default=1)

    def __post_init__(self) -> None:
        for attr in ("n", "m", "c", "h", "w", "r", "s", "stride", "groups"):
            value = getattr(self, attr)
            if value < 1:
                raise ValueError(f"{attr} must be >= 1, got {value}")
        if self.padding < 0:
            raise ValueError(f"padding must be >= 0, got {self.padding}")
        if self.kind is LayerKind.DEPTHWISE and self.groups == 1:
            # A depthwise layer is a grouped convolution with one channel per group.
            object.__setattr__(self, "groups", self.c)
        if self.c % self.groups != 0 or self.m % self.groups != 0:
            raise ValueError(
                f"groups={self.groups} must divide both C={self.c} and M={self.m}"
            )

    # ------------------------------------------------------------------ sizes
    @property
    def p(self) -> int:
        """Output height."""
        return (self.h + 2 * self.padding - self.r) // self.stride + 1

    @property
    def q(self) -> int:
        """Output width."""
        return (self.w + 2 * self.padding - self.s) // self.stride + 1

    def dim(self, name: str) -> int:
        """Return the extent of a dimension by its canonical single-letter name."""
        table = {
            "N": self.n,
            "M": self.m,
            "C": self.c,
            "H": self.h,
            "W": self.w,
            "P": self.p,
            "Q": self.q,
            "R": self.r,
            "S": self.s,
        }
        try:
            return table[name.upper()]
        except KeyError as exc:
            raise KeyError(f"unknown dimension {name!r}") from exc

    def dims(self) -> dict:
        """All dimension extents as a dict keyed by canonical name."""
        return {d: self.dim(d) for d in ("N", "M", "C", "H", "W", "P", "Q", "R", "S")}

    # --------------------------------------------------------------- tensor sizes
    @property
    def iact_elems(self) -> int:
        return self.n * self.c * self.h * self.w

    @property
    def weight_elems(self) -> int:
        return self.m * (self.c // self.groups) * self.r * self.s

    @property
    def oact_elems(self) -> int:
        return self.n * self.m * self.p * self.q

    @property
    def macs(self) -> int:
        """Total multiply-accumulate operations in the layer."""
        return self.n * self.m * self.p * self.q * (self.c // self.groups) * self.r * self.s

    @property
    def arithmetic_intensity(self) -> float:
        """MACs per byte moved if every tensor is touched exactly once."""
        bytes_per_elem = self.bits / 8.0
        moved = (self.iact_elems + self.weight_elems + self.oact_elems) * bytes_per_elem
        return self.macs / moved if moved else math.inf

    # -------------------------------------------------------------------- misc
    def is_depthwise(self) -> bool:
        """True when each output channel reads exactly one input channel."""
        return self.kind is LayerKind.DEPTHWISE or self.groups == self.c

    def as_gemm_shape(self) -> tuple:
        """im2col-equivalent GEMM shape ``(M, K, N)``.

        ``M`` = output channels, ``K`` = C*R*S reduction size, ``N`` = N*P*Q
        output positions.  Used when mapping a convolution onto GEMM-only
        baselines (e.g. SIGMA-like configurations).
        """
        return (self.m, (self.c // self.groups) * self.r * self.s, self.n * self.p * self.q)

    def with_batch(self, n: int) -> "ConvLayerSpec":
        """Return a copy running ``n`` inputs per pass (batch dimension N).

        Used by the scenario matrix to widen the evaluation beyond the
        paper's N=1 grid; all other shape fields (including the grouping of
        depthwise layers) are preserved.
        """
        if n < 1:
            raise ValueError(f"batch size must be >= 1, got {n}")
        if n == self.n:
            return self
        return dataclasses.replace(self, name=f"{self.name}_n{n}", n=n)

    def scaled(self, factor: float) -> "ConvLayerSpec":
        """Return a copy with channel counts scaled (used in sweeps)."""
        return ConvLayerSpec(
            name=f"{self.name}_x{factor:g}",
            n=self.n,
            m=max(1, int(self.m * factor)),
            c=max(1, int(self.c * factor)),
            h=self.h,
            w=self.w,
            r=self.r,
            s=self.s,
            stride=self.stride,
            padding=self.padding,
            kind=self.kind,
            bits=self.bits,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name}(N{self.n} M{self.m} C{self.c} H{self.h} W{self.w} "
            f"R{self.r} S{self.s} stride{self.stride} pad{self.padding})"
        )
