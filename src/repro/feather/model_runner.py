"""Whole-model execution on FEATHER with per-layer (dataflow, layout) co-switching.

This ties the pieces together the way the paper's end-to-end deployment does
(§III, §VI-B): a network is a sequence of stages (convolutions interleaved
with ReLU / BatchNorm / pooling), the Layoutloop co-search picks each conv
layer's layout, the accelerator writes every layer's oActs into the StaB Pong
in the layout the *next* conv wants (RIR), the ping-pong buffer swaps at the
layer boundary, and the post-processing engines run in between.

The runner is functional (results are exact integers, verifiable against the
numpy reference) and accumulates the per-layer :class:`ExecutionStats` so
whole-model latency/utilization can be reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.feather.accelerator import ExecutionStats, FeatherAccelerator, reference_conv
from repro.feather.config import FeatherConfig
from repro.feather.postproc import IntegerBatchNorm, max_pool, relu
from repro.layout.layout import Layout, parse_layout
from repro.workloads.conv import ConvLayerSpec


@dataclass
class ConvStage:
    """One convolution stage with its weights and optional post-processing."""

    layer: ConvLayerSpec
    weights: np.ndarray
    apply_relu: bool = False
    batch_norm: Optional[IntegerBatchNorm] = None

    def __post_init__(self) -> None:
        expected = (self.layer.m, self.layer.c // self.layer.groups,
                    self.layer.r, self.layer.s)
        if tuple(self.weights.shape) != expected:
            raise ValueError(
                f"{self.layer.name}: weights shape {self.weights.shape} != {expected}")


@dataclass
class PoolStage:
    """A max-pooling stage (runs on the dedicated engine, not the NEST)."""

    kernel: int
    stride: Optional[int] = None


Stage = Union[ConvStage, PoolStage]


def iter_conv_groups(layer: ConvLayerSpec, iacts: np.ndarray,
                     weights: np.ndarray):
    """Decompose a grouped/depthwise conv into independent sub-convs.

    Yields ``(sub_layer, sub_acts, sub_weights, m_slice)`` per group, where
    ``m_slice`` locates the group's output channels in the full ``(M, P, Q)``
    result.  Single-sourced so the model runner, the numpy reference and
    the simulator backend can never diverge on the decomposition.
    """
    c_per_group = layer.c // layer.groups
    m_per_group = layer.m // layer.groups
    for g in range(layer.groups):
        sub_layer = ConvLayerSpec(
            f"{layer.name}_g{g}", m=m_per_group, c=c_per_group, h=layer.h,
            w=layer.w, r=layer.r, s=layer.s, stride=layer.stride,
            padding=layer.padding)
        m_slice = slice(g * m_per_group, (g + 1) * m_per_group)
        yield (sub_layer, iacts[g * c_per_group:(g + 1) * c_per_group],
               weights[m_slice], m_slice)


@dataclass
class ModelRunResult:
    """Output activations plus per-layer and aggregate statistics."""

    outputs: np.ndarray
    per_layer_stats: List[Tuple[str, ExecutionStats]] = field(default_factory=list)

    @property
    def total_stats(self) -> ExecutionStats:
        total = ExecutionStats()
        for _, stats in self.per_layer_stats:
            total = total.merge(stats)
        return total

    @property
    def total_cycles(self) -> float:
        return sum(stats.cycles for _, stats in self.per_layer_stats)

    @property
    def layouts_used(self) -> List[str]:
        return [stats.output_layout for _, stats in self.per_layer_stats
                if stats.output_layout]


class ModelRunner:
    """Run a sequence of stages on one FEATHER instance with layout co-switching.

    ``layout_for`` chooses the layout each conv layer's *output* is written in
    (i.e. the next layer's iAct layout); by default channel-last sized to the
    array width, which is concordant with the channel-parallel reads the GEMM
    lowering performs — callers can plug in the Layoutloop co-search instead.
    """

    def __init__(self, config: Optional[FeatherConfig] = None,
                 layout_for: Optional[Callable[[ConvLayerSpec], Layout]] = None,
                 route_birrd: str = "never"):
        self.config = config or FeatherConfig(array_rows=4, array_cols=8,
                                              stab_lines=4096)
        self.accelerator = FeatherAccelerator(self.config, route_birrd=route_birrd)
        self._layout_for = layout_for or self._default_layout

    def _default_layout(self, layer: ConvLayerSpec) -> Layout:
        width = min(self.config.array_cols, max(1, layer.q))
        return parse_layout(f"MPQ_Q{width}")

    def _input_layout(self, layer: ConvLayerSpec) -> Layout:
        width = min(self.config.array_cols, max(1, layer.c))
        return parse_layout(f"HWC_C{width}")

    # ------------------------------------------------------------------- run
    def run(self, stages: Sequence[Stage], iacts: np.ndarray) -> ModelRunResult:
        """Execute the stage list on the input tensor ``(C, H, W)``."""
        acts = np.asarray(iacts, dtype=np.int64)
        result = ModelRunResult(outputs=acts)

        for index, stage in enumerate(stages):
            if isinstance(stage, PoolStage):
                acts = max_pool(acts, kernel=stage.kernel, stride=stage.stride)
                continue
            if not isinstance(stage, ConvStage):
                raise TypeError(f"unsupported stage type {type(stage)!r}")

            layer = stage.layer
            if acts.shape != (layer.c, layer.h, layer.w):
                raise ValueError(
                    f"stage {index} ({layer.name}): activations {acts.shape} do not "
                    f"match the declared layer input {(layer.c, layer.h, layer.w)}")

            grouped = self._run_conv_possibly_grouped(stage, acts)
            acts, stats = grouped

            if stage.batch_norm is not None:
                acts = stage.batch_norm.apply(acts)
            if stage.apply_relu:
                acts = relu(acts)

            result.per_layer_stats.append((layer.name, stats))

        result.outputs = acts
        return result

    def _run_conv_possibly_grouped(self, stage: ConvStage, acts: np.ndarray
                                   ) -> Tuple[np.ndarray, ExecutionStats]:
        """Run a conv stage, handling grouped/depthwise layers group by group."""
        layer = stage.layer
        output_layout = self._layout_for(layer)
        input_layout = self._input_layout(layer)
        if layer.groups == 1:
            return self.accelerator.run_conv(
                layer, acts, stage.weights,
                output_layout=output_layout, input_layout=input_layout)

        outputs = np.zeros((layer.m, layer.p, layer.q), dtype=np.int64)
        total = ExecutionStats()
        for sub_layer, sub_acts, sub_weights, m_slice in iter_conv_groups(
                layer, acts, stage.weights):
            sub_out, stats = self.accelerator.run_conv(
                sub_layer, sub_acts, sub_weights,
                output_layout=self._layout_for(sub_layer),
                input_layout=self._input_layout(sub_layer))
            outputs[m_slice] = sub_out
            total = total.merge(stats)
        return outputs, total


def seeded_stages(layers: Sequence[ConvLayerSpec], seed: int = 0,
                  apply_relu: bool = False
                  ) -> Tuple[List[ConvStage], np.ndarray]:
    """Deterministic ``(stages, input activations)`` for a conv-layer chain.

    Weights and the initial iActs are drawn from per-layer RNG streams that
    depend only on ``seed`` and each layer's *shape signature*
    (:func:`repro.backends.simulator.cell_rng`), so a whole-model simulator
    run is exactly reproducible from a recorded seed — same contract as the
    scenario records' embedded-seed replay.
    """
    from repro.backends.simulator import seeded_conv_tensors

    layers = list(layers)
    if not layers:
        raise ValueError("seeded_stages requires at least one layer")
    stages = []
    for layer in layers:
        _, weights = seeded_conv_tensors(layer, seed)
        stages.append(ConvStage(layer=layer, weights=weights,
                                apply_relu=apply_relu))
    # The first layer's iActs are the first draw of its cell stream, so a
    # standalone simulator evaluation of that cell sees identical data.
    iacts, _ = seeded_conv_tensors(layers[0], seed)
    return stages, iacts


def reference_model(stages: Sequence[Stage], iacts: np.ndarray) -> np.ndarray:
    """Numpy reference of the whole stage sequence (golden model for tests)."""
    acts = np.asarray(iacts, dtype=np.int64)
    for stage in stages:
        if isinstance(stage, PoolStage):
            acts = max_pool(acts, kernel=stage.kernel, stride=stage.stride)
            continue
        layer = stage.layer
        if layer.groups == 1:
            acts = reference_conv(acts, stage.weights, layer)
        else:
            out = np.zeros((layer.m, layer.p, layer.q), dtype=np.int64)
            for sub_layer, sub_acts, sub_weights, m_slice in iter_conv_groups(
                    layer, acts, stage.weights):
                out[m_slice] = reference_conv(sub_acts, sub_weights, sub_layer)
            acts = out
        if stage.batch_norm is not None:
            acts = stage.batch_norm.apply(acts)
        if stage.apply_relu:
            acts = relu(acts)
    return acts
