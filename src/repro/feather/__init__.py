"""FEATHER accelerator: NEST + BIRRD + on-chip storage + quantization."""

from repro.feather.config import FeatherConfig
from repro.feather.quantize import QuantizationModule
from repro.feather.rir import RirPlan, RirPlanner, WriteCommand
from repro.feather.accelerator import (
    ExecutionStats,
    FeatherAccelerator,
    im2col,
    reference_conv,
)
from repro.feather.controller import InstructionStream, generate_instruction_stream
from repro.feather.postproc import (
    IntegerBatchNorm,
    avg_pool_layer,
    avg_pool_reference,
    max_pool,
    relu,
)
from repro.feather.model_runner import (
    ConvStage,
    ModelRunResult,
    ModelRunner,
    PoolStage,
    reference_model,
    seeded_stages,
)

__all__ = [
    "FeatherConfig",
    "QuantizationModule",
    "RirPlan",
    "RirPlanner",
    "WriteCommand",
    "ExecutionStats",
    "FeatherAccelerator",
    "im2col",
    "reference_conv",
    "InstructionStream",
    "generate_instruction_stream",
    "IntegerBatchNorm",
    "avg_pool_layer",
    "avg_pool_reference",
    "max_pool",
    "relu",
    "ConvStage",
    "ModelRunResult",
    "ModelRunner",
    "PoolStage",
    "reference_model",
    "seeded_stages",
]
