"""FEATHER hardware configuration."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.buffer.buffer import BufferSpec
from repro.noc.birrd import BirrdTopology


@dataclass(frozen=True)
class FeatherConfig:
    """Shape and storage parameters of one FEATHER instance.

    ``array_rows`` (AH) x ``array_cols`` (AW) is the NEST shape; AW must be a
    power of two because it is also the BIRRD input count.  The stationary
    buffer has ``array_cols`` one-byte-wide banks (word interleaved) so each
    bank can take an independent write address — the property RIR relies on.
    """

    array_rows: int = 16
    array_cols: int = 16
    stab_lines: int = 2048
    strb_lines: int = 2048
    ob_entries: int = 256
    stab_ports_per_bank: int = 2
    weight_capacity_per_pe: int = 64
    iact_bits: int = 8
    weight_bits: int = 8
    accumulator_bits: int = 32
    frequency_mhz: float = 1000.0

    def __post_init__(self) -> None:
        if self.array_cols < 2 or self.array_cols & (self.array_cols - 1):
            raise ValueError("array_cols (AW) must be a power of two >= 2")
        if self.array_rows < 1:
            raise ValueError("array_rows (AH) must be >= 1")

    # ---------------------------------------------------------------- derived
    @property
    def num_pes(self) -> int:
        return self.array_rows * self.array_cols

    @property
    def birrd_topology(self) -> BirrdTopology:
        return BirrdTopology(self.array_cols)

    @property
    def stab_spec(self) -> BufferSpec:
        """Stationary buffer: AW word-wide banks, word interleaved (Fig. 8)."""
        return BufferSpec(
            num_lines=self.stab_lines,
            line_size=self.array_cols,
            banks=self.array_cols,
            ports_per_bank=self.stab_ports_per_bank,
            word_bits=self.iact_bits,
            interleaving="word",
            name="StaB",
        )

    @property
    def strb_spec(self) -> BufferSpec:
        """Streaming buffer: single bank with an AW-word line (Fig. 8)."""
        return BufferSpec(
            num_lines=self.strb_lines,
            line_size=self.array_cols,
            banks=1,
            ports_per_bank=self.stab_ports_per_bank,
            word_bits=self.weight_bits,
            interleaving="line",
            name="StrB",
        )

    @property
    def instruction_bits_per_entry(self) -> int:
        """IB entry width: 2 bits per switch plus a log2(depth) write address (Fig. 8)."""
        topo = self.birrd_topology
        return topo.config_bits_per_cycle + max(1, int(math.log2(self.stab_lines)))

    @property
    def peak_macs_per_cycle(self) -> int:
        return self.num_pes

    def peak_throughput_gmacs(self) -> float:
        """Peak throughput in GMACs/s at the configured clock."""
        return self.peak_macs_per_cycle * self.frequency_mhz / 1e3
