"""FEATHER controller: instruction stream for BIRRD and the write-back path.

The BIRRD configurations are generated offline and fetched into the
instruction buffer at run time (§III-C2).  This module turns a sequence of
:class:`~repro.feather.rir.RirPlan` cycles into the packed instruction words
the IB would hold (2 bits per Egg plus a write address per bank), which gives
the instruction-buffer sizing of Fig. 8 and lets tests check that per-layer
reconfiguration cost is a handful of kilobytes — the "low-cost switching"
claim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.feather.config import FeatherConfig
from repro.feather.rir import RirPlan
from repro.noc.birrd import BirrdTopology, EggConfig
from repro.noc.routing import BirrdRouter


@dataclass
class InstructionStream:
    """Packed per-cycle control words for BIRRD and the StaB write path."""

    aw: int
    stab_lines: int
    words: List[int] = field(default_factory=list)
    bits_per_word: int = 0
    unrouted_cycles: int = 0

    @property
    def num_words(self) -> int:
        return len(self.words)

    @property
    def total_bits(self) -> int:
        return self.num_words * self.bits_per_word

    @property
    def total_bytes(self) -> float:
        return self.total_bits / 8.0

    def reconfiguration_cycles(self, fetch_width_bits: int = 256) -> int:
        """Cycles to stream the instruction words in through a fetch port."""
        if fetch_width_bits < 1:
            raise ValueError("fetch width must be positive")
        return math.ceil(self.total_bits / fetch_width_bits)


def pack_configuration(configs: Sequence[Sequence[EggConfig]], topo: BirrdTopology,
                       write_lines: Sequence[int], stab_lines: int) -> int:
    """Pack one cycle's switch configs + write addresses into an integer word."""
    word = 0
    for stage_cfg in configs:
        for cfg in stage_cfg:
            word = (word << 2) | cfg.control_bits
    addr_bits = max(1, int(math.log2(max(2, stab_lines))))
    for line in write_lines:
        word = (word << addr_bits) | (line % stab_lines)
    return word


def generate_instruction_stream(plans: Sequence[RirPlan], config: FeatherConfig,
                                router: Optional[BirrdRouter] = None,
                                route: bool = True) -> InstructionStream:
    """Generate the IB contents for a sequence of RIR plans (one per drain cycle).

    When ``route`` is false (or routing fails) the cycle still occupies one
    instruction word — the controller would hold a brute-forced configuration
    there — but it is counted in ``unrouted_cycles`` for reporting.
    """
    topo = config.birrd_topology
    addr_bits = max(1, int(math.log2(max(2, config.stab_lines))))
    bits_per_word = 2 * topo.num_switches + addr_bits * config.array_cols
    stream = InstructionStream(aw=config.array_cols, stab_lines=config.stab_lines,
                               bits_per_word=bits_per_word)
    router = router or BirrdRouter(config.array_cols)

    identity = [[EggConfig.PASS] * topo.switches_per_stage
                for _ in range(topo.num_stages)]

    for plan in plans:
        configs = identity
        if route and config.array_cols <= 8:
            result = router.route(plan.requests)
            if result.routed:
                configs = result.configs
            else:
                stream.unrouted_cycles += 1
        elif route:
            stream.unrouted_cycles += 1
        write_lines = [w.line for w in plan.writes]
        write_lines += [0] * (config.array_cols - len(write_lines))
        stream.words.append(pack_configuration(configs, topo, write_lines,
                                               config.stab_lines))
    return stream
