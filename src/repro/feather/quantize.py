"""Quantization module (QM).

FEATHER's QM rescales 32-bit accumulated oActs and re-quantizes them to 8-bit
using the FBGEMM/QNNPACK scheme referenced by the paper (§III-C4): 8-bit zero
points and 32-bit floating scales held in the ZP/Scale buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass
class QuantizationModule:
    """Requantize int32 accumulator values to int8 activations."""

    scale: float = 1.0
    zero_point: int = 0
    out_bits: int = 8
    signed: bool = True

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.out_bits < 2 or self.out_bits > 32:
            raise ValueError("out_bits must be between 2 and 32")
        self.values_quantized = 0

    @property
    def qmin(self) -> int:
        return -(1 << (self.out_bits - 1)) if self.signed else 0

    @property
    def qmax(self) -> int:
        return (1 << (self.out_bits - 1)) - 1 if self.signed else (1 << self.out_bits) - 1

    def quantize(self, value: int) -> int:
        """Requantize one int32 accumulator value."""
        q = int(round(value * self.scale)) + self.zero_point
        self.values_quantized += 1
        return max(self.qmin, min(self.qmax, q))

    def quantize_array(self, values) -> np.ndarray:
        """Vector form used by the functional simulator."""
        arr = np.asarray(values, dtype=np.int64)
        q = np.rint(arr * self.scale).astype(np.int64) + self.zero_point
        self.values_quantized += arr.size
        return np.clip(q, self.qmin, self.qmax).astype(np.int32)

    @classmethod
    def calibrated(cls, accumulators: Sequence[int], out_bits: int = 8) -> "QuantizationModule":
        """Pick a symmetric scale that maps the observed accumulator range onto int8."""
        arr = np.asarray(list(accumulators), dtype=np.int64)
        max_abs = int(np.max(np.abs(arr))) if arr.size else 1
        qmax = (1 << (out_bits - 1)) - 1
        scale = qmax / max_abs if max_abs else 1.0
        return cls(scale=scale, zero_point=0, out_bits=out_bits)
