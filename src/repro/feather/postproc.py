"""Post-processing functional engines (paper §III-A).

FEATHER keeps dedicated computation engines for ReLU, BatchNorm and MaxPooling
next to the NEST, and lowers AvgPooling to a convolution so it runs on the PE
array; all engines share the same on-chip storage.  These are the functional
models of those engines, operating on integer activation tensors shaped
``(channels, height, width)`` like the rest of the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.workloads.conv import ConvLayerSpec


def relu(acts: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(np.asarray(acts), 0)


@dataclass(frozen=True)
class IntegerBatchNorm:
    """Per-channel affine transform in fixed point.

    Real deployments fold BatchNorm into the convolution; FEATHER's dedicated
    engine applies the folded per-channel scale/shift, here expressed as a
    rational multiply (``scale_num / 2**scale_shift``) plus bias so that the
    whole pipeline stays in integers.
    """

    scale_num: Tuple[int, ...]
    scale_shift: int
    bias: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.scale_num) != len(self.bias):
            raise ValueError("scale and bias must have one entry per channel")
        if self.scale_shift < 0:
            raise ValueError("scale_shift must be >= 0")

    def apply(self, acts: np.ndarray) -> np.ndarray:
        """Apply the folded integer batch-norm per channel (CHW int64 in/out)."""
        acts = np.asarray(acts, dtype=np.int64)
        if acts.shape[0] != len(self.scale_num):
            raise ValueError(
                f"activation has {acts.shape[0]} channels, BN has {len(self.scale_num)}")
        scale = np.asarray(self.scale_num, dtype=np.int64).reshape(-1, 1, 1)
        bias = np.asarray(self.bias, dtype=np.int64).reshape(-1, 1, 1)
        return ((acts * scale) >> self.scale_shift) + bias

    @classmethod
    def identity(cls, channels: int) -> "IntegerBatchNorm":
        return cls(scale_num=tuple([1] * channels), scale_shift=0,
                   bias=tuple([0] * channels))


def max_pool(acts: np.ndarray, kernel: int = 2, stride: int = None) -> np.ndarray:
    """Channel-wise max pooling over ``kernel x kernel`` windows."""
    acts = np.asarray(acts)
    if acts.ndim != 3:
        raise ValueError("expected a (C, H, W) tensor")
    stride = stride or kernel
    c, h, w = acts.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    if out_h < 1 or out_w < 1:
        raise ValueError("pooling window larger than the input")
    out = np.empty((c, out_h, out_w), dtype=acts.dtype)
    for i in range(out_h):
        for j in range(out_w):
            window = acts[:, i * stride:i * stride + kernel,
                          j * stride:j * stride + kernel]
            out[:, i, j] = window.reshape(c, -1).max(axis=1)
    return out


def avg_pool_as_conv(channels: int, kernel: int, stride: int = None,
                     name: str = "avgpool") -> Tuple[ConvLayerSpec, np.ndarray, int]:
    """Lower average pooling to a depthwise convolution (paper §III-A).

    Returns ``(layer_spec_factory_inputs)``: the depthwise conv layer template
    (height/width filled in by the caller via :func:`avg_pool_layer`), the
    integer box-filter weights and the right-shift that divides by the window
    size.  FEATHER executes the conv on the NEST and the shift in the QM.
    """
    stride = stride or kernel
    weights = np.ones((channels, 1, kernel, kernel), dtype=np.int64)
    # Divide by kernel*kernel via the quantization module; expressed as a shift
    # when the window is a power of two, otherwise the caller scales.
    window = kernel * kernel
    shift = int(window).bit_length() - 1 if window & (window - 1) == 0 else 0
    return (channels, kernel, stride, name), weights, shift


def avg_pool_layer(channels: int, h: int, w: int, kernel: int,
                   stride: int = None, name: str = "avgpool") -> ConvLayerSpec:
    """The depthwise-conv layer spec that realises an average pool."""
    stride = stride or kernel
    return ConvLayerSpec(name, m=channels, c=channels, h=h, w=w, r=kernel,
                         s=kernel, stride=stride, padding=0, groups=channels)


def avg_pool_reference(acts: np.ndarray, kernel: int, stride: int = None) -> np.ndarray:
    """Reference integer average pool (floor division, as the QM shift does)."""
    acts = np.asarray(acts, dtype=np.int64)
    stride = stride or kernel
    c, h, w = acts.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    out = np.empty((c, out_h, out_w), dtype=np.int64)
    for i in range(out_h):
        for j in range(out_w):
            window = acts[:, i * stride:i * stride + kernel,
                          j * stride:j * stride + kernel]
            out[:, i, j] = window.reshape(c, -1).sum(axis=1) // (kernel * kernel)
    return out
