"""Reorder-in-Reduction (RIR) planning.

RIR is the paper's central mechanism (§IV): instead of transforming iActs from
one layout to another, BIRRD scatters *post-reduction* oActs directly into the
stationary-buffer banks demanded by the next layer's layout.  The planner here
does exactly the offline work the paper's toolchain does: for every Phase-2
drain cycle of the NEST it

1. groups the ``AW`` column-bus partial sums into reduction groups,
2. looks up each group's output coordinate in the *next layer's* layout to get
   its (line, bank) destination in the StaB Pong,
3. emits a :class:`~repro.noc.routing.ReductionRequest` set for BIRRD plus the
   per-bank write addresses, and
4. reports whether the writes of that cycle exceed the banks' port budget
   (they never should when the (dataflow, layout) pair was co-searched — this
   is the RIR invariant the tests check).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.layout.layout import Layout
from repro.noc.routing import ReductionRequest


@dataclass(frozen=True)
class WriteCommand:
    """One oAct write into the StaB: which bank, which line, which logical coord."""

    bank: int
    line: int
    coord: Tuple[Tuple[str, int], ...]

    @property
    def coord_dict(self) -> Dict[str, int]:
        return dict(self.coord)


@dataclass
class RirPlan:
    """BIRRD + write-back plan for one Phase-2 drain cycle."""

    requests: List[ReductionRequest]
    writes: List[WriteCommand]
    banks_over_budget: Dict[int, int] = field(default_factory=dict)
    serialization_factor: float = 1.0

    @property
    def conflict_free(self) -> bool:
        return not self.banks_over_budget


class RirPlanner:
    """Plans reduction groups and destination banks for FEATHER's write-back path."""

    def __init__(self, aw: int, output_layout: Layout, output_dims: Dict[str, int],
                 ports_per_bank: int = 2):
        if aw < 2:
            raise ValueError("AW must be >= 2")
        self.aw = aw
        self.output_layout = output_layout
        self.output_dims = dict(output_dims)
        self.ports_per_bank = ports_per_bank

    # ----------------------------------------------------------------- helpers
    def destination(self, coord: Dict[str, int]) -> Tuple[int, int]:
        """(line, bank) destination of one oAct under the next layer's layout.

        The StaB is word-interleaved, so the intra-line offset *is* the bank
        index and the line index is the write address within that bank.
        """
        line, offset = self.output_layout.address(coord, self.output_dims)
        bank = offset % self.aw
        return line, bank

    # -------------------------------------------------------------------- plan
    def plan_cycle(self, group_inputs: Sequence[Sequence[int]],
                   group_coords: Sequence[Dict[str, int]]) -> RirPlan:
        """Plan one drain cycle.

        ``group_inputs[i]`` lists the BIRRD input ports whose partial sums
        reduce into output ``i``; ``group_coords[i]`` is that output's logical
        coordinate.  Groups whose destination banks collide beyond the port
        budget are still planned (BIRRD can deliver them over consecutive
        cycles) but the plan records the serialization factor.
        """
        if len(group_inputs) != len(group_coords):
            raise ValueError("need one coordinate per reduction group")
        if len(group_inputs) > self.aw:
            raise ValueError(f"at most {self.aw} reduction groups per cycle")

        writes: List[WriteCommand] = []
        bank_load: Dict[int, int] = defaultdict(int)
        used_ports: Dict[int, int] = defaultdict(int)
        requests: List[ReductionRequest] = []

        for inputs, coord in zip(group_inputs, group_coords):
            line, bank = self.destination(coord)
            bank_load[bank] += 1
            writes.append(WriteCommand(bank=bank, line=line,
                                       coord=tuple(sorted(coord.items()))))

        # BIRRD output port assignment: each group targets its destination bank's
        # port.  If several groups share a bank this cycle, later ones shift to
        # the nearest free port — numerically they are still written to the
        # correct bank, just serialized over extra cycles, which the
        # serialization factor captures.
        taken = set()
        for (inputs, coord), write in zip(zip(group_inputs, group_coords), writes):
            port = write.bank
            while port in taken:
                port = (port + 1) % self.aw
            taken.add(port)
            requests.append(ReductionRequest(output_port=port, inputs=tuple(inputs)))
            used_ports[write.bank] += 1

        over = {bank: count for bank, count in bank_load.items()
                if count > self.ports_per_bank}
        worst = max((count / self.ports_per_bank for count in bank_load.values()),
                    default=1.0)
        return RirPlan(
            requests=requests,
            writes=writes,
            banks_over_budget=over,
            serialization_factor=max(1.0, worst),
        )

    # ------------------------------------------------------------------- audit
    def audit_layer(self, all_cycle_coords: Sequence[Sequence[Dict[str, int]]]
                    ) -> Dict[str, float]:
        """Check the RIR invariant over a whole layer's worth of drain cycles.

        Returns aggregate statistics: fraction of conflict-free cycles and the
        average serialization factor.  A co-searched (dataflow, layout) pair
        should report ``conflict_free_fraction == 1.0``.
        """
        if not all_cycle_coords:
            return {"cycles": 0, "conflict_free_fraction": 1.0, "avg_serialization": 1.0}
        conflict_free = 0
        total_serial = 0.0
        for coords in all_cycle_coords:
            groups = [[i] for i in range(len(coords))]
            plan = self.plan_cycle(groups, coords)
            if plan.conflict_free:
                conflict_free += 1
            total_serial += plan.serialization_factor
        cycles = len(all_cycle_coords)
        return {
            "cycles": cycles,
            "conflict_free_fraction": conflict_free / cycles,
            "avg_serialization": total_serial / cycles,
        }
