"""FEATHER accelerator top level.

Wires the pieces of Fig. 7/8 together: iActs live in the stationary buffer
(StaB Ping), weights stream from the streaming buffer (StrB), the NEST array
performs local temporal reduction and row-by-row spatial forwarding, BIRRD
reduces each row's partial sums and *reorders them in reduction* so the
resulting oActs land in StaB Pong already in the layout the next layer wants,
and the quantization module rescales 32-bit sums back to 8 bits.

The model is functional (numerically exact — results are checked against
numpy in the tests) plus cycle-accounting: NEST steady-state pipelining,
iAct-read bank-conflict slowdown under the chosen input layout, and oAct
write serialization if the chosen output layout ever overloads a bank's
write ports (it never does for co-searched pairs — that is the RIR claim).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.buffer.buffer import Buffer2D
from repro.feather.config import FeatherConfig
from repro.feather.quantize import QuantizationModule
from repro.feather.rir import RirPlanner
from repro.layout.concordance import analyze_concordance
from repro.layout.layout import Layout, parse_layout
from repro.nest.array import NestArray
from repro.noc.birrd import BirrdNetwork
from repro.noc.routing import BirrdRouter
from repro.workloads.conv import ConvLayerSpec


@dataclass
class ExecutionStats:
    """Aggregate statistics of running one layer/GEMM on FEATHER."""

    cycles: float = 0.0
    macs: int = 0
    num_pes: int = 1
    stab_reads: int = 0
    stab_writes: int = 0
    strb_reads: int = 0
    birrd_cycles: int = 0
    birrd_routed_cycles: int = 0
    birrd_fallback_cycles: int = 0
    read_slowdown: float = 1.0
    write_serialization: float = 1.0
    input_layout: str = ""
    output_layout: str = ""

    @property
    def utilization(self) -> float:
        """Achieved MACs per cycle over the array's peak."""
        if self.cycles <= 0:
            return 0.0
        return self.macs / (self.cycles * self.num_pes)

    # -------------------------------------------------- CostReport conventions
    # Derived views matching repro.layoutloop.cost_model.CostReport field
    # names, so analytical and simulated results compare like for like
    # (repro.backends builds its common report from these).

    @property
    def total_cycles(self) -> float:
        """End-to-end latency (cycles) — ``CostReport.total_cycles``."""
        return self.cycles

    @property
    def slowdown(self) -> float:
        """Effective stall factor: the binding of read conflicts and write
        serialization (dimensionless, >= 1)."""
        return max(self.read_slowdown, self.write_serialization, 1.0)

    @property
    def compute_cycles(self) -> float:
        """Ideal latency before stalls (cycles).

        Exact for single-layer stats (``cycles`` is the ideal timing scaled
        by ``slowdown``); for merged whole-model stats it is a lower-bound
        estimate because ``slowdown`` merges as a max across layers.
        """
        return self.cycles / self.slowdown

    @property
    def stall_cycles(self) -> float:
        """Cycles lost to bank conflicts and write serialization."""
        return self.cycles - self.compute_cycles

    @property
    def practical_utilization(self) -> float:
        """Utilization including stalls (0..1) — already what
        :attr:`utilization` measures, aliased for CostReport parity."""
        return self.utilization

    @property
    def avg_utilization(self) -> float:
        """Alias matching ``ModelCost.avg_utilization`` naming."""
        return self.utilization

    @property
    def macs_per_cycle(self) -> float:
        """Achieved throughput (MACs/cycle) — ``energy_per_mac_pj``-style
        derived convenience."""
        return self.macs / self.cycles if self.cycles > 0 else 0.0

    @property
    def routed_fraction(self) -> float:
        if self.birrd_cycles == 0:
            return 1.0
        return self.birrd_routed_cycles / self.birrd_cycles

    def merge(self, other: "ExecutionStats") -> "ExecutionStats":
        """Accumulate another layer's stats (used for whole-model runs)."""
        return ExecutionStats(
            cycles=self.cycles + other.cycles,
            macs=self.macs + other.macs,
            num_pes=max(self.num_pes, other.num_pes),
            stab_reads=self.stab_reads + other.stab_reads,
            stab_writes=self.stab_writes + other.stab_writes,
            strb_reads=self.strb_reads + other.strb_reads,
            birrd_cycles=self.birrd_cycles + other.birrd_cycles,
            birrd_routed_cycles=self.birrd_routed_cycles + other.birrd_routed_cycles,
            birrd_fallback_cycles=self.birrd_fallback_cycles + other.birrd_fallback_cycles,
            read_slowdown=max(self.read_slowdown, other.read_slowdown),
            write_serialization=max(self.write_serialization, other.write_serialization),
            input_layout=other.input_layout or self.input_layout,
            output_layout=other.output_layout or self.output_layout,
        )


class FeatherAccelerator:
    """Functional + timing model of one FEATHER instance.

    ``route_birrd`` controls how BIRRD cycles are realised:

    * ``"auto"``   — attempt real switch-level routing for small arrays
      (AW <= 8) and fall back to the ideal functional outcome otherwise,
      mirroring the paper's brute-force fallback;
    * ``"always"`` — require routing to succeed (raises if it cannot);
    * ``"never"``  — always use the ideal functional outcome (fast).
    """

    def __init__(self, config: Optional[FeatherConfig] = None,
                 route_birrd: str = "auto"):
        self.config = config or FeatherConfig()
        if route_birrd not in ("auto", "always", "never"):
            raise ValueError("route_birrd must be 'auto', 'always' or 'never'")
        self.route_birrd = route_birrd
        self.nest = NestArray(self.config.array_rows, self.config.array_cols,
                              weight_capacity=self.config.weight_capacity_per_pe)
        self.birrd = BirrdNetwork(self.config.array_cols)
        self._router = BirrdRouter(self.config.array_cols)
        self.stab_pong = Buffer2D(self.config.stab_spec)

    # ------------------------------------------------------------------ lanes
    def _choose_col_k(self, k_total: int) -> int:
        """Reduction lanes per row: largest power of two <= min(AW, K)."""
        aw = self.config.array_cols
        col_k = 1
        while col_k * 2 <= min(aw, k_total):
            col_k *= 2
        return col_k

    # ------------------------------------------------------------------- GEMM
    def run_gemm(self, weights: np.ndarray, iacts: np.ndarray,
                 output_layout: Optional[Layout] = None,
                 output_dims: Optional[Dict[str, int]] = None,
                 coord_fn: Optional[Callable[[int, int], Dict[str, int]]] = None,
                 input_layout: Optional[Layout] = None,
                 input_dims: Optional[Dict[str, int]] = None,
                 input_coord_fn: Optional[Callable[[int, int], Dict[str, int]]] = None,
                 quantizer: Optional[QuantizationModule] = None,
                 ) -> Tuple[np.ndarray, ExecutionStats]:
        """Execute ``out[M, N] = weights[M, K] @ iacts[K, N]`` on FEATHER.

        ``output_layout``/``output_dims`` describe the layout the *next* layer
        wants; oActs are scattered into StaB Pong accordingly (RIR).
        ``coord_fn`` maps a flat output index (m, n) to the logical coordinate
        used by that layout (defaults to ``{"M": m, "N": n}``), which is how
        convolution output coordinates (M, P, Q) are threaded through.
        ``input_layout`` enables read-side bank-conflict accounting.
        """
        weights = np.asarray(weights, dtype=np.int64)
        iacts = np.asarray(iacts, dtype=np.int64)
        if weights.ndim != 2 or iacts.ndim != 2:
            raise ValueError("weights and iacts must be 2D")
        m_total, k_total = weights.shape
        if iacts.shape[0] != k_total:
            raise ValueError("weights and iacts disagree on K")
        n_total = iacts.shape[1]

        cfg = self.config
        aw, ah = cfg.array_cols, cfg.array_rows
        col_k = self._choose_col_k(k_total)
        col_m = aw // col_k
        m_per_tile = ah * col_m

        if output_layout is None:
            output_layout = parse_layout(f"MN_N{min(aw, max(1, n_total))}")
        if output_dims is None:
            output_dims = {"M": m_total, "N": n_total}
        if coord_fn is None:
            coord_fn = lambda m, n: {"M": m, "N": n}

        planner = RirPlanner(aw, output_layout, output_dims,
                             ports_per_bank=cfg.stab_ports_per_bank)

        outputs = np.zeros((m_total, n_total), dtype=np.int64)
        stats = ExecutionStats(num_pes=cfg.num_pes,
                               input_layout=input_layout.name if input_layout else "",
                               output_layout=output_layout.name)

        k_per_lane = math.ceil(k_total / col_k)
        total_serial = 0.0
        serial_cycles = 0

        for m_base in range(0, m_total, m_per_tile):
            m_tile = min(m_per_tile, m_total - m_base)
            w_tile = weights[m_base:m_base + m_tile]
            self.nest.reset()
            stats.strb_reads += w_tile.size

            for row_result in self.nest.run_gemm_tile(w_tile, iacts, col_k=col_k):
                n_idx = row_result.temporal_tile[0]
                group_inputs: List[List[int]] = []
                group_coords: List[Dict[str, int]] = []
                group_values: List[int] = []
                for m_lane in range(col_m):
                    m_idx = m_base + row_result.row * col_m + m_lane
                    if m_idx >= m_total:
                        continue
                    lanes = list(range(m_lane * col_k, (m_lane + 1) * col_k))
                    group_inputs.append(lanes)
                    group_coords.append(coord_fn(m_idx, n_idx))
                    group_values.append(sum(row_result.partial_sums[l] for l in lanes))
                    outputs[m_idx, n_idx] = group_values[-1]
                if not group_inputs:
                    continue

                plan = planner.plan_cycle(group_inputs, group_coords)
                total_serial += plan.serialization_factor
                serial_cycles += 1
                stats.birrd_cycles += 1
                self._execute_birrd_cycle(row_result.partial_sums, plan, group_values,
                                          stats)
                for write, value in zip(plan.writes, group_values):
                    final = quantizer.quantize(value) if quantizer else value
                    self.stab_pong.write_word(write.line % cfg.stab_lines, write.bank,
                                              int(final))
                    stats.stab_writes += 1

        # ---------------------------------------------------------- timing
        tiles = math.ceil(m_total / m_per_tile)
        timing_cycles = 0.0
        for _ in range(tiles):
            timing = self.nest.timing_for_tile(
                temporal_steps=n_total, macs_per_pe_per_step=k_per_lane)
            timing_cycles += timing.total_cycles

        read_slowdown = 1.0
        if input_layout is not None and input_dims is not None:
            read_slowdown = self._read_slowdown(iacts.shape, col_k, k_per_lane,
                                                input_layout, input_dims,
                                                input_coord_fn)
        write_serial = (total_serial / serial_cycles) if serial_cycles else 1.0

        stats.cycles = timing_cycles * max(read_slowdown, write_serial)
        stats.macs = int(m_total * k_total * n_total)
        stats.stab_reads += int(k_total * n_total)
        stats.read_slowdown = read_slowdown
        stats.write_serialization = write_serial
        return outputs, stats

    # -------------------------------------------------------------- BIRRD step
    def _execute_birrd_cycle(self, partial_sums: Sequence[int], plan,
                             expected_values: Sequence[int],
                             stats: ExecutionStats) -> None:
        """Realise one drain cycle on BIRRD, by routing if feasible."""
        aw = self.config.array_cols
        attempt_routing = (self.route_birrd == "always"
                           or (self.route_birrd == "auto" and aw <= 8))
        if not attempt_routing:
            stats.birrd_fallback_cycles += 1
            return
        result = self._router.route(plan.requests)
        if not result.routed:
            if self.route_birrd == "always":
                raise RuntimeError("BIRRD routing failed with route_birrd='always'")
            stats.birrd_fallback_cycles += 1
            return
        outputs = self.birrd.evaluate(list(partial_sums), result.configs)
        for request, expected in zip(plan.requests, expected_values):
            got = outputs[request.output_port]
            if got != expected:
                raise AssertionError(
                    f"BIRRD routing produced {got} at port {request.output_port}, "
                    f"expected {expected}")
        stats.birrd_routed_cycles += 1

    # ----------------------------------------------------------- read slowdown
    def _read_slowdown(self, iact_shape: Tuple[int, int], col_k: int, k_per_lane: int,
                       input_layout: Layout, input_dims: Dict[str, int],
                       input_coord_fn: Optional[Callable[[int, int], Dict[str, int]]] = None,
                       max_cycles: int = 256) -> float:
        """Average bank-conflict slowdown of streaming iActs under a layout.

        ``input_coord_fn`` maps a flat (k, n) GEMM index to the logical
        coordinate of the original tensor (e.g. the (C, H, W) position an
        im2col'd convolution actually reads); defaults to GEMM-native names.
        """
        if input_coord_fn is None:
            input_coord_fn = lambda k, n: {"K": k, "N": n, "C": k, "W": n}
        k_total, n_total = iact_shape
        per_cycle = []
        cycles = 0
        for n_idx in range(n_total):
            for step in range(k_per_lane):
                coords = []
                for lane in range(col_k):
                    k_idx = lane * k_per_lane + step
                    if k_idx < k_total:
                        coords.append(input_coord_fn(k_idx, n_idx))
                if coords:
                    per_cycle.append(coords)
                cycles += 1
                if cycles >= max_cycles:
                    break
            if cycles >= max_cycles:
                break
        if not per_cycle:
            return 1.0
        report = analyze_concordance(
            per_cycle, input_layout, input_dims,
            ports_per_bank=self.config.stab_ports_per_bank,
            lines_per_bank=1, num_banks=self.config.array_cols)
        return report.avg_slowdown

    # ------------------------------------------------------------ convolution
    def run_conv(self, layer: ConvLayerSpec, iacts: np.ndarray, weights: np.ndarray,
                 output_layout: Optional[Layout] = None,
                 input_layout: Optional[Layout] = None,
                 quantizer: Optional[QuantizationModule] = None,
                 ) -> Tuple[np.ndarray, ExecutionStats]:
        """Execute one convolution layer (functionally via im2col).

        ``iacts`` is ``(C, H, W)``; ``weights`` is ``(M, C, R, S)``; the
        result is ``(M, P, Q)``.  oActs are written into StaB Pong in
        ``output_layout`` over the (M, P, Q) coordinates (the next layer's
        iActs layout), exactly as in the Fig. 11 walk-through.
        """
        iacts = np.asarray(iacts, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.int64)
        if iacts.shape != (layer.c, layer.h, layer.w):
            raise ValueError(f"iacts shape {iacts.shape} does not match layer {layer}")
        if weights.shape != (layer.m, layer.c, layer.r, layer.s):
            raise ValueError(f"weights shape {weights.shape} does not match layer {layer}")

        cols = im2col(iacts, layer)
        w_matrix = weights.reshape(layer.m, layer.c * layer.r * layer.s)

        p, q = layer.p, layer.q
        output_dims = {"M": layer.m, "P": p, "Q": q,
                       "C": layer.m, "H": p, "W": q}
        if output_layout is None:
            output_layout = parse_layout(f"MPQ_Q{min(self.config.array_cols, q)}")

        def coord_fn(m: int, n: int) -> Dict[str, int]:
            pp, qq = divmod(n, q)
            # Provide both GEMM-style (M, P, Q) and next-layer iAct-style
            # (C, H, W) names so either flavour of layout can address it.
            return {"M": m, "P": pp, "Q": qq, "C": m, "H": pp, "W": qq}

        input_dims = None
        input_coord_fn = None
        if input_layout is not None:
            input_dims = {"C": layer.c, "H": layer.h, "W": layer.w}

            def input_coord_fn(k: int, n: int) -> Dict[str, int]:
                # Translate the im2col (k, n) index back to the (C, H, W)
                # position the NEST actually reads from StaB Ping.
                c = k // (layer.r * layer.s)
                rem = k % (layer.r * layer.s)
                r, s = divmod(rem, layer.s)
                pp, qq = divmod(n, q)
                h = min(max(pp * layer.stride + r - layer.padding, 0), layer.h - 1)
                w = min(max(qq * layer.stride + s - layer.padding, 0), layer.w - 1)
                return {"C": c, "H": h, "W": w}

        flat, stats = self.run_gemm(
            w_matrix, cols, output_layout=output_layout, output_dims=output_dims,
            coord_fn=coord_fn, input_layout=input_layout, input_dims=input_dims,
            input_coord_fn=input_coord_fn, quantizer=quantizer)
        return flat.reshape(layer.m, p, q), stats


def im2col(iacts: np.ndarray, layer: ConvLayerSpec) -> np.ndarray:
    """Lower a (C, H, W) activation tensor to the (C*R*S, P*Q) im2col matrix."""
    c, h, w = iacts.shape
    p, q = layer.p, layer.q
    padded = np.zeros((c, h + 2 * layer.padding, w + 2 * layer.padding), dtype=iacts.dtype)
    padded[:, layer.padding:layer.padding + h, layer.padding:layer.padding + w] = iacts
    cols = np.zeros((c * layer.r * layer.s, p * q), dtype=iacts.dtype)
    for pp in range(p):
        for qq in range(q):
            patch = padded[:, pp * layer.stride:pp * layer.stride + layer.r,
                           qq * layer.stride:qq * layer.stride + layer.s]
            cols[:, pp * q + qq] = patch.reshape(-1)
    return cols


def reference_conv(iacts: np.ndarray, weights: np.ndarray, layer: ConvLayerSpec) -> np.ndarray:
    """Straightforward numpy convolution used as the golden reference in tests."""
    cols = im2col(np.asarray(iacts, dtype=np.int64), layer)
    w_matrix = np.asarray(weights, dtype=np.int64).reshape(layer.m, -1)
    return (w_matrix @ cols).reshape(layer.m, layer.p, layer.q)
