"""Disk-backed, content-addressed result store shared across processes.

:class:`ResultStore` is the persistence tier *under* the in-memory serving
layers of a :class:`~repro.api.Session` (the in-flight request table, the
per-configuration mapper memos, the :class:`~repro.search.cache.EvaluationCache`).
It maps the façade's sha256 **content keys**
(:func:`repro.api.session.content_key`) to finished response payloads
(``response.to_dict()``), so a fleet of ``python -m repro.serve`` replicas
pointed at one ``--store`` file shares warm results: whichever replica
computes a cell first, every other replica serves the repeat from disk
without re-running the search.

Design constraints, in order:

* **Safe concurrent access** from many threads *and* many processes.  The
  store is a single sqlite database in WAL mode — sqlite's file locking is
  the cross-process mutex, a per-instance lock serializes this process's
  connection, and every mutation runs in one transaction.  Writers never
  block readers (WAL), and a 30 s busy timeout absorbs write contention.
* **A cache, not a ledger.**  Anything that goes wrong — a payload whose
  JSON no longer parses, a truncated database file, a locked row — is a
  *miss*, never an exception.  Corrupt entries are deleted on sight; a
  corrupt database file is recreated from scratch (:meth:`ResultStore._recover`);
  if even that fails the store disables itself and every call becomes a
  no-op miss.  Callers re-compute and re-``put``.
* **Bounded.**  ``max_bytes`` (and optionally ``max_entries``) cap the
  store; eviction is LRU by a monotonic access sequence number bumped on
  every hit, applied transactionally with the ``put`` that overflowed.

Content keys embed the request structure, the API schema version and the
``repro`` package version, so a store written by an older build simply
misses for a newer one — stale results can never masquerade as fresh.

Results are deterministic (pinned by the golden tests), which is what
makes sharing them across replicas sound: any replica would have computed
the same payload bit for bit.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

#: Default size bound of a store file (bytes).  Search payloads are a few
#: KB to a few hundred KB, so the default holds thousands of warm cells.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    key     TEXT PRIMARY KEY,
    kind    TEXT NOT NULL,
    payload TEXT NOT NULL,
    size    INTEGER NOT NULL,
    seq     INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS results_seq ON results (seq);
"""


@dataclass
class StoreStats:
    """Per-instance counters (this process only — the file is shared)."""

    hits: int = 0
    """``get`` calls served from the store."""
    misses: int = 0
    """``get`` calls that found nothing usable (absent, corrupt, locked)."""
    puts: int = 0
    """Payloads written."""
    evictions: int = 0
    """Entries dropped by the LRU size bound."""
    errors: int = 0
    """Database-level failures survived (recoveries, locked writes)."""

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the store (0.0 when never used)."""
        return self.hits / self.lookups if self.lookups else 0.0


class ResultStore:
    """A sqlite-backed LRU map from content key to response payload.

    Parameters:

    * ``path`` — the database file; parent directories are created.  One
      file may be shared by any number of ``ResultStore`` instances across
      threads and processes.
    * ``max_bytes`` — LRU bound on the summed payload sizes.  A payload
      larger than the whole bound is not stored at all (storing it would
      immediately evict everything, itself included).
    * ``max_entries`` — optional additional bound on the entry count.

    All methods are thread-safe; none raises on database-level problems
    (see the module docstring for the cache-not-ledger contract).
    """

    def __init__(self, path, max_bytes: int = DEFAULT_MAX_BYTES,
                 max_entries: Optional[int] = None):
        self.path = Path(path)
        self.max_bytes = int(max_bytes)
        self.max_entries = max_entries
        self.stats = StoreStats()
        self._lock = threading.RLock()
        self._conn: Optional[sqlite3.Connection] = None
        self._open()

    # ------------------------------------------------------------ lifecycle
    def _open(self) -> None:
        """Connect and initialise the schema; one recovery attempt on a
        corrupt file, then give up (disabled store = all misses)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        for attempt in (0, 1):
            try:
                conn = sqlite3.connect(str(self.path), timeout=30.0,
                                       check_same_thread=False)
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute("PRAGMA synchronous=NORMAL")
                conn.executescript(_SCHEMA)
                conn.commit()
                self._conn = conn
                return
            except sqlite3.DatabaseError:
                self.stats.errors += 1
                self._unlink_files()
        self._conn = None

    def _unlink_files(self) -> None:
        for suffix in ("", "-wal", "-shm"):
            try:
                Path(str(self.path) + suffix).unlink()
            except OSError:
                pass

    def _recover(self) -> None:
        """The file is corrupt (truncated, overwritten, not sqlite):
        drop it and start empty — it is a cache, losing it costs a re-run."""
        self.stats.errors += 1
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None
        self._unlink_files()
        self._open()

    def close(self) -> None:
        """Close the connection (idempotent; the file stays)."""
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.close()
                except sqlite3.Error:
                    pass
                self._conn = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ get
    def get(self, key: str) -> Optional[Dict]:
        """The payload stored under ``key``, or ``None``.

        A hit bumps the entry's LRU sequence.  An entry whose payload no
        longer parses as a JSON object is deleted and reported as a miss;
        database-level failures recover (or disable) the store and also
        report a miss.
        """
        with self._lock:
            if self._conn is None:
                self.stats.misses += 1
                return None
            try:
                with self._conn:
                    row = self._conn.execute(
                        "SELECT payload FROM results WHERE key = ?",
                        (key,)).fetchone()
                    if row is None:
                        self.stats.misses += 1
                        return None
                    try:
                        payload = json.loads(row[0])
                        if not isinstance(payload, dict):
                            raise ValueError("payload is not an object")
                    except (ValueError, TypeError):
                        # Corrupt entry: delete it so the next put heals it.
                        self._conn.execute(
                            "DELETE FROM results WHERE key = ?", (key,))
                        self.stats.misses += 1
                        return None
                    self._conn.execute(
                        "UPDATE results SET seq = "
                        "(SELECT COALESCE(MAX(seq), 0) + 1 FROM results) "
                        "WHERE key = ?", (key,))
                self.stats.hits += 1
                return payload
            except sqlite3.OperationalError:
                # Transient (e.g. locked past the busy timeout): miss, keep
                # the connection.
                self.stats.errors += 1
                self.stats.misses += 1
                return None
            except sqlite3.DatabaseError:
                self._recover()
                self.stats.misses += 1
                return None

    # ------------------------------------------------------------------ put
    def put(self, key: str, payload: Dict, kind: str = "") -> None:
        """Store ``payload`` under ``key`` (last write wins), then evict
        least-recently-used entries until the store is back under its
        bounds.  Failures are swallowed (the entry is simply not cached)."""
        text = json.dumps(payload, sort_keys=True)
        size = len(text.encode("utf-8"))
        if size > self.max_bytes:
            return
        with self._lock:
            if self._conn is None:
                return
            try:
                with self._conn:
                    self._conn.execute(
                        "INSERT OR REPLACE INTO results "
                        "(key, kind, payload, size, seq) VALUES (?, ?, ?, ?, "
                        "(SELECT COALESCE(MAX(seq), 0) + 1 FROM results))",
                        (key, kind, text, size))
                    self._evict_locked()
                self.stats.puts += 1
            except sqlite3.OperationalError:
                self.stats.errors += 1
            except sqlite3.DatabaseError:
                self._recover()

    def put_many(self, items: Iterable[Tuple[str, Dict, str]]) -> None:
        """Store many ``(key, payload, kind)`` entries in **one** WAL
        transaction — one fsync for the whole batch instead of one per
        entry, which is what makes a burst of publishes from concurrent
        serve handlers cheap.

        Semantics match a sequence of :meth:`put` calls: last write wins
        per key, oversize payloads are skipped, and LRU eviction runs once
        at the end *inside the same transaction*, so the store is never
        observable above its bounds.  Failures are swallowed (the batch is
        simply not cached)."""
        encoded = []
        for key, payload, kind in items:
            text = json.dumps(payload, sort_keys=True)
            size = len(text.encode("utf-8"))
            if size > self.max_bytes:
                continue
            encoded.append((key, kind, text, size))
        if not encoded:
            return
        with self._lock:
            if self._conn is None:
                return
            try:
                with self._conn:
                    for key, kind, text, size in encoded:
                        self._conn.execute(
                            "INSERT OR REPLACE INTO results "
                            "(key, kind, payload, size, seq) "
                            "VALUES (?, ?, ?, ?, "
                            "(SELECT COALESCE(MAX(seq), 0) + 1 FROM results))",
                            (key, kind, text, size))
                    self._evict_locked()
                self.stats.puts += len(encoded)
            except sqlite3.OperationalError:
                self.stats.errors += 1
            except sqlite3.DatabaseError:
                self._recover()

    # --------------------------------------------------------------- delete
    def delete(self, key: str) -> None:
        """Drop one entry (absence is fine, failures are swallowed).

        Used by callers that decoded a stored payload and found it foreign
        or hand-edited: the row can never serve a hit, so deleting it stops
        it costing a decode on every lookup.
        """
        with self._lock:
            if self._conn is None:
                return
            try:
                with self._conn:
                    self._conn.execute(
                        "DELETE FROM results WHERE key = ?", (key,))
            except sqlite3.OperationalError:
                self.stats.errors += 1
            except sqlite3.DatabaseError:
                self._recover()

    def _evict_locked(self) -> None:
        """Drop LRU entries until under ``max_bytes``/``max_entries``.
        Runs inside the caller's transaction and lock."""
        while True:
            total, count = self._conn.execute(
                "SELECT COALESCE(SUM(size), 0), COUNT(*) FROM results"
            ).fetchone()
            over_bytes = total > self.max_bytes
            over_count = (self.max_entries is not None
                          and count > self.max_entries)
            if not (over_bytes or over_count) or count == 0:
                return
            self._conn.execute(
                "DELETE FROM results WHERE key = "
                "(SELECT key FROM results ORDER BY seq ASC LIMIT 1)")
            self.stats.evictions += 1

    # ----------------------------------------------------------- inspection
    def __len__(self) -> int:
        with self._lock:
            if self._conn is None:
                return 0
            try:
                return self._conn.execute(
                    "SELECT COUNT(*) FROM results").fetchone()[0]
            except sqlite3.DatabaseError:
                self._recover()
                return 0

    def total_bytes(self) -> int:
        """Summed payload sizes currently stored (bytes)."""
        with self._lock:
            if self._conn is None:
                return 0
            try:
                return self._conn.execute(
                    "SELECT COALESCE(SUM(size), 0) FROM results"
                ).fetchone()[0]
            except sqlite3.DatabaseError:
                self._recover()
                return 0

    def keys(self) -> List[str]:
        """All stored content keys, most recently used last."""
        with self._lock:
            if self._conn is None:
                return []
            try:
                rows = self._conn.execute(
                    "SELECT key FROM results ORDER BY seq ASC").fetchall()
                return [row[0] for row in rows]
            except sqlite3.DatabaseError:
                self._recover()
                return []

    def clear(self) -> None:
        """Drop every entry (per-instance counters are kept)."""
        with self._lock:
            if self._conn is None:
                return
            try:
                with self._conn:
                    self._conn.execute("DELETE FROM results")
            except sqlite3.DatabaseError:
                self._recover()

    def describe(self) -> Dict[str, object]:
        """JSON-compatible health payload (embedded in ``/v1/healthz``)."""
        return {
            "path": str(self.path),
            "entries": len(self),
            "bytes": self.total_bytes(),
            "max_bytes": self.max_bytes,
            "max_entries": self.max_entries,
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "puts": self.stats.puts,
            "evictions": self.stats.evictions,
            "errors": self.stats.errors,
        }
