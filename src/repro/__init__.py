"""FEATHER (ISCA 2024) reproduction.

The package is organised the way the paper is: workloads and layouts are the
vocabulary, the dataflow/mapping machinery describes how a layer is scheduled
onto hardware, ``noc``/``nest``/``feather`` implement the accelerator itself
(BIRRD reduction-and-reordering network plus the NEST PE array), and
``layoutloop`` is the Timeloop-style analytical cost model extended with
physical-storage and layout awareness used for all cross-accelerator studies.
``search`` is the parallel, cached co-search engine every experiment runs
its (dataflow, layout) exploration through, ``backends`` puts the
analytical model and the cycle-level simulator behind one pluggable
evaluation protocol (with multi-fidelity search and analytical-vs-simulated
cross-validation on top), ``constraints`` binds declarative platform rules
to the search (illegal mappings are *repaired* to legality, not rejected —
what makes the rigid ``systolic``/``noc:*`` backends searchable on the same
grid), and ``scenarios`` turns the paper's fixed
evaluation grid into declarative workload x architecture x search-config
sweeps with golden-pinned JSON records.

Typical entry points:

* :class:`repro.api.Session` with :class:`repro.api.EvalRequest` /
  :class:`repro.api.SearchRequest` / :class:`repro.api.SweepRequest` —
  **the** documented façade: typed, JSON-round-trippable requests on a
  long-lived session (shared caches, persistent worker pool, in-flight
  dedup); ``python -m repro.serve`` exposes the same surface over HTTP
* :class:`repro.workloads.ConvLayerSpec` / :func:`repro.workloads.resnet50_layers`
* :class:`repro.feather.FeatherAccelerator` — functional + timing model
* :class:`repro.layoutloop.CostModel` and :func:`repro.layoutloop.cosearch`
* :func:`repro.search.search_model` — the legacy batch co-search front
  (now a deprecation shim over the module-default session)
* :mod:`repro.experiments` — one module per paper figure/table
"""

from repro import (
    area,
    backends,
    baselines,
    buffer,
    constraints,
    dataflow,
    errors,
    experiments,
    feather,
    layout,
    layoutloop,
    nest,
    noc,
    scenarios,
    search,
    workloads,
)
from repro import api
from repro.api import (
    EvalRequest,
    EvalResponse,
    SearchRequest,
    SearchResponse,
    Session,
    SweepRequest,
    SweepResponse,
    default_session,
)

__version__ = "1.6.0"

__all__ = [
    "api",
    "area",
    "backends",
    "baselines",
    "buffer",
    "constraints",
    "dataflow",
    "errors",
    "EvalRequest",
    "EvalResponse",
    "experiments",
    "feather",
    "layout",
    "layoutloop",
    "nest",
    "noc",
    "scenarios",
    "search",
    "SearchRequest",
    "SearchResponse",
    "Session",
    "SweepRequest",
    "SweepResponse",
    "default_session",
    "workloads",
    "__version__",
]
