"""FEATHER (ISCA 2024) reproduction.

The package is organised the way the paper is: workloads and layouts are the
vocabulary, the dataflow/mapping machinery describes how a layer is scheduled
onto hardware, ``noc``/``nest``/``feather`` implement the accelerator itself
(BIRRD reduction-and-reordering network plus the NEST PE array), and
``layoutloop`` is the Timeloop-style analytical cost model extended with
physical-storage and layout awareness used for all cross-accelerator studies.
``search`` is the parallel, cached co-search engine every experiment runs
its (dataflow, layout) exploration through, ``backends`` puts the
analytical model and the cycle-level simulator behind one pluggable
evaluation protocol (with multi-fidelity search and analytical-vs-simulated
cross-validation on top), and ``scenarios`` turns the paper's fixed
evaluation grid into declarative workload x architecture x search-config
sweeps with golden-pinned JSON records.

Typical entry points:

* :class:`repro.workloads.ConvLayerSpec` / :func:`repro.workloads.resnet50_layers`
* :class:`repro.feather.FeatherAccelerator` — functional + timing model
* :class:`repro.layoutloop.CostModel` and :func:`repro.layoutloop.cosearch`
* :func:`repro.search.search_model` — batch co-search (memoized, pruned,
  optionally fanned out over worker processes)
* :mod:`repro.experiments` — one module per paper figure/table
"""

from repro import (
    area,
    backends,
    baselines,
    buffer,
    dataflow,
    experiments,
    feather,
    layout,
    layoutloop,
    nest,
    noc,
    scenarios,
    search,
    workloads,
)

__version__ = "1.0.0"

__all__ = [
    "area",
    "backends",
    "baselines",
    "buffer",
    "dataflow",
    "experiments",
    "feather",
    "layout",
    "layoutloop",
    "nest",
    "noc",
    "scenarios",
    "search",
    "workloads",
    "__version__",
]
