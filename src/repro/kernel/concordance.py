"""Batched concordance analysis: all cycles x all candidate layouts at once.

:func:`analyze_concordance_batch` is the vectorized counterpart of
:func:`repro.layout.concordance.analyze_concordance`.  Instead of walking one
coordinate dict at a time it:

1. addresses the whole ``(cycles, lanes, ndims)`` footprint through every
   candidate layout's :class:`~repro.kernel.compiled.CompiledLayout` in one
   numpy expression (a ``(layouts, cycles, lanes)`` line tensor),
2. deduplicates lines per (layout, cycle) and counts lines per bank with
   ``np.unique``/``np.bincount``,
3. applies the per-bank slowdown rule vectorized over every bank of every
   cycle of every layout.

The returned :class:`~repro.layout.concordance.ConcordanceReport` objects are
**bit-identical** to the scalar ones (same integer dedup, same IEEE-754
divisions, per-cycle sums accumulated in the same order); the per-cycle
``trace`` is the one scalar-only feature — callers that need ``keep_trace``
run the scalar oracle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.kernel import jit
from repro.kernel.compiled import compile_layout
from repro.layout.concordance import ConcordanceReport
from repro.layout.layout import Layout
from repro.layout.patterns import ReorderPattern, capability


def cycle_slowdowns(counts: np.ndarray, ports: int,
                    pattern: ReorderPattern = ReorderPattern.NONE) -> np.ndarray:
    """Vector form of :func:`repro.layout.concordance.cycle_slowdown`.

    ``counts`` is an integer array of lines-per-bank values; the result is a
    float64 array of per-bank slowdowns, element-wise identical to the
    scalar rule (same divisions, same branch structure).
    """
    counts = np.asarray(counts)
    cap = capability(pattern)
    if cap.cross_line_permute:
        return np.ones(counts.shape, dtype=np.float64)
    effective_ports = ports + cap.extra_bandwidth_ports
    slow = np.maximum(counts / effective_ports, 1.0)
    if cap.transpose:
        limit = cap.max_rows_per_bank * effective_ports
        transposed = np.where(counts <= limit, 1.0, counts / limit)
        slow = np.where(counts > effective_ports, transposed, slow)
    return slow


def analyze_concordance_batch(
    per_cycle_coords: np.ndarray,
    dim_names: Sequence[str],
    layouts: Sequence[Layout],
    dims: Dict[str, int],
    *,
    ports_per_bank: int = 2,
    lines_per_bank: int = 1,
    num_banks: Optional[int] = None,
    pattern: ReorderPattern = ReorderPattern.NONE,
    compiled: bool = False,
) -> List[ConcordanceReport]:
    """Analyse one access footprint against many layouts in one shot.

    ``per_cycle_coords`` — int array of shape ``(cycles, lanes, ndims)`` with
    coordinate columns aligned to ``dim_names`` (see
    :mod:`repro.kernel.footprint`).  Returns one report per layout, in input
    order, each equal (``==``) to what the scalar
    :func:`~repro.layout.concordance.analyze_concordance` produces for the
    same footprint with ``keep_trace=False``.

    ``compiled`` routes the dedup/bank fold through the numba-jitted loop
    kernel (:mod:`repro.kernel.jit`) when numba is importable — bit-identical
    output, it only changes who executes the integer fold.  Without numba the
    flag silently keeps the numpy fold, mirroring ``vectorize``'s graceful
    degradation.
    """
    coords = np.asarray(per_cycle_coords, dtype=np.int64)
    if coords.ndim != 3:
        raise ValueError(
            f"expected (cycles, lanes, ndims) coordinates, got shape {coords.shape}")
    cycles, lanes, _ = coords.shape
    num_layouts = len(layouts)
    if num_layouts == 0:
        return []
    if cycles == 0 or lanes == 0:
        # No accesses: every cycle is conflict-free, matching the scalar loop
        # (which averages a run of 1.0 slowdowns, or defaults to 1.0 when
        # there are no cycles at all).
        return [ConcordanceReport(layout_name=layout.name, cycles=cycles,
                                  conflict_cycles=0, avg_lines_per_cycle=0.0,
                                  worst_slowdown=1.0, avg_slowdown=1.0)
                for layout in layouts]

    names = tuple(dim_names)
    compiled = [compile_layout(layout, dims) for layout in layouts]
    line_div = np.stack([cl.vectors(names)[0] for cl in compiled])
    line_stride = np.stack([cl.vectors(names)[1] for cl in compiled])
    # (layouts, cycles, lanes) line indices in one integer expression.
    lines = ((coords[None, :, :, :] // line_div[:, None, None, :])
             * line_stride[:, None, None, :]).sum(axis=-1)

    groups = num_layouts * cycles
    if compiled and jit.NUMBA_AVAILABLE:
        # The jitted fold does the per-group dedup + bank run-counting with
        # the capability already resolved to plain ints/bools (njit-friendly).
        cap = capability(pattern)
        effective_ports = ports_per_bank + cap.extra_bandwidth_ports
        group_lines, group_slow = jit.concordance_fold(
            lines.reshape(groups, lanes), max(1, lines_per_bank),
            num_banks or 0, effective_ports, cap.cross_line_permute,
            cap.transpose, cap.max_rows_per_bank * effective_ports)
    else:
        # Distinct lines per (layout, cycle): fold the (layout, cycle) pair
        # and the line index into one key and unique it.  Negative
        # coordinates are legal scalar-path inputs and floor-divide to
        # negative lines; the keying shifts them non-negative (a bijection
        # per group) and shifts back before the bank computation, which
        # needs the true line value.
        line_min = min(0, int(lines.min()))
        line_span = int(lines.max()) - line_min + 1
        group_idx = np.arange(groups, dtype=np.int64).reshape(
            num_layouts, cycles, 1)
        uniq = np.unique(group_idx * line_span + (lines - line_min))
        uniq_group = uniq // line_span
        uniq_line = uniq % line_span + line_min

        # Lines per bank per (layout, cycle), then the slowdown rule per bank.
        bank = uniq_line // max(1, lines_per_bank)
        if num_banks:
            bank %= num_banks
        bank -= min(0, int(bank.min()))
        bank_span = int(bank.max()) + 1
        bank_keys, bank_counts = np.unique(uniq_group * bank_span + bank,
                                           return_counts=True)
        bank_slow = cycle_slowdowns(bank_counts, ports_per_bank, pattern)

        # Per-(layout, cycle) slowdown = max over the cycle's banks, floor 1.
        group_slow = np.ones(groups, dtype=np.float64)
        np.maximum.at(group_slow, bank_keys // bank_span, bank_slow)
        group_lines = np.bincount(uniq_group, minlength=groups)

    reports: List[ConcordanceReport] = []
    for idx, layout in enumerate(layouts):
        slowdowns = group_slow[idx * cycles:(idx + 1) * cycles].tolist()
        # Accumulate in cycle order with plain float adds so the averages are
        # bit-identical to the scalar loop's sequential accumulation.
        total_slowdown = 0.0
        conflict_cycles = 0
        worst = 1.0
        for value in slowdowns:
            if value > 1.0:
                conflict_cycles += 1
            total_slowdown += value
            if value > worst:
                worst = value
        total_lines = int(group_lines[idx * cycles:(idx + 1) * cycles].sum())
        reports.append(ConcordanceReport(
            layout_name=layout.name,
            cycles=cycles,
            conflict_cycles=conflict_cycles,
            avg_lines_per_cycle=total_lines / cycles,
            worst_slowdown=worst,
            avg_slowdown=total_slowdown / cycles,
        ))
    return reports
