"""Layouts compiled to integer stride/divisor vectors for batch addressing.

:meth:`repro.layout.Layout.address` evaluates a mixed-radix polynomial one
coordinate dict at a time.  For fixed tensor extents that polynomial is
*linear* in the per-dimension tile indices, so it can be compiled once into
per-dimension ``(divisor, stride)`` pairs:

    line   = sum_d (coord[d] // line_div[d]) * line_stride[d]
    offset = sum_d (coord[d] %  intra_mod[d]) * intra_stride[d]

where ``line_stride`` expands the Horner evaluation of the inter-line order
(with any dimensions absent from the layout appended as the slowest-varying
block, exactly as the scalar path does) and ``intra_stride`` is the
first-listed-fastest flattening within a line.  The identity is algebraic —
it holds for *any* integer coordinates, in range or not — so the compiled
form is bit-identical to the scalar oracle, just evaluated by numpy over
whole ``(..., ndims)`` coordinate arrays at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import TYPE_CHECKING, Dict, Mapping, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.layout.layout import Layout


@dataclass
class CompiledLayout:
    """A :class:`~repro.layout.Layout` bound to concrete tensor extents.

    Instances are produced by :func:`compile_layout` (or the convenience
    :meth:`repro.layout.Layout.compile`) and memoized per (layout, dims), so
    the compilation cost is paid once per search, not per coordinate.
    """

    layout: "Layout"
    """The source layout this was compiled from."""
    dims: Tuple[Tuple[str, int], ...]
    """The tensor extents the line strides were derived from (sorted items)."""
    line_div: Dict[str, int]
    """Per-dimension divisor turning a coordinate into its inter-line tile index."""
    line_stride: Dict[str, int]
    """Per-dimension multiplier of the tile index in the line polynomial."""
    intra_mod: Dict[str, int]
    """Per-dimension modulus of the intra-line flattening."""
    intra_stride: Dict[str, int]
    """Per-dimension multiplier in the offset polynomial."""
    _vectors: Dict[Tuple[str, ...], Tuple[np.ndarray, ...]] = field(
        default_factory=dict, repr=False)

    # -------------------------------------------------------------- vectors
    def vectors(self, dim_names: Tuple[str, ...]
                ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(line_div, line_stride, intra_mod, intra_stride)`` int64 vectors
        aligned with ``dim_names`` (memoized per name tuple).

        Dimensions the layout (and the uncovered-dims tail) do not use get a
        zero stride, so extra coordinate columns contribute nothing — the
        same as the scalar path ignoring unknown dict keys.
        """
        cached = self._vectors.get(dim_names)
        if cached is None:
            cached = (
                np.array([self.line_div.get(d, 1) for d in dim_names], dtype=np.int64),
                np.array([self.line_stride.get(d, 0) for d in dim_names], dtype=np.int64),
                np.array([self.intra_mod.get(d, 1) for d in dim_names], dtype=np.int64),
                np.array([self.intra_stride.get(d, 0) for d in dim_names], dtype=np.int64),
            )
            self._vectors[dim_names] = cached
        return cached

    # ----------------------------------------------------------- addressing
    def address_batch(self, coords: np.ndarray, dim_names: Sequence[str]
                      ) -> Tuple[np.ndarray, np.ndarray]:
        """Map a batch of coordinates to ``(lines, offsets)`` arrays.

        ``coords`` has shape ``(..., ndims)`` with the last axis aligned to
        ``dim_names``; the returned arrays have shape ``coords.shape[:-1]``.
        Bit-identical to calling :meth:`repro.layout.Layout.address` per row
        with the dims this layout was compiled against.
        """
        coords = np.asarray(coords, dtype=np.int64)
        div, line_stride, mod, intra_stride = self.vectors(tuple(dim_names))
        lines = ((coords // div) * line_stride).sum(axis=-1)
        offsets = ((coords % mod) * intra_stride).sum(axis=-1)
        return lines, offsets


def compile_layout(layout: "Layout", dims: Mapping[str, int]) -> CompiledLayout:
    """Compile ``layout`` against tensor extents ``dims`` (memoized)."""
    return _compile(layout, tuple(sorted(dims.items())))


@lru_cache(maxsize=4096)
def _compile(layout: "Layout", dims_items: Tuple[Tuple[str, int], ...]
             ) -> CompiledLayout:
    dims = dict(dims_items)

    # Offset polynomial: mixed radix over the intra dims, first dim fastest.
    intra_mod: Dict[str, int] = {}
    intra_stride: Dict[str, int] = {}
    stride = 1
    for entry in layout.intra:
        intra_mod[entry.dim] = entry.size
        intra_stride[entry.dim] = stride
        stride *= entry.size

    # Line polynomial, built innermost-first so each term's stride is the
    # product of everything that varies faster than it.  Dimensions covered
    # by neither order hang off the bottom as the fastest-varying block —
    # matching the scalar path appending them after the inter-line Horner.
    covered = set(layout.inter_order) | set(layout.intra_dims)
    uncovered = [d for d in sorted(dims) if d not in covered and dims[d] > 1]
    line_div: Dict[str, int] = {}
    line_stride: Dict[str, int] = {}
    mult = 1
    for dim in reversed(uncovered):
        line_div[dim] = 1
        line_stride[dim] = mult
        mult *= dims[dim]
    extents = layout.line_extents(dims)
    for dim in reversed(layout.inter_order):
        line_div[dim] = layout.intra_size(dim)
        # A dimension repeated in the inter order contributes once per
        # occurrence with that occurrence's radix weight; the weights sum.
        line_stride[dim] = line_stride.get(dim, 0) + mult
        mult *= extents[dim]

    return CompiledLayout(layout=layout, dims=dims_items, line_div=line_div,
                          line_stride=line_stride, intra_mod=intra_mod,
                          intra_stride=intra_stride)
