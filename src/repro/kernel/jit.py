"""Optional numba-compiled inner loops behind the ``compile=`` flag.

The numpy kernel (:mod:`repro.kernel.concordance`, :mod:`repro.kernel.footprint`)
already vectorizes the hot path; this module is the next rung — the same
integer/float arithmetic expressed as plain nested loops that
``numba.njit`` can compile to machine code.  numba is an *optional*
dependency: when it is importable (:data:`NUMBA_AVAILABLE`) the loop
kernels below are jitted at import; otherwise callers silently fall back
to the numpy path (``compile=True`` is then a no-op, mirroring how
``vectorize=False`` degrades to the scalar oracle).

Bit-identity is a hard requirement, so each kernel is written to produce
exactly the numbers the numpy path produces:

* integer work (line addressing, dedup, bank folding) is pure int64
  arithmetic with Python floor-division/modulo semantics, identical across
  CPython, numpy and numba;
* the per-bank slowdown rule replicates
  :func:`repro.layout.concordance.cycle_slowdown` branch for branch — the
  same float64 divisions in the same order;
* per-cycle reductions are max/count, which are order-independent, so the
  loop formulation cannot drift from the vectorized one.

The undecorated ``*_py`` functions stay importable regardless of numba so
the equivalence tests can pin the *algorithm* against the scalar oracle
even on machines without numba; the CI numba leg then pins the jitted
variants on top.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the local/default path
    _njit = None
    NUMBA_AVAILABLE = False
"""Whether ``compile=True`` actually engages the jitted kernels."""


def concordance_fold_py(lines: np.ndarray, lines_per_bank: int,
                        num_banks: int, effective_ports: int,
                        cross_line_permute: bool, transpose: bool,
                        rows_limit: int):
    """Distinct-line counts and worst-bank slowdowns per (layout, cycle).

    ``lines`` — int64 array of shape ``(groups, lanes)`` where each row
    holds one (layout, cycle) group's per-lane line indices (duplicates
    allowed, negatives allowed).  ``num_banks == 0`` means unbanked (no
    modulo), matching ``num_banks=None`` upstream.  The capability fields
    (``effective_ports``, ``cross_line_permute``, ``transpose``,
    ``rows_limit = max_rows_per_bank * effective_ports``) are pre-resolved
    by the caller so the kernel stays plain-int/bool typed.

    Returns ``(group_lines, group_slow)`` — int64/float64 arrays of length
    ``groups`` equal to the ``np.unique``/``np.bincount`` fold in
    :func:`repro.kernel.concordance.analyze_concordance_batch`.
    """
    groups, lanes = lines.shape
    group_lines = np.zeros(groups, dtype=np.int64)
    group_slow = np.ones(groups, dtype=np.float64)
    buf = np.empty(lanes, dtype=np.int64)
    banks = np.empty(lanes, dtype=np.int64)
    for g in range(groups):
        buf[:] = lines[g]
        buf.sort()
        distinct = 0
        for j in range(lanes):
            value = buf[j]
            if j == 0 or value != buf[j - 1]:
                bank = value // lines_per_bank
                if num_banks > 0:
                    bank = bank % num_banks
                banks[distinct] = bank
                distinct += 1
        group_lines[g] = distinct
        head = banks[:distinct]
        head.sort()
        worst = 1.0
        run = 1
        for j in range(1, distinct + 1):
            if j < distinct and banks[j] == banks[j - 1]:
                run += 1
            else:
                # cycle_slowdown(run): same branches, same float64 divisions.
                if cross_line_permute:
                    slow = 1.0
                elif transpose and run > effective_ports:
                    slow = 1.0 if run <= rows_limit else run / rows_limit
                else:
                    slow = run / effective_ports
                    if slow < 1.0:
                        slow = 1.0
                if slow > worst:
                    worst = slow
                run = 1
        group_slow[g] = worst
    return group_lines, group_slow


def conv_iact_fill_py(out: np.ndarray, bases: np.ndarray, d_c: int, d_p: int,
                      d_q: int, d_r: int, d_s: int, c: int, h: int, w: int,
                      stride: int) -> None:
    """Fill a conv iAct footprint ``(num_bases, lanes, 3)`` in place.

    Same lane nesting (C -> P -> Q -> R -> S) and the same chained modular
    updates as :func:`repro.kernel.footprint.conv_iact_coords_batch`;
    ``bases`` is int64 of shape ``(num_bases, 3)`` (raw, un-modded).
    """
    for b in range(bases.shape[0]):
        c0 = bases[b, 0] % c
        h0 = bases[b, 1] % h
        w0 = bases[b, 2] % w
        lane = 0
        for i_c in range(d_c):
            coord_c = (c0 + i_c) % c
            for i_p in range(d_p):
                base_h = (h0 + i_p * stride) % h
                for i_q in range(d_q):
                    base_w = (w0 + i_q * stride) % w
                    for i_r in range(d_r):
                        coord_h = (base_h + i_r) % h
                        for i_s in range(d_s):
                            out[b, lane, 0] = coord_c
                            out[b, lane, 1] = coord_h
                            out[b, lane, 2] = (base_w + i_s) % w
                            lane += 1


def gemm_input_fill_py(out: np.ndarray, bases: np.ndarray, d_m: int, d_k: int,
                       m: int, k: int) -> None:
    """Fill a GEMM input footprint ``(num_bases, lanes, 2)`` in place.

    M outer, K inner, matching
    :func:`repro.kernel.footprint.gemm_input_coords_batch`.
    """
    for b in range(bases.shape[0]):
        m0 = bases[b, 0] % m
        k0 = bases[b, 1] % k
        lane = 0
        for i_m in range(d_m):
            coord_m = (m0 + i_m) % m
            for i_k in range(d_k):
                out[b, lane, 0] = coord_m
                out[b, lane, 1] = (k0 + i_k) % k
                lane += 1


if NUMBA_AVAILABLE:  # pragma: no cover - exercised by the CI numba leg
    concordance_fold = _njit(cache=True)(concordance_fold_py)
    conv_iact_fill = _njit(cache=True)(conv_iact_fill_py)
    gemm_input_fill = _njit(cache=True)(gemm_input_fill_py)
else:
    concordance_fold = concordance_fold_py
    conv_iact_fill = conv_iact_fill_py
    gemm_input_fill = gemm_input_fill_py
