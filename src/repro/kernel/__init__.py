"""Vectorized cost-model kernel.

The scalar Layoutloop path (``repro.layout`` + ``repro.layoutloop``) maps one
Python dict per tensor coordinate through :meth:`repro.layout.Layout.address`
— fine for unit tests, quadratic-in-Python-overhead for co-search traffic.
This package is the array-native core that PR 2 layers underneath it:

* :class:`~repro.kernel.compiled.CompiledLayout` — a layout compiled against
  concrete tensor extents into integer stride/divisor vectors, so a whole
  batch of coordinates maps to ``(line, offset)`` with one shot of numpy
  integer arithmetic (:func:`~repro.kernel.compiled.compile_layout`).
* :mod:`repro.kernel.footprint` — per-cycle access footprints generated as
  ``(cycles, lanes, ndims)`` integer arrays instead of lists of dicts.
* :func:`~repro.kernel.concordance.analyze_concordance_batch` — bank-conflict
  analysis over all sample cycles and all candidate layouts of one mapping at
  once, via ``np.unique``/``np.bincount``.

Everything here is **result-identical** to the scalar path: the integer
address math is the same algebra, and every float (slowdowns, averages) is
produced by the same IEEE-754 operations in the same order.  The scalar
implementations remain in place as the property-tested reference oracle
(``tests/test_kernel_equivalence.py``).
"""

from repro.kernel.compiled import CompiledLayout, compile_layout
from repro.kernel.concordance import analyze_concordance_batch, cycle_slowdowns
from repro.kernel.jit import NUMBA_AVAILABLE
from repro.kernel.footprint import (
    CONV_STREAM_DIMS,
    GEMM_STREAM_DIMS,
    conv_iact_coords_batch,
    gemm_input_coords_batch,
    streaming_access_coords,
)

__all__ = [
    "CompiledLayout",
    "compile_layout",
    "NUMBA_AVAILABLE",
    "analyze_concordance_batch",
    "cycle_slowdowns",
    "CONV_STREAM_DIMS",
    "GEMM_STREAM_DIMS",
    "conv_iact_coords_batch",
    "gemm_input_coords_batch",
    "streaming_access_coords",
]
