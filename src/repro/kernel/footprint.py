"""Per-cycle access footprints as ``(cycles, lanes, ndims)`` integer arrays.

The scalar cost model (:func:`repro.layoutloop.cost_model._conv_iact_coords`
and ``_gemm_input_coords``) expands a mapping's parallel dimensions into a
list of coordinate dicts per sampled cycle.  The functions here produce the
same coordinates — the same modular walk, in the same lane nesting order —
but as one int64 array per workload covering every sample base at once, so a
compiled layout can address the whole footprint in a single numpy shot.

Each batcher accepts ``compiled=True`` to fill the array through the
numba-jitted loop kernels of :mod:`repro.kernel.jit` instead of broadcast
arithmetic — same integers either way; without numba the flag is a silent
no-op.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.kernel import jit
from repro.workloads.conv import ConvLayerSpec
from repro.workloads.gemm import GemmSpec

CONV_STREAM_DIMS: Tuple[str, ...] = ("C", "H", "W")
"""Coordinate-column order of conv iAct footprints."""

GEMM_STREAM_DIMS: Tuple[str, ...] = ("M", "K")
"""Coordinate-column order of GEMM input footprints."""


def conv_iact_coords_batch(layer: ConvLayerSpec, mapping,
                           bases: Sequence[Tuple[int, int, int]],
                           compiled: bool = False) -> np.ndarray:
    """iAct footprint of a conv mapping: ``(len(bases), lanes, 3)`` int64.

    Column order is :data:`CONV_STREAM_DIMS`.  Lane nesting replicates the
    scalar expansion order C → P → Q → R → S (C slowest-varying), and every
    coordinate value matches the scalar path's chained modular updates:
    P/R both shift H, Q/S both shift W, each re-wrapped at its extent.
    """
    c = max(1, layer.c)
    h = max(1, layer.h)
    w = max(1, layer.w)
    deg = mapping.parallel_dims
    d_c = max(1, deg.get("C", 1))
    d_p = max(1, deg.get("P", 1))
    d_q = max(1, deg.get("Q", 1))
    d_r = max(1, deg.get("R", 1))
    d_s = max(1, deg.get("S", 1))

    num_bases = len(bases)
    if compiled and jit.NUMBA_AVAILABLE and num_bases:
        out = np.empty((num_bases, d_c * d_p * d_q * d_r * d_s, 3),
                       dtype=np.int64)
        jit.conv_iact_fill(out, np.asarray(bases, dtype=np.int64),
                           d_c, d_p, d_q, d_r, d_s, c, h, w, layer.stride)
        return out
    c0 = np.array([b[0] for b in bases], dtype=np.int64).reshape(-1, 1, 1, 1, 1, 1) % c
    h0 = np.array([b[1] for b in bases], dtype=np.int64).reshape(-1, 1, 1, 1, 1, 1) % h
    w0 = np.array([b[2] for b in bases], dtype=np.int64).reshape(-1, 1, 1, 1, 1, 1) % w
    i_c = np.arange(d_c, dtype=np.int64).reshape(1, -1, 1, 1, 1, 1)
    i_p = np.arange(d_p, dtype=np.int64).reshape(1, 1, -1, 1, 1, 1)
    i_q = np.arange(d_q, dtype=np.int64).reshape(1, 1, 1, -1, 1, 1)
    i_r = np.arange(d_r, dtype=np.int64).reshape(1, 1, 1, 1, -1, 1)
    i_s = np.arange(d_s, dtype=np.int64).reshape(1, 1, 1, 1, 1, -1)

    coord_c = (c0 + i_c) % c
    coord_h = ((h0 + i_p * layer.stride) % h + i_r) % h
    coord_w = ((w0 + i_q * layer.stride) % w + i_s) % w

    shape = (num_bases, d_c, d_p, d_q, d_r, d_s)
    stacked = np.stack([np.broadcast_to(coord_c, shape),
                        np.broadcast_to(coord_h, shape),
                        np.broadcast_to(coord_w, shape)], axis=-1)
    return stacked.reshape(num_bases, -1, 3)


def gemm_input_coords_batch(gemm: GemmSpec, mapping,
                            bases: Sequence[Tuple[int, int, int]],
                            compiled: bool = False) -> np.ndarray:
    """Input footprint of a GEMM mapping: ``(len(bases), lanes, 2)`` int64.

    Column order is :data:`GEMM_STREAM_DIMS`; lane nesting is M outer, K
    inner, matching the scalar expansion.  N parallelism broadcasts the same
    input row and contributes no lanes (as in the scalar path).
    """
    m = max(1, gemm.m)
    k = max(1, gemm.k)
    deg = mapping.parallel_dims
    d_m = max(1, deg.get("M", 1))
    d_k = max(1, deg.get("K", 1))

    num_bases = len(bases)
    if compiled and jit.NUMBA_AVAILABLE and num_bases:
        out = np.empty((num_bases, d_m * d_k, 2), dtype=np.int64)
        jit.gemm_input_fill(
            out, np.asarray(bases, dtype=np.int64)[:, :2], d_m, d_k, m, k)
        return out
    m0 = np.array([b[0] for b in bases], dtype=np.int64).reshape(-1, 1, 1) % m
    k0 = np.array([b[1] for b in bases], dtype=np.int64).reshape(-1, 1, 1) % k
    i_m = np.arange(d_m, dtype=np.int64).reshape(1, -1, 1)
    i_k = np.arange(d_k, dtype=np.int64).reshape(1, 1, -1)

    coord_m = (m0 + i_m) % m
    coord_k = (k0 + i_k) % k

    shape = (num_bases, d_m, d_k)
    stacked = np.stack([np.broadcast_to(coord_m, shape),
                        np.broadcast_to(coord_k, shape)], axis=-1)
    return stacked.reshape(num_bases, -1, 2)


def streaming_access_coords(workload, mapping,
                            bases: Sequence[Tuple[int, int, int]],
                            compiled: bool = False
                            ) -> Tuple[np.ndarray, Tuple[str, ...]]:
    """``(coords, dim_names)`` for the streaming tensor of any workload kind."""
    if isinstance(workload, ConvLayerSpec):
        return (conv_iact_coords_batch(workload, mapping, bases,
                                       compiled=compiled), CONV_STREAM_DIMS)
    if isinstance(workload, GemmSpec):
        return (gemm_input_coords_batch(workload, mapping, bases,
                                        compiled=compiled), GEMM_STREAM_DIMS)
    raise TypeError(f"unsupported workload {type(workload)!r}")
