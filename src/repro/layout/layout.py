"""Data layout specification and address mapping.

The paper (Fig. 3) writes a layout as

    ``<inter-line dimension order>_<intra-line dimension order with sizes>``

e.g. ``CHW_W4H2C2``: lines are ordered by C, then H, then W (C outermost),
and within a line (4, 2, 2) elements from (W, H, C) are flattened with W
innermost-first in the listed order.  :class:`Layout` turns that string into
an address mapping: given a logical coordinate of a tensor element it returns
the (line, offset) position in the logical 2D buffer.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class IntraLineDim:
    """One dimension's contribution to the intra-line flattening."""

    dim: str
    size: int

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"intra-line size must be >= 1, got {self.size}")


_INTRA_RE = re.compile(r"([A-Za-z])(\d+)")


@dataclass(frozen=True)
class Layout:
    """A concrete data layout for one tensor in the on-chip buffer.

    ``inter_order`` lists dimensions from outermost to innermost across lines;
    ``intra`` lists (dimension, size) pairs flattened into a line, the first
    listed dimension varying fastest (matching the paper's reading of
    ``W4H2C2`` where consecutive elements walk W first).
    """

    inter_order: Tuple[str, ...]
    intra: Tuple[IntraLineDim, ...]

    # ------------------------------------------------------------------ basics
    def __post_init__(self) -> None:
        if not self.inter_order and not self.intra:
            raise ValueError("layout must name at least one dimension")
        seen = set()
        for entry in self.intra:
            if entry.dim in seen:
                raise ValueError(f"dimension {entry.dim} repeated in intra-line order")
            seen.add(entry.dim)

    @property
    def line_size(self) -> int:
        """Number of elements flattened into one buffer line."""
        return math.prod(e.size for e in self.intra) if self.intra else 1

    @property
    def intra_dims(self) -> Tuple[str, ...]:
        return tuple(e.dim for e in self.intra)

    @property
    def name(self) -> str:
        inter = "".join(self.inter_order)
        intra = "".join(f"{e.dim}{e.size}" for e in self.intra)
        return f"{inter}_{intra}" if intra else inter

    def intra_size(self, dim: str) -> int:
        """Elements of ``dim`` packed within one line (1 when inter-line only)."""
        for entry in self.intra:
            if entry.dim == dim:
                return entry.size
        return 1

    # --------------------------------------------------------------- addressing
    def line_extents(self, dims: Dict[str, int]) -> Dict[str, int]:
        """Number of intra-line tiles along each inter-line dimension."""
        extents = {}
        for dim in self.inter_order:
            total = dims.get(dim, 1)
            extents[dim] = math.ceil(total / self.intra_size(dim))
        return extents

    def num_lines(self, dims: Dict[str, int]) -> int:
        """Total number of buffer lines the tensor occupies."""
        extents = self.line_extents(dims)
        covered = set(self.inter_order) | set(self.intra_dims)
        lines = math.prod(extents.values()) if extents else 1
        # Dimensions absent from both orders still multiply the footprint
        # (each extra coordinate gets its own block of lines).
        for dim, total in dims.items():
            if dim not in covered and total > 1:
                lines *= total
        return lines

    def address(self, coord: Dict[str, int], dims: Dict[str, int]) -> Tuple[int, int]:
        """Map a logical coordinate to ``(line_index, offset_within_line)``.

        ``coord`` gives the index along each dimension; dimensions missing
        from ``coord`` are treated as zero.  ``dims`` gives the full extents
        (needed to linearise the inter-line index).
        """
        # Offset within the line: mixed-radix over the intra dims, first dim fastest.
        offset = 0
        stride = 1
        for entry in self.intra:
            idx = coord.get(entry.dim, 0) % entry.size
            offset += idx * stride
            stride *= entry.size

        # Line index: mixed-radix over the inter-line order, last listed dim fastest
        # (the paper's "CHW" reads C -> H -> W with W innermost across lines).
        extents = self.line_extents(dims)
        line = 0
        for dim in self.inter_order:
            tile_idx = coord.get(dim, 0) // self.intra_size(dim)
            line = line * extents[dim] + tile_idx
        # Dimensions not covered anywhere get appended as the slowest-varying index.
        covered = set(self.inter_order) | set(self.intra_dims)
        for dim in sorted(dims):
            if dim not in covered and dims[dim] > 1:
                line = line * dims[dim] + coord.get(dim, 0)
        return line, offset

    def addresses(self, coords: Iterable[Dict[str, int]], dims: Dict[str, int]) -> List[Tuple[int, int]]:
        """Vector form of :meth:`address`."""
        return [self.address(c, dims) for c in coords]

    def compile(self, dims: Dict[str, int]) -> "CompiledLayout":
        """Compile this layout against concrete extents for batch addressing.

        Returns a :class:`~repro.kernel.compiled.CompiledLayout` whose
        ``address_batch`` maps whole numpy coordinate arrays to
        ``(line, offset)`` with results bit-identical to :meth:`address`.
        Compilations are memoized per (layout, dims).
        """
        from repro.kernel.compiled import compile_layout

        return compile_layout(self, dims)

    # --------------------------------------------------------------------- misc
    def covers(self, dims: Sequence[str]) -> bool:
        """Whether all the named tensor dimensions appear in the layout."""
        named = set(self.inter_order) | set(self.intra_dims)
        return all(d in named for d in dims)

    def with_line_size(self, target_line_size: int) -> "Layout":
        """Return a layout padded/truncated on its innermost intra dim.

        Used when a buffer's physical line is wider or narrower than the
        layout's natural tile; the innermost (first) intra dimension absorbs
        the difference.
        """
        if not self.intra:
            raise ValueError("cannot resize a layout with no intra-line dims")
        current = self.line_size
        if current == target_line_size:
            return self
        first = self.intra[0]
        rest = math.prod(e.size for e in self.intra[1:]) if len(self.intra) > 1 else 1
        if target_line_size % rest != 0:
            raise ValueError(
                f"target line size {target_line_size} incompatible with intra tail {rest}"
            )
        new_first = IntraLineDim(first.dim, max(1, target_line_size // rest))
        return Layout(self.inter_order, (new_first,) + self.intra[1:])

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def parse_layout(text: str) -> Layout:
    """Parse the paper's layout notation, e.g. ``"CHW_W4H2C2"`` or ``"HCW_W8"``.

    A missing intra part (no underscore) means one element per line entry of
    the innermost inter dimension, which is never used in the paper but is
    accepted for completeness.
    """
    text = text.strip()
    if "_" in text:
        inter_part, intra_part = text.split("_", 1)
    else:
        inter_part, intra_part = text, ""
    inter = tuple(ch.upper() for ch in inter_part if ch.isalpha())
    intra_entries = []
    for dim, size in _INTRA_RE.findall(intra_part):
        intra_entries.append(IntraLineDim(dim.upper(), int(size)))
    if not inter and not intra_entries:
        raise ValueError(f"could not parse layout {text!r}")
    return Layout(inter, tuple(intra_entries))
