"""Concordance analysis: does a (dataflow, layout) pair cause bank conflicts?

The paper calls a (dataflow, layout) pair *concordant* when the data a
dataflow needs every cycle can be read without exceeding the per-bank port
budget, and *discordant* otherwise (§II-C).  The analysis here takes the
per-cycle access footprint a mapping generates (a list of logical tensor
coordinates per cycle), maps each coordinate through a :class:`~repro.layout.Layout`,
groups the touched lines into banks, and reports the slowdown
``max(lines_per_bank / ports, 1)`` from §V-B.

This module is the *scalar reference oracle*: the search-traffic hot path
runs the vectorized, bit-identical
:func:`repro.kernel.concordance.analyze_concordance_batch` instead, and
``tests/test_kernel_equivalence.py`` property-tests the two against each
other.  Keep behaviour changes mirrored in both.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.layout.layout import Layout
from repro.layout.patterns import ReorderPattern, capability


@dataclass(frozen=True)
class AccessTraceEntry:
    """The buffer activity of one cycle."""

    cycle: int
    lines: Tuple[int, ...]
    banks_touched: Dict[int, int]
    slowdown: float

    @property
    def num_lines(self) -> int:
        return len(self.lines)


@dataclass
class ConcordanceReport:
    """Result of analysing a (dataflow, layout) pair over an access trace."""

    layout_name: str
    cycles: int
    conflict_cycles: int
    avg_lines_per_cycle: float
    worst_slowdown: float
    avg_slowdown: float
    trace: List[AccessTraceEntry] = field(default_factory=list, repr=False)

    @property
    def concordant(self) -> bool:
        """True when no cycle stalls on a bank conflict."""
        return self.conflict_cycles == 0

    def effective_utilization(self, theoretical_utilization: float) -> float:
        """Practical compute utilization (paper Fig. 4 tables)."""
        if self.avg_slowdown <= 0:
            return theoretical_utilization
        return theoretical_utilization / self.avg_slowdown


def _bank_of_line(line: int, lines_per_bank: int) -> int:
    """Lines are striped across banks in contiguous blocks of ``lines_per_bank``."""
    return line // max(1, lines_per_bank)


def lines_touched(coords: Iterable[Dict[str, int]], layout: Layout,
                  dims: Dict[str, int]) -> List[int]:
    """Distinct buffer lines touched by a set of concurrent accesses."""
    touched = set()
    for coord in coords:
        line, _offset = layout.address(coord, dims)
        touched.add(line)
    return sorted(touched)


def cycle_slowdown(num_lines_in_bank: int, ports: int,
                   pattern: ReorderPattern = ReorderPattern.NONE) -> float:
    """Slowdown contributed by one bank in one cycle (paper §V-B).

    Reordering patterns that can eliminate the conflict reduce the slowdown
    to 1; line rotation can serve one extra row by borrowing a port.
    """
    cap = capability(pattern)
    if cap.cross_line_permute:
        return 1.0
    effective_ports = ports + cap.extra_bandwidth_ports
    if cap.transpose and num_lines_in_bank > effective_ports:
        # A transposed read turns a column access into a row access, which at
        # best collapses the request to a single line.
        return 1.0 if num_lines_in_bank <= cap.max_rows_per_bank * effective_ports else (
            num_lines_in_bank / (cap.max_rows_per_bank * effective_ports))
    return max(num_lines_in_bank / effective_ports, 1.0)


def analyze_concordance(
    per_cycle_coords: Sequence[Iterable[Dict[str, int]]],
    layout: Layout,
    dims: Dict[str, int],
    *,
    ports_per_bank: int = 2,
    lines_per_bank: int = 1,
    num_banks: Optional[int] = None,
    pattern: ReorderPattern = ReorderPattern.NONE,
    keep_trace: bool = False,
) -> ConcordanceReport:
    """Analyse a per-cycle access trace against a layout.

    ``per_cycle_coords`` — one entry per cycle, each an iterable of logical
    coordinates (dicts of dimension name to index) read that cycle.

    ``lines_per_bank`` is the paper's ``conflict_depth``: number of lines a
    physical bank holds.  ``num_banks`` wraps line-to-bank assignment (banks
    repeat modulo ``num_banks``) when given.
    """
    entries: List[AccessTraceEntry] = []
    conflict_cycles = 0
    total_lines = 0
    total_slowdown = 0.0
    worst = 1.0

    for cycle, coords in enumerate(per_cycle_coords):
        lines = lines_touched(coords, layout, dims)
        per_bank: Dict[int, int] = defaultdict(int)
        for line in lines:
            bank = _bank_of_line(line, lines_per_bank)
            if num_banks:
                bank %= num_banks
            per_bank[bank] += 1
        slowdown = 1.0
        for count in per_bank.values():
            slowdown = max(slowdown, cycle_slowdown(count, ports_per_bank, pattern))
        if slowdown > 1.0:
            conflict_cycles += 1
        total_lines += len(lines)
        total_slowdown += slowdown
        worst = max(worst, slowdown)
        if keep_trace:
            entries.append(AccessTraceEntry(cycle, tuple(lines), dict(per_bank), slowdown))

    cycles = len(per_cycle_coords)
    return ConcordanceReport(
        layout_name=layout.name,
        cycles=cycles,
        conflict_cycles=conflict_cycles,
        avg_lines_per_cycle=(total_lines / cycles) if cycles else 0.0,
        worst_slowdown=worst,
        avg_slowdown=(total_slowdown / cycles) if cycles else 1.0,
        trace=entries,
    )


def required_parallel_coords(parallel_dims: Dict[str, int],
                             base: Optional[Dict[str, int]] = None) -> List[Dict[str, int]]:
    """Expand a parallelism spec into the set of coordinates read in one cycle.

    ``parallel_dims`` maps dimension name to the number of concurrent indices
    along that dimension (e.g. ``{"C": 4}`` for channel-parallel-by-4).  The
    cross product of all parallel dimensions is returned, offset by ``base``.
    """
    base = dict(base or {})
    coords = [dict(base)]
    for dim, count in parallel_dims.items():
        expanded = []
        for coord in coords:
            for idx in range(count):
                new = dict(coord)
                new[dim] = base.get(dim, 0) + idx
                expanded.append(new)
        coords = expanded
    return coords


def sliding_window_coords(base: Dict[str, int], window_positions: int, stride: int,
                          dim: str = "W") -> List[Dict[str, int]]:
    """Coordinates read when parallelising over sliding-window positions.

    Used for the paper's dataflow D2 in Fig. 4, where four output positions
    along W are computed concurrently so the reads step by ``stride``.
    """
    coords = []
    for i in range(window_positions):
        coord = dict(base)
        coord[dim] = base.get(dim, 0) + i * stride
        coords.append(coord)
    return coords
