"""On-chip data layout: specification, reorder patterns and concordance analysis."""

from repro.layout.layout import IntraLineDim, Layout, parse_layout
from repro.layout.patterns import (
    ReorderCapability,
    ReorderImplementation,
    ReorderPattern,
    apply_arbitrary,
    apply_line_rotation,
    apply_row_reorder,
    apply_transpose,
    capability,
    capability_table,
    concordant_dataflow_flexibility,
)
from repro.layout.concordance import (
    AccessTraceEntry,
    ConcordanceReport,
    analyze_concordance,
    cycle_slowdown,
    lines_touched,
    required_parallel_coords,
    sliding_window_coords,
)
from repro.layout.library import (
    conv_layout_library,
    gemm_layout_library,
    motivation_layouts,
)

__all__ = [
    "IntraLineDim",
    "Layout",
    "parse_layout",
    "ReorderCapability",
    "ReorderImplementation",
    "ReorderPattern",
    "apply_arbitrary",
    "apply_line_rotation",
    "apply_row_reorder",
    "apply_transpose",
    "capability",
    "capability_table",
    "concordant_dataflow_flexibility",
    "AccessTraceEntry",
    "ConcordanceReport",
    "analyze_concordance",
    "cycle_slowdown",
    "lines_touched",
    "required_parallel_coords",
    "sliding_window_coords",
    "conv_layout_library",
    "gemm_layout_library",
    "motivation_layouts",
]
