"""Layout libraries used by the paper's searches (§VI-A2, footnote 4).

Conv layouts: HWC_C32, HWC_W32, HWC_H32, HWC_C4W8, HWC_C4H8, HWC_W4H8,
HWC_C4W4H2.  GEMM layouts (inputs M x K): MK_K32, MK_M32, MK_M4K8.

These are the layouts Layoutloop exhaustively enumerates when co-searching
(dataflow, layout) pairs, plus the motivational layouts of Fig. 4.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Tuple

from repro.layout.layout import Layout, parse_layout


_CONV_LAYOUT_NAMES = (
    "HWC_C32",
    "HWC_W32",
    "HWC_H32",
    "HWC_C4W8",
    "HWC_C4H8",
    "HWC_W4H8",
    "HWC_C4W4H2",
)

_GEMM_LAYOUT_NAMES = (
    "MK_K32",
    "MK_M32",
    "MK_M4K8",
)

_MOTIVATION_LAYOUT_NAMES = (
    "HWC_W2C3",   # L1 / L3 channel-last in Fig. 4
    "HCW_W8",     # L2 / L4 row-major in Fig. 4
    "HWC_C4",     # channel-last used in the Fig. 11 walk-through
    "CHW_W4",     # row-major used in the Fig. 11 walk-through
)


def conv_layout_library(line_size: int = None) -> List[Layout]:
    """The seven convolution layouts of the paper's search space.

    When ``line_size`` is given, each layout is resized so its line matches
    the buffer's physical line width (the innermost intra dimension absorbs
    the change), mirroring how Layoutloop adapts layouts to an architecture.
    """
    return list(_library_cached(_CONV_LAYOUT_NAMES, line_size))


def gemm_layout_library(line_size: int = None) -> List[Layout]:
    """The three GEMM input layouts of the paper's search space."""
    return list(_library_cached(_GEMM_LAYOUT_NAMES, line_size))


@lru_cache(maxsize=64)
def _library_cached(names: Tuple[str, ...],
                    line_size: Optional[int]) -> Tuple[Layout, ...]:
    """Parse-once cache: layouts are frozen, so sharing instances across
    searches is safe, and repeated library calls (one per shape per search)
    stop re-parsing the same strings."""
    layouts = [parse_layout(name) for name in names]
    if line_size is not None:
        layouts = [_try_resize(l, line_size) for l in layouts]
    return tuple(layouts)


def motivation_layouts() -> List[Layout]:
    """Layouts used in the motivation figures (Fig. 4 L1-L4 and Fig. 11)."""
    return [parse_layout(name) for name in _MOTIVATION_LAYOUT_NAMES]


def _try_resize(layout: Layout, line_size: int) -> Layout:
    try:
        return layout.with_line_size(line_size)
    except ValueError:
        return layout
