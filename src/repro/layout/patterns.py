"""Reordering patterns and their capabilities (paper Fig. 5 and Table III).

A reorder *pattern* is the functional capability (what permutations of the
logical 2D buffer are reachable); an *implementation* is where/when that
capability is exercised (off-chip, on-chip reorder-after-reduction, or
FEATHER's reorder-in-reduction).  The cost model uses the pattern to decide
which bank conflicts can be eliminated, and the implementation to decide what
latency/energy the reordering itself costs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


class ReorderPattern(enum.Enum):
    """Functional reordering capability (Fig. 5a-e)."""

    NONE = "fixed layout"
    LINE_ROTATION = "line rotation"
    TRANSPOSE = "transpose"
    ROW_REORDER = "row reorder"
    TRANSPOSE_ROW = "transpose + row reorder"
    ARBITRARY = "arbitrary reorder"


class ReorderImplementation(enum.Enum):
    """Where the reordering happens (Fig. 6)."""

    NONE = "no reordering"
    OFF_CHIP = "off-chip (DRAM round trip)"
    RAR = "on-chip reorder after reduction"
    RIR = "reorder in reduction (FEATHER)"


@dataclass(frozen=True)
class ReorderCapability:
    """What a pattern can do, used by the concordance analysis and cost model.

    ``max_rows_per_bank`` — how many distinct rows of a single bank can be
    served per cycle once the pattern has been applied (dual-port SRAM gives 2
    for the fixed layout; line rotation effectively adds one by borrowing a
    neighbouring bank's port).

    ``intra_line_permute`` — data within a line can be re-ordered arbitrarily.

    ``cross_line_permute`` — data can move between arbitrary lines (full 2D
    permutation).  Only arbitrary reorder has this.

    ``transpose`` — rows and columns of the 2D buffer can be swapped.
    """

    pattern: ReorderPattern
    max_rows_per_bank: int
    intra_line_permute: bool
    cross_line_permute: bool
    transpose: bool
    extra_bandwidth_ports: int = 0
    extra_copy_lines: int = 0

    def removes_conflict(self, rows_needed: int, ports: int) -> bool:
        """Whether this pattern alone can serve ``rows_needed`` rows of one bank
        without a stall, given ``ports`` physical ports per bank."""
        if self.cross_line_permute:
            # Arbitrary reorder can always re-pack the needed data into <= ports lines.
            return True
        effective = ports + self.extra_bandwidth_ports
        if self.transpose:
            # Transposing lets a column read become a row read, so a request
            # spanning many rows but a single column collapses to one row.
            return True if rows_needed <= effective else False
        return rows_needed <= effective


_CAPABILITIES: Dict[ReorderPattern, ReorderCapability] = {
    ReorderPattern.NONE: ReorderCapability(
        ReorderPattern.NONE, max_rows_per_bank=2, intra_line_permute=False,
        cross_line_permute=False, transpose=False),
    ReorderPattern.LINE_ROTATION: ReorderCapability(
        ReorderPattern.LINE_ROTATION, max_rows_per_bank=3, intra_line_permute=False,
        cross_line_permute=False, transpose=False,
        extra_bandwidth_ports=1, extra_copy_lines=1),
    ReorderPattern.TRANSPOSE: ReorderCapability(
        ReorderPattern.TRANSPOSE, max_rows_per_bank=2, intra_line_permute=False,
        cross_line_permute=False, transpose=True),
    ReorderPattern.ROW_REORDER: ReorderCapability(
        ReorderPattern.ROW_REORDER, max_rows_per_bank=2, intra_line_permute=True,
        cross_line_permute=False, transpose=False),
    ReorderPattern.TRANSPOSE_ROW: ReorderCapability(
        ReorderPattern.TRANSPOSE_ROW, max_rows_per_bank=2, intra_line_permute=True,
        cross_line_permute=False, transpose=True),
    ReorderPattern.ARBITRARY: ReorderCapability(
        ReorderPattern.ARBITRARY, max_rows_per_bank=2, intra_line_permute=True,
        cross_line_permute=True, transpose=True),
}


def capability(pattern: ReorderPattern) -> ReorderCapability:
    """Return the capability record for a pattern."""
    return _CAPABILITIES[pattern]


def capability_table() -> List[ReorderCapability]:
    """All patterns, ordered from least to most capable (Fig. 5f ordering)."""
    order = [
        ReorderPattern.NONE,
        ReorderPattern.LINE_ROTATION,
        ReorderPattern.TRANSPOSE,
        ReorderPattern.ROW_REORDER,
        ReorderPattern.TRANSPOSE_ROW,
        ReorderPattern.ARBITRARY,
    ]
    return [_CAPABILITIES[p] for p in order]


def concordant_dataflow_flexibility(pattern: ReorderPattern) -> Dict[str, float]:
    """Relative T/O/P/S flexibility enabled by each pattern (Fig. 5f).

    Values are normalised to 1.0 = full flexibility; they are qualitative (the
    figure is a radar chart) but preserve the ordering the paper draws:
    reordering enlarges O, P and S but cannot enlarge T.
    """
    cap = capability(pattern)
    tiles = 0.5  # reordering by itself cannot increase tile flexibility
    order = 1.0 if cap.intra_line_permute or cap.cross_line_permute else 0.4
    if pattern is ReorderPattern.NONE:
        order = 0.3
    parallel = 0.3
    if cap.transpose:
        parallel = 0.6
    if pattern is ReorderPattern.LINE_ROTATION:
        parallel = 0.45
    if cap.cross_line_permute:
        parallel = 1.0
    shape = 1.0 if cap.cross_line_permute else (0.6 if cap.transpose else 0.4)
    return {"T": tiles, "O": order, "P": parallel, "S": shape}


# --------------------------------------------------------------------------
# Functional reference implementations of each pattern on a small 2D buffer.
# These are used by the unit tests (and Fig. 5 reproduction) to check that a
# pattern can/cannot realise a given target arrangement.
# --------------------------------------------------------------------------

def apply_line_rotation(buffer_rows: Sequence[Sequence[int]], src_row: int,
                        dst_bank_rows: List[List[int]]) -> Tuple[list, list]:
    """Copy ``src_row`` of a bank into another bank's free row (Fig. 5b).

    Returns the (unchanged source bank, augmented destination bank).  The
    source row is *copied*, matching Medusa's behaviour of duplicating a line
    rather than moving it.
    """
    src = [list(r) for r in buffer_rows]
    dst = [list(r) for r in dst_bank_rows]
    dst.append(list(src[src_row]))
    return src, dst


def apply_transpose(buffer_rows: Sequence[Sequence[int]]) -> List[List[int]]:
    """Swap rows with columns (Fig. 5c)."""
    rows = [list(r) for r in buffer_rows]
    if not rows:
        return []
    width = len(rows[0])
    if any(len(r) != width for r in rows):
        raise ValueError("transpose requires a rectangular buffer")
    return [[rows[r][c] for r in range(len(rows))] for c in range(width)]


def apply_row_reorder(buffer_rows: Sequence[Sequence[int]],
                      permutations: Sequence[Sequence[int]]) -> List[List[int]]:
    """Permute data within each row independently (Fig. 5d)."""
    rows = [list(r) for r in buffer_rows]
    if len(permutations) != len(rows):
        raise ValueError("need one permutation per row")
    out = []
    for row, perm in zip(rows, permutations):
        if sorted(perm) != list(range(len(row))):
            raise ValueError("permutation must cover every column exactly once")
        out.append([row[p] for p in perm])
    return out


def apply_arbitrary(buffer_rows: Sequence[Sequence[int]],
                    placement: Dict[Tuple[int, int], Tuple[int, int]]) -> List[List[int]]:
    """Arbitrary 2D permutation (Fig. 5e): placement maps (row, col) -> (row, col)."""
    rows = [list(r) for r in buffer_rows]
    out = [[None] * len(r) for r in rows]
    for (sr, sc), (dr, dc) in placement.items():
        out[dr][dc] = rows[sr][sc]
    # Positions not named keep their original occupant if still empty.
    for r, row in enumerate(rows):
        for c, val in enumerate(row):
            if out[r][c] is None and (r, c) not in placement:
                out[r][c] = val
    return out
