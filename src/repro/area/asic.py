"""Analytical ASIC area/power model for full accelerators (Fig. 14b, Table V).

The paper's RTL was synthesised and placed-and-routed at TSMC 28nm; here the
same quantities come from a component model: per-PE MAC + local weight/psum
registers (FEATHER's local memory grows with the row count AH because each PE
must buffer enough work to cover the row-multiplexed bus turns), the BIRRD /
FAN / distribution NoC macros from :mod:`repro.noc.area_models`, the
controller, and the on-chip buffers.  Constants are calibrated against the
paper's reported breakdown (BIRRD ~4% of the FEATHER die, FEATHER ~1.06x an
Eyeriss-like fixed-dataflow design, SIGMA ~2.4x FEATHER) and against Table V's
post-PnR scaling; EXPERIMENTS.md records paper-vs-model for every shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.noc.area_models import (
    NetworkAreaModel,
    art_area_power,
    birrd_area_power,
    fan_area_power,
)

# Calibrated component constants (28nm-class, int8 MACs, int32 accumulation).
MAC_INT8_AREA_UM2 = 410.0
MAC_INT8_POWER_MW = 0.09
LOCAL_REG_BYTE_AREA_UM2 = 6.0
LOCAL_REG_BYTE_POWER_MW = 0.0016
CONTROLLER_BASE_AREA_UM2 = 9000.0
CONTROLLER_PER_PE_AREA_UM2 = 12.0
BUFFER_BYTE_AREA_UM2 = 0.55
BUFFER_BYTE_POWER_MW = 0.00009
DIST_NOC_PER_ENDPOINT_AREA_UM2 = 520.0   # Benes/crossbar-style distribution
PT2PT_PER_ENDPOINT_AREA_UM2 = 45.0       # FEATHER's point-to-point feeds
COMP_NOC_PER_PE_AREA_UM2 = 30.0          # intra-array forwarding links


# Paper Table V (post-PnR, TSMC 28nm) — kept as reference data so experiments
# can print paper-vs-model side by side.
PAPER_TABLE_V = {
    (64, 128): (36920519.69, 26400.00, 1.00),
    (64, 64): (18389176.19, 13200.00, 1.00),
    (32, 32): (2727906.70, 961.70, 1.00),
    (16, 32): (965665.10, 655.55, 1.00),
    (16, 16): (475897.19, 323.48, 1.00),
    (8, 8): (97976.46, 65.25, 1.00),
    (4, 4): (24693.98, 16.28, 1.00),
}


@dataclass(frozen=True)
class AreaBreakdown:
    """Area/power of one accelerator instance, broken into Fig. 14b's categories."""

    name: str
    components_um2: Tuple[Tuple[str, float], ...]
    components_mw: Tuple[Tuple[str, float], ...]

    @property
    def total_area_um2(self) -> float:
        return sum(v for _, v in self.components_um2)

    @property
    def total_area_mm2(self) -> float:
        return self.total_area_um2 / 1e6

    @property
    def total_power_mw(self) -> float:
        return sum(v for _, v in self.components_mw)

    def area_fraction(self, component: str) -> float:
        """Fraction of the total die area one component takes (0..1)."""
        table = dict(self.components_um2)
        return table.get(component, 0.0) / self.total_area_um2 if self.total_area_um2 else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flatten to ``area_*`` (um^2) / ``power_*`` (mW) keys plus totals."""
        out = {f"area_{k}": v for k, v in self.components_um2}
        out.update({f"power_{k}": v for k, v in self.components_mw})
        out["total_area_um2"] = self.total_area_um2
        out["total_power_mw"] = self.total_power_mw
        return out


def _pe_array(rows: int, cols: int, local_mem_bytes_per_pe: float
              ) -> Tuple[float, float, float, float]:
    """(MAC area, MAC power, local-mem area, local-mem power) of the PE array."""
    pes = rows * cols
    mac_area = pes * MAC_INT8_AREA_UM2
    mac_power = pes * MAC_INT8_POWER_MW
    mem_area = pes * local_mem_bytes_per_pe * LOCAL_REG_BYTE_AREA_UM2
    mem_power = pes * local_mem_bytes_per_pe * LOCAL_REG_BYTE_POWER_MW
    return mac_area, mac_power, mem_area, mem_power


def feather_breakdown(rows: int = 16, cols: int = 16,
                      stab_kib: float = 64.0) -> AreaBreakdown:
    """FEATHER: 2D PE array + single BIRRD + point-to-point distribution.

    Each PE's local memory scales with the row count: a PE must hold roughly
    ``4 + AH/2`` bytes of weights/psums to stay busy while other rows use the
    shared column buses (§VI-D2's "large local memory" observation).
    """
    local_mem_bytes = 14.0 + 8.5 * rows
    mac_area, mac_power, mem_area, mem_power = _pe_array(rows, cols, local_mem_bytes)
    birrd = birrd_area_power(cols)
    dist_area = cols * PT2PT_PER_ENDPOINT_AREA_UM2
    comp_area = rows * cols * COMP_NOC_PER_PE_AREA_UM2
    ctrl_area = CONTROLLER_BASE_AREA_UM2 + rows * cols * CONTROLLER_PER_PE_AREA_UM2
    buf_area = stab_kib * 1024 * BUFFER_BYTE_AREA_UM2
    buf_power = stab_kib * 1024 * BUFFER_BYTE_POWER_MW
    return AreaBreakdown(
        name=f"FEATHER-{rows * cols}",
        components_um2=(
            ("MAC", mac_area),
            ("local_mem", mem_area),
            ("Redn_NoC", birrd.area_um2),
            ("Dist_NoC", dist_area),
            ("Comp_NoC", comp_area),
            ("Controller", ctrl_area),
            ("Buffer", buf_area),
        ),
        components_mw=(
            ("MAC", mac_power),
            ("local_mem", mem_power),
            ("Redn_NoC", birrd.power_mw),
            ("Dist_NoC", dist_area * 0.0001),
            ("Comp_NoC", comp_area * 0.0001),
            ("Controller", ctrl_area * 0.00015),
            ("Buffer", buf_power),
        ),
    )


def eyeriss_like_breakdown(pes: int = 256, stab_kib: float = 64.0) -> AreaBreakdown:
    """Eyeriss-like fixed-dataflow design: PE array + scratchpads, tiny NoCs."""
    rows = cols = int(math.sqrt(pes))
    # Row-stationary PEs carry substantial iAct/weight/psum scratchpads
    # (Eyeriss reports several hundred bytes per PE), independent of shape.
    local_mem_bytes = 130.0
    mac_area, mac_power, mem_area, mem_power = _pe_array(rows, cols, local_mem_bytes)
    dist_area = pes * 40.0
    comp_area = pes * COMP_NOC_PER_PE_AREA_UM2
    redn_area = pes * 18.0   # local psum forwarding only
    ctrl_area = CONTROLLER_BASE_AREA_UM2 * 0.6 + pes * 6.0
    buf_area = stab_kib * 1024 * BUFFER_BYTE_AREA_UM2
    return AreaBreakdown(
        name=f"Eyeriss-like-{pes}",
        components_um2=(
            ("MAC", mac_area),
            ("local_mem", mem_area),
            ("Redn_NoC", redn_area),
            ("Dist_NoC", dist_area),
            ("Comp_NoC", comp_area),
            ("Controller", ctrl_area),
            ("Buffer", buf_area),
        ),
        components_mw=(
            ("MAC", mac_power),
            ("local_mem", mem_power),
            ("Redn_NoC", redn_area * 0.0001),
            ("Dist_NoC", dist_area * 0.0001),
            ("Comp_NoC", comp_area * 0.0001),
            ("Controller", ctrl_area * 0.00015),
            ("Buffer", stab_kib * 1024 * BUFFER_BYTE_POWER_MW),
        ),
    )


def sigma_like_breakdown(pes: int = 256, stab_kib: float = 64.0) -> AreaBreakdown:
    """SIGMA: 1D PE array with a full-width FAN reduction tree and Benes distribution.

    Every 1D PE needs the all-to-all distribution endpoint and the FAN spans
    all PEs, which is what makes it ~2.4x FEATHER's area at equal PE count.
    """
    rows, cols = 1, pes
    local_mem_bytes = 6.0
    mac_area, mac_power, mem_area, mem_power = _pe_array(rows, cols, local_mem_bytes)
    fan = fan_area_power(pes)
    # Benes-style all-to-all distribution: ~2*N*log2(N) switch columns plus the
    # long wires needed to reach every 1D PE.
    dist_area = pes * math.log2(max(2, pes)) * DIST_NOC_PER_ENDPOINT_AREA_UM2 / 2.0
    comp_area = pes * 12.0
    ctrl_area = CONTROLLER_BASE_AREA_UM2 + pes * 20.0
    buf_area = stab_kib * 1024 * BUFFER_BYTE_AREA_UM2
    return AreaBreakdown(
        name=f"SIGMA-{pes}",
        components_um2=(
            ("MAC", mac_area),
            ("local_mem", mem_area),
            ("Redn_NoC", fan.area_um2),
            ("Dist_NoC", dist_area),
            ("Comp_NoC", comp_area),
            ("Controller", ctrl_area),
            ("Buffer", buf_area),
        ),
        components_mw=(
            ("MAC", mac_power),
            ("local_mem", mem_power),
            ("Redn_NoC", fan.power_mw),
            ("Dist_NoC", dist_area * 0.0001),
            ("Comp_NoC", comp_area * 0.0001),
            ("Controller", ctrl_area * 0.00015),
            ("Buffer", stab_kib * 1024 * BUFFER_BYTE_POWER_MW),
        ),
    )


def nvdla_like_breakdown(pes: int = 256, stab_kib: float = 64.0) -> AreaBreakdown:
    """NVDLA-like fixed-dataflow 1D MAC array (compute area only in Table IV)."""
    rows, cols = 1, pes
    mac_area, mac_power, mem_area, mem_power = _pe_array(rows, cols, 4.0)
    redn_area = pes * 24.0
    return AreaBreakdown(
        name=f"NVDLA-like-{pes}",
        components_um2=(
            ("MAC", mac_area),
            ("local_mem", mem_area),
            ("Redn_NoC", redn_area),
            ("Dist_NoC", pes * 20.0),
            ("Comp_NoC", 0.0),
            ("Controller", CONTROLLER_BASE_AREA_UM2 * 0.5),
            ("Buffer", stab_kib * 1024 * BUFFER_BYTE_AREA_UM2),
        ),
        components_mw=(
            ("MAC", mac_power),
            ("local_mem", mem_power),
            ("Redn_NoC", redn_area * 0.0001),
            ("Dist_NoC", pes * 20.0 * 0.0001),
            ("Comp_NoC", 0.0),
            ("Controller", CONTROLLER_BASE_AREA_UM2 * 0.5 * 0.00015),
            ("Buffer", stab_kib * 1024 * BUFFER_BYTE_POWER_MW),
        ),
    )


def feather_post_pnr(rows: int, cols: int) -> Dict[str, float]:
    """Table V style entry: total area/power/frequency for one FEATHER shape.

    Frequency is reported as 1 GHz for every shape (the critical path is the
    weight-register-to-multiplier wire inside the PE, independent of scale —
    §VI-E), matching the paper.
    """
    breakdown = feather_breakdown(rows, cols, stab_kib=16.0 + rows * cols / 16.0)
    paper = PAPER_TABLE_V.get((rows, cols))
    entry = {
        "shape": f"{rows}x{cols}",
        "model_area_um2": breakdown.total_area_um2,
        "model_power_mw": breakdown.total_power_mw,
        "frequency_ghz": 1.0,
    }
    if paper:
        entry["paper_area_um2"] = paper[0]
        entry["paper_power_mw"] = paper[1]
    return entry


def table_v(shapes: Tuple[Tuple[int, int], ...] = tuple(PAPER_TABLE_V)) -> List[Dict[str, float]]:
    """All Table V rows (model next to paper values)."""
    return [feather_post_pnr(rows, cols) for rows, cols in shapes]
