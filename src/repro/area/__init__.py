"""Analytical ASIC area/power models (Fig. 14 and Table V)."""

from repro.area.asic import (
    PAPER_TABLE_V,
    AreaBreakdown,
    eyeriss_like_breakdown,
    feather_breakdown,
    feather_post_pnr,
    nvdla_like_breakdown,
    sigma_like_breakdown,
    table_v,
)

__all__ = [
    "PAPER_TABLE_V",
    "AreaBreakdown",
    "eyeriss_like_breakdown",
    "feather_breakdown",
    "feather_post_pnr",
    "nvdla_like_breakdown",
    "sigma_like_breakdown",
    "table_v",
]
