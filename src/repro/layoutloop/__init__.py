"""Layoutloop: Timeloop-style cost model extended with layout awareness."""

from repro.layoutloop.arch import ArchSpec, BufferGeometry, feather_arch
from repro.layoutloop.energy import DEFAULT_ENERGY_TABLE, EnergyTable
from repro.layoutloop.cost_model import CostModel, CostReport, streaming_tensor_dims
from repro.layoutloop.mapper import Mapper, SearchResult
from repro.layoutloop.cosearch import (
    LayerChoice,
    ModelCost,
    compare_architectures,
    cosearch_layer,
    evaluate_model,
    unique_workloads,
)

__all__ = [
    "ArchSpec",
    "BufferGeometry",
    "feather_arch",
    "DEFAULT_ENERGY_TABLE",
    "EnergyTable",
    "CostModel",
    "CostReport",
    "streaming_tensor_dims",
    "Mapper",
    "SearchResult",
    "LayerChoice",
    "ModelCost",
    "compare_architectures",
    "cosearch_layer",
    "evaluate_model",
    "unique_workloads",
]
