"""Per-access energy table for the Layoutloop energy model.

Values are pJ per access at a 28nm-class node, following the relative
ordering every accelerator paper (Eyeriss, Timeloop/Accelergy) reports:
a register access costs about as much as a MAC, an on-chip SRAM access is
roughly an order of magnitude more, and a DRAM access is roughly two orders
of magnitude more.  Absolute values are documented as calibrated; the
experiments report normalized pJ/MAC, so only the ratios matter for the
reproduced trends.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyTable:
    """pJ costs of the actions the cost model counts."""

    mac_int8_pj: float = 0.3
    register_access_pj: float = 0.15
    buffer_read_per_word_pj: float = 3.0
    buffer_write_per_word_pj: float = 3.3
    noc_hop_per_word_pj: float = 0.35
    dram_access_per_byte_pj: float = 60.0
    reorder_unit_per_word_pj: float = 0.9
    birrd_per_word_pj: float = 0.45

    def scale(self, factor: float) -> "EnergyTable":
        """Uniformly scale the table (e.g. for a different technology node)."""
        return EnergyTable(
            mac_int8_pj=self.mac_int8_pj * factor,
            register_access_pj=self.register_access_pj * factor,
            buffer_read_per_word_pj=self.buffer_read_per_word_pj * factor,
            buffer_write_per_word_pj=self.buffer_write_per_word_pj * factor,
            noc_hop_per_word_pj=self.noc_hop_per_word_pj * factor,
            dram_access_per_byte_pj=self.dram_access_per_byte_pj * factor,
            reorder_unit_per_word_pj=self.reorder_unit_per_word_pj * factor,
            birrd_per_word_pj=self.birrd_per_word_pj * factor,
        )


DEFAULT_ENERGY_TABLE = EnergyTable()
