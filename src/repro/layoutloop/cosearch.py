"""Dataflow-layout co-search over whole models (paper §V and §VI-A2).

The paper searches the (dataflow, layout) pair with the best energy-delay
product for every layer independently, then sums per-layer results for the
whole model.  Because DNNs repeat layer shapes many times, the co-search
deduplicates identical shapes and weights the per-shape result by its
occurrence count — this is a pure speed optimisation with no effect on the
totals.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.layoutloop.arch import ArchSpec
from repro.layoutloop.energy import EnergyTable
from repro.layoutloop.mapper import Mapper, SearchResult
from repro.workloads.conv import ConvLayerSpec
from repro.workloads.gemm import GemmSpec


@dataclass
class LayerChoice:
    """The chosen (dataflow, layout) and its cost for one unique layer shape."""

    result: SearchResult
    count: int

    @property
    def cycles(self) -> float:
        return self.result.best_report.total_cycles * self.count

    @property
    def energy_pj(self) -> float:
        return self.result.best_report.total_energy_pj * self.count

    @property
    def macs(self) -> int:
        return self.result.best_report.macs * self.count


@dataclass
class ModelCost:
    """Aggregate cost of running a whole model on one architecture."""

    arch: str
    model: str
    layer_choices: List[LayerChoice] = field(default_factory=list)

    @property
    def total_cycles(self) -> float:
        return sum(c.cycles for c in self.layer_choices)

    @property
    def total_energy_pj(self) -> float:
        return sum(c.energy_pj for c in self.layer_choices)

    @property
    def total_macs(self) -> int:
        return sum(c.macs for c in self.layer_choices)

    @property
    def energy_per_mac_pj(self) -> float:
        return self.total_energy_pj / self.total_macs if self.total_macs else 0.0

    @property
    def edp(self) -> float:
        return self.total_energy_pj * self.total_cycles

    @property
    def avg_utilization(self) -> float:
        """MAC-weighted steady-state utilization across layers."""
        if not self.layer_choices:
            return 0.0
        total = sum(c.result.best_report.utilization * c.macs for c in self.layer_choices)
        return total / self.total_macs if self.total_macs else 0.0

    @property
    def stall_fraction(self) -> float:
        """Fraction of total cycles spent on bank-conflict stalls."""
        stalls = sum(c.result.best_report.stall_cycles * c.count for c in self.layer_choices)
        return stalls / self.total_cycles if self.total_cycles else 0.0

    @property
    def reorder_fraction(self) -> float:
        """Fraction of total cycles exposed by layout reordering."""
        reorder = sum(c.result.best_report.reorder_cycles_exposed * c.count
                      for c in self.layer_choices)
        return reorder / self.total_cycles if self.total_cycles else 0.0

    def geomean_cycles(self) -> float:
        values = [c.result.best_report.total_cycles for c in self.layer_choices]
        return _geomean(values)

    def geomean_energy_per_mac(self) -> float:
        values = [c.result.best_report.energy_per_mac_pj for c in self.layer_choices]
        return _geomean(values)

    def layouts_used(self) -> List[str]:
        return sorted({c.result.best_layout.name for c in self.layer_choices})


def _geomean(values: Sequence[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def unique_workloads(workloads: Sequence) -> List[Tuple[object, int]]:
    """Group workloads by shape signature, preserving first-seen order."""
    groups: "OrderedDict[Tuple, Tuple[object, int]]" = OrderedDict()
    for wl in workloads:
        sig = _signature(wl)
        if sig in groups:
            existing, count = groups[sig]
            groups[sig] = (existing, count + 1)
        else:
            groups[sig] = (wl, 1)
    return list(groups.values())


def _signature(workload) -> Tuple:
    if isinstance(workload, ConvLayerSpec):
        return ("conv", workload.m, workload.c, workload.h, workload.w, workload.r,
                workload.s, workload.stride, workload.padding, workload.groups)
    if isinstance(workload, GemmSpec):
        return ("gemm", workload.m, workload.k, workload.n)
    raise TypeError(f"unsupported workload {type(workload)!r}")


def cosearch_layer(arch: ArchSpec, workload, metric: str = "edp",
                   max_mappings: int = 200, energy: Optional[EnergyTable] = None,
                   mapper: Optional[Mapper] = None) -> SearchResult:
    """Co-search the (dataflow, layout) pair for one layer on one architecture."""
    mapper = mapper or Mapper(arch, energy=energy, metric=metric,
                              max_mappings=max_mappings)
    return mapper.search(workload)


def evaluate_model(arch: ArchSpec, workloads: Sequence, model_name: str = "model",
                   metric: str = "edp", max_mappings: int = 200,
                   energy: Optional[EnergyTable] = None,
                   mapper: Optional[Mapper] = None) -> ModelCost:
    """Run the per-layer co-search over a whole model and aggregate the result."""
    mapper = mapper or Mapper(arch, energy=energy, metric=metric,
                              max_mappings=max_mappings)
    cost = ModelCost(arch=arch.name, model=model_name)
    for workload, count in unique_workloads(workloads):
        result = mapper.search(workload)
        cost.layer_choices.append(LayerChoice(result=result, count=count))
    return cost


def compare_architectures(arches: Sequence[ArchSpec], workloads: Sequence,
                          model_name: str = "model", metric: str = "edp",
                          max_mappings: int = 200,
                          energy: Optional[EnergyTable] = None,
                          ) -> Dict[str, ModelCost]:
    """Evaluate several architectures on the same model (Fig. 13 style)."""
    return {
        arch.name: evaluate_model(arch, workloads, model_name=model_name,
                                  metric=metric, max_mappings=max_mappings,
                                  energy=energy)
        for arch in arches
    }
