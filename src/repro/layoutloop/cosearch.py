"""Dataflow-layout co-search over whole models (paper §V and §VI-A2).

The paper searches the (dataflow, layout) pair with the best energy-delay
product for every layer independently, then sums per-layer results for the
whole model.  Because DNNs repeat layer shapes many times, the co-search
deduplicates identical shapes and weights the per-shape result by its
occurrence count — this is a pure speed optimisation with no effect on the
totals.

:func:`evaluate_model` and :func:`compare_architectures` are thin fronts
over the batch engine in :mod:`repro.search.engine`, which adds evaluation
memoization, admissible pruning and optional process fan-out (``workers``).
The aggregate dataclasses (:class:`LayerChoice`, :class:`ModelCost`) live
here because they are part of the layoutloop vocabulary.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.layoutloop.arch import ArchSpec
from repro.layoutloop.energy import EnergyTable
from repro.layoutloop.mapper import Mapper, SearchResult
from repro.search.frontier import pareto_fold, tile_footprints
from repro.search.signatures import workload_signature
from repro.workloads.conv import ConvLayerSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.search.engine import SearchStats


@dataclass
class LayerChoice:
    """The chosen (dataflow, layout) and its cost for one unique layer shape."""

    result: SearchResult
    """The per-shape search outcome (best mapping, layout and cost report)."""
    count: int
    """How many times this shape occurs in the model (weights the totals)."""
    frontier: Optional[object] = None
    """The shape's :class:`~repro.search.frontier.ShapeFrontier` when the
    search ran in ``frontier=`` mode; None otherwise."""

    @property
    def cycles(self) -> float:
        """Total latency contribution of all occurrences (cycles)."""
        return self.result.best_report.total_cycles * self.count

    @property
    def energy_pj(self) -> float:
        """Total energy contribution of all occurrences (pJ)."""
        return self.result.best_report.total_energy_pj * self.count

    @property
    def macs(self) -> int:
        """Total MAC operations of all occurrences (count)."""
        return self.result.best_report.macs * self.count


@dataclass
class ModelCost:
    """Aggregate cost of running a whole model on one architecture."""

    arch: str
    """Name of the architecture the model was searched on."""
    model: str
    """Name of the model (e.g. ``resnet50``)."""
    layer_choices: List[LayerChoice] = field(default_factory=list)
    """Per-unique-shape winners, in first-seen layer order."""
    search_stats: Optional["SearchStats"] = None
    """Engine bookkeeping (evaluations, pruning, cache hits) when searched
    through :func:`repro.search.engine.search_model`; None otherwise."""
    frontiers: Optional[List] = None
    """Per-unique-shape :class:`~repro.search.frontier.ShapeFrontier`
    objects (same order as ``layer_choices``) when the search ran in
    ``frontier=`` mode; None otherwise."""
    fused_pairs: Optional[List] = None
    """Per-adjacent-pair :class:`FusedPairResult` objects when the search
    ran in ``fused=`` mode; None otherwise."""

    @property
    def total_cycles(self) -> float:
        """Whole-model latency (cycles), occurrence-weighted."""
        return sum(c.cycles for c in self.layer_choices)

    @property
    def total_energy_pj(self) -> float:
        """Whole-model energy (pJ), occurrence-weighted."""
        return sum(c.energy_pj for c in self.layer_choices)

    @property
    def total_macs(self) -> int:
        """Whole-model MAC operations (count)."""
        return sum(c.macs for c in self.layer_choices)

    @property
    def energy_per_mac_pj(self) -> float:
        """Whole-model energy efficiency (pJ/MAC).

        With zero total MACs the ratio is undefined: nonzero energy returns
        ``inf`` (never a silent 0.0 that would rank the model as free),
        zero energy returns 0.0.
        """
        if self.total_macs:
            return self.total_energy_pj / self.total_macs
        return math.inf if self.total_energy_pj > 0 else 0.0

    @property
    def edp(self) -> float:
        """Whole-model energy-delay product (pJ * cycles)."""
        return self.total_energy_pj * self.total_cycles

    @property
    def avg_utilization(self) -> float:
        """MAC-weighted steady-state utilization across layers (0..1).

        Falls back to the unweighted mean over layers when the model has
        zero total MACs (so degenerate inputs do not read as 0% utilized).
        """
        if not self.layer_choices:
            return 0.0
        total_macs = self.total_macs
        if not total_macs:
            return (sum(c.result.best_report.utilization
                        for c in self.layer_choices) / len(self.layer_choices))
        total = sum(c.result.best_report.utilization * c.macs
                    for c in self.layer_choices)
        return total / total_macs

    @property
    def stall_fraction(self) -> float:
        """Fraction of total cycles spent on bank-conflict stalls (0..1)."""
        stalls = sum(c.result.best_report.stall_cycles * c.count for c in self.layer_choices)
        return stalls / self.total_cycles if self.total_cycles else 0.0

    @property
    def reorder_fraction(self) -> float:
        """Fraction of total cycles exposed by layout reordering (0..1)."""
        reorder = sum(c.result.best_report.reorder_cycles_exposed * c.count
                      for c in self.layer_choices)
        return reorder / self.total_cycles if self.total_cycles else 0.0

    def geomean_cycles(self) -> float:
        """Geometric mean of per-unique-shape latency (cycles)."""
        values = [c.result.best_report.total_cycles for c in self.layer_choices]
        return _geomean(values)

    def geomean_energy_per_mac(self) -> float:
        """Geometric mean of per-unique-shape energy efficiency (pJ/MAC)."""
        values = [c.result.best_report.energy_per_mac_pj for c in self.layer_choices]
        return _geomean(values)

    def layouts_used(self) -> List[str]:
        """Sorted names of the distinct layouts chosen across the model."""
        return sorted({c.result.best_layout.name for c in self.layer_choices})


def _geomean(values: Sequence[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def unique_workloads(workloads: Sequence) -> List[Tuple[object, int]]:
    """Group workloads by shape signature, preserving first-seen order.

    Uses the same :func:`repro.search.signatures.workload_signature` the
    engine caches key on, so deduplication and memoization always agree.
    """
    groups: "OrderedDict[Tuple, Tuple[object, int]]" = OrderedDict()
    for wl in workloads:
        sig = workload_signature(wl)
        if sig in groups:
            existing, count = groups[sig]
            groups[sig] = (existing, count + 1)
        else:
            groups[sig] = (wl, 1)
    return list(groups.values())


# ------------------------------------------------------- fused two-layer search
@dataclass
class FusedPairResult:
    """A fused producer→consumer search outcome over shared layouts.

    Fusing keeps the producer's output tile on chip: the consumer streams
    it directly, so the intermediate tensor's DRAM write-out and read-back
    are both skipped, and the shared intermediate layout — the producer's
    output layout *is* the consumer's input layout — is a single search
    variable constraining both layers.  ``points`` is the Pareto frontier
    over the shared layouts, (EDP, cycles, energy, fused footprint); every
    point is a plain JSON dict, so a ``FusedPairResult`` round-trips
    through :class:`~repro.scenarios.record.ScenarioRecord` payloads
    bit-identically.
    """

    producer: str
    """Name of the producing layer."""
    consumer: str
    """Name of the consuming layer."""
    arch: str
    """Name of the architecture."""
    metric: str
    """Scalar objective the winner minimised."""
    points: List[Dict[str, object]]
    """Frontier points over shared layouts, canonically ordered; each has
    the shared ``layout``, both chosen mappings, the four fused objectives,
    ``legal`` (fused footprint fits the on-chip buffer) and
    ``saved_dram_bytes``."""
    winner_index: int
    """Index (into ``points``) of the scalar lexicographic winner."""
    capacity_bytes: int
    """On-chip buffer capacity the legality check used (bytes)."""

    def winner(self) -> Dict[str, object]:
        """The winning shared-layout candidate."""
        return self.points[self.winner_index]

    def to_dict(self) -> Dict[str, object]:
        return {"producer": self.producer, "consumer": self.consumer,
                "arch": self.arch, "metric": self.metric,
                "points": [dict(p) for p in self.points],
                "winner_index": self.winner_index,
                "capacity_bytes": self.capacity_bytes}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FusedPairResult":
        fields = dict(data)
        fields["points"] = [dict(p) for p in fields["points"]]
        return cls(**fields)


def fusible(producer, consumer) -> bool:
    """Whether two adjacent conv layers can share the intermediate on chip:
    the producer's output tensor must *be* the consumer's input tensor
    (channels and spatial extents line up, same batch)."""
    return (isinstance(producer, ConvLayerSpec)
            and isinstance(consumer, ConvLayerSpec)
            and producer.n == consumer.n
            and producer.m == consumer.c
            and producer.p == consumer.h
            and producer.q == consumer.w)


def _fused_metric_value(candidate: Dict[str, object], metric: str) -> float:
    if metric == "edp":
        return candidate["edp"]
    if metric == "latency":
        return candidate["total_cycles"]
    if metric == "energy":
        return candidate["total_energy_pj"]
    raise ValueError(f"unknown metric {metric!r}")


def fused_pair_search(mapper: Mapper, producer, consumer,
                      layouts: Optional[Sequence] = None) -> FusedPairResult:
    """Search a fused producer→consumer pair over shared intermediate layouts.

    For each candidate layout of the intermediate tensor, the producer is
    searched unconstrained (its own input layout stays free) and the
    consumer is searched restricted to that layout; the fused pair then

    * skips the intermediate's DRAM round trip — the write-out and
      read-back energy (``2 * bytes * dram_access_per_byte_pj``) and the
      corresponding off-chip streaming cycles (floored so the fused pair
      is never faster than its slower member), and
    * shares one on-chip tile — the fused footprint discounts the smaller
      of the producer's output tile and the consumer's input tile, and is
      ``legal`` only when it fits :attr:`BufferGeometry.capacity_bytes`.

    The frontier keeps the non-dominated *legal* candidates; the scalar
    winner is the lexicographic minimum of ``(metric value, layout
    index)`` over them (over all candidates when none is legal — the
    ``legal`` flags then say so).
    """
    from repro.errors import InvalidRequestError

    if not fusible(producer, consumer):
        raise InvalidRequestError(
            f"layers {getattr(producer, 'name', producer)!r} -> "
            f"{getattr(consumer, 'name', consumer)!r} are not fusible: the "
            "producer's output tensor must be the consumer's input tensor")
    arch = mapper.arch
    table = mapper.cost_model.energy
    shared = list(layouts) if layouts else mapper.candidate_layouts(consumer)
    producer_result = mapper.search(producer)
    producer_tiles = tile_footprints(producer, producer_result.best_mapping,
                                     arch)
    inter_bytes = (producer.oact_elems * arch.mac_bits) // 8

    candidates: List[Dict[str, object]] = []
    for layout_index, layout in enumerate(shared):
        consumer_result = mapper.search(consumer, layouts=[layout])
        consumer_tiles = tile_footprints(
            consumer, consumer_result.best_mapping, arch)
        saved_pj = 2.0 * inter_bytes * table.dram_access_per_byte_pj
        energy_pj = (producer_result.best_report.total_energy_pj
                     + consumer_result.best_report.total_energy_pj - saved_pj)
        saved_cycles = 2.0 * inter_bytes / arch.offchip_bytes_per_cycle
        summed = (producer_result.best_report.total_cycles
                  + consumer_result.best_report.total_cycles)
        cycles = max(summed - saved_cycles,
                     float(max(producer_result.best_report.total_cycles,
                               consumer_result.best_report.total_cycles)))
        footprint = (sum(producer_tiles) + sum(consumer_tiles)
                     - min(producer_tiles[2], consumer_tiles[0]))
        candidates.append({
            "layout": layout.name, "layout_index": layout_index,
            "producer_mapping": producer_result.best_mapping.name,
            "consumer_mapping": consumer_result.best_mapping.name,
            "edp": energy_pj * cycles, "total_cycles": cycles,
            "total_energy_pj": energy_pj,
            "buffer_footprint_bytes": footprint,
            "legal": footprint <= arch.buffer.capacity_bytes,
            "saved_dram_bytes": 2 * inter_bytes,
        })

    pool = [c for c in candidates if c["legal"]] or candidates
    winner = min(pool, key=lambda c: (_fused_metric_value(c, mapper.metric),
                                      c["layout_index"]))
    front: List[Tuple[Tuple[float, ...], Dict[str, object]]] = []
    for candidate in pool:
        vector = (candidate["edp"], candidate["total_cycles"],
                  candidate["total_energy_pj"],
                  candidate["buffer_footprint_bytes"])
        pareto_fold(front, vector, candidate)
    if not any(payload is winner for _, payload in front):
        front.append(((winner["edp"], winner["total_cycles"],
                       winner["total_energy_pj"],
                       winner["buffer_footprint_bytes"]), winner))
    front.sort(key=lambda entry: (entry[0], entry[1]["layout_index"]))
    points = [payload for _, payload in front]
    return FusedPairResult(
        producer=getattr(producer, "name", str(producer)),
        consumer=getattr(consumer, "name", str(consumer)),
        arch=arch.name, metric=mapper.metric, points=points,
        winner_index=points.index(winner),
        capacity_bytes=arch.buffer.capacity_bytes)


def fused_model_search(mapper: Mapper, workloads: Sequence,
                       layouts: Optional[Sequence] = None
                       ) -> List[FusedPairResult]:
    """Fused search over every fusible adjacent pair of a layer sequence.

    Layers are taken in model order (no shape deduplication — adjacency is
    positional); non-fusible pairs are skipped.  Returns one
    :class:`FusedPairResult` per fusible pair, in order.
    """
    results = []
    for producer, consumer in zip(workloads, list(workloads)[1:]):
        if fusible(producer, consumer):
            results.append(fused_pair_search(mapper, producer, consumer,
                                             layouts=layouts))
    return results


def cosearch_layer(arch: ArchSpec, workload, metric: str = "edp",
                   max_mappings: int = 200, energy: Optional[EnergyTable] = None,
                   mapper: Optional[Mapper] = None) -> SearchResult:
    """Co-search the (dataflow, layout) pair for one layer on one architecture."""
    mapper = mapper or Mapper(arch, energy=energy, metric=metric,
                              max_mappings=max_mappings)
    return mapper.search(workload)


def evaluate_model(arch: ArchSpec, workloads: Sequence, model_name: str = "model",
                   metric: str = "edp", max_mappings: int = 200,
                   energy: Optional[EnergyTable] = None,
                   mapper: Optional[Mapper] = None,
                   workers: Optional[int] = 1,
                   vectorize: bool = True,
                   backend: str = "analytical") -> ModelCost:
    """Run the per-layer co-search over a whole model and aggregate the result.

    .. deprecated:: 1.1
        A thin shim over the :mod:`repro.api` façade: it delegates to
        :func:`repro.search.engine.search_model`, which builds a
        :class:`~repro.api.SearchRequest` against the module-default
        :class:`~repro.api.Session` (bit-identical outputs).  New code
        should run requests on a session directly.

    Passing an explicit ``mapper`` forces the serial path with that
    mapper's configuration and caches (including its evaluation backend —
    ``backend`` is then ignored).  Raises ``ValueError`` on an empty layer
    list — summing over nothing would silently report a free model.
    """
    workloads = list(workloads)
    if not workloads:
        raise ValueError(
            f"evaluate_model({model_name!r}) requires at least one workload")
    if mapper is None:
        from repro.search.engine import search_model

        return search_model(arch, workloads, model_name=model_name,
                            metric=metric, max_mappings=max_mappings,
                            energy=energy, workers=workers,
                            vectorize=vectorize, backend=backend)
    cost = ModelCost(arch=arch.name, model=model_name)
    for workload, count in unique_workloads(workloads):
        result = mapper.search(workload)
        cost.layer_choices.append(LayerChoice(result=result, count=count))
    return cost


def compare_architectures(arches: Sequence[ArchSpec], workloads: Sequence,
                          model_name: str = "model", metric: str = "edp",
                          max_mappings: int = 200,
                          energy: Optional[EnergyTable] = None,
                          workers: Optional[int] = 1,
                          vectorize: bool = True,
                          backend: str = "analytical") -> Dict[str, ModelCost]:
    """Evaluate several architectures on the same model (Fig. 13 style).

    .. deprecated:: 1.1
        A thin shim over the :mod:`repro.api` façade (one
        :class:`~repro.api.SearchRequest` per architecture on the
        module-default session); bit-identical to the legacy path.

    ``workers`` is forwarded to the engine's process fan-out; results are
    bit-identical for any worker count.  ``backend`` selects the
    evaluation backend per :mod:`repro.backends`.
    """
    return {
        arch.name: evaluate_model(arch, workloads, model_name=model_name,
                                  metric=metric, max_mappings=max_mappings,
                                  energy=energy, workers=workers,
                                  vectorize=vectorize, backend=backend)
        for arch in arches
    }
