"""Architecture specifications consumed by the Layoutloop cost model.

An :class:`ArchSpec` captures what Table IV captures for every evaluated
design: the PE array shape, which dataflow knobs (T/O/P/S) are runtime
flexible, which data layouts the design can hold and whether/how it can
reorder them, the physical on-chip buffer geometry (the paper's
``num_line x line_size`` with ``conflict_depth`` and port counts), and the
off-chip bandwidth used to price off-chip reordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

from repro.layout.patterns import ReorderImplementation, ReorderPattern


@dataclass(frozen=True)
class BufferGeometry:
    """Physical on-chip storage abstraction (paper §V-A)."""

    num_lines: int = 2048
    line_size: int = 32
    banks: int = 32
    ports_per_bank: int = 2
    word_bits: int = 8

    @property
    def conflict_depth(self) -> int:
        return max(1, self.num_lines // self.banks)

    @property
    def capacity_bytes(self) -> int:
        return self.num_lines * self.line_size * self.word_bits // 8

    @property
    def peak_words_per_cycle(self) -> int:
        return self.banks * self.ports_per_bank


@dataclass(frozen=True)
class ArchSpec:
    """One accelerator configuration for Layoutloop."""

    name: str
    pe_rows: int
    pe_cols: int
    # Dataflow flexibility (paper's T/O/P/S). Tiling is always flexible.
    flexible_order: bool = True
    flexible_parallelism: bool = True
    flexible_shape: bool = True
    allowed_parallel_dims: Optional[Tuple[str, ...]] = None
    max_parallel_dims: int = 2
    fixed_parallelism: Optional[Tuple[Tuple[str, int], ...]] = None
    # Layout policy.
    runtime_layout_flexible: bool = False
    compile_time_layout_flexible: bool = True
    fixed_layout: Optional[str] = None
    reorder_pattern: ReorderPattern = ReorderPattern.NONE
    reorder_implementation: ReorderImplementation = ReorderImplementation.NONE
    # Storage and bandwidth.
    buffer: BufferGeometry = field(default_factory=BufferGeometry)
    offchip_bandwidth_gbps: float = 25.6
    frequency_mhz: float = 1000.0
    mac_bits: int = 8

    @property
    def num_pes(self) -> int:
        return self.pe_rows * self.pe_cols

    @property
    def offchip_bytes_per_cycle(self) -> float:
        cycles_per_second = self.frequency_mhz * 1e6
        return self.offchip_bandwidth_gbps * 1e9 / cycles_per_second

    def with_reorder(self, pattern: ReorderPattern,
                     implementation: ReorderImplementation) -> "ArchSpec":
        """Copy of this spec with a different reordering capability."""
        return replace(self, reorder_pattern=pattern,
                       reorder_implementation=implementation)

    def describe(self) -> str:
        """One-line human-readable summary (PEs, TOPS knobs, layout, reorder)."""
        knobs = "T"
        if self.flexible_order:
            knobs += "O"
        if self.flexible_parallelism:
            knobs += "P"
        if self.flexible_shape:
            knobs += "S"
        layout = "flexible" if self.runtime_layout_flexible else (
            self.fixed_layout or "fixed")
        return (f"{self.name}: {self.pe_rows}x{self.pe_cols} PEs, dataflow {knobs}, "
                f"layout {layout}, reorder {self.reorder_pattern.value} "
                f"via {self.reorder_implementation.value}")


def feather_arch(rows: int = 16, cols: int = 16, **overrides) -> ArchSpec:
    """FEATHER: fully flexible TOPS, arbitrary reorder in reduction."""
    defaults = dict(
        name="FEATHER",
        pe_rows=rows,
        pe_cols=cols,
        flexible_order=True,
        flexible_parallelism=True,
        flexible_shape=True,
        max_parallel_dims=2,
        runtime_layout_flexible=True,
        reorder_pattern=ReorderPattern.ARBITRARY,
        reorder_implementation=ReorderImplementation.RIR,
        buffer=BufferGeometry(num_lines=2048, line_size=cols, banks=cols,
                              ports_per_bank=2),
    )
    defaults.update(overrides)
    return ArchSpec(**defaults)
