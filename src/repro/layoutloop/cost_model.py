"""Layoutloop cost model: latency + energy of a (workload, mapping, layout) triple.

This is the Timeloop-style analytical model the paper extends (§V).  For a
given architecture it computes:

* compute cycles and spatial utilization from the mapping (padded per-dimension
  trip counts, exactly as a loop-nest model would),
* the bank-conflict *slowdown* from reading the streaming tensor under the
  given layout through the architecture's physical buffer geometry
  (``max(lines_accessed / ports, 1)`` per §V-B), moderated by whatever on-chip
  reordering pattern the architecture has,
* the latency and energy cost of the architecture's reordering implementation
  (off-chip DRAM round trip, on-chip reorder-after-reduction, or FEATHER's
  free reorder-in-reduction),
* an energy breakdown over MACs, registers, on-chip buffer, NoC and DRAM.

The absolute pJ values come from a calibrated table; all experiments report
results normalized to FEATHER, which is how the paper presents Fig. 13.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dataflow.mapping import Mapping
from repro.kernel.concordance import analyze_concordance_batch
from repro.kernel.footprint import streaming_access_coords
from repro.layout.concordance import analyze_concordance
from repro.layout.layout import Layout
from repro.layout.patterns import ReorderImplementation, ReorderPattern
from repro.layoutloop.arch import ArchSpec
from repro.layoutloop.energy import DEFAULT_ENERGY_TABLE, EnergyTable
from repro.workloads.conv import ConvLayerSpec
from repro.workloads.gemm import GemmSpec


@dataclass(frozen=True)
class CostReport:
    """Latency/energy estimate for one (workload, mapping, layout) on one arch.

    Reports are immutable: instances are memoized by the search engine's
    :class:`~repro.search.cache.EvaluationCache`, so treat
    ``energy_breakdown_pj`` as read-only too (build a modified copy with
    ``dataclasses.replace`` and a fresh dict for what-if studies).
    """

    workload: str
    """Name of the evaluated workload."""
    arch: str
    """Name of the architecture."""
    mapping: str
    """Name of the evaluated mapping (dataflow)."""
    layout: str
    """Name of the evaluated streaming-tensor layout."""
    macs: int
    """Multiply-accumulate operations the layer performs (count)."""
    compute_cycles: float
    """Ideal compute latency of the mapping (cycles), before stalls."""
    slowdown: float
    """Average bank-conflict slowdown factor (dimensionless, >= 1)."""
    stall_cycles: float
    """Cycles lost to bank-conflict stalls."""
    reorder_cycles_exposed: float
    """Cycles the layout-reordering mechanism adds on the critical path."""
    total_cycles: float
    """End-to-end latency (cycles): compute + stalls + exposed reorder."""
    utilization: float
    """Steady-state MAC utilization of the array (fraction, 0..1)."""
    practical_utilization: float
    """Utilization including stall and reorder cycles (fraction, 0..1)."""
    energy_breakdown_pj: Dict[str, float] = field(default_factory=dict)
    """Energy per component (pJ): mac, register, buffer, noc, dram, reorder."""

    @property
    def total_energy_pj(self) -> float:
        """Total energy over all components (pJ)."""
        return sum(self.energy_breakdown_pj.values())

    @property
    def energy_per_mac_pj(self) -> float:
        """Energy per MAC (pJ/MAC).

        A zero-MAC report with nonzero energy returns ``inf`` (the division
        is genuinely undefined) rather than a silent 0.0 that would rank it
        as free; 0 MACs and 0 pJ return 0.0.
        """
        if self.macs:
            return self.total_energy_pj / self.macs
        return math.inf if self.total_energy_pj > 0 else 0.0

    @property
    def edp(self) -> float:
        """Energy-delay product (pJ * cycles)."""
        return self.total_energy_pj * self.total_cycles

    def latency_seconds(self, frequency_mhz: float) -> float:
        """Wall-clock latency (seconds) at the given clock (MHz)."""
        return self.total_cycles / (frequency_mhz * 1e6)


# ---------------------------------------------------------------------------
# Per-cycle access-coordinate generation for the streaming tensor.
# ---------------------------------------------------------------------------

_CONV_IACT_DIMS = ("C", "H", "W")
_SAMPLE_BASES = ((0, 0, 0), (1, 1, 1), (2, 5, 3), (0, 3, 6))


def _conv_iact_coords(layer: ConvLayerSpec, mapping: Mapping,
                      base: Tuple[int, int, int]) -> List[Dict[str, int]]:
    """Concurrent iAct coordinates demanded by the mapping's parallel dims."""
    c0, h0, w0 = base
    deg = mapping.parallel_dims
    coords = [{"C": c0 % max(1, layer.c), "H": h0 % max(1, layer.h),
               "W": w0 % max(1, layer.w)}]

    def expand(dim_key: str, count: int, apply):
        nonlocal coords
        if count <= 1:
            return
        expanded = []
        for coord in coords:
            for idx in range(count):
                new = dict(coord)
                apply(new, idx)
                expanded.append(new)
        coords = expanded

    expand("C", deg.get("C", 1), lambda c, i: c.update(C=(c["C"] + i) % max(1, layer.c)))
    expand("P", deg.get("P", 1),
           lambda c, i: c.update(H=(c["H"] + i * layer.stride) % max(1, layer.h)))
    expand("Q", deg.get("Q", 1),
           lambda c, i: c.update(W=(c["W"] + i * layer.stride) % max(1, layer.w)))
    expand("R", deg.get("R", 1), lambda c, i: c.update(H=(c["H"] + i) % max(1, layer.h)))
    expand("S", deg.get("S", 1), lambda c, i: c.update(W=(c["W"] + i) % max(1, layer.w)))
    # M and N parallelism broadcasts the same iActs: no new coordinates.
    return coords


def _gemm_input_coords(gemm: GemmSpec, mapping: Mapping,
                       base: Tuple[int, int, int]) -> List[Dict[str, int]]:
    m0, k0, _ = base
    deg = mapping.parallel_dims
    coords = [{"M": m0 % max(1, gemm.m), "K": k0 % max(1, gemm.k)}]

    def expand(dim: str, count: int, extent: int):
        nonlocal coords
        if count <= 1:
            return
        expanded = []
        for coord in coords:
            for idx in range(count):
                new = dict(coord)
                new[dim] = (coord[dim] + idx) % max(1, extent)
                expanded.append(new)
        coords = expanded

    expand("M", deg.get("M", 1), gemm.m)
    expand("K", deg.get("K", 1), gemm.k)
    # N parallelism broadcasts the same input row: no new coordinates.
    return coords


def _workload_name(workload) -> str:
    """The workload's display name (``getattr`` with a lazy str fallback)."""
    try:
        return workload.name
    except AttributeError:
        return str(workload)


def streaming_tensor_dims(workload) -> Dict[str, int]:
    """Extents of the streaming (layout-bearing) tensor's dimensions."""
    if isinstance(workload, ConvLayerSpec):
        return {"C": workload.c, "H": workload.h, "W": workload.w}
    if isinstance(workload, GemmSpec):
        return {"M": workload.m, "K": workload.k}
    raise TypeError(f"unsupported workload {type(workload)!r}")


class CostModel:
    """Analytical latency/energy model with layout awareness.

    ``compile`` routes the batched concordance fold and footprint walk
    through the optional numba-jitted loop kernels (:mod:`repro.kernel.jit`)
    — bit-identical results, silently degrading to the numpy path when
    numba is not installed.  The scalar :meth:`evaluate` oracle is never
    jitted; it stays the reference.
    """

    def __init__(self, arch: ArchSpec, energy: Optional[EnergyTable] = None,
                 compile: bool = False):
        self.arch = arch
        self.energy = energy or DEFAULT_ENERGY_TABLE
        self.compile = compile

    # ----------------------------------------------------------------- public
    def evaluate(self, workload, mapping: Mapping, layout: Layout) -> CostReport:
        """Full latency/energy report of one (workload, mapping, layout).

        This is the scalar reference path; the search engine's hot loop runs
        :meth:`evaluate_mapping_batch`, which is bit-identical.
        """
        slowdown = self.estimate_slowdown(workload, mapping, layout)
        return self._assemble_report(workload, mapping, layout, slowdown,
                                     mapping.compute_cycles(workload),
                                     self.reorder_costs(workload),
                                     self._energy_breakdown_parts(workload, mapping))

    def evaluate_mapping_batch(self, workload, mapping: Mapping,
                               layouts: Sequence[Layout]) -> List[CostReport]:
        """Reports of one mapping under every candidate layout, vectorized.

        Everything layout-independent (compute cycles, reorder costs, the
        energy breakdown apart from the slowdown-scaled buffer reads) is
        computed once; the per-layout slowdowns come from the batched
        concordance kernel.  Bit-identical to calling :meth:`evaluate` per
        layout — the same floats in the same order.
        """
        layouts = list(layouts)
        compute_cycles = mapping.compute_cycles(workload)
        reorder = self.reorder_costs(workload)
        parts = self._energy_breakdown_parts(workload, mapping)
        slowdowns = self.estimate_slowdown_batch(workload, mapping, layouts)
        workload_name = _workload_name(workload)
        return [self._assemble_report(workload, mapping, layout, slowdown,
                                      compute_cycles, reorder, parts,
                                      workload_name=workload_name)
                for layout, slowdown in zip(layouts, slowdowns)]

    def evaluate_batch(self, workload, mappings: Sequence[Mapping],
                       layouts: Sequence[Layout]) -> List[List[CostReport]]:
        """Reports for the whole (mappings x layouts) cross product.

        Returns one inner list per mapping, in input order.  This is the
        entry point :class:`~repro.layoutloop.mapper.Mapper` and
        :mod:`repro.search.engine` build on (they interleave it with cache
        lookups and pruning, which need per-mapping granularity).
        """
        return [self.evaluate_mapping_batch(workload, mapping, layouts)
                for mapping in mappings]

    def _assemble_report(self, workload, mapping: Mapping, layout: Layout,
                         slowdown: float, compute_cycles: float,
                         reorder: Tuple[float, float],
                         breakdown_parts: Dict[str, float],
                         workload_name: Optional[str] = None) -> CostReport:
        """Build one report from precomputed mapping-level quantities."""
        macs = workload.macs
        utilization = macs / (compute_cycles * self.arch.num_pes) if compute_cycles else 0.0
        stall_cycles = compute_cycles * (slowdown - 1.0)
        reorder_exposed, reorder_energy = reorder
        total_cycles = compute_cycles + stall_cycles + reorder_exposed
        practical_utilization = macs / (total_cycles * self.arch.num_pes) if total_cycles else 0.0

        breakdown = dict(breakdown_parts)
        breakdown["buffer_read"] = breakdown["buffer_read"] * slowdown
        if reorder_energy:
            breakdown["reorder"] = breakdown.get("reorder", 0.0) + reorder_energy

        if workload_name is None:
            workload_name = _workload_name(workload)
        return CostReport(
            workload=workload_name,
            arch=self.arch.name,
            mapping=mapping.name,
            layout=layout.name,
            macs=macs,
            compute_cycles=compute_cycles,
            slowdown=slowdown,
            stall_cycles=stall_cycles,
            reorder_cycles_exposed=reorder_exposed,
            total_cycles=total_cycles,
            utilization=utilization,
            practical_utilization=practical_utilization,
            energy_breakdown_pj=breakdown,
        )

    # -------------------------------------------------------------- slowdown
    def estimate_slowdown(self, workload, mapping: Mapping, layout: Layout) -> float:
        """Average bank-conflict slowdown of streaming-tensor reads under ``layout``."""
        if self.arch.reorder_implementation is ReorderImplementation.RIR:
            # FEATHER co-switches to a concordant layout; by construction the
            # chosen dataflow never reads more lines than ports (§IV-B).
            return 1.0
        dims = streaming_tensor_dims(workload)
        per_cycle = []
        for base in _SAMPLE_BASES:
            if isinstance(workload, ConvLayerSpec):
                per_cycle.append(_conv_iact_coords(workload, mapping, base))
            else:
                per_cycle.append(_gemm_input_coords(workload, mapping, base))
        report = analyze_concordance(
            per_cycle, layout, dims,
            ports_per_bank=self.arch.buffer.ports_per_bank,
            lines_per_bank=self.arch.buffer.conflict_depth,
            num_banks=self.arch.buffer.banks,
            pattern=self.arch.reorder_pattern,
        )
        return report.avg_slowdown

    def estimate_slowdown_batch(self, workload, mapping: Mapping,
                                layouts: Sequence[Layout]) -> List[float]:
        """Per-layout slowdowns of one mapping via the vectorized kernel.

        The access footprint is generated once as a ``(cycles, lanes, ndims)``
        array (:mod:`repro.kernel.footprint`) and every layout is addressed
        through its compiled stride vectors in one batched concordance pass.
        Values are bit-identical to :meth:`estimate_slowdown` per layout.
        """
        if self.arch.reorder_implementation is ReorderImplementation.RIR:
            return [1.0] * len(layouts)
        dims = streaming_tensor_dims(workload)
        coords, dim_names = streaming_access_coords(workload, mapping,
                                                    _SAMPLE_BASES,
                                                    compiled=self.compile)
        reports = analyze_concordance_batch(
            coords, dim_names, layouts, dims,
            ports_per_bank=self.arch.buffer.ports_per_bank,
            lines_per_bank=self.arch.buffer.conflict_depth,
            num_banks=self.arch.buffer.banks,
            pattern=self.arch.reorder_pattern,
            compiled=self.compile,
        )
        return [report.avg_slowdown for report in reports]

    # --------------------------------------------------------- reorder costs
    def reorder_costs(self, workload) -> Tuple[float, float]:
        """(exposed latency cycles, energy pJ) of the layout-reordering mechanism.

        Depends only on the workload and the architecture — not on the
        mapping or layout — which is what lets :mod:`repro.search.bounds`
        fold the exact reorder cost into its admissible pruning bound.
        """
        impl = self.arch.reorder_implementation
        oact_elems = self._oact_elems(workload)
        oact_bytes = oact_elems * self.arch.mac_bits // 8
        table = self.energy

        if impl is ReorderImplementation.NONE:
            return 0.0, 0.0
        if impl is ReorderImplementation.OFF_CHIP:
            # oActs go to DRAM, are reordered there by the CPU, and come back
            # as the next layer's iActs (Fig. 6a): two extra DRAM transfers
            # plus the CPU-side shuffle, all on the inter-layer critical path.
            transfer_cycles = 2.0 * oact_bytes / max(1e-9, self.arch.offchip_bytes_per_cycle)
            cpu_cycles = oact_elems / 8.0  # host reorders ~8 words per accelerator cycle
            exposed = transfer_cycles + cpu_cycles
            energy = 2.0 * oact_bytes * table.dram_access_per_byte_pj
            return exposed, energy
        if impl is ReorderImplementation.RAR:
            # oActs are read from the buffer, pass through a reorder unit and
            # are written back before the next layer can consume them.
            line_size = max(1, self.arch.buffer.line_size)
            reorder_cycles = 2.0 * oact_elems / (line_size * self.arch.buffer.ports_per_bank)
            energy = oact_elems * (table.reorder_unit_per_word_pj
                                   + table.buffer_read_per_word_pj
                                   + table.buffer_write_per_word_pj)
            return reorder_cycles, energy
        if impl is ReorderImplementation.RIR:
            # Reordering rides along the reduction: no exposed latency, only
            # the (small) BIRRD traversal energy.
            return 0.0, oact_elems * table.birrd_per_word_pj
        raise ValueError(f"unknown reorder implementation {impl!r}")

    # ----------------------------------------------------------------- energy
    def _energy_breakdown_parts(self, workload, mapping: Mapping
                                ) -> Dict[str, float]:
        """Layout-independent energy terms (buffer reads before the slowdown
        scaling), computed once per mapping by the batch path."""
        table = self.energy
        macs = workload.macs
        deg = mapping.parallel_dims

        iact_elems, weight_elems, oact_elems = self._tensor_elems(workload)
        bytes_per_elem = self.arch.mac_bits / 8.0

        # Spatial reuse: dimensions whose parallelism does not index the tensor
        # let one buffer read feed several PEs (multicast along the array).
        if isinstance(workload, ConvLayerSpec):
            iact_irrelevant = ("M",)
            weight_irrelevant = ("P", "Q", "N")
            reduction_extent = (workload.c // workload.groups) * workload.r * workload.s
        else:
            iact_irrelevant = ("N",)
            weight_irrelevant = ("M",)
            reduction_extent = workload.k

        iact_spatial_reuse = math.prod(deg.get(d, 1) for d in iact_irrelevant)
        weight_spatial_reuse = math.prod(deg.get(d, 1) for d in weight_irrelevant)

        # Temporal (stationary) reuse from the innermost loops that do not
        # index the tensor: bounded to keep the model sane.
        iact_temporal = self._temporal_reuse(workload, mapping, iact_irrelevant)
        weight_temporal = self._temporal_reuse(workload, mapping, weight_irrelevant)

        iact_reads = max(iact_elems, macs / max(1, iact_spatial_reuse * iact_temporal))
        weight_reads = max(weight_elems, macs / max(1, weight_spatial_reuse * weight_temporal))

        # Partial-sum traffic: if the reduction is not completed back-to-back
        # (reduction dims are not innermost), partial sums spill to the buffer.
        spatial_red = max(1, mapping.spatial_reduction_size)
        reduction_steps = math.ceil(reduction_extent / spatial_red)
        reduction_innermost = any(d in mapping.reduction_dims for d in mapping.order[-2:])
        if reduction_innermost or reduction_steps <= 1:
            psum_writes = oact_elems
            psum_reads = 0
        else:
            spill_factor = min(reduction_steps, 8)
            psum_writes = oact_elems * spill_factor
            psum_reads = oact_elems * (spill_factor - 1)

        buffer_reads = iact_reads + weight_reads + psum_reads
        buffer_writes = psum_writes + iact_elems + weight_elems  # fills from DRAM

        dram_bytes = (iact_elems + weight_elems + oact_elems) * bytes_per_elem

        return {
            "mac": macs * table.mac_int8_pj,
            "register": 2.0 * macs * table.register_access_pj,
            "buffer_read": buffer_reads * table.buffer_read_per_word_pj,
            "buffer_write": buffer_writes * table.buffer_write_per_word_pj,
            "noc": (iact_reads + weight_reads + psum_writes) * table.noc_hop_per_word_pj,
            "dram": dram_bytes * table.dram_access_per_byte_pj,
        }

    # ---------------------------------------------------------------- helpers
    @staticmethod
    def _tensor_elems(workload) -> Tuple[int, int, int]:
        if isinstance(workload, ConvLayerSpec):
            return workload.iact_elems, workload.weight_elems, workload.oact_elems
        return workload.input_elems, workload.weight_elems, workload.output_elems

    @staticmethod
    def _oact_elems(workload) -> int:
        if isinstance(workload, ConvLayerSpec):
            return workload.oact_elems
        return workload.output_elems

    def _temporal_reuse(self, workload, mapping: Mapping,
                        irrelevant_dims: Sequence[str]) -> float:
        """Reuse from innermost temporal loops over dims that do not index the tensor."""
        reuse = 1.0
        inner = mapping.order[-2:] if len(mapping.order) >= 2 else mapping.order
        for dim in inner:
            if dim in irrelevant_dims:
                extent = self._dim_extent(workload, dim)
                degree = mapping.parallel_degree(dim)
                reuse *= min(64, max(1, extent // max(1, degree)))
        return reuse

    @staticmethod
    def _dim_extent(workload, dim: str) -> int:
        if isinstance(workload, ConvLayerSpec):
            return workload.dim(dim) if dim in "NMCHWPQRS" else 1
        try:
            return workload.dim(dim)
        except KeyError:
            return 1
