"""Dataflow (and layout) search on top of the Layoutloop cost model.

Timeloop's hybrid mapper combines pruned random sampling with exhaustive
enumeration of small subspaces; the paper uses that search (§VI-A2) with a
bound on the number of evaluated mappings.  :class:`Mapper` mirrors this: it
derives the structured mapping space allowed by an architecture's declared
flexibility (fixed-parallelism designs collapse to a handful of mappings,
fully flexible designs enumerate parallelism assignments and loop orders),
optionally samples it, and scores every candidate with the cost model under
each candidate layout.

Candidate scoring runs through :mod:`repro.search`: full cost-model
evaluations are memoized in an :class:`~repro.search.cache.EvaluationCache`
(shareable across mappers) and mappings whose admissible lower bound
(:mod:`repro.search.bounds`) already exceeds the incumbent best are skipped
without evaluating any layout.  Both optimisations are exact — the search
returns the same best (mapping, layout) pair it would have found
exhaustively, just faster.

Scoring itself goes through an :mod:`repro.backends` evaluation backend.
The default ``"analytical"`` backend runs the exact cached/batched path
described above (bit-identical to the pre-backend mapper); any other
registered backend (e.g. ``"simulator"``) scores candidates through its
``evaluate_mapping`` — with admissible pruning disabled, since the bounds
are statements about the analytical model only.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dataflow.mapping import (
    CONV_REDUCTION_DIMS,
    GEMM_REDUCTION_DIMS,
    Mapping,
    ParallelSpec,
    TileLevel,
)
from repro.dataflow.space import MappingSpace
from repro.layout.layout import Layout, parse_layout
from repro.layout.library import conv_layout_library, gemm_layout_library
from repro.layoutloop.arch import ArchSpec
from repro.layoutloop.cost_model import CostModel, CostReport
from repro.layoutloop.energy import EnergyTable
from repro.search.bounds import cached_bound_statics, metric_lower_bound
from repro.search.cache import EvaluationCache
from repro.search.signatures import workload_signature
from repro.workloads.conv import ConvLayerSpec
from repro.workloads.gemm import GemmSpec

_METRICS = ("edp", "latency", "energy")
_POLICIES = ("exhaustive", "halving", "evolutionary")


@dataclass
class SearchResult:
    """Best (mapping, layout) found for one workload on one architecture."""

    workload: str
    """Name of the searched workload (free-text layer label)."""
    arch: str
    """Name of the architecture the search ran on."""
    best_report: CostReport
    """Full cost report (cycles, pJ breakdown) of the winning pair.  A
    :class:`~repro.layoutloop.cost_model.CostReport` on the analytical
    backend, a field-compatible :class:`~repro.backends.base.BackendReport`
    on any other."""
    best_mapping: Mapping
    """The winning dataflow."""
    best_layout: Layout
    """The winning data layout of the streaming tensor."""
    evaluated: int
    """(mapping, layout) candidates scored, including evaluation-cache hits."""
    metric: str
    """Objective the search minimised: ``edp``, ``latency`` or ``energy``."""
    pruned: int = 0
    """Candidates skipped because their lower bound could not beat the best."""
    cache_hits: int = 0
    """Scored candidates served from the evaluation cache."""
    repaired: int = 0
    """(mapping, layout) candidates collapsed away by constraint repair —
    raw candidates whose repaired form duplicated an earlier one, times the
    layout count, so ``evaluated + pruned + repaired`` covers the raw
    universe.  0 when no :class:`~repro.constraints.ConstraintSet` binds."""
    repair: Optional[Dict] = None
    """The :class:`~repro.constraints.RepairLog` payload of the candidate
    universe (plus ``universe_pairs``), or ``None`` when unconstrained."""

    @property
    def best_value(self) -> float:
        """Value of ``metric`` for the winning pair (cycles, pJ or pJ*cycles)."""
        return _metric_value(self.best_report, self.metric)


def _metric_value(report: CostReport, metric: str) -> float:
    if metric == "edp":
        return report.edp
    if metric == "latency":
        return report.total_cycles
    if metric == "energy":
        return report.total_energy_pj
    raise ValueError(f"unknown metric {metric!r}")


class Mapper:
    """Search dataflows (and layouts) for an architecture.

    ``prune`` enables the admissible lower-bound pruning (exact; disable
    only for A/B testing).  ``evaluation_cache`` may be shared between
    mappers — keys embed the architecture and energy-table signature, so
    cross-architecture sharing is safe.  ``vectorize`` selects the
    :mod:`repro.kernel` fast path (streaming mapping sampling plus batched
    layout evaluation); disabling it runs the scalar reference oracle —
    results are bit-identical either way, only the speed differs.

    ``backend`` selects the evaluation backend scoring candidates: a
    :mod:`repro.backends` registry name, an already-constructed
    :class:`~repro.backends.base.EvaluationBackend`, or ``None`` for the
    default analytical backend (in which case ``evaluation_cache`` and
    ``vectorize`` configure it exactly as before).  Non-analytical
    backends disable pruning — the admissible bounds only hold for the
    analytical model.

    ``policy`` selects the search policy over the candidate universe:
    ``"exhaustive"`` (default, scan everything minus admissible prunes),
    ``"halving"`` or ``"evolutionary"`` (:mod:`repro.search.budget`);
    ``budget`` caps the scored (mapping, layout) pairs of the budgeted
    policies.  ``compile`` engages the optional numba-jitted kernel inner
    loops on the analytical backend (bit-identical; a silent no-op when
    numba is not installed).

    ``bulk`` engages the bulk-bounds control plane (:mod:`repro.search.bulk`)
    on the analytical backend: admissible bounds, halving rungs and frontier
    dominance bounds for the whole candidate universe are computed in one
    numpy pass, and mappings are materialized only when they survive the
    prune.  Bit-identical results and counters either way — only the speed
    differs.  ``max_mappings="auto"`` (analytical, exhaustive policy only)
    replaces the fixed sample with the adaptive universe: a small seeded
    base sample grown only where the bound landscape is tight, returning
    exactly the uncapped exhaustive winner of the full structured space.

    ``constraints`` binds a :class:`~repro.constraints.ConstraintSet` (or
    the string ``"default"`` for the architecture's own rules, ``"none"``
    to force the layer off): every candidate universe is then repaired to
    legality and deduplicated before any policy scores it, with the repair
    accounted in ``SearchResult.repaired``/``repair``.  ``None`` inherits
    the backend's own constraints — the analytical backend has none, so by
    default nothing changes and results stay bit-identical.
    """

    def __init__(self, arch: ArchSpec, energy: Optional[EnergyTable] = None,
                 metric: str = "edp", max_mappings=200, seed: int = 0,
                 prune: bool = True,
                 evaluation_cache: Optional[EvaluationCache] = None,
                 vectorize: bool = True, backend=None,
                 policy: str = "exhaustive", budget: Optional[int] = None,
                 compile: bool = False, bulk: bool = True, constraints=None):
        from repro.backends import (
            AnalyticalBackend,
            EvaluationBackend,
            create_backend,
        )

        if metric not in _METRICS:
            raise ValueError(f"metric must be one of {_METRICS}")
        if policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}")
        if isinstance(max_mappings, str):
            if max_mappings != "auto":
                raise ValueError(
                    "max_mappings must be a positive integer or 'auto'")
            if policy != "exhaustive":
                raise ValueError(
                    "max_mappings='auto' requires policy='exhaustive'")
        if budget is not None:
            if not isinstance(budget, int) or budget < 1:
                raise ValueError("budget must be a positive integer or None")
            if policy == "exhaustive":
                raise ValueError(
                    "budget requires policy='halving' or 'evolutionary'")
        self.arch = arch
        self.metric = metric
        self.max_mappings = max_mappings
        self.seed = seed
        self.prune = prune
        self.vectorize = vectorize
        self.policy = policy
        self.budget = budget
        self.compile = compile
        if backend is None or backend == "analytical":
            self.backend = AnalyticalBackend(arch, energy=energy,
                                             cache=evaluation_cache,
                                             vectorize=vectorize,
                                             compile=compile)
        elif isinstance(backend, EvaluationBackend):
            self.backend = backend
        else:
            self.backend = create_backend(backend, arch, energy=energy,
                                          seed=seed)
        self._analytical = isinstance(self.backend, AnalyticalBackend)
        from repro.constraints import resolve_constraints

        self.constraints = resolve_constraints(constraints, arch,
                                               backend=self.backend)
        # The bulk control plane is exact only where the admissible bounds
        # are: the analytical model.  Other backends silently fall back to
        # the scalar loop (mirroring how they disable pruning).  A bound
        # ConstraintSet also forces the scalar path: the bulk universe
        # enumerates raw flat indices symbolically, while constraints need
        # every candidate materialized for repair.
        self.bulk = (bool(bulk) and self._analytical
                     and self.constraints is None)
        if max_mappings == "auto" and not self._analytical:
            raise ValueError(
                "max_mappings='auto' requires the analytical backend")
        if max_mappings == "auto" and self.constraints is not None:
            raise ValueError(
                "max_mappings='auto' is incompatible with a bound "
                "ConstraintSet (the adaptive universe is defined on the "
                "raw structured space)")
        if self._analytical:
            self.cost_model = self.backend.cost_model
            self.evaluation_cache = self.backend.cache
        else:
            # Kept for API compatibility (bound statics, shared-cache
            # callers, the budgeted policies' analytical cheap rung); the
            # exhaustive loop does not consult them.
            self.cost_model = CostModel(arch, energy, compile=compile)
            self.evaluation_cache = (evaluation_cache
                                     if evaluation_cache is not None
                                     else EvaluationCache())
        self._cache: Dict[Tuple, SearchResult] = {}
        # Frontier results memoize separately: the budgeted policies'
        # warm-start filters `_cache` positionally, and frontier pairs are
        # (SearchResult, ShapeFrontier) tuples, not SearchResults.
        self._frontier_cache: Dict[Tuple, Tuple] = {}
        # Repaired candidate universes per workload signature: (mappings,
        # RepairLog).  Only populated when a ConstraintSet binds.
        self._repair_cache: Dict[Tuple, Tuple] = {}

    # ------------------------------------------------------------- candidates
    def candidate_mappings(self, workload) -> List[Mapping]:
        """Mappings the architecture can actually run.

        With a bound :class:`~repro.constraints.ConstraintSet` the raw
        structured sample is repaired to legality and deduplicated (memoized
        per workload shape); every search policy consumes this method, so
        all of them enumerate the same repaired-legal universe.
        """
        space = self._mapping_space(workload)
        if space is None:
            mappings = self._fixed_parallelism_mappings(workload)
        else:
            mappings = space.sample(self.max_mappings, seed=self.seed,
                                    materialize=not self.vectorize)
            mappings.extend(self._canonical_tail(workload))
        if self.constraints is None:
            return mappings
        return self._repaired_universe(workload, mappings)[0]

    def _repaired_universe(self, workload,
                           raw: Optional[List[Mapping]] = None) -> Tuple:
        """The repaired-legal candidate list and its RepairLog, memoized."""
        key = self._workload_signature(workload)
        cached = self._repair_cache.get(key)
        if cached is None:
            if raw is None:
                return self._repaired_universe(
                    workload, self.candidate_mappings(workload))
            cached = self.constraints.repair_candidates(raw, workload,
                                                        self.arch)
            self._repair_cache[key] = cached
        return cached

    def repair_log(self, workload):
        """The :class:`~repro.constraints.RepairLog` of one workload's
        candidate universe (``None`` when unconstrained)."""
        if self.constraints is None:
            return None
        return self._repaired_universe(workload)[1]

    def _finalize_repair(self, result: SearchResult, workload,
                         layouts: Optional[Sequence[Layout]]) -> SearchResult:
        """Attach the repair counters to a freshly computed result."""
        if self.constraints is None:
            return result
        log = self.repair_log(workload)
        n_layouts = (len(layouts) if layouts
                     else len(self.candidate_layouts(workload)))
        result.repaired = log.merged * n_layouts
        result.repair = dict(log.as_dict(),
                             universe_pairs=log.candidates * n_layouts)
        return result

    def _mapping_space(self, workload) -> Optional[MappingSpace]:
        """The structured mapping space of a flexible architecture, or
        ``None`` when the architecture's parallelism is fixed (the universe
        collapses to :meth:`_fixed_parallelism_mappings`)."""
        arch = self.arch
        if arch.fixed_parallelism is not None:
            return None

        allowed_orders = None
        if not arch.flexible_order:
            # A single canonical weight-stationary order (innermost loops do
            # not index the weights).
            if isinstance(workload, ConvLayerSpec):
                allowed_orders = (("N", "M", "C", "R", "S", "P", "Q"),)
            else:
                allowed_orders = (("M", "K", "N"),)

        return MappingSpace(
            workload=workload,
            array_rows=arch.pe_rows,
            array_cols=arch.pe_cols,
            max_parallel_dims=arch.max_parallel_dims if arch.flexible_parallelism else 1,
            allowed_parallel_dims=arch.allowed_parallel_dims,
            allowed_orders=allowed_orders,
        )

    def _canonical_tail(self, workload) -> List[Mapping]:
        """The canonical weight-stationary mapping(s) appended after the
        sampled space, so the search never misses the obvious baseline —
        but only when the architecture is allowed to parallelise those
        dimensions."""
        arch = self.arch
        canonical = self._fixed_parallelism_mappings(
            workload, rows=arch.pe_rows, cols=arch.pe_cols)
        allowed = (set(d.upper() for d in arch.allowed_parallel_dims)
                   if arch.allowed_parallel_dims else None)
        return [mapping for mapping in canonical
                if allowed is None
                or all(p.dim in allowed for p in mapping.parallel)]

    def _fixed_parallelism_mappings(self, workload, rows: Optional[int] = None,
                                    cols: Optional[int] = None) -> List[Mapping]:
        arch = self.arch
        rows = rows or arch.pe_rows
        cols = cols or arch.pe_cols
        is_conv = isinstance(workload, ConvLayerSpec)
        reduction = CONV_REDUCTION_DIMS if is_conv else GEMM_REDUCTION_DIMS
        if is_conv:
            order = ("N", "M", "C", "R", "S", "P", "Q")
        else:
            order = ("M", "K", "N")

        if arch.fixed_parallelism is not None:
            parallel = tuple(ParallelSpec(d, n) for d, n in arch.fixed_parallelism
                             if self._dim_exists(workload, d))
            tile = TileLevel.of(**{p.dim: p.degree for p in parallel})
            return [Mapping(name=f"{arch.name}_fixed", array_rows=rows, array_cols=cols,
                            parallel=parallel, tile=tile, order=order,
                            reduction_dims=reduction)]

        # Canonical MxC (or MxK) weight-stationary assignment filling the array.
        dim_a = "M"
        dim_b = "C" if is_conv else "K"
        deg_a = min(rows, self._dim_extent(workload, dim_a)) or 1
        deg_b = min(cols, self._dim_extent(workload, dim_b)) or 1
        parallel = (ParallelSpec(dim_a, max(1, deg_a)), ParallelSpec(dim_b, max(1, deg_b)))
        tile = TileLevel.of(**{p.dim: p.degree for p in parallel})
        return [Mapping(name="canonical_ws", array_rows=rows, array_cols=cols,
                        parallel=parallel, tile=tile, order=order,
                        reduction_dims=reduction)]

    def candidate_layouts(self, workload) -> List[Layout]:
        """Layouts the architecture can hold for the streaming tensor.

        A fixed-layout architecture uses the workload-appropriate member of
        its family: conv layouts name C/H/W dimensions, GEMM layouts name
        M/K (the paper's BERT chart lists MK_K32 for the fixed-layout designs).
        """
        arch = self.arch
        if arch.fixed_layout:
            layout = parse_layout(arch.fixed_layout)
            needed = ("C", "H", "W") if isinstance(workload, ConvLayerSpec) else ("M", "K")
            if any(d in layout.intra_dims or d in layout.inter_order for d in needed):
                return [layout]
            fallback = "HWC_C32" if isinstance(workload, ConvLayerSpec) else "MK_K32"
            return [parse_layout(fallback)]
        if isinstance(workload, ConvLayerSpec):
            return conv_layout_library()
        return gemm_layout_library()

    # ----------------------------------------------------------------- search
    def search(self, workload, layouts: Optional[Sequence[Layout]] = None,
               ) -> SearchResult:
        """Find the best (mapping, layout) pair under the configured metric.

        Whole results are memoized per (workload, metric, layouts) tuple;
        individual cost-model evaluations are additionally memoized in the
        (possibly shared) evaluation cache.  When pruning is on, a mapping
        whose metric lower bound cannot beat the incumbent best skips all
        of its layouts without evaluation — the outcome is identical to the
        exhaustive scan because the bound never exceeds the true value and
        ties never replace the incumbent.
        """
        key = self._result_key(workload, layouts)
        if key in self._cache:
            return self._cache[key]

        if self.policy != "exhaustive":
            # Budgeted policies live in repro.search.budget (imported lazily:
            # it builds on this module).  They memoize here like the
            # exhaustive path so repeat searches stay free.
            from repro.search.budget import evolutionary_search, halving_search

            search_fn = (halving_search if self.policy == "halving"
                         else evolutionary_search)
            result = search_fn(self, workload, layouts=layouts,
                               budget=self.budget)
            self._finalize_repair(result, workload, layouts)
            self._cache[key] = result
            return result

        if self.max_mappings == "auto":
            # Adaptive universe: seeded base sample grown where the bound
            # landscape is tight; returns exactly the uncapped exhaustive
            # winner of the full structured space.
            from repro.search.bulk import adaptive_search

            result = adaptive_search(self, workload, layouts=layouts)
            self._cache[key] = result
            return result

        layouts = list(layouts) if layouts else self.candidate_layouts(workload)
        if self.bulk:
            # Bulk control plane: one numpy pass computes every mapping's
            # admissible bound; mappings materialize lazily, so pruned
            # entries are never built at all.  Decisions, counters and
            # winners are bit-identical to the scalar loop.
            from repro.search.bulk import candidate_universe

            mappings = candidate_universe(self, workload)
        else:
            mappings = self.candidate_mappings(workload)
        # The admissible bounds are statements about the analytical cost
        # model; any other backend scans exhaustively.
        statics = (cached_bound_statics(self.cost_model, workload)
                   if self.prune and self._analytical else None)
        bounds = (mappings.bounds(self.metric, statics).tolist()
                  if self.bulk and statics is not None else None)

        best: Optional[CostReport] = None
        best_value = math.inf
        best_mapping: Optional[Mapping] = None
        best_layout: Optional[Layout] = None
        evaluated = 0
        pruned = 0
        cache_hits = 0
        for index in range(len(mappings)):
            if statics is not None and best is not None:
                bound = (bounds[index] if bounds is not None
                         else metric_lower_bound(
                             self.metric,
                             mappings[index].compute_cycles(workload),
                             statics))
                if bound >= best_value:
                    pruned += len(layouts)
                    continue
            mapping = mappings[index]
            if not self._analytical:
                scored = [(report, False) for report in
                          self.backend.evaluate_mapping(workload, mapping,
                                                        layouts)]
            elif self.vectorize:
                scored = self.evaluation_cache.evaluate_batch(
                    self.cost_model, workload, mapping, layouts)
            else:
                scored = [self.evaluation_cache.evaluate(
                    self.cost_model, workload, mapping, layout)
                    for layout in layouts]
            for layout, (report, hit) in zip(layouts, scored):
                evaluated += 1
                cache_hits += hit
                value = _metric_value(report, self.metric)
                if best is None or value < best_value:
                    best, best_mapping, best_layout = report, mapping, layout
                    best_value = value

        result = SearchResult(
            workload=getattr(workload, "name", str(workload)),
            arch=self.arch.name,
            best_report=best,
            best_mapping=best_mapping,
            best_layout=best_layout,
            evaluated=evaluated,
            metric=self.metric,
            pruned=pruned,
            cache_hits=cache_hits,
        )
        self._finalize_repair(result, workload, layouts)
        self._cache[key] = result
        return result

    def search_frontier(self, workload,
                        layouts: Optional[Sequence[Layout]] = None) -> Tuple:
        """Scan the candidate universe keeping the whole Pareto frontier.

        Returns ``(result, frontier)`` — see
        :func:`repro.search.frontier.frontier_search`.  ``result`` is
        bit-identical to :meth:`search` (same winner report, mapping and
        layout); ``frontier`` is the shape's non-dominated set over
        (EDP, latency, energy, buffer footprint), with the scalar winner a
        member by construction.  Memoized like :meth:`search`, in a
        separate cache.
        """
        from repro.search.frontier import frontier_search

        if self.max_mappings == "auto":
            raise ValueError(
                "frontier search requires an integer max_mappings "
                "(the adaptive universe is defined for the scalar winner only)")
        key = self._result_key(workload, layouts)
        cached = self._frontier_cache.get(key)
        if cached is None:
            cached = frontier_search(self, workload, layouts=layouts)
            self._finalize_repair(cached[0], workload, layouts)
            self._frontier_cache[key] = cached
        return cached

    def _result_key(self, workload,
                    layouts: Optional[Sequence[Layout]] = None) -> Tuple:
        """Memo key of a (workload, layout-restriction) search on this
        mapper's configuration.  The constraints signature is appended only
        when a set binds, so unconstrained keys are unchanged (and the
        budgeted policies' positional warm-start filter keeps working)."""
        key = (getattr(workload, "name", str(workload)),
               self._workload_signature(workload), self.metric,
               self.max_mappings, self.backend.name,
               tuple(l.name for l in layouts) if layouts else None,
               self.policy, self.budget)
        if self.constraints is not None:
            key += (self.constraints.signature(),)
        return key

    def has_result(self, workload,
                   layouts: Optional[Sequence[Layout]] = None) -> bool:
        """Whether :meth:`search` for this workload (under this layout
        restriction) would be served from the whole-result memo."""
        return self._result_key(workload, layouts) in self._cache

    def adopt_result(self, workload, result: SearchResult,
                     layouts: Optional[Sequence[Layout]] = None) -> None:
        """Seed the result-level cache with an externally computed result.

        Used by :class:`repro.search.engine.SearchEngine` (and the façade's
        request-level process offload) to bring results produced in worker
        processes (or by a sibling mapper) back into this mapper's cache,
        so later :meth:`search` calls for the same workload return
        instantly.  The result must have been computed with the same
        metric/max_mappings configuration as this mapper, under the same
        ``layouts`` restriction.
        """
        self._cache.setdefault(self._result_key(workload, layouts), result)

    # ---------------------------------------------------------------- helpers
    @staticmethod
    def _dim_exists(workload, dim: str) -> bool:
        try:
            return Mapper._dim_extent(workload, dim) > 0
        except KeyError:
            return False

    @staticmethod
    def _dim_extent(workload, dim: str) -> int:
        if isinstance(workload, ConvLayerSpec):
            try:
                return workload.dim(dim)
            except KeyError:
                return 0
        if isinstance(workload, GemmSpec):
            try:
                return workload.dim(dim)
            except KeyError:
                return 0
        raise TypeError(f"unsupported workload {type(workload)!r}")

    @staticmethod
    def _workload_signature(workload) -> Tuple:
        """Shape signature used for result-level memoization."""
        return workload_signature(workload)
