"""Execute scenario cells through the :mod:`repro.api` façade, with result
caching.

:func:`run_cell` is the unit of work: build a
:class:`~repro.api.SearchRequest` from the cell's declarative definition,
run it on a :class:`~repro.api.Session` (the module-default one unless a
session is passed), and wrap the outcome in a
:class:`~repro.scenarios.record.ScenarioRecord`.

Artifacts are **content-addressed**: every record embeds a sha256 ``key``
over the *resolved* cell definition — the workload shape signatures, the
full architecture + energy signature, the search-config identity and the
``repro`` version.  When a runs directory is given, a cell whose artifact
already exists with a matching key is skipped and the stored record is
returned (``cached=True``); editing a workload table, an architecture or
the package version changes the key and forces a re-run, so a stale
artifact can never masquerade as a fresh result.

``workers`` and ``vectorize`` deliberately stay *out* of the key: the
engine guarantees bit-identical results for any worker count and for the
vectorized vs scalar kernel, so they are execution details, not identity.
The golden regression tests pin that guarantee.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Tuple

import repro
from repro.layoutloop.cost_model import DEFAULT_ENERGY_TABLE
from repro.scenarios.record import (
    SCHEMA_VERSION,
    ScenarioRecord,
    record_from_model_cost,
)
from repro.scenarios.registry import resolve_arch, resolve_workload_set
from repro.scenarios.spec import Scenario, ScenarioMatrix, SearchConfig, slugify
from repro.search.signatures import arch_signature, workload_signature

#: Default artifact directory of the CLI (relative to the invocation cwd).
DEFAULT_RUNS_DIR = Path("runs") / "scenarios"


def cell_key(scenario: Scenario) -> str:
    """Content address of one cell's resolved definition.

    Keys on structure (shape/arch signatures), never on free-text workload
    names, and embeds the package version so results cached by an older
    cost model are re-run rather than trusted.
    """
    return _resolved_cell_key(scenario,
                              resolve_workload_set(scenario.workload_set),
                              resolve_arch(scenario.arch))


def _resolved_cell_key(scenario: Scenario, workloads: List, arch) -> str:
    """:func:`cell_key` over already-resolved workloads/architecture."""
    payload = (
        SCHEMA_VERSION,
        repro.__version__,
        tuple(workload_signature(w) for w in workloads),
        arch_signature(arch, DEFAULT_ENERGY_TABLE),
        scenario.config.identity(),
        scenario.backend,
    )
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


def artifact_path(runs_dir: Path, scenario: Scenario) -> Path:
    """Artifact location of a cell: one JSON file named after the cell.

    Slugification is lossy ("a b" and "a-b" collapse to the same stem), so
    whenever it changed the name a short hash of the exact name is
    appended — distinct cells can never overwrite each other's artifact.
    Slug-safe names (all the smoke/golden cells) keep their clean stem.
    Non-analytical backends get a ``--<backend>`` suffix so re-running the
    same cells under another backend never evicts the analytical artifacts.
    """
    stem = slugify(scenario.name)
    if stem != scenario.name:
        digest = hashlib.sha256(scenario.name.encode("utf-8")).hexdigest()
        stem = f"{stem}-{digest[:8]}"
    if scenario.backend != "analytical":
        stem = f"{stem}--{scenario.backend}"
    return Path(runs_dir) / f"{stem}.json"


@dataclass
class CellResult:
    """Outcome of :func:`run_cell`."""

    record: ScenarioRecord
    """The cell's record (freshly computed or loaded from the artifact)."""
    cached: bool
    """True when the artifact satisfied the request without a search."""
    path: Optional[Path] = None
    """Artifact location (None when running without a runs directory)."""


def run_cell(scenario: Scenario, workers: Optional[int] = None,
             vectorize: bool = True, runs_dir: Optional[Path] = None,
             force: bool = False, backend: Optional[str] = None,
             session=None) -> CellResult:
    """Run (or load) one scenario cell on its evaluation backend.

    The cell's co-search executes through the :mod:`repro.api` façade: a
    :class:`~repro.api.SearchRequest` on ``session`` (the module-default
    :func:`~repro.api.default_session` when not given).  ``workers=None``
    therefore follows the session's documented precedence — explicit
    argument > session default > ``REPRO_SEARCH_WORKERS`` > serial — the
    same resolution every other entry point gets.  The request runs with a
    private evaluation cache (``fresh_cache``) so the engine counters
    embedded in the record stay deterministic; results are bit-identical
    either way.

    ``backend`` overrides the scenario's declared backend for this run
    (the CLI's ``--backend`` flag); the override participates in the
    content key and the artifact name, so the same cell run under two
    backends produces two independent artifacts.

    With ``runs_dir`` set, a previously written artifact whose embedded key
    matches the cell's current content address is returned directly;
    ``force=True`` always re-runs.  Without ``runs_dir`` the cell is always
    computed and nothing is written.
    """
    import dataclasses

    from repro.api import SearchRequest
    from repro.api.session import default_session

    if backend is not None and backend != scenario.backend:
        scenario = dataclasses.replace(scenario, backend=backend)
    if session is None:
        session = default_session()

    workloads = resolve_workload_set(scenario.workload_set)
    arch = resolve_arch(scenario.arch)
    key = _resolved_cell_key(scenario, workloads, arch)
    path: Optional[Path] = None
    if runs_dir is not None:
        path = artifact_path(runs_dir, scenario)
        if path.exists() and not force:
            try:
                existing = ScenarioRecord.read(path)
            except (ValueError, KeyError, TypeError):
                existing = None  # corrupt/foreign artifact: recompute
            if existing is not None and existing.key == key:
                return CellResult(record=existing, cached=True, path=path)

    config = scenario.config
    start = time.perf_counter()
    response = session.run(SearchRequest(
        workloads=scenario.workload_set, arch=scenario.arch,
        model=scenario.name, metric=config.metric,
        max_mappings=config.max_mappings, seed=config.seed,
        prune=config.prune, policy=config.policy, budget=config.budget,
        frontier=config.frontier, fused=config.fused,
        backend=scenario.backend, workers=workers,
        vectorize=vectorize, fresh_cache=True))
    elapsed = time.perf_counter() - start
    record = record_from_model_cost(scenario, response.cost, key=key,
                                    repro_version=repro.__version__,
                                    workers=response.cost.search_stats.workers,
                                    vectorize=vectorize, elapsed_s=elapsed,
                                    backend=scenario.backend,
                                    crossval=response.crossval,
                                    frontiers=response.frontiers,
                                    fused=response.fused)
    if path is not None:
        path.parent.mkdir(parents=True, exist_ok=True)
        record.write(path)
    return CellResult(record=record, cached=False, path=path)


@dataclass
class MatrixRun:
    """Outcome of :func:`run_matrix`, in plan order."""

    results: List[CellResult]
    summary_csv: Optional[Path] = None
    summary_md: Optional[Path] = None
    skipped: List[Tuple[Scenario, str]] = field(default_factory=list)
    """Cells a backend override could not run (scenario, reason) — only
    populated when ``run_matrix`` is called with ``skip_incompatible``."""

    @property
    def records(self) -> List[ScenarioRecord]:
        return [r.record for r in self.results]

    @property
    def cached_count(self) -> int:
        return sum(r.cached for r in self.results)


def run_matrix(matrix: ScenarioMatrix, pattern: Optional[str] = None,
               workers: Optional[int] = None, vectorize: bool = True,
               runs_dir: Optional[Path] = None, force: bool = False,
               progress: Optional[Callable[[CellResult], None]] = None,
               backend: Optional[str] = None,
               skip_incompatible: bool = False,
               session=None) -> MatrixRun:
    """Run every (matching) cell of a matrix and emit summary artifacts.

    Cells run in plan order through one :class:`repro.api.Session`
    (``session``, defaulting to the module-default one), so worker
    resolution and backend instances are shared with every other façade
    entry point; ``progress`` (if given) is called after each cell with
    its :class:`CellResult`.  With ``runs_dir`` set, per-cell JSON records
    land there and ``summary.csv`` / ``summary.md`` are rewritten to cover
    the cells of this invocation.  ``backend`` (if given) overrides every
    cell's declared backend for this sweep; with ``skip_incompatible=True``
    cells the chosen backend declares it cannot run by design
    (:class:`~repro.errors.IncompatibleCellError`: a cell over the
    simulator's MAC bound, a non-RIR architecture) are collected in
    :attr:`MatrixRun.skipped` with their reason instead of aborting the
    sweep — genuine configuration errors still raise.
    """
    from repro.errors import IncompatibleCellError
    from repro.scenarios.artifacts import write_summary_csv, write_summary_md

    cells = matrix.filter(pattern).dedup()
    results: List[CellResult] = []
    skipped: List[Tuple[Scenario, str]] = []
    for scenario in cells:
        try:
            result = run_cell(scenario, workers=workers, vectorize=vectorize,
                              runs_dir=runs_dir, force=force, backend=backend,
                              session=session)
        except IncompatibleCellError as exc:
            if not skip_incompatible:
                raise
            skipped.append((scenario, str(exc)))
            continue
        results.append(result)
        if progress is not None:
            progress(result)
    run = MatrixRun(results=results, skipped=skipped)
    if runs_dir is not None:
        runs_dir = Path(runs_dir)
        runs_dir.mkdir(parents=True, exist_ok=True)
        run.summary_csv = write_summary_csv(runs_dir / "summary.csv", results)
        run.summary_md = write_summary_md(runs_dir / "summary.md", results)
    return run


# ------------------------------------------------------------ reproduction
def scenario_from_record(record: ScenarioRecord) -> Scenario:
    """Rebuild the declarative cell a record was produced from.

    The record's embedded config (including its RNG seed) is authoritative,
    which is what makes the single-argument ``repro.scenarios diff
    <record>`` replay and the determinism tests possible: any record can be
    replayed exactly.
    """
    return Scenario(name=record.scenario, workload_set=record.workload_set,
                    arch=record.arch,
                    config=SearchConfig.from_dict(record.config),
                    backend=record.backend)


def rerun_record(record: ScenarioRecord, workers: Optional[int] = 1,
                 vectorize: bool = True) -> ScenarioRecord:
    """Re-run a record's cell from its embedded definition (no caching)."""
    scenario = scenario_from_record(record)
    return run_cell(scenario, workers=workers, vectorize=vectorize,
                    runs_dir=None).record
