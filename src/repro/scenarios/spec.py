"""Declarative scenario specifications.

A :class:`Scenario` names one cell of the evaluation grid: a workload set,
an architecture and a search configuration, each referenced *by registry
name* (:mod:`repro.scenarios.registry`) rather than by object.  That keeps
scenarios serializable — a JSON record written by the runner carries enough
information to rebuild and re-run its cell bit-identically.

A :class:`ScenarioMatrix` is an ordered collection of scenarios with
cross-product expansion (:meth:`ScenarioMatrix.cross`), substring filtering
and name-level deduplication.  Expansion order is deterministic
(row-major over ``workload_sets x arches x configs`` in argument order), so
run plans, artifact directories and golden files are stable across runs.
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

_METRICS = ("edp", "latency", "energy")
_POLICIES = ("exhaustive", "halving", "evolutionary")


@dataclass(frozen=True)
class SearchConfig:
    """Search-engine settings of one scenario cell.

    Only fields that change the *numbers* live here (they enter the cell's
    content-address); execution knobs that are guaranteed result-neutral —
    ``workers`` and ``vectorize`` — are runner arguments instead.
    """

    name: str
    """Short label used in cell names (e.g. ``"edp-50"`` or ``"smoke"``)."""
    metric: str = "edp"
    """Objective the co-search minimises: ``edp``, ``latency`` or ``energy``."""
    max_mappings: int = 50
    """Bound on sampled mappings per layer (the pruned-random budget)."""
    seed: int = 0
    """RNG seed of the mapping sampler; embedded in every record."""
    prune: bool = True
    """Admissible lower-bound pruning (exact; off only for A/B studies)."""
    policy: str = "exhaustive"
    """Search policy (``exhaustive``/``halving``/``evolutionary``)."""
    budget: Optional[int] = None
    """Per-shape cap on scored (mapping, layout) pairs; only meaningful
    with a non-exhaustive ``policy``."""
    frontier: bool = False
    """Keep a Pareto frontier over (EDP, latency, energy, buffer footprint)
    per unique shape alongside the scalar winner (analytical + exhaustive
    cells only)."""
    fused: bool = False
    """Additionally search fused two-layer mappings over adjacent fusible
    layer pairs (analytical + exhaustive cells only)."""

    def __post_init__(self) -> None:
        if self.metric not in _METRICS:
            raise ValueError(f"metric must be one of {_METRICS}, "
                             f"got {self.metric!r}")
        if self.max_mappings < 1:
            raise ValueError(f"max_mappings must be >= 1, "
                             f"got {self.max_mappings}")
        if self.policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}, "
                             f"got {self.policy!r}")
        if self.budget is not None and self.budget < 1:
            raise ValueError(f"budget must be >= 1 (or None), "
                             f"got {self.budget}")
        if (self.frontier or self.fused) and self.policy != "exhaustive":
            raise ValueError(
                f"frontier/fused require policy='exhaustive', "
                f"got {self.policy!r}")

    def identity(self) -> Tuple:
        """The fields that determine search results (name excluded)."""
        return (self.metric, self.max_mappings, self.seed, self.prune,
                self.policy, self.budget, self.frontier, self.fused)

    def as_dict(self) -> Dict[str, object]:
        return {"name": self.name, "metric": self.metric,
                "max_mappings": self.max_mappings, "seed": self.seed,
                "prune": self.prune, "policy": self.policy,
                "budget": self.budget, "frontier": self.frontier,
                "fused": self.fused}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SearchConfig":
        budget = data.get("budget")
        return cls(name=str(data["name"]), metric=str(data["metric"]),
                   max_mappings=int(data["max_mappings"]),
                   seed=int(data["seed"]), prune=bool(data["prune"]),
                   policy=str(data.get("policy", "exhaustive")),
                   budget=None if budget is None else int(budget),
                   frontier=bool(data.get("frontier", False)),
                   fused=bool(data.get("fused", False)))


def scenario_backend_names() -> Tuple[str, ...]:
    """Backends a scenario cell may run on: every :mod:`repro.backends`
    registry name (including downstream-registered ones) plus the
    composite ``"crossval"`` mode (analytical search, then simulator
    execution of every winner with per-cell deltas)."""
    from repro.backends import backend_names

    return tuple(backend_names()) + ("crossval",)


@dataclass(frozen=True)
class Scenario:
    """One named (workload set, architecture, search config, backend) cell."""

    name: str
    """Unique human-readable cell name (doubles as the artifact stem)."""
    workload_set: str
    """Workload-set spec: a registry name, optionally sliced (``"bert[:2]"``)."""
    arch: str
    """Architecture registry name (e.g. ``"FEATHER"``, ``"Eyeriss-like"``)."""
    config: SearchConfig
    """Search settings of this cell."""
    tags: Tuple[str, ...] = ()
    """Free-form labels the CLI filter matches (e.g. ``("smoke",)``)."""
    backend: str = "analytical"
    """Evaluation backend of the cell (:func:`scenario_backend_names`); the
    CLI's ``run --backend`` overrides it for a whole sweep."""

    def __post_init__(self) -> None:
        allowed = scenario_backend_names()
        if self.backend not in allowed:
            raise ValueError(
                f"backend must be one of {allowed}, "
                f"got {self.backend!r}")

    def matches(self, pattern: Optional[str]) -> bool:
        """Case-insensitive substring match on name, tags and backend."""
        if not pattern:
            return True
        needle = pattern.lower()
        return (needle in self.name.lower()
                or needle in self.backend.lower()
                or any(needle in tag.lower() for tag in self.tags))


def default_cell_name(workload_set: str, arch: str,
                      config: SearchConfig) -> str:
    """Canonical name of a cross-product cell."""
    return f"{workload_set} @ {arch} @ {config.name}"


class ScenarioMatrix:
    """An ordered, expandable collection of scenarios.

    The matrix preserves insertion order everywhere: iteration, filtering
    and deduplication never reorder surviving cells, so a matrix expanded
    from the same inputs always produces the same run plan.
    """

    def __init__(self, name: str = "matrix",
                 scenarios: Iterable[Scenario] = ()):
        self.name = name
        self.scenarios: List[Scenario] = list(scenarios)

    # ------------------------------------------------------------ container
    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.scenarios)

    def __getitem__(self, index: int) -> Scenario:
        return self.scenarios[index]

    def names(self) -> List[str]:
        """Cell names in plan order."""
        return [s.name for s in self.scenarios]

    def get(self, name: str) -> Scenario:
        """Look one cell up by exact name."""
        for scenario in self.scenarios:
            if scenario.name == name:
                return scenario
        raise KeyError(f"no scenario named {name!r} in matrix {self.name!r}")

    # ------------------------------------------------------------ expansion
    def add(self, scenario: Scenario) -> "ScenarioMatrix":
        """Append one cell; returns ``self`` for chaining."""
        self.scenarios.append(scenario)
        return self

    def extend(self, scenarios: Iterable[Scenario]) -> "ScenarioMatrix":
        """Append several cells in the given order; returns ``self``."""
        self.scenarios.extend(scenarios)
        return self

    def cross(self, workload_sets: Sequence[str], arches: Sequence[str],
              configs: Sequence[SearchConfig], tags: Sequence[str] = (),
              backend: str = "analytical") -> "ScenarioMatrix":
        """Append the full cross product, row-major in argument order.

        Every combination is appended exactly once per call (cardinality is
        ``len(workload_sets) * len(arches) * len(configs)``); duplicates
        across calls are resolved later by :meth:`dedup`.  ``backend``
        applies to every appended cell.  Returns ``self``.
        """
        tag_tuple = tuple(tags)
        for wset in workload_sets:
            for arch in arches:
                for config in configs:
                    self.scenarios.append(Scenario(
                        name=default_cell_name(wset, arch, config),
                        workload_set=wset, arch=arch, config=config,
                        tags=tag_tuple, backend=backend))
        return self

    # ------------------------------------------------------------ refinement
    def filter(self, pattern: Optional[str]) -> "ScenarioMatrix":
        """A new matrix with the cells matching ``pattern``, order preserved."""
        return ScenarioMatrix(name=self.name,
                              scenarios=[s for s in self.scenarios
                                         if s.matches(pattern)])

    def dedup(self) -> "ScenarioMatrix":
        """A new matrix with one cell per name, in first-seen order.

        Duplicates must agree on their content: two groups may
        legitimately contribute the same cell (e.g. the fig13 and
        search-stats-table ports share their co-search cells), in which
        case their tags are unioned so both filter labels keep working.
        A name reused for *different* (workload set, arch, config) content
        raises — silently running only one of the two would report a
        sweep as complete with cells missing.
        """
        keep: Dict[str, Scenario] = {}
        order: List[str] = []
        for scenario in self.scenarios:
            existing = keep.get(scenario.name)
            if existing is None:
                keep[scenario.name] = scenario
                order.append(scenario.name)
                continue
            if (scenario.workload_set, scenario.arch, scenario.config,
                    scenario.backend) != (
                    existing.workload_set, existing.arch, existing.config,
                    existing.backend):
                raise ValueError(
                    f"scenario name {scenario.name!r} is reused for "
                    f"different cell content; rename one of the cells")
            new_tags = tuple(t for t in scenario.tags
                             if t not in existing.tags)
            if new_tags:
                keep[scenario.name] = dataclasses.replace(
                    existing, tags=existing.tags + new_tags)
        return ScenarioMatrix(name=self.name,
                              scenarios=[keep[name] for name in order])

    def merged(self, *others: "ScenarioMatrix") -> "ScenarioMatrix":
        """A new matrix concatenating this one and ``others``, deduplicated."""
        combined = ScenarioMatrix(name=self.name, scenarios=self.scenarios)
        for other in others:
            combined.scenarios = combined.scenarios + list(other.scenarios)
        return combined.dedup()


def slugify(name: str) -> str:
    """Filesystem-safe stem of a cell name (stable across platforms)."""
    slug = re.sub(r"[^A-Za-z0-9._-]+", "-", name).strip("-")
    return slug or "scenario"
