"""Structured scenario result records and their JSON round-trip.

A :class:`ScenarioRecord` is the artifact one scenario cell produces: the
whole-model totals (latency, energy, EDP, utilization, stall/reorder
shares), the per-unique-shape winners (best mapping + layout and their
costs), the engine counters, and the full provenance needed to re-run the
cell — workload-set/arch/config names, the RNG seed, the ``repro`` version
and the content-address ``key``.

Records are split into a **deterministic payload** (everything that must be
bit-identical across re-runs: compared by the golden tests and the CLI
``diff``) and **run metadata** (``workers``, ``vectorize``, ``elapsed_s``,
``repro_version``) that may legitimately differ between runs producing the
same numbers.  JSON serialization uses the stdlib ``json`` module, whose
shortest-round-trip float repr makes ``write -> read`` exact: parsed floats
compare bit-identical to the originals.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional

SCHEMA_VERSION = 4

#: Record fields excluded from the deterministic payload: they describe how
#: a run executed (or which release produced it), not what it computed.
#: ``key`` is provenance too — it hashes the package version so the result
#: cache invalidates across releases, which must not fail a golden compare
#: when the numbers themselves are unchanged.
RUN_METADATA_FIELDS = ("workers", "vectorize", "elapsed_s", "repro_version",
                       "key")


@dataclass(frozen=True)
class LayerRecord:
    """Per-unique-shape winner of one scenario cell."""

    workload: str
    """Name of the first-seen layer with this shape."""
    count: int
    """Occurrences of the shape in the workload set (weights the totals)."""
    mapping: str
    """Name of the winning dataflow mapping."""
    layout: str
    """Name of the winning streaming-tensor layout."""
    macs: int
    """MACs of one occurrence (count)."""
    compute_cycles: float
    """Ideal compute latency of one occurrence (cycles)."""
    stall_cycles: float
    """Bank-conflict stall cycles of one occurrence."""
    reorder_cycles_exposed: float
    """Reordering cycles on the critical path of one occurrence."""
    total_cycles: float
    """End-to-end latency of one occurrence (cycles)."""
    total_energy_pj: float
    """Energy of one occurrence (pJ)."""
    utilization: float
    """Steady-state MAC utilization (0..1)."""
    practical_utilization: float
    """Utilization including stall/reorder cycles (0..1)."""


@dataclass
class ScenarioRecord:
    """The JSON artifact of one executed scenario cell."""

    scenario: str
    """Cell name (matrix-unique)."""
    workload_set: str
    """Workload-set spec the cell resolved (may carry a ``[:k]`` slice)."""
    arch: str
    """Architecture registry name."""
    config: Dict[str, object]
    """The :class:`~repro.scenarios.spec.SearchConfig` as a dict."""
    seed: int
    """RNG seed of the mapping sampler — and, on simulator-backed cells, of
    the deterministic weight/iAct generation (duplicated from ``config`` so
    the reproducibility contract is visible at the top level)."""
    key: str
    """Content address: sha256 over the resolved cell definition."""
    totals: Dict[str, float]
    """Whole-model aggregates (cycles, pJ, pJ/MAC, EDP, utilization, ...)."""
    layers: List[LayerRecord]
    """Per-unique-shape winners, in first-seen order."""
    search: Dict[str, object]
    """Deterministic engine counters (evaluations, pruned, cache hits...)."""
    backend: str = "analytical"
    """Evaluation backend the cell ran on (``analytical``, ``simulator`` or
    ``crossval``); part of the deterministic payload — backends produce
    different numbers by design."""
    crossval: Optional[Dict[str, object]] = None
    """Per-cell analytical-vs-simulated deltas
    (:meth:`repro.backends.crossval.CrossValidation.as_dict`); only present
    on ``crossval``-backed cells."""
    frontiers: Optional[List[Dict[str, object]]] = None
    """Per-unique-shape Pareto frontiers
    (:meth:`repro.search.frontier.ShapeFrontier.to_dict` payloads, same
    order as ``layers``); only present on ``frontier=True`` cells.  Part of
    the deterministic payload — frontiers are golden-testable content."""
    fused: Optional[List[Dict[str, object]]] = None
    """Fused adjacent-pair results
    (:meth:`repro.layoutloop.cosearch.FusedPairResult.to_dict` payloads,
    model order); only present on ``fused=True`` cells.  Deterministic
    payload, like ``frontiers``."""
    repro_version: str = ""
    """``repro.__version__`` that produced the record."""
    workers: int = 1
    """Worker processes the run used (result-neutral)."""
    vectorize: bool = True
    """Whether the vectorized kernel ran (result-neutral)."""
    elapsed_s: float = 0.0
    """Wall-clock time of the cell (seconds)."""
    schema: int = SCHEMA_VERSION
    """Record schema version."""

    # ------------------------------------------------------------- payloads
    def to_dict(self) -> Dict[str, object]:
        """The full record as plain JSON-compatible data."""
        return asdict(self)

    def deterministic_payload(self) -> Dict[str, object]:
        """The bit-identical-across-reruns view (golden/diff comparisons).

        Drops :data:`RUN_METADATA_FIELDS` — everything left must match
        exactly when the cell is re-run with its embedded seed, regardless
        of worker count, the vectorize flag or the package version.
        """
        data = self.to_dict()
        for field_name in RUN_METADATA_FIELDS:
            data.pop(field_name)
        return data

    # ----------------------------------------------------------------- JSON
    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioRecord":
        layers = [LayerRecord(**layer) for layer in data["layers"]]
        fields = {k: v for k, v in data.items() if k != "layers"}
        return cls(layers=layers, **fields)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioRecord":
        return cls.from_dict(json.loads(text))

    def write(self, path: Path) -> None:
        """Write the record as pretty-printed JSON."""
        Path(path).write_text(self.to_json())

    @classmethod
    def read(cls, path: Path) -> "ScenarioRecord":
        return cls.from_json(Path(path).read_text())


def model_cost_layers(cost) -> List[LayerRecord]:
    """Per-unique-shape winner rows of a
    :class:`~repro.layoutloop.cosearch.ModelCost` — the shared vocabulary
    of scenario records and :class:`repro.api` search responses."""
    layers = []
    for choice in cost.layer_choices:
        result = choice.result
        report = result.best_report
        layers.append(LayerRecord(
            workload=result.workload,
            count=choice.count,
            mapping=result.best_mapping.name,
            layout=result.best_layout.name,
            macs=report.macs,
            compute_cycles=report.compute_cycles,
            stall_cycles=report.stall_cycles,
            reorder_cycles_exposed=report.reorder_cycles_exposed,
            total_cycles=report.total_cycles,
            total_energy_pj=report.total_energy_pj,
            utilization=report.utilization,
            practical_utilization=report.practical_utilization,
        ))
    return layers


def model_cost_totals(cost) -> Dict[str, float]:
    """Whole-model aggregate row of a ``ModelCost`` (shared vocabulary)."""
    return {
        "total_cycles": cost.total_cycles,
        "total_energy_pj": cost.total_energy_pj,
        "total_macs": cost.total_macs,
        "energy_per_mac_pj": cost.energy_per_mac_pj,
        "edp": cost.edp,
        "avg_utilization": cost.avg_utilization,
        "stall_fraction": cost.stall_fraction,
        "reorder_fraction": cost.reorder_fraction,
    }


def search_stats_payload(stats) -> Dict[str, object]:
    """Deterministic engine counters of a
    :class:`~repro.search.engine.SearchStats` (shared vocabulary)."""
    return {
        "backend": stats.backend,
        "policy": stats.policy,
        "budget": stats.budget,
        "layers_total": stats.layers_total,
        "layers_unique": stats.layers_unique,
        "evaluations": stats.evaluations,
        "pruned": stats.pruned,
        "repaired": stats.repaired,
        "repair": stats.repair,
        "cache_hits": stats.cache.hits,
        "cache_misses": stats.cache.misses,
    }


def record_from_model_cost(scenario, cost, key: str, repro_version: str,
                           workers: int = 1, vectorize: bool = True,
                           elapsed_s: float = 0.0,
                           backend: str = "analytical",
                           crossval: Optional[Dict[str, object]] = None,
                           frontiers: Optional[List[Dict[str, object]]] = None,
                           fused: Optional[List[Dict[str, object]]] = None,
                           ) -> ScenarioRecord:
    """Build a record from a :class:`~repro.layoutloop.cosearch.ModelCost`.

    ``backend`` names the evaluation backend that produced ``cost``;
    ``crossval`` attaches the per-cell analytical-vs-simulated deltas on
    cross-validation cells (whose ``cost``/totals are the analytical side);
    ``frontiers``/``fused`` attach the Pareto-frontier and fused-pair
    payloads of ``frontier=True``/``fused=True`` cells.
    """
    layers = model_cost_layers(cost)
    totals = model_cost_totals(cost)
    search = search_stats_payload(cost.search_stats)
    return ScenarioRecord(
        scenario=scenario.name,
        workload_set=scenario.workload_set,
        arch=scenario.arch,
        config=scenario.config.as_dict(),
        seed=scenario.config.seed,
        key=key,
        totals=totals,
        layers=layers,
        search=search,
        backend=backend,
        crossval=crossval,
        frontiers=frontiers,
        fused=fused,
        repro_version=repro_version,
        workers=workers,
        vectorize=vectorize,
        elapsed_s=elapsed_s,
    )


def diff_payloads(a: object, b: object, prefix: str = "") -> List[str]:
    """Human-readable differences between two JSON-like payloads.

    Returns an empty list when the payloads are identical (exact float
    equality — this is the golden-file comparison, not a tolerance check).
    """
    diffs: List[str] = []
    label = prefix or "<root>"
    if type(a) is not type(b) and not (isinstance(a, (int, float))
                                       and isinstance(b, (int, float))):
        diffs.append(f"{label}: type {type(a).__name__} != {type(b).__name__}")
        return diffs
    if isinstance(a, dict):
        for missing in sorted(set(a) - set(b)):
            diffs.append(f"{label}.{missing}: only in first")
        for extra in sorted(set(b) - set(a)):
            diffs.append(f"{label}.{extra}: only in second")
        for key_name in sorted(set(a) & set(b)):
            child = f"{prefix}.{key_name}" if prefix else str(key_name)
            diffs.extend(diff_payloads(a[key_name], b[key_name], child))
        return diffs
    if isinstance(a, list):
        if len(a) != len(b):
            diffs.append(f"{label}: length {len(a)} != {len(b)}")
        for index, (ai, bi) in enumerate(zip(a, b)):
            diffs.extend(diff_payloads(ai, bi, f"{prefix}[{index}]"))
        return diffs
    if a != b:
        diffs.append(f"{label}: {a!r} != {b!r}")
    return diffs
