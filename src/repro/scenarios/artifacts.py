"""Sweep-level summary artifacts (CSV + markdown) for matrix runs.

One row per cell, covering the headline numbers a sweep is usually read
for: totals, utilization, engine effort and whether the cell came from the
artifact cache.  The CSV is the machine-readable companion of the per-cell
JSON records; the markdown table is for humans (and renders directly in a
PR description or dashboard).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Sequence

#: Column order of both summary formats.
SUMMARY_COLUMNS = (
    "scenario", "workload_set", "arch", "backend", "metric", "seed",
    "layers", "unique", "total_cycles", "total_energy_pj",
    "energy_per_mac_pj", "edp", "avg_utilization",
    "evaluations", "pruned", "cached", "elapsed_s",
)


def summary_rows(results: Sequence) -> List[Dict[str, object]]:
    """One summary dict per :class:`~repro.scenarios.runner.CellResult`."""
    rows = []
    for result in results:
        record = result.record
        rows.append({
            "scenario": record.scenario,
            "workload_set": record.workload_set,
            "arch": record.arch,
            "backend": record.backend,
            "metric": record.config["metric"],
            "seed": record.seed,
            "layers": record.search["layers_total"],
            "unique": record.search["layers_unique"],
            "total_cycles": record.totals["total_cycles"],
            "total_energy_pj": record.totals["total_energy_pj"],
            "energy_per_mac_pj": record.totals["energy_per_mac_pj"],
            "edp": record.totals["edp"],
            "avg_utilization": record.totals["avg_utilization"],
            "evaluations": record.search["evaluations"],
            "pruned": record.search["pruned"],
            "cached": result.cached,
            "elapsed_s": record.elapsed_s,
        })
    return rows


def write_summary_csv(path: Path, results: Sequence) -> Path:
    """Write the summary as CSV (floats in full repr precision)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=SUMMARY_COLUMNS)
        writer.writeheader()
        for row in summary_rows(results):
            writer.writerow({col: _csv_cell(row[col])
                             for col in SUMMARY_COLUMNS})
    return path


def write_summary_md(path: Path, results: Sequence) -> Path:
    """Write the summary as a GitHub-flavoured markdown table."""
    path = Path(path)
    rows = summary_rows(results)
    lines = ["| " + " | ".join(SUMMARY_COLUMNS) + " |",
             "| " + " | ".join("---" for _ in SUMMARY_COLUMNS) + " |"]
    for row in rows:
        lines.append("| " + " | ".join(_md_cell(row[col])
                                       for col in SUMMARY_COLUMNS) + " |")
    path.write_text("\n".join(lines) + "\n")
    return path


def _csv_cell(value: object) -> object:
    if isinstance(value, bool):
        return "yes" if value else "no"
    return value


def _md_cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
