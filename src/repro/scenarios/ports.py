"""The paper's figure/table co-searches as thin scenario definitions.

Each port pairs (a) a function returning the figure's cells as a
:class:`~repro.scenarios.spec.ScenarioMatrix` with (b) a converter from the
resulting :class:`~repro.scenarios.record.ScenarioRecord` objects back to
the figure's native output structures.  The ports use the *same* workload
sets, architecture suite, metric, mapping budget and seed as the legacy
``repro.experiments`` modules, and the engine underneath is deterministic,
so a scenario re-run reproduces the legacy numbers exactly —
``tests/test_experiments_small.py`` asserts that equality so the port can
never silently drift.

Only the engine-shaped part of each figure is a scenario (a scenario *is*
a co-search cell).  Fig. 2's fixed/theory/practice policies and Fig. 10's
systolic baseline are bespoke evaluations and stay in their experiment
modules; their FEATHER co-search columns are what the ports cover.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.baselines.registry import fig13_arch_suite
from repro.experiments.fig13 import Fig13Series
from repro.scenarios.record import ScenarioRecord
from repro.scenarios.spec import (
    Scenario,
    ScenarioMatrix,
    SearchConfig,
    default_cell_name,
)


def _suite_names(gemm: bool = False) -> List[str]:
    return [arch.name for arch in fig13_arch_suite(gemm=gemm)]


def _sliced(workload_set: str, max_layers: Optional[int]) -> str:
    return f"{workload_set}[:{max_layers}]" if max_layers else workload_set


# ----------------------------------------------------------------- Fig. 2
def fig2_scenarios(max_mappings: int = 60, seed: int = 0,
                   models: Sequence[str] = ("resnet50", "mobilenet_v3"),
                   ) -> ScenarioMatrix:
    """The FEATHER co-search column of Fig. 2, one cell per model chart.

    Matches the legacy experiment's engine settings (latency objective,
    ``max_mappings=60``) over the same motivation layers.
    """
    config = SearchConfig(name=f"latency-{max_mappings}", metric="latency",
                          max_mappings=max_mappings, seed=seed)
    matrix = ScenarioMatrix(name="fig2")
    return matrix.cross([f"fig2_{model}_motivation" for model in models],
                        ["FEATHER"], [config], tags=("fig2", "figure"))


def fig2_feather_latencies(record: ScenarioRecord) -> Dict[str, float]:
    """Per-layer FEATHER latency (cycles), keyed by motivation-layer name."""
    return {layer.workload: layer.total_cycles for layer in record.layers}


# ---------------------------------------------------------------- Fig. 10
def fig10_scenario(max_mappings: int = 200, seed: int = 0) -> Scenario:
    """The FEATHER side of Fig. 10: the four skewed GEMMs on a 4x4 array."""
    config = SearchConfig(name=f"latency-{max_mappings}", metric="latency",
                          max_mappings=max_mappings, seed=seed)
    return Scenario(name=default_cell_name("fig10_gemms", "FEATHER-4x4",
                                           config),
                    workload_set="fig10_gemms", arch="FEATHER-4x4",
                    config=config, tags=("fig10", "figure"))


def fig10_feather_utilizations(record: ScenarioRecord) -> Dict[str, float]:
    """FEATHER practical utilization per Fig. 10 workload."""
    return {layer.workload: layer.practical_utilization
            for layer in record.layers}


# ---------------------------------------------------------------- Fig. 13
def fig13_scenarios(
        workload_names: Sequence[str] = ("bert", "resnet50", "mobilenet_v3"),
        max_layers: Optional[int] = None, max_mappings: int = 50,
        seed: int = 0) -> ScenarioMatrix:
    """Fig. 13's grid: each paper workload across its architecture suite.

    One cell per (workload, architecture); the BERT chart uses the
    four-design GEMM suite, the CNN charts the full nine-design suite, as
    in the paper.
    """
    config = SearchConfig(name=f"edp-{max_mappings}", metric="edp",
                          max_mappings=max_mappings, seed=seed)
    matrix = ScenarioMatrix(name="fig13")
    for name in workload_names:
        matrix.cross([_sliced(name, max_layers)],
                     _suite_names(gemm=name == "bert"), [config],
                     tags=("fig13", "figure", name))
    return matrix


def fig13_series_from_records(workload: str,
                              records: Sequence[ScenarioRecord],
                              reference: str = "FEATHER") -> Fig13Series:
    """Rebuild a :class:`Fig13Series` from one workload's cell records.

    ``records`` must be the workload's cells in suite order (as produced by
    :func:`fig13_scenarios`); normalisation mirrors the legacy
    ``fig13._series`` arithmetic operation-for-operation so the floats come
    out bit-identical.
    """
    by_arch = {record.arch: record for record in records}
    ref = by_arch[reference]
    series = Fig13Series(workload=workload, reference=reference)
    for record in records:
        totals = record.totals
        series.normalized_latency[record.arch] = (
            totals["total_cycles"] / ref.totals["total_cycles"]
            if ref.totals["total_cycles"] else 0.0)
        series.normalized_energy_per_mac[record.arch] = (
            totals["energy_per_mac_pj"] / ref.totals["energy_per_mac_pj"]
            if ref.totals["energy_per_mac_pj"] else 0.0)
        series.utilization[record.arch] = totals["avg_utilization"]
        series.stall_fraction[record.arch] = totals["stall_fraction"]
        series.reorder_fraction[record.arch] = totals["reorder_fraction"]
    return series


# ----------------------------------------------------------------- Tables
def tables_scenarios(workload_set: str = "resnet50", gemm: bool = False,
                     max_mappings: int = 50, seed: int = 0) -> ScenarioMatrix:
    """The ``search_stats_table`` sweep: one workload set across the suite."""
    config = SearchConfig(name=f"edp-{max_mappings}", metric="edp",
                          max_mappings=max_mappings, seed=seed)
    matrix = ScenarioMatrix(name="tables")
    return matrix.cross([workload_set], _suite_names(gemm=gemm), [config],
                        tags=("tables", "figure"))


def frontier_rows_from_record(record: ScenarioRecord,
                              ) -> List[Dict[str, object]]:
    """Flattened Pareto-frontier rows of a ``frontier=True`` cell record.

    One row per frontier point across every unique shape, in record order:
    the shape's workload name, the point's mapping/layout names, its four
    objective values and whether it is the shape's scalar (lexicographic)
    winner — the tabular view the frontier plots and reports consume.
    Raises ``ValueError`` on records without frontier payloads so a caller
    can't silently chart an empty table.
    """
    if record.frontiers is None:
        raise ValueError(
            f"record {record.scenario!r} carries no frontier payloads "
            "(re-run the cell with frontier=True)")
    rows: List[Dict[str, object]] = []
    for shape in record.frontiers:
        for index, point in enumerate(shape["points"]):
            rows.append({
                "workload": shape["workload"],
                "mapping": point["mapping"],
                "layout": point["layout"],
                "edp": point["edp"],
                "total_cycles": point["total_cycles"],
                "total_energy_pj": point["total_energy_pj"],
                "buffer_footprint_bytes": point["buffer_footprint_bytes"],
                "is_winner": index == shape["winner_index"],
            })
    return rows


def search_stats_rows_from_records(records: Sequence[ScenarioRecord],
                                   ) -> List[Dict[str, object]]:
    """The deterministic columns of ``tables.search_stats_table``.

    ``workers`` and ``elapsed_s`` are run metadata and deliberately absent;
    everything here must match the legacy table exactly.
    """
    rows = []
    for record in records:
        search = record.search
        lookups = search["cache_hits"] + search["cache_misses"]
        rows.append({
            "arch": record.arch,
            "unique_layers": search["layers_unique"],
            "evaluations": search["evaluations"],
            "pruned": search["pruned"],
            "cache_hit_rate": (search["cache_hits"] / lookups
                               if lookups else 0.0),
        })
    return rows
