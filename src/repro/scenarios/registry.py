"""Name registries resolving scenario specs to concrete objects.

Scenarios reference workload sets and architectures by name so they stay
serializable and so records can be re-run from their JSON alone.  This
module owns both registries, ships the built-in entries, and parses the
one piece of spec syntax: an optional ``[:k]`` slice suffix on a workload
set (``"resnet50[:4]"`` = the first four layers), which keeps small test
and smoke cells declarative instead of needing bespoke registry entries.

Downstream projects can :func:`register_workload_set` /
:func:`register_arch` their own entries; built-ins are registered at import
time with factories (never shared mutable lists).
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional, Tuple

from repro.baselines.registry import fig13_arch_suite
from repro.errors import InvalidRequestError
from repro.layoutloop.arch import ArchSpec, feather_arch
from repro.workloads.bert import bert_head_gemm_sweep, bert_unique_gemms
from repro.workloads.gemm import fig10_workloads
from repro.workloads.micro import micro_conv_layers, micro_gemm_layers
from repro.workloads.mobilenet_v3 import (
    mobilenet_v3_depthwise_layers,
    mobilenet_v3_layers,
    mobilenet_v3_pointwise_layers,
)
from repro.workloads.resnet50 import resnet50_layers, resnet50_residual_block

_WORKLOAD_SETS: Dict[str, Callable[[], List]] = {}
_ARCHES: Dict[str, Callable[[], ArchSpec]] = {}

_SLICE_RE = re.compile(r"^(?P<base>.*?)\[:(?P<stop>\d+)\]$")


# ------------------------------------------------------------- registration
def register_workload_set(name: str, factory: Callable[[], List],
                          overwrite: bool = False) -> None:
    """Register a zero-argument factory returning a list of workloads."""
    if "[" in name or "]" in name:
        raise ValueError(f"workload-set name {name!r} may not contain "
                         "brackets (reserved for the [:k] slice syntax)")
    if name in _WORKLOAD_SETS and not overwrite:
        raise ValueError(f"workload set {name!r} is already registered")
    _WORKLOAD_SETS[name] = factory


def register_arch(name: str, factory: Callable[[], ArchSpec],
                  overwrite: bool = False) -> None:
    """Register a zero-argument factory returning an :class:`ArchSpec`."""
    if name in _ARCHES and not overwrite:
        raise ValueError(f"architecture {name!r} is already registered")
    _ARCHES[name] = factory


def workload_set_names() -> List[str]:
    """Registered workload-set names, sorted."""
    return sorted(_WORKLOAD_SETS)


def arch_names() -> List[str]:
    """Registered architecture names, sorted."""
    return sorted(_ARCHES)


# --------------------------------------------------------------- resolution
def parse_workload_spec(spec: str) -> Tuple[str, Optional[int]]:
    """Split a workload-set spec into ``(registry name, slice stop)``."""
    match = _SLICE_RE.match(spec)
    if match:
        return match.group("base"), int(match.group("stop"))
    return spec, None


def resolve_workload_set(spec: str) -> List:
    """Materialize a workload-set spec into a fresh list of workloads."""
    base, stop = parse_workload_spec(spec)
    try:
        factory = _WORKLOAD_SETS[base]
    except KeyError:
        raise InvalidRequestError(
            f"unknown workload set {base!r}; registered: "
            f"{', '.join(workload_set_names())}") from None
    workloads = list(factory())
    return workloads[:stop] if stop is not None else workloads


def resolve_arch(name: str) -> ArchSpec:
    """Materialize an architecture registry name into an :class:`ArchSpec`."""
    try:
        factory = _ARCHES[name]
    except KeyError:
        raise InvalidRequestError(
            f"unknown architecture {name!r}; registered: "
            f"{', '.join(arch_names())}") from None
    return factory()


# ----------------------------------------------------------------- builtins
def _fig2_motivation(model: str) -> List:
    from repro.experiments.fig2 import motivation_workloads

    return motivation_workloads(model)


def _register_builtin_workload_sets() -> None:
    # The paper's three Fig. 13 workloads, matching ``fig13.workloads_for``.
    register_workload_set(
        "resnet50", lambda: resnet50_layers(include_fc=False))
    register_workload_set(
        "mobilenet_v3", lambda: mobilenet_v3_layers(include_fc=False))
    register_workload_set("bert", bert_unique_gemms)
    # Figure-specific sets.
    register_workload_set("fig10_gemms", fig10_workloads)
    register_workload_set("fig2_resnet50_motivation",
                          lambda: _fig2_motivation("resnet50"))
    register_workload_set("fig2_mobilenet_v3_motivation",
                          lambda: _fig2_motivation("mobilenet_v3"))
    # Scenario-diversity sets the cost model supports but no figure runs.
    register_workload_set("mobilenet_v3_depthwise",
                          mobilenet_v3_depthwise_layers)
    register_workload_set("mobilenet_v3_pointwise",
                          mobilenet_v3_pointwise_layers)
    register_workload_set("bert_head_sweep", bert_head_gemm_sweep)
    # The fused-mapping demo chain (conv2_x bottleneck 2, layers 6-8).
    register_workload_set("resnet50_residual_block", resnet50_residual_block)
    register_workload_set(
        "resnet50_batch4",
        lambda: [l.with_batch(4) for l in resnet50_layers(include_fc=False)])
    register_workload_set(
        "mobilenet_v3_batch4",
        lambda: [l.with_batch(4)
                 for l in mobilenet_v3_layers(include_fc=False)])
    # Micro sets sized for the cycle-level simulator backend (the
    # functional NEST runs every MAC in Python, so simulator/crossval
    # cells need shapes a few orders of magnitude below the paper's).
    register_workload_set("micro_convs", micro_conv_layers)
    register_workload_set("micro_gemms", micro_gemm_layers)


def _register_builtin_arches() -> None:
    # Every Table IV / Fig. 13 configuration, addressable by its arch name.
    # ArchSpec is a frozen dataclass, so the factories can safely hand out
    # the one instance built at import time.
    for spec in fig13_arch_suite():
        register_arch(spec.name, lambda s=spec: s)
    for spec in fig13_arch_suite(gemm=True):
        if spec.name not in _ARCHES:  # only SIGMA-like (MK_K32) is new
            register_arch(spec.name, lambda s=spec: s)
    # Smaller FEATHER instances for GEMM micro-scenarios (Fig. 10 scale).
    register_arch("FEATHER-4x4", lambda: feather_arch(4, 4))
    register_arch("FEATHER-8x8", lambda: feather_arch(8, 8))


_register_builtin_workload_sets()
_register_builtin_arches()
