"""Declarative scenario-matrix sweeps over the co-search engine.

The paper's evaluation is a fixed grid of hand-picked workload/architecture
pairs; this package turns that grid into data.  A
:class:`~repro.scenarios.spec.Scenario` names one (workload set,
architecture, search config) cell; a
:class:`~repro.scenarios.spec.ScenarioMatrix` expands cross products into a
deterministic run plan; :func:`~repro.scenarios.runner.run_matrix` executes
the plan through :func:`repro.search.engine.search_model` and emits
per-cell JSON records (:class:`~repro.scenarios.record.ScenarioRecord`)
plus CSV/markdown summaries, with content-addressed caching so completed
cells are never recomputed.

* ``python -m repro.scenarios list | run --filter PAT | diff A [B]`` is the
  CLI front.
* :mod:`repro.scenarios.builtin` ships the built-in matrix (smoke cells,
  the paper-figure ports, the widened coverage sweep, the golden cells).
* :mod:`repro.scenarios.ports` defines Fig. 2/10/13 and the search-stats
  table as thin scenarios; tests pin them equal to the legacy experiments.
* Every record embeds its RNG seed, the package version and a sha256
  content address, so any record can be re-run bit-identically
  (:func:`~repro.scenarios.runner.rerun_record`) on any worker count.
"""

from repro.scenarios.builtin import (
    builtin_matrix,
    coverage_matrix,
    cross_architecture_matrix,
    crossval_matrix,
    figure_matrix,
    golden_matrix,
    simulator_matrix,
    smoke_matrix,
)
from repro.scenarios.record import (
    LayerRecord,
    ScenarioRecord,
    diff_payloads,
    record_from_model_cost,
)
from repro.scenarios.registry import (
    arch_names,
    register_arch,
    register_workload_set,
    resolve_arch,
    resolve_workload_set,
    workload_set_names,
)
from repro.scenarios.runner import (
    CellResult,
    MatrixRun,
    cell_key,
    rerun_record,
    run_cell,
    run_matrix,
    scenario_from_record,
)
from repro.scenarios.spec import (
    Scenario,
    ScenarioMatrix,
    SearchConfig,
    scenario_backend_names,
    slugify,
)

__all__ = [
    "CellResult",
    "LayerRecord",
    "MatrixRun",
    "Scenario",
    "ScenarioMatrix",
    "ScenarioRecord",
    "SearchConfig",
    "arch_names",
    "builtin_matrix",
    "cell_key",
    "coverage_matrix",
    "cross_architecture_matrix",
    "crossval_matrix",
    "diff_payloads",
    "figure_matrix",
    "golden_matrix",
    "record_from_model_cost",
    "register_arch",
    "register_workload_set",
    "rerun_record",
    "resolve_arch",
    "resolve_workload_set",
    "run_cell",
    "run_matrix",
    "scenario_backend_names",
    "scenario_from_record",
    "simulator_matrix",
    "slugify",
    "smoke_matrix",
    "workload_set_names",
]
