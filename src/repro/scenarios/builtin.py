"""The built-in scenario matrix: everything the repo can run end-to-end.

Seven groups, combined (deduplicated) by :func:`builtin_matrix`:

* **smoke** — five tiny cells spanning every workload family (dense conv,
  skewed GEMM, depthwise, skewed attention heads, batched conv); the CI
  smoke sweep and the quickstart run these in seconds.
* **figures** — the paper's co-searches (Fig. 2, Fig. 10, Fig. 13, the
  search-stats table) at their legacy settings, via
  :mod:`repro.scenarios.ports`.
* **coverage** — the scenario-diversity sweep beyond the paper's grid:
  depthwise/pointwise MobileNet blocks, the skewed BERT-head GEMM sweep
  and batch-size (N>1) model variants, each on several architectures.
* **simulator** — micro-cells co-searched on the cycle-level FEATHER
  simulator backend (``backend="simulator"``).
* **crossval** — micro-cells cross-validating the analytical model
  against the simulator; their records embed per-cell
  analytical-vs-simulated cycle/utilization deltas.
* **cross-architecture** — the same workload grid searched on the
  flexible analytical FEATHER model, the rigid ``systolic`` baseline and
  the reference reduction-NoC backends (``noc:linear``/``noc:tree``), the
  Table I-style comparison as one sweep; the constrained backends repair
  every candidate to their legal universes and their records carry the
  repair-log counters.
* **golden** — pinned micro-cells (analytical, simulator, crossval,
  systolic and NoC) whose records are checked into ``tests/golden/`` and
  asserted bit-identical by ``tests/test_scenarios_golden.py``.
"""

from __future__ import annotations

from repro.scenarios.ports import (
    fig2_scenarios,
    fig10_scenario,
    fig13_scenarios,
    tables_scenarios,
)
from repro.scenarios.spec import Scenario, ScenarioMatrix, SearchConfig

_SMOKE_EDP = SearchConfig(name="smoke", metric="edp", max_mappings=8)
_SMOKE_LATENCY = SearchConfig(name="smoke-latency", metric="latency",
                              max_mappings=16)
_SWEEP_EDP = SearchConfig(name="edp-50", metric="edp", max_mappings=50)


def smoke_matrix() -> ScenarioMatrix:
    """Seconds-scale cells touching every workload family once."""
    return ScenarioMatrix(name="smoke", scenarios=[
        Scenario("smoke-resnet50", "resnet50[:2]", "FEATHER",
                 _SMOKE_EDP, tags=("smoke",)),
        Scenario("smoke-fig10-gemms", "fig10_gemms", "FEATHER-4x4",
                 _SMOKE_LATENCY, tags=("smoke",)),
        Scenario("smoke-mobilenet-depthwise", "mobilenet_v3_depthwise[:2]",
                 "FEATHER", _SMOKE_EDP, tags=("smoke",)),
        Scenario("smoke-bert-heads", "bert_head_sweep[:2]",
                 "SIGMA-like (MK_K32)", _SMOKE_EDP, tags=("smoke",)),
        Scenario("smoke-resnet50-batch4", "resnet50_batch4[:2]", "FEATHER",
                 _SMOKE_EDP, tags=("smoke", "batch")),
    ])


def figure_matrix() -> ScenarioMatrix:
    """The paper's co-searches at their legacy settings."""
    matrix = ScenarioMatrix(name="figures")
    matrix.extend(fig2_scenarios())
    matrix.add(fig10_scenario())
    matrix.extend(fig13_scenarios())
    matrix.extend(tables_scenarios())
    return matrix


def coverage_matrix() -> ScenarioMatrix:
    """Scenario-diversity sweep beyond the paper's fixed evaluation grid."""
    matrix = ScenarioMatrix(name="coverage")
    matrix.cross(["mobilenet_v3_depthwise", "mobilenet_v3_pointwise"],
                 ["FEATHER", "Eyeriss-like"], [_SWEEP_EDP],
                 tags=("coverage", "mobilenet"))
    matrix.cross(["bert_head_sweep"], ["FEATHER", "SIGMA-like (MK_K32)"],
                 [_SWEEP_EDP], tags=("coverage", "bert"))
    matrix.cross(["resnet50_batch4[:12]", "mobilenet_v3_batch4[:12]"],
                 ["FEATHER"], [_SWEEP_EDP], tags=("coverage", "batch"))
    return matrix


_SIM_EDP = SearchConfig(name="sim-edp", metric="edp", max_mappings=4)
_SIM_LATENCY = SearchConfig(name="sim-latency", metric="latency",
                            max_mappings=6)


def simulator_matrix() -> ScenarioMatrix:
    """Micro-cells co-searched on the cycle-level simulator backend."""
    return ScenarioMatrix(name="simulator", scenarios=[
        Scenario("sim-micro-convs", "micro_convs", "FEATHER-4x4",
                 _SIM_EDP, backend="simulator", tags=("simulator", "micro")),
        Scenario("sim-micro-gemms", "micro_gemms", "FEATHER-4x4",
                 _SIM_LATENCY, backend="simulator",
                 tags=("simulator", "micro")),
        Scenario("sim-fig10-gemms", "fig10_gemms", "FEATHER-4x4",
                 _SIM_LATENCY, backend="simulator",
                 tags=("simulator", "micro", "fig10")),
    ])


def crossval_matrix() -> ScenarioMatrix:
    """Analytical-vs-simulator cross-validation micro-cells.

    Each record embeds the per-cell cycle/utilization deltas and the
    simulator's independently measured read slowdown / write
    serialization — the machine-check of the RIR claim.
    """
    return ScenarioMatrix(name="crossval", scenarios=[
        Scenario("crossval-micro-convs", "micro_convs", "FEATHER-4x4",
                 _SIM_EDP, backend="crossval", tags=("crossval", "micro")),
        Scenario("crossval-micro-gemms", "micro_gemms", "FEATHER-4x4",
                 _SIM_LATENCY, backend="crossval",
                 tags=("crossval", "micro")),
    ])


#: Backends of the cross-architecture comparison sweep; ``simulator`` is
#: deliberately absent (its MAC bound rejects paper-scale layers — it has
#: its own micro-cell group above).
CROSS_ARCHITECTURE_BACKENDS = ("analytical", "systolic", "noc:linear",
                               "noc:tree")

_XARCH_EDP = SearchConfig(name="xarch-edp", metric="edp", max_mappings=30)


def cross_architecture_matrix() -> ScenarioMatrix:
    """FEATHER vs. systolic vs. reference NoCs on one workload grid.

    One cell per (workload set, backend) over the same architecture, so a
    single ``run --filter xarch`` sweep answers the paper's Table I-style
    question end-to-end: what does the flexible analytical model buy over
    a rigid weight-stationary array or an alternative reduction topology
    on identical layers?  The constrained backends search their own
    repaired-legal universes (their ConstraintSets ride on the backend),
    and every record embeds the repair-log counters.
    """
    matrix = ScenarioMatrix(name="cross-architecture")
    for backend in CROSS_ARCHITECTURE_BACKENDS:
        slug = backend.replace(":", "-")
        for wset in ("resnet50[:4]", "fig10_gemms"):
            wslug = wset.split("[")[0].replace("_", "-")
            matrix.add(Scenario(
                f"xarch-{slug}-{wslug}", wset, "FEATHER", _XARCH_EDP,
                backend=backend,
                tags=("xarch", "cross-architecture", backend)))
    return matrix


def golden_matrix() -> ScenarioMatrix:
    """The pinned micro-cells backing the golden-file regression tests.

    Changing anything here (or anything these cells execute) shows up as a
    golden diff; regenerate with
    ``pytest tests/test_scenarios_golden.py --update-golden``.
    """
    golden_edp = SearchConfig(name="golden-edp", metric="edp",
                              max_mappings=12)
    golden_latency = SearchConfig(name="golden-latency", metric="latency",
                                  max_mappings=40)
    return ScenarioMatrix(name="golden", scenarios=[
        Scenario("golden-resnet50-head", "resnet50[:2]", "FEATHER",
                 golden_edp, tags=("golden",)),
        Scenario("golden-fig10-gemms", "fig10_gemms", "FEATHER-4x4",
                 golden_latency, tags=("golden",)),
        Scenario("golden-mobilenet-depthwise", "mobilenet_v3_depthwise[:2]",
                 "Eyeriss-like", golden_edp, tags=("golden",)),
        Scenario("golden-bert-heads", "bert_head_sweep[:2]",
                 "SIGMA-like (MK_K32)", golden_edp, tags=("golden",)),
        Scenario("golden-sim-micro-convs", "micro_convs", "FEATHER-4x4",
                 SearchConfig(name="golden-sim", metric="edp",
                              max_mappings=4),
                 backend="simulator", tags=("golden", "simulator")),
        Scenario("golden-crossval-micro-gemms", "micro_gemms", "FEATHER-4x4",
                 SearchConfig(name="golden-crossval", metric="latency",
                              max_mappings=6),
                 backend="crossval", tags=("golden", "crossval")),
        Scenario("golden-frontier-residual", "resnet50_residual_block",
                 "FEATHER", SearchConfig(name="golden-frontier", metric="edp",
                                         max_mappings=12, frontier=True),
                 tags=("golden", "frontier")),
        Scenario("golden-fused-residual", "resnet50_residual_block",
                 "FEATHER", SearchConfig(name="golden-fused", metric="edp",
                                         max_mappings=12, frontier=True,
                                         fused=True),
                 tags=("golden", "frontier", "fused")),
        Scenario("golden-systolic-micro-convs", "micro_convs", "FEATHER-4x4",
                 SearchConfig(name="golden-systolic", metric="latency",
                              max_mappings=12),
                 backend="systolic", tags=("golden", "systolic")),
        Scenario("golden-noc-tree-micro-convs", "micro_convs", "FEATHER-4x4",
                 SearchConfig(name="golden-noc", metric="edp",
                              max_mappings=12),
                 backend="noc:tree", tags=("golden", "noc")),
    ])


def builtin_matrix() -> ScenarioMatrix:
    """All built-in cells (smoke + figures + coverage + simulator +
    crossval + cross-architecture + golden), deduplicated."""
    return ScenarioMatrix(name="builtin").merged(
        smoke_matrix(), figure_matrix(), coverage_matrix(),
        simulator_matrix(), crossval_matrix(), cross_architecture_matrix(),
        golden_matrix())
