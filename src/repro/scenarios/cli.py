"""``python -m repro.scenarios`` — list, run and diff scenario cells.

Subcommands:

* ``list [--filter PAT]`` — show the built-in matrix (name, workload set,
  architecture, objective, budget, tags).
* ``run [--filter PAT] [--backend NAME] [--runs-dir DIR] [--workers N]
  [--no-vectorize] [--force]`` — execute the matching cells with
  content-addressed artifact caching; re-running a completed sweep reports
  every cell as a cache hit.  ``--backend`` overrides every cell's
  evaluation backend (``analytical``, ``simulator`` or ``crossval``); by
  default each cell runs on the backend its scenario declares.
* ``diff A [B]`` — compare the deterministic payloads of two record files;
  with a single argument, re-run the record's cell from its embedded
  seed/config and compare against the stored numbers (a reproducibility
  check).  Exit status 1 when the payloads differ.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.scenarios.builtin import builtin_matrix
from repro.scenarios.record import ScenarioRecord, diff_payloads
from repro.scenarios.spec import scenario_backend_names
from repro.scenarios.runner import (
    DEFAULT_RUNS_DIR,
    CellResult,
    rerun_record,
    run_matrix,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Declarative workload x architecture x search-config "
                    "sweeps over the co-search engine.")
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="show the built-in matrix")
    list_cmd.add_argument("--filter", default=None, metavar="PAT",
                          help="substring match on cell names and tags")

    run_cmd = sub.add_parser("run", help="execute matching cells")
    run_cmd.add_argument("--filter", default=None, metavar="PAT",
                         help="substring match on cell names and tags")
    run_cmd.add_argument("--backend", default=None,
                         choices=list(scenario_backend_names()),
                         help="override every cell's evaluation backend "
                              "(default: each cell's declared backend)")
    run_cmd.add_argument("--runs-dir", type=Path, default=DEFAULT_RUNS_DIR,
                         help=f"artifact directory (default: "
                              f"{DEFAULT_RUNS_DIR})")
    run_cmd.add_argument("--workers", type=int, default=None,
                         help="worker processes per cell (default: the "
                              "REPRO_SEARCH_WORKERS environment variable, "
                              "then serial; results are bit-identical for "
                              "any count)")
    run_cmd.add_argument("--no-vectorize", action="store_true",
                         help="run the scalar reference kernel instead of "
                              "the vectorized fast path (bit-identical)")
    run_cmd.add_argument("--force", action="store_true",
                         help="recompute cells even when a fresh artifact "
                              "exists")

    diff_cmd = sub.add_parser(
        "diff", help="compare two records (or re-run one and compare)")
    diff_cmd.add_argument("first", type=Path, help="record JSON file")
    diff_cmd.add_argument("second", type=Path, nargs="?", default=None,
                          help="second record; omitted = re-run the first "
                               "record's cell with its embedded seed")
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    cells = builtin_matrix().filter(args.filter)
    if not len(cells):
        print(f"no scenarios match {args.filter!r}")
        return 1
    rows = [("name", "workload set", "arch", "backend", "metric", "budget",
             "tags")]
    for scenario in cells:
        rows.append((scenario.name, scenario.workload_set, scenario.arch,
                     scenario.backend, scenario.config.metric,
                     str(scenario.config.max_mappings),
                     ",".join(scenario.tags)))
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    for index, row in enumerate(rows):
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if index == 0:
            print("  ".join("-" * w for w in widths))
    print(f"{len(cells)} scenario(s)")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    def progress(result: CellResult) -> None:
        record = result.record
        status = "cached" if result.cached else f"{record.elapsed_s:6.2f}s"
        line = (f"[{status:>7}] {record.scenario} ({record.backend}): "
                f"{record.totals['total_cycles']:.4g} cycles, "
                f"{record.totals['energy_per_mac_pj']:.3f} pJ/MAC, "
                f"util {record.totals['avg_utilization']:.2%}")
        if record.crossval is not None:
            line += (f", sim delta <= "
                     f"{record.crossval['max_abs_cycle_delta']:.1%}")
        print(line)

    matrix = builtin_matrix()
    if not len(matrix.filter(args.filter)):
        print(f"no scenarios match {args.filter!r}")
        return 1
    try:
        # With an explicit --backend override, cells that backend cannot
        # run (paper-scale cells vs the simulator's MAC bound, non-RIR
        # architectures) are skipped with their reason instead of
        # aborting the sweep.
        run = run_matrix(matrix, pattern=args.filter, workers=args.workers,
                         vectorize=not args.no_vectorize,
                         runs_dir=args.runs_dir, force=args.force,
                         progress=progress, backend=args.backend,
                         skip_incompatible=args.backend is not None)
    except ValueError as exc:
        # A declared-backend cell failing is a configuration error: fail
        # with the reason, not a traceback.
        print(f"error: {exc}")
        return 1
    for scenario, reason in run.skipped:
        print(f"[   skip] {scenario.name}: {reason}")
    line = (f"{len(run.results)} cell(s), {run.cached_count} from cache "
            f"-> {args.runs_dir} (summary.csv, summary.md)")
    if run.skipped:
        line += f"; {len(run.skipped)} skipped by --backend {args.backend}"
    print(line)
    return 1 if not run.results else 0


def _cmd_diff(args: argparse.Namespace) -> int:
    first = ScenarioRecord.read(args.first)
    if args.second is not None:
        second = ScenarioRecord.read(args.second)
        second_label = str(args.second)
    else:
        print(f"re-running {first.scenario!r} with embedded seed "
              f"{first.seed}...")
        second = rerun_record(first)
        second_label = "re-run"
    diffs = diff_payloads(first.deterministic_payload(),
                          second.deterministic_payload())
    if not diffs:
        print(f"identical: {args.first} == {second_label} "
              f"({len(first.layers)} layer(s), "
              f"{first.totals['total_cycles']:.6g} cycles)")
        return 0
    print(f"{len(diffs)} difference(s) between {args.first} "
          f"and {second_label}:")
    for line in diffs:
        print(f"  {line}")
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {"list": _cmd_list, "run": _cmd_run, "diff": _cmd_diff}
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
