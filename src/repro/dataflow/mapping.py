"""Mapping (dataflow) specification: Tiling, Ordering, Parallelism, Shape.

The paper defines a dataflow by the four TOPS knobs (§II-A):

* **T**iling — level-1 (on-chip) tile sizes per dimension,
* **O**rdering — loop order / stationarity of the temporal loops,
* **P**arallelism — which dimensions are mapped across the PE array and by
  how much,
* **S**hape — the virtual grouping of the physical array (rows x cols).

:class:`Mapping` captures all four and provides the derived quantities the
cost model and the functional simulators need: utilization of the array,
reduction group sizes, the per-cycle iAct footprint used for concordance
analysis, and data reuse counts per tensor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import Dict, List, Optional, Sequence, Tuple

from repro.workloads.conv import ConvLayerSpec
from repro.workloads.gemm import GemmSpec
from repro.dataflow.loopnest import tile_counts


# Dimensions that carry a reduction dependence in a convolution (paper §II-A)
# and in a GEMM.  Parallelising these requires spatial reduction hardware.
CONV_REDUCTION_DIMS = frozenset({"C", "R", "S"})
GEMM_REDUCTION_DIMS = frozenset({"K"})


@dataclass(frozen=True)
class ParallelSpec:
    """Parallelism of one dimension across the array."""

    dim: str
    degree: int

    def __post_init__(self) -> None:
        if self.degree < 1:
            raise ValueError("parallel degree must be >= 1")


@dataclass(frozen=True)
class TileLevel:
    """Tile sizes of one storage level, keyed by dimension name."""

    sizes: Tuple[Tuple[str, int], ...]

    @classmethod
    def of(cls, **sizes: int) -> "TileLevel":
        return cls(tuple(sorted((k.upper(), v) for k, v in sizes.items())))

    def size(self, dim: str) -> int:
        """Tile size of one dimension (1 when untiled)."""
        return dict(self.sizes).get(dim.upper(), 1)

    def as_dict(self) -> Dict[str, int]:
        """Tile sizes as a plain ``{dim: size}`` dict."""
        return dict(self.sizes)


@dataclass(frozen=True)
class Mapping:
    """A complete dataflow for one layer on one accelerator.

    ``array_rows`` x ``array_cols`` is the *shape* (virtual grouping);
    ``parallel`` assigns dimensions to the spatial axes; ``tile`` is the
    level-1 on-chip tile; ``order`` is the temporal loop order (outermost
    first), which determines stationarity.
    """

    name: str
    array_rows: int
    array_cols: int
    parallel: Tuple[ParallelSpec, ...]
    tile: TileLevel
    order: Tuple[str, ...]
    reduction_dims: frozenset = CONV_REDUCTION_DIMS

    # ------------------------------------------------------------------ basics
    def __post_init__(self) -> None:
        if self.array_rows < 1 or self.array_cols < 1:
            raise ValueError("array shape must be positive")
        degree = self.total_parallelism
        if degree > self.array_rows * self.array_cols:
            raise ValueError(
                f"parallelism {degree} exceeds array size "
                f"{self.array_rows * self.array_cols}"
            )

    @property
    def num_pes(self) -> int:
        return self.array_rows * self.array_cols

    @property
    def total_parallelism(self) -> int:
        return math.prod(p.degree for p in self.parallel) if self.parallel else 1

    @cached_property
    def parallel_dims(self) -> Dict[str, int]:
        # Cached: ``parallel`` is frozen, and every per-dimension query in the
        # cost model and footprint kernels funnels through this dict.  The
        # cache lives in the instance ``__dict__`` (frozen dataclasses without
        # slots still have one), so field-based eq/hash are unaffected.
        out: Dict[str, int] = {}
        for p in self.parallel:
            out[p.dim] = out.get(p.dim, 1) * p.degree
        return out

    def parallel_degree(self, dim: str) -> int:
        """Spatial parallelism of one dimension (1 when not parallelised)."""
        return self.parallel_dims.get(dim.upper(), 1)

    # ------------------------------------------------------------ reductions
    @property
    def spatial_reduction_size(self) -> int:
        """Number of partial sums spatially reduced into one output per cycle.

        This is the product of the parallel degrees over reduction-carrying
        dimensions; it is the reduction-group size BIRRD has to support.
        """
        size = 1
        for p in self.parallel:
            if p.dim in self.reduction_dims:
                size *= p.degree
        return size

    @property
    def outputs_per_cycle(self) -> int:
        """Distinct outputs produced per array activation (paper §IV-B).

        FEATHER picks dataflows whose output count per cycle matches the
        number of StaB write ports so writes never conflict.
        """
        return max(1, self.total_parallelism // self.spatial_reduction_size)

    # ------------------------------------------------------------ utilization
    def spatial_utilization(self, workload) -> float:
        """Fraction of PEs doing useful work, accounting for ragged edges.

        For each parallel dimension the final tile may be partial; the
        utilization is the product over dimensions of
        ``extent / (ceil(extent/degree) * degree)`` — identical to how
        Timeloop scores imperfect factorizations — times the fraction of the
        array the mapping occupies at all.
        """
        util = self.total_parallelism / self.num_pes
        for p in self.parallel:
            extent = _workload_dim(workload, p.dim)
            if extent <= 0:
                continue
            padded = tile_counts(extent, p.degree) * p.degree
            util *= extent / padded
        return min(util, 1.0)

    def temporal_steps(self, workload) -> int:
        """Number of array activations needed to cover the whole layer."""
        dims = _workload_dims(workload)
        steps = 1
        for dim, extent in dims.items():
            degree = self.parallel_degree(dim)
            steps *= tile_counts(extent, degree) if degree > 1 else extent if dim in self._temporal_dims(dims) else tile_counts(extent, 1)
        return steps

    def _temporal_dims(self, dims: Dict[str, int]) -> Dict[str, int]:
        return {d: e for d, e in dims.items() if self.parallel_degree(d) == 1}

    def compute_cycles(self, workload) -> int:
        """Cycles of pure compute assuming no stalls.

        Every MAC takes one cycle on one PE; with ``total_parallelism`` MACs
        issued per cycle (scaled by spatial utilization for ragged edges) the
        cycle count is ``MACs / (num_pes * utilization_of_mapping)`` — but we
        compute it exactly from per-dimension padded trip counts so edge
        effects match the utilization model.
        """
        dims = _workload_dims(workload)
        cycles = 1
        for dim, extent in dims.items():
            degree = self.parallel_degree(dim)
            cycles *= tile_counts(extent, degree)
        return cycles

    # --------------------------------------------------------- stationarity
    @property
    def stationary_dims(self) -> Tuple[str, ...]:
        """Dimensions held stationary = the outermost temporal loops.

        The first third of the declared order is treated as "most stationary";
        this is only used for reporting, the cost model derives reuse directly
        from the order.
        """
        take = max(1, len(self.order) // 3)
        return self.order[:take]

    # ------------------------------------------------------------------ misc
    def with_array(self, rows: int, cols: int) -> "Mapping":
        """Copy of this mapping re-shaped onto a ``rows x cols`` array."""
        return replace(self, array_rows=rows, array_cols=cols)

    def describe(self) -> str:
        """One-line human-readable summary of the dataflow."""
        par = " ".join(f"{p.dim}x{p.degree}" for p in self.parallel) or "none"
        return (
            f"{self.name}: array {self.array_rows}x{self.array_cols}, parallel [{par}], "
            f"order {'->'.join(self.order)}"
        )


def _workload_dims(workload) -> Dict[str, int]:
    if isinstance(workload, ConvLayerSpec):
        return {
            "N": workload.n, "M": workload.m, "C": workload.c // workload.groups,
            "P": workload.p, "Q": workload.q, "R": workload.r, "S": workload.s,
        }
    if isinstance(workload, GemmSpec):
        return {"M": workload.m, "K": workload.k, "N": workload.n}
    raise TypeError(f"unsupported workload type {type(workload)!r}")


def _workload_dim(workload, dim: str) -> int:
    return _workload_dims(workload).get(dim.upper(), 1)


# --------------------------------------------------------------------------
# Convenience constructors for the dataflows the paper repeatedly references.
# --------------------------------------------------------------------------

def weight_stationary_mapping(workload, rows: int, cols: int,
                              parallel_m: Optional[int] = None,
                              parallel_c: Optional[int] = None,
                              name: str = "weight_stationary") -> Mapping:
    """NVDLA/Gemmini-style weight stationary: M across rows, C across columns."""
    dims = _workload_dims(workload)
    pm = parallel_m if parallel_m is not None else min(rows, dims.get("M", 1))
    pc = parallel_c if parallel_c is not None else min(cols, dims.get("C", dims.get("K", 1)))
    red_dim = "C" if "C" in dims else "K"
    reduction = CONV_REDUCTION_DIMS if "C" in dims else GEMM_REDUCTION_DIMS
    # Weight-stationary: the innermost temporal loops (P, Q / N) do not index
    # the weights, so the weights stay in the PE registers.
    if "C" in dims:
        order = tuple(d for d in ("N", "M", "C", "R", "S", "P", "Q") if d in dims)
    else:
        order = ("M", red_dim, "N")
    return Mapping(
        name=name,
        array_rows=rows,
        array_cols=cols,
        parallel=(ParallelSpec("M", pm), ParallelSpec(red_dim, pc)),
        tile=TileLevel.of(**{"M": pm, red_dim: pc}),
        order=order,
        reduction_dims=reduction,
    )


def output_stationary_mapping(workload, rows: int, cols: int,
                              name: str = "output_stationary") -> Mapping:
    """Output stationary: output positions across the array, reduction in time."""
    dims = _workload_dims(workload)
    if "P" in dims:
        pp = min(rows, dims["P"])
        pq = min(cols, dims["Q"])
        parallel = (ParallelSpec("P", pp), ParallelSpec("Q", pq))
        tile = TileLevel.of(P=pp, Q=pq)
        # Output-stationary: the innermost temporal loops are the reduction
        # dims, so each output accumulates in place before moving on.
        order = tuple(d for d in ("N", "M", "P", "Q", "C", "R", "S") if d in dims)
        reduction = CONV_REDUCTION_DIMS
    else:
        pm = min(rows, dims["M"])
        pn = min(cols, dims["N"])
        parallel = (ParallelSpec("M", pm), ParallelSpec("N", pn))
        tile = TileLevel.of(M=pm, N=pn)
        order = ("K", "M", "N")
        reduction = GEMM_REDUCTION_DIMS
    return Mapping(
        name=name,
        array_rows=rows,
        array_cols=cols,
        parallel=parallel,
        tile=tile,
        order=order,
        reduction_dims=reduction,
    )
