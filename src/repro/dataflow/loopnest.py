"""Loop-nest utilities: factorization and tiled loop-nest bookkeeping.

A dataflow in the paper is a transformed loop nest (Fig. 1): tile sizes per
level, an order of loops at each level, and a parallelism assignment.  This
module holds the arithmetic helpers shared by the mapping space enumeration
and the cost model: integer factorizations, ceil-division tile counts, and a
small :class:`LoopNest` object that iterates tile coordinates.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterator, List, Sequence, Tuple


@lru_cache(maxsize=4096)
def factors(n: int) -> Tuple[int, ...]:
    """All positive divisors of ``n`` in ascending order."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    small, large = [], []
    i = 1
    while i * i <= n:
        if n % i == 0:
            small.append(i)
            if i != n // i:
                large.append(n // i)
        i += 1
    return tuple(small + large[::-1])


def balanced_factor_pair(n: int) -> Tuple[int, int]:
    """The divisor pair of ``n`` closest to a square, e.g. 12 -> (3, 4)."""
    best = (1, n)
    for f in factors(n):
        other = n // f
        if abs(f - other) < abs(best[0] - best[1]):
            best = (min(f, other), max(f, other))
    return best


def factor_splits(n: int, parts: int) -> List[Tuple[int, ...]]:
    """All ordered ways to write ``n`` as a product of ``parts`` divisors.

    Used to enumerate multi-level tilings: ``factor_splits(16, 2)`` returns
    ``[(1, 16), (2, 8), (4, 4), (8, 2), (16, 1)]``.
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    if parts == 1:
        return [(n,)]
    results = []
    for f in factors(n):
        for rest in factor_splits(n // f, parts - 1):
            results.append((f,) + rest)
    return results


def tile_counts(total: int, tile: int) -> int:
    """Number of tiles of size ``tile`` needed to cover ``total`` (ceil division)."""
    if tile < 1:
        raise ValueError("tile must be >= 1")
    return math.ceil(total / tile)


def divisors_at_most(n: int, limit: int) -> Tuple[int, ...]:
    """Divisors of ``n`` that do not exceed ``limit``."""
    return tuple(f for f in factors(n) if f <= limit)


@lru_cache(maxsize=4096)
def padded_parallel_sizes(total: int, limit: int) -> Tuple[int, ...]:
    """Candidate parallelism degrees for a dimension of extent ``total``.

    Unlike :func:`divisors_at_most` this also keeps powers of two up to
    ``limit`` even when they do not divide ``total`` — real accelerators pad
    the edge tile, at a utilization cost the cost model accounts for.
    """
    cands = set(divisors_at_most(total, limit))
    p = 1
    while p <= limit:
        cands.add(min(p, limit))
        p *= 2
    cands.add(min(total, limit))
    return tuple(sorted(c for c in cands if c >= 1))


@dataclass(frozen=True)
class LoopNest:
    """A tiled loop nest over named dimensions.

    ``bounds`` are the full extents; ``tiles`` the level-1 (on-chip) tile
    sizes; ``order`` the loop order of the outer (inter-tile) loops from
    outermost to innermost.  Iterating the nest yields the base coordinate of
    each tile in execution order.
    """

    bounds: Tuple[Tuple[str, int], ...]
    tiles: Tuple[Tuple[str, int], ...]
    order: Tuple[str, ...]

    def __post_init__(self) -> None:
        bound_dims = {d for d, _ in self.bounds}
        tile_dims = {d for d, _ in self.tiles}
        if tile_dims - bound_dims:
            raise ValueError(f"tiles name unknown dimensions: {tile_dims - bound_dims}")
        if set(self.order) - bound_dims:
            raise ValueError("order names unknown dimensions")

    @property
    def bound_map(self) -> Dict[str, int]:
        return dict(self.bounds)

    @property
    def tile_map(self) -> Dict[str, int]:
        full = {d: 1 for d, _ in self.bounds}
        full.update(dict(self.tiles))
        return full

    def trip_counts(self) -> Dict[str, int]:
        """Inter-tile trip count per dimension."""
        bounds = self.bound_map
        tiles = self.tile_map
        return {d: tile_counts(bounds[d], tiles[d]) for d in bounds}

    def total_tiles(self) -> int:
        """Number of tiles the nest iterates over (product of trip counts)."""
        return math.prod(self.trip_counts().values())

    def iter_tiles(self) -> Iterator[Dict[str, int]]:
        """Yield the base coordinate of every tile, honouring ``order``.

        Dimensions absent from ``order`` are appended (outermost) in bound
        declaration order so every tile is still visited.
        """
        trips = self.trip_counts()
        tiles = self.tile_map
        ordered = [d for d, _ in self.bounds if d not in self.order] + list(self.order)
        ranges = [range(trips[d]) for d in ordered]
        for combo in itertools.product(*ranges):
            yield {d: idx * tiles[d] for d, idx in zip(ordered, combo)}

    def tile_volume(self) -> int:
        """Number of iteration points inside one full tile."""
        return math.prod(size for _, size in self.tiles) if self.tiles else 1
