"""Dataflow / mapping machinery: tiling, ordering, parallelism and shape (TOPS)."""

from repro.dataflow.mapping import (
    Mapping,
    ParallelSpec,
    TileLevel,
    output_stationary_mapping,
    weight_stationary_mapping,
)
from repro.dataflow.loopnest import (
    LoopNest,
    balanced_factor_pair,
    factor_splits,
    factors,
    tile_counts,
)
from repro.dataflow.space import MappingSpace, enumerate_parallelisms

__all__ = [
    "Mapping",
    "ParallelSpec",
    "TileLevel",
    "output_stationary_mapping",
    "weight_stationary_mapping",
    "LoopNest",
    "balanced_factor_pair",
    "factor_splits",
    "factors",
    "tile_counts",
    "MappingSpace",
    "enumerate_parallelisms",
]
