"""Mapping-space enumeration.

The full dataflow space of a convolution is astronomically large (the paper
quotes O(10^36) for a single layer), so like Timeloop's hybrid mapper we
enumerate a *structured* subspace: parallelism assignments over one or two
dimensions whose degrees divide (or pad to) the array axes, a small set of
canonical loop orders (stationarities), and tile sizes induced by the
parallelism.  The pruned-random search in :mod:`repro.layoutloop.mapper`
samples from this space.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.workloads.conv import ConvLayerSpec
from repro.workloads.gemm import GemmSpec
from repro.dataflow.loopnest import padded_parallel_sizes
from repro.dataflow.mapping import (
    CONV_REDUCTION_DIMS,
    GEMM_REDUCTION_DIMS,
    Mapping,
    ParallelSpec,
    TileLevel,
)

# Canonical loop orders (stationarities) explored for convolutions.  Each is a
# permutation of the temporal dims from outermost to innermost; the innermost
# dims are the least stationary.
_CONV_ORDERS: Tuple[Tuple[str, ...], ...] = (
    ("N", "P", "Q", "R", "S", "M", "C"),   # weight stationary flavour
    ("N", "M", "C", "R", "S", "P", "Q"),   # output stationary flavour
    ("N", "C", "M", "P", "Q", "R", "S"),   # input stationary flavour
    ("N", "R", "S", "C", "P", "Q", "M"),   # row stationary flavour
)

_GEMM_ORDERS: Tuple[Tuple[str, ...], ...] = (
    ("M", "N", "K"),
    ("K", "M", "N"),
    ("N", "K", "M"),
)

# Dimensions worth parallelising for each workload kind.
_CONV_PARALLEL_DIMS = ("M", "C", "P", "Q", "R", "S")
_GEMM_PARALLEL_DIMS = ("M", "N", "K")


@dataclass
class MappingSpace:
    """Enumerable mapping subspace for one workload on one array shape.

    ``max_parallel_dims`` bounds how many dimensions are co-parallelised
    (FEATHER and SIGMA support multi-dimensional parallelism; rigid designs
    are modelled by constraining this to the dimensions they support).
    ``allowed_parallel_dims`` restricts which dimensions may be parallel
    (e.g. NVDLA-like only parallelises M and C).
    """

    workload: object
    array_rows: int
    array_cols: int
    max_parallel_dims: int = 2
    allowed_parallel_dims: Optional[Sequence[str]] = None
    allowed_orders: Optional[Sequence[Tuple[str, ...]]] = None
    require_full_rows: bool = False

    def __post_init__(self) -> None:
        if isinstance(self.workload, ConvLayerSpec):
            self._dims = {
                "N": self.workload.n, "M": self.workload.m,
                "C": self.workload.c // self.workload.groups,
                "P": self.workload.p, "Q": self.workload.q,
                "R": self.workload.r, "S": self.workload.s,
            }
            self._parallel_dims = _CONV_PARALLEL_DIMS
            self._orders = tuple(self.allowed_orders or _CONV_ORDERS)
            self._reduction = CONV_REDUCTION_DIMS
        elif isinstance(self.workload, GemmSpec):
            self._dims = {"M": self.workload.m, "K": self.workload.k, "N": self.workload.n}
            self._parallel_dims = _GEMM_PARALLEL_DIMS
            self._orders = tuple(self.allowed_orders or _GEMM_ORDERS)
            self._reduction = GEMM_REDUCTION_DIMS
        else:
            raise TypeError(f"unsupported workload type {type(self.workload)!r}")
        if self.allowed_parallel_dims is not None:
            allowed = {d.upper() for d in self.allowed_parallel_dims}
            self._parallel_dims = tuple(d for d in self._parallel_dims if d in allowed)

    # ----------------------------------------------------------- enumeration
    @property
    def num_pes(self) -> int:
        return self.array_rows * self.array_cols

    @property
    def orders(self) -> Tuple[Tuple[str, ...], ...]:
        """The canonical loop orders this space enumerates."""
        return self._orders

    @property
    def dims(self) -> Dict[str, int]:
        """Workload dimension extents, in the space's canonical dim order."""
        return dict(self._dims)

    def parallelism_candidates(self) -> List[Tuple[ParallelSpec, ...]]:
        """Enumerate parallelism assignments onto the array.

        Memoized per (dims, candidate dims, array shape): repeated searches
        over the same layer shape — scalar-vs-vectorized comparisons, metric
        sweeps, every mapper revisiting a cached workload — skip the
        enumeration entirely.
        """
        return list(_parallelism_candidates_cached(
            tuple(sorted(self._dims.items())), self._parallel_dims,
            self.array_rows, self.array_cols, self.max_parallel_dims))

    def iter_mappings(self) -> Iterator[Mapping]:
        """Yield every mapping in the structured subspace."""
        candidates = self.parallelism_candidates()
        for index in range(len(candidates) * len(self._orders)):
            yield self._mapping_at(candidates, index)

    def _mapping_at(self, candidates: Sequence[Tuple[ParallelSpec, ...]],
                    index: int) -> Mapping:
        """Materialize the mapping at one flat index of the subspace.

        The flat order is parallelism-major (every loop order of one
        parallelism before the next parallelism), matching
        :meth:`iter_mappings`.
        """
        parallel = candidates[index // len(self._orders)]
        order = self._orders[index % len(self._orders)]
        order_present = tuple(d for d in order if d in self._dims)
        par = "_".join(f"{p.dim}{p.degree}" for p in parallel)
        name = f"df_{par}" if par else "df_serial"
        return Mapping(
            name=f"{name}_{'.'.join(order_present[:3]).lower()}",
            array_rows=self.array_rows,
            array_cols=self.array_cols,
            parallel=parallel,
            tile=TileLevel.of(**{p.dim: p.degree for p in parallel}),
            order=order_present,
            reduction_dims=self._reduction,
        )

    def sample(self, count: int, seed: int = 0, *,
               materialize: bool = False) -> List[Mapping]:
        """Pruned random sample of the space (the paper's search algorithm).

        The default streaming path samples flat *indices* and materializes
        only the ``count`` chosen mappings; ``materialize=True`` builds every
        mapping first and samples the list (the original implementation,
        kept as the timing baseline).  Both return identical mappings in
        identical order for the same seed: ``random.sample`` draws the same
        index sequence from ``range(n)`` as from any length-``n`` sequence.
        """
        if materialize:
            all_mappings = list(self.iter_mappings())
            if count >= len(all_mappings):
                return all_mappings
            rng = random.Random(seed)
            return rng.sample(all_mappings, count)
        candidates = self.parallelism_candidates()
        return [self._mapping_at(candidates, i)
                for i in self.sample_indices(count, seed)]

    def sample_indices(self, count: int, seed: int = 0) -> List[int]:
        """Flat indices of the pruned random sample, in draw order.

        This is the index sequence :meth:`sample` materializes: every index
        when ``count`` covers the space, otherwise ``random.Random(seed)``'s
        sample of ``range(size())``.  The bulk bound pipeline
        (:mod:`repro.search.bulk`) works on these indices directly so it can
        score the whole universe without building a single :class:`Mapping`.
        """
        total = self.size()
        if count >= total:
            return list(range(total))
        return random.Random(seed).sample(range(total), count)

    def mapping_at(self, index: int) -> Mapping:
        """Materialize the mapping at one flat index (parallelism-major)."""
        return self._mapping_at(self.parallelism_candidates(), index)

    def size(self) -> int:
        """Cardinality of the structured subspace (parallelisms x orders)."""
        return len(self.parallelism_candidates()) * len(self._orders)


@lru_cache(maxsize=1024)
def _parallelism_candidates_cached(dims_items: Tuple[Tuple[str, int], ...],
                                   candidate_dims: Tuple[str, ...],
                                   rows: int, cols: int, max_dims: int
                                   ) -> Tuple[Tuple[ParallelSpec, ...], ...]:
    return tuple(enumerate_parallelisms(dict(dims_items), candidate_dims,
                                        rows, cols, max_dims=max_dims))


def enumerate_parallelisms(dims: Dict[str, int], candidate_dims: Sequence[str],
                           rows: int, cols: int, max_dims: int = 2,
                           ) -> Iterable[Tuple[ParallelSpec, ...]]:
    """Enumerate ways to spread 1..max_dims dimensions over a rows x cols array.

    Single-dimension assignments use the whole array (degree up to rows*cols);
    two-dimension assignments put one dimension on rows and the other on
    columns.  Degrees are drawn from divisors / powers of two no larger than
    the axis, deduplicated.
    """
    seen = set()
    num_pes = rows * cols

    # Serial mapping (degree 1 everywhere) is always a member.
    yield tuple()

    usable = [d for d in candidate_dims if dims.get(d, 1) > 1]

    for dim in usable:
        for degree in padded_parallel_sizes(dims[dim], num_pes):
            if degree <= 1:
                continue
            key = ((dim, degree),)
            if key not in seen:
                seen.add(key)
                yield (ParallelSpec(dim, degree),)

    if max_dims < 2:
        return

    for dim_a, dim_b in itertools.combinations(usable, 2):
        for deg_a in padded_parallel_sizes(dims[dim_a], rows):
            if deg_a <= 1:
                continue
            for deg_b in padded_parallel_sizes(dims[dim_b], cols):
                if deg_b <= 1:
                    continue
                if deg_a * deg_b > num_pes:
                    continue
                key = ((dim_a, deg_a), (dim_b, deg_b))
                if key in seen:
                    continue
                seen.add(key)
                yield (ParallelSpec(dim_a, deg_a), ParallelSpec(dim_b, deg_b))
