"""Additional property-based tests: factorizations, mappings, cost model and
the functional accelerator against numpy."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dataflow.loopnest import factor_splits, factors, tile_counts
from repro.dataflow.mapping import ParallelSpec, TileLevel, Mapping
from repro.feather.accelerator import FeatherAccelerator
from repro.feather.config import FeatherConfig
from repro.layout.concordance import analyze_concordance, required_parallel_coords
from repro.layout.layout import parse_layout
from repro.workloads.conv import ConvLayerSpec


# ------------------------------------------------------------------ loop nest
@settings(max_examples=80, deadline=None)
@given(n=st.integers(min_value=1, max_value=600))
def test_factors_divide_and_cover(n):
    fs = factors(n)
    assert all(n % f == 0 for f in fs)
    assert fs[0] == 1 and fs[-1] == n
    assert list(fs) == sorted(set(fs))


@settings(max_examples=60, deadline=None)
@given(n=st.integers(min_value=1, max_value=120), parts=st.integers(min_value=1, max_value=3))
def test_factor_splits_products(n, parts):
    for combo in factor_splits(n, parts):
        prod = 1
        for f in combo:
            prod *= f
        assert prod == n
        assert len(combo) == parts


@settings(max_examples=80, deadline=None)
@given(total=st.integers(min_value=1, max_value=1000),
       tile=st.integers(min_value=1, max_value=64))
def test_tile_counts_cover_total(total, tile):
    count = tile_counts(total, tile)
    assert count * tile >= total
    assert (count - 1) * tile < total


# -------------------------------------------------------------------- mapping
@settings(max_examples=60, deadline=None)
@given(pm=st.sampled_from([1, 2, 4, 8, 16]), pc=st.sampled_from([1, 2, 4, 8, 16]),
       m=st.integers(min_value=1, max_value=64), c=st.integers(min_value=1, max_value=64))
def test_mapping_utilization_bounded_and_consistent(pm, pc, m, c):
    layer = ConvLayerSpec("prop", m=m, c=c, h=4, w=4, r=1, s=1)
    mapping = Mapping("prop", 16, 16,
                      (ParallelSpec("M", pm), ParallelSpec("C", pc)),
                      TileLevel.of(M=pm, C=pc),
                      ("N", "M", "C", "R", "S", "P", "Q"))
    util = mapping.spatial_utilization(layer)
    assert 0 < util <= 1.0
    cycles = mapping.compute_cycles(layer)
    # The padded-cycle count never undercounts the work.
    assert cycles * mapping.num_pes >= layer.macs


# --------------------------------------------------------------- concordance
@settings(max_examples=40, deadline=None)
@given(degree=st.integers(min_value=1, max_value=16))
def test_slowdown_monotone_in_parallel_degree(degree):
    """Reading more channels concurrently can never reduce the slowdown."""
    layout = parse_layout("HCW_W8")
    dims = {"C": 32, "H": 8, "W": 8}
    smaller = analyze_concordance([required_parallel_coords({"C": degree})],
                                  layout, dims, num_banks=1)
    larger = analyze_concordance([required_parallel_coords({"C": degree + 1})],
                                 layout, dims, num_banks=1)
    assert larger.avg_slowdown >= smaller.avg_slowdown - 1e-9


# ---------------------------------------------------------------- accelerator
@settings(max_examples=15, deadline=None)
@given(m=st.integers(min_value=1, max_value=12),
       k=st.integers(min_value=1, max_value=20),
       n=st.integers(min_value=1, max_value=10),
       seed=st.integers(min_value=0, max_value=2**16))
def test_feather_gemm_matches_numpy(m, k, n, seed):
    """The functional accelerator is exact for arbitrary GEMM shapes."""
    rng = np.random.default_rng(seed)
    weights = rng.integers(-6, 7, (m, k))
    iacts = rng.integers(-6, 7, (k, n))
    acc = FeatherAccelerator(FeatherConfig(array_rows=2, array_cols=4,
                                           stab_lines=256),
                             route_birrd="never")
    out, stats = acc.run_gemm(weights, iacts)
    assert np.array_equal(out, weights @ iacts)
    assert stats.macs == m * k * n


@settings(max_examples=8, deadline=None)
@given(c=st.integers(min_value=1, max_value=4),
       m=st.integers(min_value=1, max_value=6),
       hw=st.integers(min_value=3, max_value=6),
       r=st.integers(min_value=1, max_value=3),
       stride=st.integers(min_value=1, max_value=2),
       seed=st.integers(min_value=0, max_value=2**16))
def test_feather_conv_matches_numpy(c, m, hw, r, stride, seed):
    """The functional accelerator is exact for arbitrary small conv shapes."""
    from repro.feather.accelerator import reference_conv
    r = min(r, hw)
    layer = ConvLayerSpec("prop_conv", m=m, c=c, h=hw, w=hw, r=r, s=r,
                          stride=stride, padding=r // 2)
    rng = np.random.default_rng(seed)
    iacts = rng.integers(-4, 5, (c, hw, hw))
    weights = rng.integers(-3, 4, (m, c, r, r))
    acc = FeatherAccelerator(FeatherConfig(array_rows=2, array_cols=4,
                                           stab_lines=512),
                             route_birrd="never")
    out, _ = acc.run_conv(layer, iacts, weights)
    assert np.array_equal(out, reference_conv(iacts, weights, layer))
