"""Golden-file regressions: pinned scenario records must stay bit-identical.

Every cell of :func:`repro.scenarios.builtin.golden_matrix` has its
deterministic payload checked into ``tests/golden/``.  Each cell is
executed under three engine variants — serial vectorized (the default
path), serial scalar (``vectorize=False``, the reference oracle) and
``workers=2`` vectorized — and all three must match the golden file
float-for-float.  Together they pin (a) the cost model's numbers against
drift from future perf work and (b) the engine's bit-identity guarantee
across the vectorize flag and the worker count.

Regenerate after an *intended* numeric change with::

    PYTHONPATH=src python -m pytest tests/test_scenarios_golden.py --update-golden

(the update run still asserts the variants agree before pinning).
"""

import json
from pathlib import Path

import pytest

from repro.scenarios import diff_payloads, golden_matrix, run_cell, slugify

GOLDEN_DIR = Path(__file__).parent / "golden"
SCENARIOS = list(golden_matrix())
VARIANTS = [
    ("serial-vectorized", 1, True),
    ("serial-scalar", 1, False),
    ("workers2-vectorized", 2, True),
]

# Each (cell, variant) is a real engine run; share them across the
# per-variant tests instead of recomputing.
_PAYLOADS = {}


def _payload(scenario, workers, vectorize):
    key = (scenario.name, workers, vectorize)
    if key not in _PAYLOADS:
        record = run_cell(scenario, workers=workers,
                          vectorize=vectorize).record
        _PAYLOADS[key] = record.deterministic_payload()
    return _PAYLOADS[key]


def _golden_path(scenario) -> Path:
    return GOLDEN_DIR / f"{slugify(scenario.name)}.json"


@pytest.mark.parametrize("variant,workers,vectorize", VARIANTS,
                         ids=[v[0] for v in VARIANTS])
@pytest.mark.parametrize("scenario", SCENARIOS,
                         ids=[s.name for s in SCENARIOS])
def test_golden_record_bit_identical(scenario, variant, workers, vectorize,
                                     update_golden):
    payload = _payload(scenario, workers, vectorize)
    path = _golden_path(scenario)
    if update_golden:
        # Pin the canonical (serial, vectorized) payload; the comparison
        # below then asserts every variant agrees with it before it lands.
        GOLDEN_DIR.mkdir(exist_ok=True)
        canonical = _payload(scenario, 1, True)
        path.write_text(json.dumps(canonical, indent=2, sort_keys=True)
                        + "\n")
    if not path.exists():
        pytest.fail(f"golden file {path} missing; run with --update-golden")
    expected = json.loads(path.read_text())
    diffs = diff_payloads(expected, payload)
    assert not diffs, (
        f"{scenario.name} [{variant}] drifted from {path.name}:\n  "
        + "\n  ".join(diffs))


def test_golden_directory_has_no_orphans():
    """Every pinned file corresponds to a current golden cell."""
    expected = {_golden_path(s).name for s in SCENARIOS}
    actual = {p.name for p in GOLDEN_DIR.glob("*.json")}
    assert actual == expected


def test_golden_records_embed_reproducibility_metadata():
    """Pinned payloads carry the seed/config needed to re-run them — and no
    provenance that would churn on a version bump."""
    for scenario in SCENARIOS:
        data = json.loads(_golden_path(scenario).read_text())
        assert data["seed"] == scenario.config.seed
        assert data["config"]["max_mappings"] == scenario.config.max_mappings
        assert "key" not in data and "repro_version" not in data
        assert data["layers"], f"{scenario.name} pinned an empty record"
