"""Tests for the Mapping (TOPS dataflow) abstraction."""

import pytest

from repro.dataflow.mapping import (
    Mapping,
    ParallelSpec,
    TileLevel,
    output_stationary_mapping,
    weight_stationary_mapping,
)
from repro.workloads.conv import ConvLayerSpec
from repro.workloads.gemm import GemmSpec

LAYER = ConvLayerSpec("layer", m=32, c=64, h=16, w=16, r=3, s=3, stride=1, padding=1)
GEMM = GemmSpec("gemm", m=32, k=64, n=48)


def _mapping(parallel, rows=16, cols=16, order=("N", "M", "C", "R", "S", "P", "Q")):
    return Mapping(
        name="test",
        array_rows=rows,
        array_cols=cols,
        parallel=tuple(ParallelSpec(d, n) for d, n in parallel),
        tile=TileLevel.of(**{d: n for d, n in parallel}),
        order=order,
    )


class TestMappingBasics:
    def test_total_parallelism(self):
        m = _mapping([("M", 16), ("C", 16)])
        assert m.total_parallelism == 256

    def test_parallelism_cannot_exceed_array(self):
        with pytest.raises(ValueError):
            _mapping([("M", 32), ("C", 16)])

    def test_parallel_degree_lookup(self):
        m = _mapping([("M", 16), ("C", 4)])
        assert m.parallel_degree("M") == 16
        assert m.parallel_degree("Q") == 1

    def test_spatial_reduction_size(self):
        m = _mapping([("M", 16), ("C", 8)])
        assert m.spatial_reduction_size == 8

    def test_spatial_reduction_only_counts_reduction_dims(self):
        m = _mapping([("M", 16), ("Q", 8)])
        assert m.spatial_reduction_size == 1

    def test_outputs_per_cycle(self):
        m = _mapping([("M", 16), ("C", 8)])
        assert m.outputs_per_cycle == 16

    def test_invalid_array_shape(self):
        with pytest.raises(ValueError):
            Mapping("bad", 0, 4, (), TileLevel.of(), ("M",))

    def test_describe_mentions_parallelism(self):
        m = _mapping([("M", 16), ("C", 8)])
        assert "Mx16" in m.describe()


class TestUtilizationAndCycles:
    def test_full_utilization(self):
        m = _mapping([("M", 16), ("C", 16)])
        assert m.spatial_utilization(LAYER) == pytest.approx(1.0)

    def test_partial_array_utilization(self):
        m = _mapping([("M", 8), ("C", 16)])
        assert m.spatial_utilization(LAYER) == pytest.approx(0.5)

    def test_ragged_edge_utilization(self):
        layer = ConvLayerSpec("odd", m=24, c=64, h=8, w=8, r=1, s=1)
        m = _mapping([("M", 16), ("C", 16)])
        # M=24 on degree 16 pads to 32 -> 0.75 efficiency.
        assert m.spatial_utilization(layer) == pytest.approx(0.75)

    def test_compute_cycles_match_macs_at_full_util(self):
        m = _mapping([("M", 16), ("C", 16)])
        cycles = m.compute_cycles(LAYER)
        assert cycles * 256 == LAYER.macs

    def test_compute_cycles_serial(self):
        m = _mapping([])
        assert m.compute_cycles(LAYER) == LAYER.macs

    def test_gemm_cycles(self):
        m = Mapping("g", 16, 16, (ParallelSpec("M", 16), ParallelSpec("K", 16)),
                    TileLevel.of(M=16, K=16), ("M", "K", "N"),
                    reduction_dims=frozenset({"K"}))
        assert m.compute_cycles(GEMM) == (32 // 16) * (64 // 16) * 48


class TestConvenienceConstructors:
    def test_weight_stationary_conv(self):
        m = weight_stationary_mapping(LAYER, 16, 16)
        assert m.parallel_degree("M") == 16
        assert m.parallel_degree("C") == 16
        # Innermost loops must not index the weights (that is what makes the
        # weights stationary).
        assert set(m.order[-2:]) <= {"P", "Q", "N"}

    def test_weight_stationary_gemm(self):
        m = weight_stationary_mapping(GEMM, 16, 16)
        assert m.parallel_degree("K") == 16
        assert m.reduction_dims == frozenset({"K"})

    def test_output_stationary_conv(self):
        m = output_stationary_mapping(LAYER, 16, 16)
        assert m.parallel_degree("P") == 16
        assert m.parallel_degree("Q") == 16
        # Innermost loops are the reduction dims.
        assert set(m.order[-2:]) <= {"C", "R", "S"}

    def test_output_stationary_gemm(self):
        m = output_stationary_mapping(GEMM, 16, 16)
        assert m.parallel_degree("M") == 16
        assert m.parallel_degree("N") == 16

    def test_weight_stationary_small_layer_clamps(self):
        layer = ConvLayerSpec("small", m=4, c=2, h=4, w=4)
        m = weight_stationary_mapping(layer, 16, 16)
        assert m.parallel_degree("M") == 4
        assert m.parallel_degree("C") == 2

    def test_with_array(self):
        m = weight_stationary_mapping(LAYER, 16, 16).with_array(32, 32)
        assert m.array_rows == 32 and m.array_cols == 32
