"""Tests for the reference reduction networks (linear chain, ART, FAN) and area models."""

import pytest

from repro.noc.area_models import (
    art_area_power,
    birrd_area_power,
    fan_area_power,
    reduction_network_comparison,
)
from repro.noc.reference_networks import (
    AdderTree,
    ForwardingAdderNetwork,
    LinearReductionChain,
)

VALUES = [1, 2, 3, 4, 5, 6, 7, 8]


class TestLinearReductionChain:
    def test_full_reduction(self):
        chain = LinearReductionChain(8)
        out = chain.reduce(VALUES, 8)
        assert out.outputs == [36]
        assert out.adds == 7

    def test_grouped_reduction(self):
        chain = LinearReductionChain(8)
        out = chain.reduce(VALUES, 4)
        assert out.outputs == [10, 26]

    def test_linear_latency(self):
        chain = LinearReductionChain(8)
        assert chain.reduce(VALUES, 8).cycles == 8

    def test_group_must_divide(self):
        with pytest.raises(ValueError):
            LinearReductionChain(8).reduce(VALUES, 3)


class TestAdderTree:
    def test_full_reduction(self):
        tree = AdderTree(8)
        assert tree.reduce(VALUES, 8).outputs == [36]

    def test_log_depth(self):
        tree = AdderTree(8)
        assert tree.reduce(VALUES, 8).cycles == 3

    def test_grouped(self):
        tree = AdderTree(8)
        assert tree.reduce(VALUES, 2).outputs == [3, 7, 11, 15]

    def test_power_of_two_groups_only(self):
        with pytest.raises(ValueError):
            AdderTree(8).reduce(VALUES, 3)

    def test_adder_count(self):
        assert AdderTree(16).adder_count == 15


class TestForwardingAdderNetwork:
    def test_uniform_groups(self):
        fan = ForwardingAdderNetwork(8)
        assert fan.reduce(VALUES, 4).outputs == [10, 26]

    def test_arbitrary_contiguous_groups(self):
        fan = ForwardingAdderNetwork(8)
        out = fan.reduce_groups(VALUES, [0, 3, 5])
        assert out.outputs == [1 + 2 + 3, 4 + 5, 6 + 7 + 8]

    def test_log_depth_for_largest_group(self):
        fan = ForwardingAdderNetwork(8)
        assert fan.reduce_groups(VALUES, [0]).cycles == 3

    def test_bad_boundaries(self):
        fan = ForwardingAdderNetwork(8)
        with pytest.raises(ValueError):
            fan.reduce_groups(VALUES, [1, 3])
        with pytest.raises(ValueError):
            fan.reduce_groups(VALUES, [0, 3, 3])


class TestAreaModels:
    def test_birrd_bigger_than_fan_and_art_at_equal_size(self):
        # Paper §VI-D1: ~1.43x FAN and ~2.21x ART in area.
        for n in (16, 64, 256):
            birrd = birrd_area_power(n).area_um2
            fan = fan_area_power(n).area_um2
            art = art_area_power(n).area_um2
            assert 1.1 < birrd / fan < 1.9
            assert 1.7 < birrd / art < 2.9

    def test_power_relationship(self):
        for n in (64, 256):
            birrd = birrd_area_power(n).power_mw
            fan = fan_area_power(n).power_mw
            art = art_area_power(n).power_mw
            assert birrd > fan > 0
            assert birrd / art > 1.5

    def test_area_grows_with_size(self):
        areas = [birrd_area_power(n).area_um2 for n in (16, 32, 64, 128, 256)]
        assert areas == sorted(areas)
        assert areas[-1] > areas[0] * 10

    def test_switch_count_matches_topology(self):
        model = birrd_area_power(16)
        assert model.adders == 8 * 8  # 8 stages x 8 switches

    def test_comparison_table(self):
        table = reduction_network_comparison((16, 32))
        assert set(table) == {16, 32}
        assert set(table[16]) == {"ART", "FAN", "BIRRD"}

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            birrd_area_power(12)

    def test_as_dict(self):
        d = birrd_area_power(16).as_dict()
        assert d["name"] == "BIRRD"
        assert d["area_um2"] > 0
