"""Tests for the heavier experiments (Fig. 2, Fig. 12, Fig. 13) on reduced settings.

These use small layer subsets and mapping budgets so the whole file stays in
the tens of seconds; the benchmarks run the full-size versions.
"""

import pytest

from repro.experiments import fig2, fig12, fig13


class TestFig2:
    @pytest.fixture(scope="class")
    def results(self):
        return fig2.run(max_mappings=30, full_model_layers=4)

    def test_both_models_present(self, results):
        assert set(results) == {"resnet50", "mobilenet_v3"}

    def test_row_structure(self, results):
        rows = results["resnet50"]
        assert rows[-1].workload.endswith("full_model")
        assert len(rows) == 4  # three motivation layers + full model

    def test_theory_matches_feather(self, results):
        # The layout-blind best dataflow equals FEATHER's latency, because
        # FEATHER realises it without conflicts (the figure's green == red).
        for rows in results.values():
            for row in rows:
                assert row.theory_latency == pytest.approx(row.feather_latency,
                                                           rel=0.25)

    def test_practice_gap_exists(self, results):
        # The worst layout makes the theoretical dataflow substantially slower
        # (the paper's theory/practice gap).
        gaps = [row.practice_gap for rows in results.values() for row in rows]
        assert max(gaps) > 2.0

    def test_feather_beats_fixed_policy(self, results):
        for rows in results.values():
            full = rows[-1]
            assert full.feather_vs_fixed > 0.3  # >30% latency reduction

    def test_normalized_reference_is_one(self, results):
        row = results["resnet50"][0]
        assert row.normalized()["feather"] == 1.0


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12.run()

    def test_all_devices_present(self, result):
        assert set(result.per_device) == {"FEATHER", "Gemmini", "Xilinx DPU",
                                          "Edge TPU"}

    def test_per_layer_series_lengths_match(self, result):
        n = len(result.layers)
        assert all(len(v) == n for v in result.per_device.values())

    def test_feather_faster_than_every_baseline(self, result):
        for name, speedup in result.speedups().items():
            assert speedup > 1.0, f"FEATHER not faster than {name}"

    def test_gemmini_speedup_band(self, result):
        # Paper: 3.91x geomean; accept a generous band around it.
        assert 2.0 < result.geomean_speedup("Gemmini") < 6.0

    def test_edge_tpu_speedup_band(self, result):
        # Paper: 4.56x geomean.
        assert 2.0 < result.geomean_speedup("Edge TPU") < 8.0

    def test_throughput_normalised_to_unit_interval(self, result):
        for series in result.per_device.values():
            assert all(0 <= v <= 1.0 for v in series)


class TestFig13:
    @pytest.fixture(scope="class")
    def series(self):
        # Small subsets keep this fast; orderings are already visible.
        return fig13.run(workload_names=("bert", "resnet50"), max_mappings=25,
                         max_layers=10)

    def test_series_structure(self, series):
        assert set(series) == {"bert", "resnet50"}
        resnet = series["resnet50"]
        assert len(resnet.arch_names()) == 9
        assert resnet.normalized_latency["FEATHER"] == pytest.approx(1.0)
        assert resnet.normalized_energy_per_mac["FEATHER"] == pytest.approx(1.0)

    def test_feather_has_best_or_tied_energy(self, series):
        for chart in series.values():
            for name, value in chart.normalized_energy_per_mac.items():
                assert value >= 0.95, f"{name} beat FEATHER on energy in {chart.workload}"

    def test_feather_latency_at_or_near_best(self, series):
        for chart in series.values():
            best = min(chart.normalized_latency.values())
            assert chart.normalized_latency["FEATHER"] <= best * 1.15

    def test_nvdla_slower_than_feather_on_bert(self, series):
        bert = series["bert"]
        assert bert.normalized_latency["NVDLA-like"] > 1.2

    def test_feather_full_utilization_no_stalls(self, series):
        for chart in series.values():
            assert chart.stall_fraction["FEATHER"] == 0.0
            assert chart.reorder_fraction["FEATHER"] == 0.0

    def test_offchip_reorder_costs_energy(self, series):
        resnet = series["resnet50"]
        assert resnet.normalized_energy_per_mac["SIGMA-like (off-chip reorder)"] > 1.05

    def test_paper_reference_tables_cover_archs(self):
        for workload, table in fig13.PAPER_LATENCY.items():
            assert "FEATHER" in table
            assert all(v >= 1.0 for v in table.values())

    def test_unknown_workload_raises(self):
        with pytest.raises(ValueError):
            fig13.workloads_for("alexnet")
