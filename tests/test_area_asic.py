"""Tests for the full-accelerator area/power models (Fig. 14b, Table V)."""

import pytest

from repro.area.asic import (
    PAPER_TABLE_V,
    eyeriss_like_breakdown,
    feather_breakdown,
    feather_post_pnr,
    nvdla_like_breakdown,
    sigma_like_breakdown,
    table_v,
)


class TestBreakdowns:
    def test_feather_components_present(self):
        b = feather_breakdown(16, 16)
        names = {k for k, _ in b.components_um2}
        assert {"MAC", "local_mem", "Redn_NoC", "Dist_NoC", "Controller"} <= names

    def test_feather_close_to_eyeriss(self):
        # Paper: FEATHER costs only ~6% more area than a fixed-dataflow
        # Eyeriss-like design.  Allow a band around that.
        feather = feather_breakdown(16, 16).total_area_um2
        eyeriss = eyeriss_like_breakdown(256).total_area_um2
        assert 0.95 < feather / eyeriss < 1.3

    def test_sigma_much_larger_than_feather(self):
        # Paper: ~2.4x (2.93x resource reduction including the NoCs).
        sigma = sigma_like_breakdown(256).total_area_um2
        feather = feather_breakdown(16, 16).total_area_um2
        assert sigma / feather > 1.8

    def test_birrd_is_small_fraction_of_die(self):
        # Paper: BIRRD is ~4% of FEATHER's post-layout area.
        b = feather_breakdown(16, 16)
        assert b.area_fraction("Redn_NoC") < 0.10

    def test_birrd_much_smaller_than_sigma_reduction_network(self):
        # §VI-D1: one BIRRD instance for the whole 2D array saves ~94% of the
        # reduction-NoC area compared to SIGMA's full-width FAN.
        feather_redn = dict(feather_breakdown(16, 16).components_um2)["Redn_NoC"]
        sigma_redn = dict(sigma_like_breakdown(256).components_um2)["Redn_NoC"]
        assert feather_redn / sigma_redn < 0.25

    def test_nvdla_breakdown(self):
        b = nvdla_like_breakdown(256)
        assert b.total_area_um2 > 0
        assert b.total_power_mw > 0

    def test_as_dict(self):
        d = feather_breakdown(8, 8).as_dict()
        assert "total_area_um2" in d and d["total_area_um2"] > 0

    def test_power_positive_and_scales(self):
        small = feather_breakdown(8, 8).total_power_mw
        big = feather_breakdown(32, 32).total_power_mw
        assert big > small * 4


class TestTableV:
    def test_all_paper_shapes_present(self):
        rows = table_v()
        shapes = {r["shape"] for r in rows}
        assert shapes == {f"{r}x{c}" for r, c in PAPER_TABLE_V}

    def test_area_monotonic_in_pe_count(self):
        rows = {r["shape"]: r["model_area_um2"] for r in table_v()}
        assert rows["4x4"] < rows["8x8"] < rows["16x16"] < rows["32x32"] < rows["64x64"]

    def test_model_within_order_of_magnitude_of_paper(self):
        for row in table_v():
            if "paper_area_um2" in row:
                ratio = row["model_area_um2"] / row["paper_area_um2"]
                assert 0.1 < ratio < 10.0, f"{row['shape']} model diverges"

    def test_frequency_reported_as_1ghz(self):
        assert all(r["frequency_ghz"] == 1.0 for r in table_v())

    def test_single_shape_entry(self):
        entry = feather_post_pnr(16, 16)
        assert entry["shape"] == "16x16"
        assert entry["paper_area_um2"] == pytest.approx(475897.19)

    def test_unknown_shape_has_no_paper_column(self):
        entry = feather_post_pnr(8, 16)
        assert "paper_area_um2" not in entry
