"""Unit tests for the convolution workload specification."""

import math

import pytest

from repro.workloads.conv import ConvLayerSpec, LayerKind


class TestConvLayerSpec:
    def test_output_dims_basic(self):
        layer = ConvLayerSpec("l", m=8, c=4, h=8, w=8, r=3, s=3, stride=1, padding=1)
        assert layer.p == 8
        assert layer.q == 8

    def test_output_dims_stride(self):
        layer = ConvLayerSpec("l", m=8, c=4, h=8, w=8, r=3, s=3, stride=2, padding=1)
        assert layer.p == 4
        assert layer.q == 4

    def test_output_dims_no_padding(self):
        layer = ConvLayerSpec("l", m=1, c=1, h=8, w=8, r=3, s=3)
        assert layer.p == 6
        assert layer.q == 6

    def test_resnet_conv1_shape(self):
        layer = ConvLayerSpec("conv1", m=64, c=3, h=224, w=224, r=7, s=7, stride=2,
                              padding=3)
        assert layer.p == 112
        assert layer.q == 112

    def test_macs(self):
        layer = ConvLayerSpec("l", m=2, c=3, h=5, w=5, r=3, s=3, stride=1, padding=1)
        assert layer.macs == 2 * 3 * 5 * 5 * 3 * 3

    def test_tensor_elem_counts(self):
        layer = ConvLayerSpec("l", m=2, c=3, h=5, w=5, r=3, s=3, stride=1, padding=1)
        assert layer.iact_elems == 3 * 5 * 5
        assert layer.weight_elems == 2 * 3 * 3 * 3
        assert layer.oact_elems == 2 * 5 * 5

    def test_dim_lookup(self):
        layer = ConvLayerSpec("l", m=2, c=3, h=5, w=7, r=3, s=1)
        assert layer.dim("M") == 2
        assert layer.dim("c") == 3
        assert layer.dim("W") == 7
        assert layer.dim("Q") == layer.q

    def test_dim_lookup_unknown_raises(self):
        layer = ConvLayerSpec("l", m=2, c=3, h=5, w=5)
        with pytest.raises(KeyError):
            layer.dim("Z")

    def test_dims_returns_all(self):
        layer = ConvLayerSpec("l", m=2, c=3, h=5, w=5)
        dims = layer.dims()
        assert set(dims) == {"N", "M", "C", "H", "W", "P", "Q", "R", "S"}

    def test_invalid_dimension_raises(self):
        with pytest.raises(ValueError):
            ConvLayerSpec("l", m=0, c=3, h=5, w=5)

    def test_negative_padding_raises(self):
        with pytest.raises(ValueError):
            ConvLayerSpec("l", m=1, c=1, h=5, w=5, padding=-1)

    def test_depthwise_groups_default_to_channels(self):
        layer = ConvLayerSpec("dw", m=16, c=16, h=8, w=8, r=3, s=3, padding=1,
                              kind=LayerKind.DEPTHWISE)
        assert layer.groups == 16
        assert layer.is_depthwise()

    def test_depthwise_macs_exclude_cross_channel(self):
        dw = ConvLayerSpec("dw", m=16, c=16, h=8, w=8, r=3, s=3, padding=1,
                           kind=LayerKind.DEPTHWISE)
        full = ConvLayerSpec("full", m=16, c=16, h=8, w=8, r=3, s=3, padding=1)
        assert dw.macs * 16 == full.macs

    def test_groups_must_divide(self):
        with pytest.raises(ValueError):
            ConvLayerSpec("g", m=6, c=4, h=5, w=5, groups=3)

    def test_as_gemm_shape(self):
        layer = ConvLayerSpec("l", m=8, c=4, h=6, w=6, r=3, s=3, stride=1, padding=1)
        m, k, n = layer.as_gemm_shape()
        assert m == 8
        assert k == 4 * 3 * 3
        assert n == layer.p * layer.q

    def test_gemm_shape_macs_consistent(self):
        layer = ConvLayerSpec("l", m=8, c=4, h=6, w=6, r=3, s=3, stride=1, padding=1)
        m, k, n = layer.as_gemm_shape()
        assert m * k * n == layer.macs

    def test_arithmetic_intensity_positive(self):
        layer = ConvLayerSpec("l", m=8, c=4, h=6, w=6, r=3, s=3)
        assert layer.arithmetic_intensity > 0

    def test_scaled_preserves_spatial(self):
        layer = ConvLayerSpec("l", m=8, c=4, h=6, w=6, r=3, s=3)
        scaled = layer.scaled(2.0)
        assert scaled.m == 16 and scaled.c == 8
        assert scaled.h == layer.h and scaled.r == layer.r

    def test_frozen(self):
        layer = ConvLayerSpec("l", m=8, c=4, h=6, w=6)
        with pytest.raises(Exception):
            layer.m = 16

    def test_str_contains_name(self):
        layer = ConvLayerSpec("my_layer", m=8, c=4, h=6, w=6)
        assert "my_layer" in str(layer)
