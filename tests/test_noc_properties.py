"""Property-based tests (hypothesis) for BIRRD routing and the layout addressing."""

import math

from hypothesis import given, settings, strategies as st

from repro.layout.layout import IntraLineDim, Layout
from repro.noc.birrd import BirrdNetwork, BirrdTopology, reverse_bits
from repro.noc.routing import BirrdRouter, ReductionRequest


# --------------------------------------------------------------------------- BIRRD
@settings(max_examples=60, deadline=None)
@given(value=st.integers(min_value=0, max_value=255),
       width=st.integers(min_value=0, max_value=8))
def test_reverse_bits_is_involution(value, width):
    assert reverse_bits(reverse_bits(value, width), width) == value


@settings(max_examples=30, deadline=None)
@given(aw_exp=st.integers(min_value=1, max_value=5))
def test_topology_wiring_is_permutation(aw_exp):
    topo = BirrdTopology(2 ** aw_exp)
    for stage in range(topo.num_stages):
        dests = [topo.inter_stage_dest(stage, p) for p in range(topo.aw)]
        assert sorted(dests) == list(range(topo.aw))


@settings(max_examples=20, deadline=None)
@given(perm=st.permutations(list(range(8))))
def test_unicast_permutations_route_on_aw8(perm):
    """Rearrangeable non-blocking for unicast: random permutations must route."""
    router = BirrdRouter(8, node_budget=200_000)
    mapping = {src: dst for src, dst in enumerate(perm)}
    result = router.route_permutation(mapping)
    assert result.routed
    # Numerically verify the permutation.
    net = BirrdNetwork(8)
    outputs = net.evaluate([100 + i for i in range(8)], result.configs)
    for src, dst in mapping.items():
        assert outputs[dst] == 100 + src


@settings(max_examples=12, deadline=None)
@given(data=st.data())
def test_random_reduction_groups_route_on_aw8(data):
    """Random disjoint reduction groups with random destinations route and sum correctly."""
    aw = 8
    inputs = list(range(aw))
    # Partition the inputs into contiguous groups of random sizes.
    sizes = []
    remaining = aw
    while remaining:
        size = data.draw(st.integers(min_value=1, max_value=remaining))
        sizes.append(size)
        remaining -= size
    destinations = data.draw(st.permutations(list(range(aw))))
    requests = []
    start = 0
    for idx, size in enumerate(sizes):
        requests.append(ReductionRequest(destinations[idx], tuple(inputs[start:start + size])))
        start += size

    router = BirrdRouter(aw, node_budget=300_000)
    result = router.route(requests)
    assert result.routed
    net = BirrdNetwork(aw)
    values = [(i + 1) * 7 for i in range(aw)]
    outputs = net.evaluate(values, result.configs)
    for req in requests:
        assert outputs[req.output_port] == sum(values[i] for i in req.inputs)


# --------------------------------------------------------------------------- layout
_DIM_NAMES = ("C", "H", "W")


@st.composite
def _layouts_and_dims(draw):
    intra_dims = draw(st.permutations(list(_DIM_NAMES)))
    intra = tuple(IntraLineDim(d, draw(st.sampled_from([1, 2, 4])))
                  for d in intra_dims[:draw(st.integers(1, 3))])
    inter = tuple(draw(st.permutations(list(_DIM_NAMES))))
    dims = {d: draw(st.sampled_from([2, 4, 8])) for d in _DIM_NAMES}
    return Layout(inter, intra), dims


@settings(max_examples=60, deadline=None)
@given(layout_dims=_layouts_and_dims())
def test_layout_addressing_is_injective(layout_dims):
    """No two tensor elements may share a (line, offset) slot."""
    layout, dims = layout_dims
    seen = set()
    for c in range(dims["C"]):
        for h in range(dims["H"]):
            for w in range(dims["W"]):
                addr = layout.address({"C": c, "H": h, "W": w}, dims)
                assert addr not in seen
                seen.add(addr)


@settings(max_examples=60, deadline=None)
@given(layout_dims=_layouts_and_dims())
def test_layout_addresses_stay_in_bounds(layout_dims):
    layout, dims = layout_dims
    num_lines = layout.num_lines(dims)
    for c in range(dims["C"]):
        for h in range(dims["H"]):
            for w in range(dims["W"]):
                line, offset = layout.address({"C": c, "H": h, "W": w}, dims)
                assert 0 <= line < num_lines
                assert 0 <= offset < layout.line_size
