"""Property-based tests (hypothesis) for BIRRD routing and the layout addressing."""

import math

from hypothesis import given, settings, strategies as st

from repro.layout.layout import IntraLineDim, Layout
from repro.noc.birrd import BirrdNetwork, BirrdTopology, reverse_bits
from repro.noc.routing import BirrdRouter, ReductionRequest


# --------------------------------------------------------------------------- BIRRD
@settings(max_examples=60, deadline=None)
@given(value=st.integers(min_value=0, max_value=255),
       width=st.integers(min_value=0, max_value=8))
def test_reverse_bits_is_involution(value, width):
    assert reverse_bits(reverse_bits(value, width), width) == value


@settings(max_examples=30, deadline=None)
@given(aw_exp=st.integers(min_value=1, max_value=5))
def test_topology_wiring_is_permutation(aw_exp):
    topo = BirrdTopology(2 ** aw_exp)
    for stage in range(topo.num_stages):
        dests = [topo.inter_stage_dest(stage, p) for p in range(topo.aw)]
        assert sorted(dests) == list(range(topo.aw))


@settings(max_examples=20, deadline=None)
@given(perm=st.permutations(list(range(8))))
def test_unicast_permutations_route_on_aw8(perm):
    """Rearrangeable non-blocking for unicast: random permutations must route."""
    router = BirrdRouter(8, node_budget=200_000)
    mapping = {src: dst for src, dst in enumerate(perm)}
    result = router.route_permutation(mapping)
    assert result.routed
    # Numerically verify the permutation.
    net = BirrdNetwork(8)
    outputs = net.evaluate([100 + i for i in range(8)], result.configs)
    for src, dst in mapping.items():
        assert outputs[dst] == 100 + src


@settings(max_examples=8, deadline=None)
@given(data=st.data())
def test_random_reduction_groups_route_on_aw8(data):
    """Uniform contiguous reduction groups route to any destinations and sum
    correctly.

    Uniform group sizes dividing AW are what the accelerator actually issues
    (``FeatherAccelerator._choose_col_k`` picks ``col_k`` dividing the array
    width); exhaustive sweeps confirm every destination assignment routes for
    sizes 2/4/8.  *Mixed*-size partitions are NOT guaranteed — see
    ``test_mixed_reduction_groups_can_be_unroutable_on_aw8``.
    """
    aw = 8
    size = data.draw(st.sampled_from([1, 2, 4, 8]))
    num_groups = aw // size
    destinations = data.draw(st.permutations(list(range(aw))))[:num_groups]
    requests = [
        ReductionRequest(destinations[g],
                         tuple(range(g * size, (g + 1) * size)))
        for g in range(num_groups)
    ]

    router = BirrdRouter(aw, node_budget=300_000)
    result = router.route(requests)
    assert result.routed
    net = BirrdNetwork(aw)
    values = [(i + 1) * 7 for i in range(aw)]
    outputs = net.evaluate(values, result.configs)
    for req in requests:
        assert outputs[req.output_port] == sum(values[i] for i in req.inputs)


def test_mixed_reduction_groups_can_be_unroutable_on_aw8():
    """The router reports unroutable mixed-size patterns soundly.

    BIRRD is not rearrangeable non-blocking for arbitrary mixed-size
    reduction groups: for the pattern below an exhaustive search of the
    full reachable configuration space (~60k states, well under the node
    budget) finds no routing.  The contract is that ``route`` returns
    ``routed=False`` with no configs — never an exception or a wrong sum.
    A small budget keeps this fast; it does not change the outcome.
    """
    requests = [
        ReductionRequest(3, (0,)),
        ReductionRequest(0, (1, 2, 3, 4)),
        ReductionRequest(2, (5,)),
        ReductionRequest(1, (6, 7)),
    ]
    result = BirrdRouter(8, node_budget=5_000, restarts=1).route(requests)
    assert not result.routed
    assert result.configs is None
    assert result.nodes_explored > 0


# --------------------------------------------------------------------------- layout
_DIM_NAMES = ("C", "H", "W")


@st.composite
def _layouts_and_dims(draw):
    intra_dims = draw(st.permutations(list(_DIM_NAMES)))
    intra = tuple(IntraLineDim(d, draw(st.sampled_from([1, 2, 4])))
                  for d in intra_dims[:draw(st.integers(1, 3))])
    inter = tuple(draw(st.permutations(list(_DIM_NAMES))))
    dims = {d: draw(st.sampled_from([2, 4, 8])) for d in _DIM_NAMES}
    return Layout(inter, intra), dims


@settings(max_examples=60, deadline=None)
@given(layout_dims=_layouts_and_dims())
def test_layout_addressing_is_injective(layout_dims):
    """No two tensor elements may share a (line, offset) slot."""
    layout, dims = layout_dims
    seen = set()
    for c in range(dims["C"]):
        for h in range(dims["H"]):
            for w in range(dims["W"]):
                addr = layout.address({"C": c, "H": h, "W": w}, dims)
                assert addr not in seen
                seen.add(addr)


@settings(max_examples=60, deadline=None)
@given(layout_dims=_layouts_and_dims())
def test_layout_addresses_stay_in_bounds(layout_dims):
    layout, dims = layout_dims
    num_lines = layout.num_lines(dims)
    for c in range(dims["C"]):
        for h in range(dims["H"]):
            for w in range(dims["W"]):
                line, offset = layout.address({"C": c, "H": h, "W": w}, dims)
                assert 0 <= line < num_lines
                assert 0 <= offset < layout.line_size
