"""Unit tests for the layout specification and address mapping."""

import pytest

from repro.layout.layout import IntraLineDim, Layout, parse_layout


class TestParseLayout:
    def test_parse_paper_example(self):
        layout = parse_layout("CHW_W4H2C2")
        assert layout.inter_order == ("C", "H", "W")
        assert layout.intra == (IntraLineDim("W", 4), IntraLineDim("H", 2),
                                IntraLineDim("C", 2))

    def test_parse_row_major(self):
        layout = parse_layout("HCW_W8")
        assert layout.inter_order == ("H", "C", "W")
        assert layout.line_size == 8

    def test_parse_channel_last(self):
        layout = parse_layout("HWC_C32")
        assert layout.intra_dims == ("C",)
        assert layout.line_size == 32

    def test_parse_gemm_layout(self):
        layout = parse_layout("MK_K32")
        assert layout.inter_order == ("M", "K")
        assert layout.intra_size("K") == 32

    def test_name_round_trip(self):
        for name in ("CHW_W4H2C2", "HWC_C32", "HCW_W8", "MK_M4K8"):
            assert parse_layout(name).name == name

    def test_parse_lowercase(self):
        layout = parse_layout("hwc_c4")
        assert layout.name == "HWC_C4"

    def test_parse_empty_raises(self):
        with pytest.raises(ValueError):
            parse_layout("_")


class TestLayoutProperties:
    def test_line_size_product(self):
        layout = parse_layout("CHW_W4H2C2")
        assert layout.line_size == 16

    def test_intra_size_missing_dim_is_one(self):
        layout = parse_layout("HWC_C32")
        assert layout.intra_size("W") == 1

    def test_duplicate_intra_dim_raises(self):
        with pytest.raises(ValueError):
            Layout(("H",), (IntraLineDim("C", 2), IntraLineDim("C", 4)))

    def test_covers(self):
        layout = parse_layout("HWC_C32")
        assert layout.covers(["C", "H", "W"])
        assert not layout.covers(["M"])

    def test_with_line_size_grows_innermost(self):
        layout = parse_layout("HWC_C4")
        resized = layout.with_line_size(32)
        assert resized.line_size == 32
        assert resized.intra_size("C") == 32

    def test_with_line_size_incompatible_raises(self):
        layout = parse_layout("HWC_C4W8")  # tail W8... C is innermost listed first
        with pytest.raises(ValueError):
            layout.with_line_size(12)


class TestAddressMapping:
    DIMS = {"C": 8, "H": 4, "W": 8}

    def test_intra_line_offset_order(self):
        # W4H2C2: W varies fastest within a line.
        layout = parse_layout("CHW_W4H2C2")
        line0, off0 = layout.address({"C": 0, "H": 0, "W": 0}, self.DIMS)
        line1, off1 = layout.address({"C": 0, "H": 0, "W": 1}, self.DIMS)
        assert line0 == line1
        assert off1 == off0 + 1

    def test_intra_line_second_dim_stride(self):
        layout = parse_layout("CHW_W4H2C2")
        _, off_h0 = layout.address({"C": 0, "H": 0, "W": 0}, self.DIMS)
        _, off_h1 = layout.address({"C": 0, "H": 1, "W": 0}, self.DIMS)
        assert off_h1 - off_h0 == 4  # W tile size

    def test_line_changes_across_tiles(self):
        layout = parse_layout("CHW_W4H2C2")
        line_a, _ = layout.address({"C": 0, "H": 0, "W": 0}, self.DIMS)
        line_b, _ = layout.address({"C": 0, "H": 0, "W": 4}, self.DIMS)
        assert line_a != line_b

    def test_channel_last_groups_channels(self):
        layout = parse_layout("HWC_C8")
        lines = {layout.address({"C": c, "H": 0, "W": 0}, self.DIMS)[0]
                 for c in range(8)}
        assert len(lines) == 1

    def test_row_major_groups_width(self):
        layout = parse_layout("HCW_W8")
        lines = {layout.address({"C": 0, "H": 0, "W": w}, self.DIMS)[0]
                 for w in range(8)}
        assert len(lines) == 1

    def test_row_major_splits_channels(self):
        layout = parse_layout("HCW_W8")
        lines = {layout.address({"C": c, "H": 0, "W": 0}, self.DIMS)[0]
                 for c in range(8)}
        assert len(lines) == 8

    def test_inter_line_order(self):
        # CHW: C outermost -> consecutive W tiles are adjacent lines.
        layout = parse_layout("CHW_W4")
        line_w0, _ = layout.address({"C": 0, "H": 0, "W": 0}, self.DIMS)
        line_w4, _ = layout.address({"C": 0, "H": 0, "W": 4}, self.DIMS)
        line_h1, _ = layout.address({"C": 0, "H": 1, "W": 0}, self.DIMS)
        assert line_w4 == line_w0 + 1
        assert line_h1 > line_w4

    def test_num_lines_covers_tensor(self):
        layout = parse_layout("HWC_C4")
        # 8 channels / 4 per line * 4 * 8 positions = 64 lines
        assert layout.num_lines(self.DIMS) == 4 * 8 * 2

    def test_address_within_bounds(self):
        layout = parse_layout("HWC_C4")
        n_lines = layout.num_lines(self.DIMS)
        for c in range(self.DIMS["C"]):
            for h in range(self.DIMS["H"]):
                for w in range(self.DIMS["W"]):
                    line, off = layout.address({"C": c, "H": h, "W": w}, self.DIMS)
                    assert 0 <= line < n_lines
                    assert 0 <= off < layout.line_size

    def test_address_bijective_over_tensor(self):
        layout = parse_layout("CHW_W4H2C2")
        seen = set()
        for c in range(self.DIMS["C"]):
            for h in range(self.DIMS["H"]):
                for w in range(self.DIMS["W"]):
                    addr = layout.address({"C": c, "H": h, "W": w}, self.DIMS)
                    assert addr not in seen, f"collision at {(c, h, w)}"
                    seen.add(addr)

    def test_missing_coord_treated_as_zero(self):
        layout = parse_layout("HWC_C4")
        assert layout.address({}, self.DIMS) == layout.address(
            {"C": 0, "H": 0, "W": 0}, self.DIMS)

    def test_uncovered_dim_extends_lines(self):
        layout = parse_layout("HW_W4")
        dims = {"H": 2, "W": 8, "C": 3}
        base = layout.num_lines({"H": 2, "W": 8})
        assert layout.num_lines(dims) == base * 3
