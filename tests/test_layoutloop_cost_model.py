"""Tests for the Layoutloop cost model."""

import pytest

from repro.dataflow.mapping import (
    output_stationary_mapping,
    weight_stationary_mapping,
)
from repro.layout.layout import parse_layout
from repro.layoutloop.arch import feather_arch
from repro.layoutloop.cost_model import CostModel, streaming_tensor_dims
from repro.baselines.registry import nvdla_like, sigma_like
from repro.workloads.conv import ConvLayerSpec
from repro.workloads.gemm import GemmSpec

LAYER = ConvLayerSpec("layer", m=64, c=64, h=14, w=14, r=3, s=3, stride=1, padding=1)
GEMM = GemmSpec("gemm", m=64, k=128, n=96)


class TestStreamingTensorDims:
    def test_conv(self):
        dims = streaming_tensor_dims(LAYER)
        assert dims == {"C": 64, "H": 14, "W": 14}

    def test_gemm(self):
        dims = streaming_tensor_dims(GEMM)
        assert dims == {"M": 64, "K": 128}

    def test_unknown_type(self):
        with pytest.raises(TypeError):
            streaming_tensor_dims("nope")


class TestEvaluate:
    def test_compute_cycles_and_utilization_consistent(self):
        model = CostModel(sigma_like(layout="HWC_C32"))
        mapping = weight_stationary_mapping(LAYER, 16, 16)
        report = model.evaluate(LAYER, mapping, parse_layout("HWC_C32"))
        assert report.macs == LAYER.macs
        assert report.utilization == pytest.approx(
            report.macs / (report.compute_cycles * 256))

    def test_concordant_layout_no_stalls(self):
        model = CostModel(sigma_like(layout="HWC_C32"))
        mapping = weight_stationary_mapping(LAYER, 16, 16)
        report = model.evaluate(LAYER, mapping, parse_layout("HWC_C32"))
        assert report.slowdown == pytest.approx(1.0)
        assert report.stall_cycles == 0

    def test_discordant_layout_stalls(self):
        model = CostModel(sigma_like(layout="HCW_W8"))
        mapping = weight_stationary_mapping(LAYER, 16, 16)  # C-parallel reads
        report = model.evaluate(LAYER, mapping, parse_layout("HCW_W8"))
        assert report.slowdown > 1.0
        assert report.total_cycles > report.compute_cycles

    def test_feather_never_stalls(self):
        model = CostModel(feather_arch())
        mapping = weight_stationary_mapping(LAYER, 16, 16)
        report = model.evaluate(LAYER, mapping, parse_layout("HCW_W8"))
        assert report.slowdown == 1.0

    def test_output_stationary_vs_weight_stationary_energy_differs(self):
        model = CostModel(feather_arch())
        ws = model.evaluate(LAYER, weight_stationary_mapping(LAYER, 16, 16),
                            parse_layout("HWC_C32"))
        os_ = model.evaluate(LAYER, output_stationary_mapping(LAYER, 16, 16),
                             parse_layout("HWC_C32"))
        assert ws.total_energy_pj != os_.total_energy_pj

    def test_energy_breakdown_components(self):
        model = CostModel(feather_arch())
        report = model.evaluate(LAYER, weight_stationary_mapping(LAYER, 16, 16),
                                parse_layout("HWC_C32"))
        for key in ("mac", "register", "buffer_read", "buffer_write", "dram", "noc"):
            assert key in report.energy_breakdown_pj
            assert report.energy_breakdown_pj[key] > 0

    def test_edp_positive(self):
        model = CostModel(feather_arch())
        report = model.evaluate(LAYER, weight_stationary_mapping(LAYER, 16, 16),
                                parse_layout("HWC_C32"))
        assert report.edp > 0
        assert report.energy_per_mac_pj > 0

    def test_latency_seconds(self):
        model = CostModel(feather_arch())
        report = model.evaluate(LAYER, weight_stationary_mapping(LAYER, 16, 16),
                                parse_layout("HWC_C32"))
        assert report.latency_seconds(1000.0) == pytest.approx(
            report.total_cycles / 1e9)

    def test_gemm_evaluation(self):
        model = CostModel(feather_arch())
        mapping = weight_stationary_mapping(GEMM, 16, 16)
        report = model.evaluate(GEMM, mapping, parse_layout("MK_K32"))
        assert report.macs == GEMM.macs
        assert report.total_cycles > 0


class TestReorderCosts:
    def test_offchip_reorder_adds_latency_and_energy(self):
        offchip = CostModel(sigma_like(layout=None, reorder="offchip"))
        baseline = CostModel(sigma_like(layout="HWC_C32", reorder="none"))
        mapping = weight_stationary_mapping(LAYER, 16, 16)
        layout = parse_layout("HWC_C32")
        off_report = offchip.evaluate(LAYER, mapping, layout)
        base_report = baseline.evaluate(LAYER, mapping, layout)
        assert off_report.reorder_cycles_exposed > 0
        assert off_report.total_energy_pj > base_report.total_energy_pj

    def test_rar_reorder_adds_latency(self):
        rar = CostModel(sigma_like(layout=None, reorder="transpose"))
        mapping = weight_stationary_mapping(LAYER, 16, 16)
        report = rar.evaluate(LAYER, mapping, parse_layout("HWC_C32"))
        assert report.reorder_cycles_exposed > 0

    def test_rir_reorder_is_latency_free(self):
        rir = CostModel(feather_arch())
        mapping = weight_stationary_mapping(LAYER, 16, 16)
        report = rir.evaluate(LAYER, mapping, parse_layout("HWC_C32"))
        assert report.reorder_cycles_exposed == 0

    def test_rir_cheaper_reorder_energy_than_offchip(self):
        mapping = weight_stationary_mapping(LAYER, 16, 16)
        layout = parse_layout("HWC_C32")
        rir = CostModel(feather_arch()).evaluate(LAYER, mapping, layout)
        off = CostModel(sigma_like(layout=None, reorder="offchip")).evaluate(
            LAYER, mapping, layout)
        assert rir.energy_breakdown_pj.get("reorder", 0) < \
            off.energy_breakdown_pj.get("reorder", float("inf"))

    def test_nvdla_has_no_reorder_cost(self):
        model = CostModel(nvdla_like())
        mapping = weight_stationary_mapping(LAYER, 16, 16)
        report = model.evaluate(LAYER, mapping, parse_layout("HWC_C32"))
        assert report.reorder_cycles_exposed == 0
        assert "reorder" not in report.energy_breakdown_pj
