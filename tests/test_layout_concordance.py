"""Tests for the concordance (bank conflict) analysis."""

import pytest

from repro.layout.concordance import (
    analyze_concordance,
    cycle_slowdown,
    lines_touched,
    required_parallel_coords,
    sliding_window_coords,
)
from repro.layout.layout import parse_layout
from repro.layout.patterns import ReorderPattern

DIMS = {"C": 16, "H": 8, "W": 8}


class TestCoordHelpers:
    def test_required_parallel_coords_single_dim(self):
        coords = required_parallel_coords({"C": 4})
        assert len(coords) == 4
        assert {c["C"] for c in coords} == {0, 1, 2, 3}

    def test_required_parallel_coords_cross_product(self):
        coords = required_parallel_coords({"C": 2, "W": 3})
        assert len(coords) == 6

    def test_required_parallel_coords_base_offset(self):
        coords = required_parallel_coords({"C": 2}, base={"C": 4, "H": 1})
        assert {c["C"] for c in coords} == {4, 5}
        assert all(c["H"] == 1 for c in coords)

    def test_sliding_window_coords_stride(self):
        coords = sliding_window_coords({"H": 0, "W": 0, "C": 0}, 4, stride=2)
        assert [c["W"] for c in coords] == [0, 2, 4, 6]


class TestCycleSlowdown:
    def test_no_conflict(self):
        assert cycle_slowdown(2, ports=2) == 1.0

    def test_conflict_scales_linearly(self):
        assert cycle_slowdown(4, ports=2) == 2.0
        assert cycle_slowdown(6, ports=2) == 3.0

    def test_line_rotation_gains_a_port(self):
        assert cycle_slowdown(3, ports=2, pattern=ReorderPattern.LINE_ROTATION) == 1.0
        assert cycle_slowdown(6, ports=2, pattern=ReorderPattern.LINE_ROTATION) == 2.0

    def test_arbitrary_reorder_never_stalls(self):
        assert cycle_slowdown(16, ports=2, pattern=ReorderPattern.ARBITRARY) == 1.0


class TestLinesTouched:
    def test_channel_last_single_line(self):
        layout = parse_layout("HWC_C16")
        coords = required_parallel_coords({"C": 4})
        assert len(lines_touched(coords, layout, DIMS)) == 1

    def test_row_major_many_lines(self):
        layout = parse_layout("HCW_W8")
        coords = required_parallel_coords({"C": 4})
        assert len(lines_touched(coords, layout, DIMS)) == 4


class TestAnalyzeConcordance:
    def test_concordant_pair(self):
        layout = parse_layout("HWC_C16")
        trace = [required_parallel_coords({"C": 4}, base={"W": w}) for w in range(4)]
        report = analyze_concordance(trace, layout, DIMS, ports_per_bank=2,
                                     num_banks=1)
        assert report.concordant
        assert report.avg_slowdown == 1.0
        assert report.conflict_cycles == 0

    def test_discordant_pair(self):
        layout = parse_layout("HCW_W8")
        trace = [required_parallel_coords({"C": 4}, base={"W": w}) for w in range(4)]
        report = analyze_concordance(trace, layout, DIMS, ports_per_bank=2,
                                     num_banks=1)
        assert not report.concordant
        assert report.avg_slowdown == 2.0

    def test_effective_utilization(self):
        layout = parse_layout("HCW_W8")
        trace = [required_parallel_coords({"C": 4})]
        report = analyze_concordance(trace, layout, DIMS, ports_per_bank=2,
                                     num_banks=1)
        assert report.effective_utilization(1.0) == pytest.approx(0.5)

    def test_reorder_pattern_eliminates_conflicts(self):
        layout = parse_layout("HCW_W8")
        trace = [required_parallel_coords({"C": 4})]
        report = analyze_concordance(trace, layout, DIMS, ports_per_bank=2,
                                     num_banks=1, pattern=ReorderPattern.ARBITRARY)
        assert report.concordant

    def test_line_rotation_handles_three_lines(self):
        layout = parse_layout("HCW_W8")
        trace = [required_parallel_coords({"C": 3})]
        base = analyze_concordance(trace, layout, DIMS, ports_per_bank=2, num_banks=1)
        rotated = analyze_concordance(trace, layout, DIMS, ports_per_bank=2,
                                      num_banks=1,
                                      pattern=ReorderPattern.LINE_ROTATION)
        assert base.avg_slowdown > 1.0
        assert rotated.avg_slowdown == 1.0

    def test_bank_striping_spreads_conflicts(self):
        # With many banks the conflicting lines land in different banks.
        layout = parse_layout("HCW_W8")
        trace = [required_parallel_coords({"C": 4})]
        many_banks = analyze_concordance(trace, layout, DIMS, ports_per_bank=2,
                                         lines_per_bank=1, num_banks=64)
        assert many_banks.avg_slowdown == 1.0

    def test_trace_kept_when_requested(self):
        layout = parse_layout("HWC_C16")
        trace = [required_parallel_coords({"C": 4})]
        report = analyze_concordance(trace, layout, DIMS, keep_trace=True)
        assert len(report.trace) == 1
        assert report.trace[0].num_lines == 1

    def test_empty_trace(self):
        layout = parse_layout("HWC_C16")
        report = analyze_concordance([], layout, DIMS)
        assert report.concordant
        assert report.cycles == 0
