"""Tests for architecture specs and the energy table."""

import pytest

from repro.layout.patterns import ReorderImplementation, ReorderPattern
from repro.layoutloop.arch import ArchSpec, BufferGeometry, feather_arch
from repro.layoutloop.energy import DEFAULT_ENERGY_TABLE, EnergyTable


class TestBufferGeometry:
    def test_conflict_depth(self):
        buf = BufferGeometry(num_lines=2048, line_size=32, banks=32)
        assert buf.conflict_depth == 64

    def test_capacity(self):
        buf = BufferGeometry(num_lines=1024, line_size=16, banks=16, word_bits=8)
        assert buf.capacity_bytes == 16384

    def test_peak_words(self):
        buf = BufferGeometry(num_lines=1024, line_size=16, banks=8, ports_per_bank=2)
        assert buf.peak_words_per_cycle == 16


class TestArchSpec:
    def test_num_pes(self):
        arch = ArchSpec("a", pe_rows=16, pe_cols=16)
        assert arch.num_pes == 256

    def test_offchip_bytes_per_cycle(self):
        arch = ArchSpec("a", pe_rows=4, pe_cols=4, offchip_bandwidth_gbps=100.0,
                        frequency_mhz=1000.0)
        assert arch.offchip_bytes_per_cycle == pytest.approx(100.0)

    def test_with_reorder(self):
        arch = ArchSpec("a", pe_rows=4, pe_cols=4)
        upgraded = arch.with_reorder(ReorderPattern.TRANSPOSE,
                                     ReorderImplementation.RAR)
        assert upgraded.reorder_pattern is ReorderPattern.TRANSPOSE
        assert arch.reorder_pattern is ReorderPattern.NONE  # original unchanged

    def test_describe_mentions_knobs(self):
        desc = feather_arch().describe()
        assert "TOPS" in desc
        assert "FEATHER" in desc

    def test_feather_arch_defaults(self):
        arch = feather_arch(16, 16)
        assert arch.reorder_implementation is ReorderImplementation.RIR
        assert arch.runtime_layout_flexible
        assert arch.buffer.banks == 16

    def test_feather_arch_overrides(self):
        arch = feather_arch(8, 8, frequency_mhz=500.0)
        assert arch.frequency_mhz == 500.0


class TestEnergyTable:
    def test_ordering_of_costs(self):
        t = DEFAULT_ENERGY_TABLE
        # Register < buffer < DRAM, the universally reported hierarchy.
        assert t.register_access_pj < t.buffer_read_per_word_pj
        assert t.buffer_read_per_word_pj < t.dram_access_per_byte_pj

    def test_scale(self):
        scaled = DEFAULT_ENERGY_TABLE.scale(2.0)
        assert scaled.mac_int8_pj == pytest.approx(2 * DEFAULT_ENERGY_TABLE.mac_int8_pj)
        assert scaled.dram_access_per_byte_pj == pytest.approx(
            2 * DEFAULT_ENERGY_TABLE.dram_access_per_byte_pj)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_ENERGY_TABLE.mac_int8_pj = 1.0
