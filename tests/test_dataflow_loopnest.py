"""Tests for factorization helpers and the tiled loop nest."""

import math

import pytest

from repro.dataflow.loopnest import (
    LoopNest,
    balanced_factor_pair,
    divisors_at_most,
    factor_splits,
    factors,
    padded_parallel_sizes,
    tile_counts,
)


class TestFactors:
    def test_factors_of_12(self):
        assert factors(12) == (1, 2, 3, 4, 6, 12)

    def test_factors_of_prime(self):
        assert factors(13) == (1, 13)

    def test_factors_of_one(self):
        assert factors(1) == (1,)

    def test_factors_invalid(self):
        with pytest.raises(ValueError):
            factors(0)

    def test_balanced_pair(self):
        assert balanced_factor_pair(12) == (3, 4)
        assert balanced_factor_pair(16) == (4, 4)
        assert balanced_factor_pair(7) == (1, 7)

    def test_factor_splits_two_parts(self):
        splits = factor_splits(8, 2)
        assert (2, 4) in splits and (8, 1) in splits
        for a, b in splits:
            assert a * b == 8

    def test_factor_splits_three_parts(self):
        splits = factor_splits(12, 3)
        for combo in splits:
            assert math.prod(combo) == 12

    def test_factor_splits_one_part(self):
        assert factor_splits(5, 1) == [(5,)]

    def test_tile_counts(self):
        assert tile_counts(10, 3) == 4
        assert tile_counts(9, 3) == 3

    def test_tile_counts_invalid(self):
        with pytest.raises(ValueError):
            tile_counts(10, 0)

    def test_divisors_at_most(self):
        assert divisors_at_most(12, 4) == (1, 2, 3, 4)

    def test_padded_parallel_sizes_include_powers_of_two(self):
        sizes = padded_parallel_sizes(12, 16)
        assert 8 in sizes      # power of two that does not divide 12
        assert 12 in sizes     # the extent itself
        assert max(sizes) <= 16


class TestLoopNest:
    def _nest(self):
        return LoopNest(
            bounds=(("M", 8), ("C", 6), ("Q", 4)),
            tiles=(("M", 4), ("C", 2)),
            order=("M", "C", "Q"),
        )

    def test_trip_counts(self):
        nest = self._nest()
        assert nest.trip_counts() == {"M": 2, "C": 3, "Q": 4}

    def test_total_tiles(self):
        assert self._nest().total_tiles() == 24

    def test_iter_tiles_count(self):
        assert len(list(self._nest().iter_tiles())) == 24

    def test_iter_tiles_bases_are_multiples(self):
        nest = self._nest()
        for tile in nest.iter_tiles():
            assert tile["M"] % 4 == 0
            assert tile["C"] % 2 == 0

    def test_iter_tiles_order(self):
        nest = self._nest()
        tiles = list(nest.iter_tiles())
        # Innermost loop is Q: the first few tiles advance Q only.
        assert tiles[0]["Q"] == 0 and tiles[1]["Q"] == 1
        assert tiles[0]["M"] == tiles[1]["M"]

    def test_tile_volume(self):
        assert self._nest().tile_volume() == 8

    def test_unknown_tile_dim_raises(self):
        with pytest.raises(ValueError):
            LoopNest(bounds=(("M", 8),), tiles=(("Z", 2),), order=("M",))

    def test_unknown_order_dim_raises(self):
        with pytest.raises(ValueError):
            LoopNest(bounds=(("M", 8),), tiles=(), order=("Z",))
