"""Property-based tests of the constraint layer (repair, don't reject).

Hypothesis drives random mappings through random :class:`ConstraintSet`s
and asserts the repair contract the search engine is built on:

* repair always lands in the legal set (``validate() == True``);
* repair is idempotent — repairing a repaired mapping returns the
  *identical object* with the identity outcome;
* an already-legal mapping is never touched;
* the pruning bounds stay admissible on repaired universes: a pruned
  constrained search returns the unpruned winner bit-identically and its
  counters close over the raw universe
  (``evaluated + pruned + repaired == universe_pairs``).
"""

from hypothesis import assume, given, settings, strategies as st

from repro.constraints import (
    NO_REPAIR,
    ConstraintSet,
    UnsatisfiableConstraintError,
    default_constraints,
    noc_constraints,
    systolic_constraints,
)
from repro.dataflow.mapping import Mapping, ParallelSpec, TileLevel
from repro.layoutloop.arch import feather_arch
from repro.layoutloop.mapper import Mapper
from repro.workloads.conv import ConvLayerSpec

ARCH = feather_arch()
WORKLOAD = ConvLayerSpec("hyp-conv", m=32, c=32, h=8, w=8, r=3, s=3)
DIMS = ("N", "M", "C", "R", "S", "P", "Q")

_DEGREES = st.sampled_from([1, 2, 3, 4, 6, 8, 16])
_ORDERS = st.permutations(DIMS).map(tuple)


@st.composite
def mappings(draw):
    parallel = []
    budget = 16 * 16  # total parallelism must fit the array
    for dim in ("M", "C", "P", "Q"):
        degree = draw(_DEGREES)
        if degree > 1 and degree <= budget:
            parallel.append(ParallelSpec(dim, degree))
            budget //= degree
    tile = {dim: draw(st.sampled_from([1, 2, 4, 8, 16])) for dim in
            ("M", "C", "P", "Q")}
    for spec in parallel:  # tiles at least cover the spatial degree
        tile[spec.dim] = max(tile[spec.dim], spec.degree)
    return Mapping("hyp", 16, 16, tuple(parallel), TileLevel.of(**tile),
                   draw(_ORDERS))


@st.composite
def constraint_sets(draw):
    # Full-length orders only: a partial order that cannot cover the conv
    # dims is the (separately tested) unsatisfiable case, not this one.
    allowed_orders = draw(st.sampled_from([
        None,
        (DIMS,),
        (("M", "N", "C", "R", "S", "P", "Q"),),
        (DIMS, ("Q", "P", "S", "R", "C", "M", "N")),
    ]))
    return ConstraintSet(
        name="hyp-rules",
        allowed_orders=allowed_orders,
        buffer_capacity_bytes=draw(st.sampled_from([None, 1 << 14, 1 << 18])),
        allowed_parallel_dims=draw(st.sampled_from(
            [None, ("M",), ("M", "C"), ("M", "C", "K")])),
        parallel_multiple_of=draw(st.sampled_from([1, 2, 4])),
        pow2_spatial_reduction=draw(st.booleans()),
        max_spatial_reduction=draw(st.sampled_from([None, 2, 8])),
    )


def _repair(cset, mapping):
    try:
        return cset.repair(mapping, WORKLOAD, ARCH)
    except UnsatisfiableConstraintError:
        assume(False)


@settings(max_examples=200, deadline=None)
@given(mapping=mappings(), cset=constraint_sets())
def test_repair_lands_in_the_legal_set(mapping, cset):
    fixed, outcome = _repair(cset, mapping)
    assert cset.validate(fixed, WORKLOAD, ARCH)
    assert cset.violations(fixed, WORKLOAD, ARCH) == ()
    # The outcome names what was violated iff something was repaired.
    assert outcome.changed == bool(cset.violations(mapping, WORKLOAD, ARCH))
    if outcome.changed:
        assert outcome.violations
        assert fixed.name == f"{mapping.name}~fix"


@settings(max_examples=200, deadline=None)
@given(mapping=mappings(), cset=constraint_sets())
def test_repair_is_idempotent(mapping, cset):
    fixed, _ = _repair(cset, mapping)
    again, outcome = cset.repair(fixed, WORKLOAD, ARCH)
    assert again is fixed
    assert outcome is NO_REPAIR


@settings(max_examples=200, deadline=None)
@given(mapping=mappings(), cset=constraint_sets())
def test_repair_never_touches_a_legal_mapping(mapping, cset):
    assume(cset.validate(mapping, WORKLOAD, ARCH))
    fixed, outcome = cset.repair(mapping, WORKLOAD, ARCH)
    assert fixed is mapping
    assert outcome is NO_REPAIR
    assert not outcome.changed


@settings(max_examples=120, deadline=None)
@given(mapping=mappings())
def test_preset_constraints_repair_to_legality(mapping):
    for cset in (default_constraints(ARCH), systolic_constraints(ARCH),
                 noc_constraints("tree", ARCH), noc_constraints("linear",
                                                                ARCH)):
        fixed, _ = _repair(cset, mapping)
        assert cset.validate(fixed, WORKLOAD, ARCH)
        again, outcome = cset.repair(fixed, WORKLOAD, ARCH)
        assert again is fixed and outcome is NO_REPAIR


@settings(max_examples=15, deadline=None)
@given(cset=constraint_sets())
def test_pruning_bounds_admissible_on_repaired_universes(cset):
    """A pruned constrained search must return the unpruned winner
    bit-identically, with counters closing over the raw universe."""
    try:
        pruned = Mapper(ARCH, metric="edp", max_mappings=8, seed=0,
                        constraints=cset, prune=True).search(WORKLOAD)
        full = Mapper(ARCH, metric="edp", max_mappings=8, seed=0,
                      constraints=cset, prune=False).search(WORKLOAD)
    except UnsatisfiableConstraintError:
        assume(False)
    assert pruned.best_report == full.best_report
    assert pruned.best_mapping.name == full.best_mapping.name
    assert pruned.best_layout.name == full.best_layout.name
    # Pruning only moves evaluations into the pruned counter.
    assert pruned.evaluated + pruned.pruned == full.evaluated
    for result in (pruned, full):
        universe = result.repair["universe_pairs"]
        assert (result.evaluated + result.pruned + result.repaired
                == universe)


def test_unsatisfiable_order_raises():
    cset = ConstraintSet(name="gemm-only",
                         allowed_orders=(("M", "K", "N"),))
    mapping = Mapping("conv", 16, 16, (), TileLevel.of(M=1), DIMS)
    try:
        cset.repair(mapping, WORKLOAD, ARCH)
    except UnsatisfiableConstraintError as exc:
        assert "loop-order" in str(exc)
    else:
        raise AssertionError("expected UnsatisfiableConstraintError")
