"""Tests for the scenario-matrix subsystem (`repro.scenarios`).

Covers the declarative layer (matrix expansion/filter/dedup properties via
hypothesis), the record JSON round-trip, the content-addressed result
cache, seed/version embedding with worker-count determinism, the name
registries and the CLI.
"""

import json
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.scenarios import (
    LayerRecord,
    Scenario,
    ScenarioMatrix,
    ScenarioRecord,
    SearchConfig,
    builtin_matrix,
    cell_key,
    diff_payloads,
    rerun_record,
    resolve_arch,
    resolve_workload_set,
    run_cell,
    run_matrix,
    scenario_from_record,
    slugify,
    smoke_matrix,
)
from repro.scenarios import cli
from repro.scenarios.registry import (
    parse_workload_spec,
    register_arch,
    register_workload_set,
)
from repro.scenarios.spec import default_cell_name

# The cheapest built-in cell (one unique GEMM shape on a 4x4 array): used
# wherever a test needs a real search without caring which one.
TINY = "smoke-fig10-gemms"


def tiny_scenario() -> Scenario:
    return smoke_matrix().get(TINY)


# --------------------------------------------------------------- strategies
names = st.text(alphabet=string.ascii_lowercase + "0123456789_-",
                min_size=1, max_size=8)
configs = st.builds(
    SearchConfig, name=names,
    metric=st.sampled_from(("edp", "latency", "energy")),
    max_mappings=st.integers(min_value=1, max_value=500),
    seed=st.integers(min_value=0, max_value=2**31),
    prune=st.booleans())
finite = st.floats(allow_nan=False, allow_infinity=True)


class TestMatrixProperties:
    @settings(max_examples=50, deadline=None)
    @given(ws=st.lists(names, min_size=1, max_size=4),
           ar=st.lists(names, min_size=1, max_size=4),
           cf=st.lists(configs, min_size=1, max_size=3))
    def test_cross_cardinality_and_row_major_order(self, ws, ar, cf):
        matrix = ScenarioMatrix().cross(ws, ar, cf)
        assert len(matrix) == len(ws) * len(ar) * len(cf)
        expected = [default_cell_name(w, a, c)
                    for w in ws for a in ar for c in cf]
        assert matrix.names() == expected
        # Expansion is deterministic: same inputs, same plan.
        assert ScenarioMatrix().cross(ws, ar, cf).names() == expected

    @settings(max_examples=50, deadline=None)
    @given(ws=st.lists(names, min_size=1, max_size=4),
           ar=st.lists(names, min_size=1, max_size=4),
           cf=st.lists(configs, min_size=1, max_size=2),
           pattern=names)
    def test_filter_is_idempotent_and_order_preserving(self, ws, ar, cf,
                                                       pattern):
        matrix = ScenarioMatrix().cross(ws, ar, cf)
        once = matrix.filter(pattern)
        assert once.filter(pattern).names() == once.names()
        # Survivors are exactly the matches, kept in source-plan order.
        assert once.names() == [s.name for s in matrix
                                if s.matches(pattern)]

    @settings(max_examples=50, deadline=None)
    @given(ws=st.lists(names, min_size=1, max_size=3),
           ar=st.lists(names, min_size=1, max_size=3),
           cf=st.lists(configs, min_size=1, max_size=2,
                       unique_by=lambda c: c.name))
    def test_dedup_is_idempotent_and_first_seen_stable(self, ws, ar, cf):
        # Doubling the plan guarantees duplicates exist.
        matrix = ScenarioMatrix().cross(ws, ar, cf).cross(ws, ar, cf)
        deduped = matrix.dedup()
        assert deduped.dedup().names() == deduped.names()
        assert len(set(deduped.names())) == len(deduped)
        # First-seen order: dedup of the doubled plan equals the ordered
        # unique names of the single plan (the inputs may repeat too).
        single = ScenarioMatrix().cross(ws, ar, cf).names()
        assert deduped.names() == list(dict.fromkeys(single))

    def test_dedup_unions_tags_of_name_identical_cells(self):
        config = SearchConfig(name="c")
        matrix = ScenarioMatrix(scenarios=[
            Scenario("cell", "w", "A", config, tags=("fig13",)),
            Scenario("cell", "w", "A", config, tags=("tables", "fig13")),
        ]).dedup()
        assert len(matrix) == 1
        assert matrix[0].tags == ("fig13", "tables")
        # Both contributing groups' filters keep working after the merge.
        assert matrix.filter("tables").names() == ["cell"]
        assert matrix.filter("fig13").names() == ["cell"]

    def test_dedup_rejects_name_reuse_with_different_content(self):
        matrix = ScenarioMatrix(scenarios=[
            Scenario("cell", "w", "A", SearchConfig(name="c", seed=0)),
            Scenario("cell", "w", "A", SearchConfig(name="c", seed=1)),
        ])
        with pytest.raises(ValueError, match="reused for different"):
            matrix.dedup()

    def test_builtin_tables_filter_selects_the_shared_cells(self):
        # The search-stats-table cells coincide with fig13 cells by name;
        # dedup must keep the "tables" entry point alive.
        assert len(builtin_matrix().filter("tables")) > 0

    def test_filter_matches_tags_case_insensitively(self):
        config = SearchConfig(name="c")
        matrix = ScenarioMatrix(scenarios=[
            Scenario("a", "w", "A", config, tags=("Smoke",)),
            Scenario("b", "w", "A", config, tags=("sweep",)),
        ])
        assert matrix.filter("SMOKE").names() == ["a"]
        assert matrix.filter(None).names() == ["a", "b"]

    def test_get_unknown_name_raises(self):
        with pytest.raises(KeyError):
            ScenarioMatrix().get("nope")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SearchConfig(name="bad", metric="throughput")
        with pytest.raises(ValueError):
            SearchConfig(name="bad", max_mappings=0)

    def test_builtin_matrix_names_are_unique(self):
        matrix = builtin_matrix()
        assert len(set(matrix.names())) == len(matrix)
        assert len(matrix.filter("smoke")) == 5


class TestRecordRoundTrip:
    layer_records = st.builds(
        LayerRecord, workload=names, count=st.integers(1, 64), mapping=names,
        layout=names, macs=st.integers(0, 10**12), compute_cycles=finite,
        stall_cycles=finite, reorder_cycles_exposed=finite,
        total_cycles=finite, total_energy_pj=finite, utilization=finite,
        practical_utilization=finite)
    records = st.builds(
        ScenarioRecord, scenario=names, workload_set=names, arch=names,
        config=st.fixed_dictionaries({
            "name": names, "metric": st.sampled_from(("edp", "latency")),
            "max_mappings": st.integers(1, 500),
            "seed": st.integers(0, 2**31), "prune": st.booleans()}),
        seed=st.integers(0, 2**31), key=names,
        totals=st.dictionaries(names, finite, max_size=4),
        layers=st.lists(layer_records, max_size=3),
        search=st.fixed_dictionaries({"evaluations": st.integers(0, 10**6)}),
        repro_version=names, workers=st.integers(1, 8),
        vectorize=st.booleans(), elapsed_s=finite)

    @settings(max_examples=50, deadline=None)
    @given(record=records)
    def test_json_round_trip_is_exact(self, record):
        clone = ScenarioRecord.from_json(record.to_json())
        assert clone == record
        assert diff_payloads(record.deterministic_payload(),
                             clone.deterministic_payload()) == []

    @settings(max_examples=50, deadline=None)
    @given(record=records)
    def test_deterministic_payload_drops_run_metadata(self, record):
        payload = record.deterministic_payload()
        for volatile in ("workers", "vectorize", "elapsed_s",
                         "repro_version", "key"):
            assert volatile not in payload
        assert payload["seed"] == record.seed

    def test_diff_payloads_reports_differences(self):
        a = {"x": 1.0, "nested": {"y": [1, 2]}}
        b = {"x": 2.0, "nested": {"y": [1, 3]}, "extra": True}
        diffs = diff_payloads(a, b)
        assert any("x:" in d for d in diffs)
        assert any("extra" in d for d in diffs)
        assert any("nested.y[1]" in d for d in diffs)
        assert diff_payloads(a, json.loads(json.dumps(a))) == []


class TestResultCache:
    def test_artifact_round_trip_and_cache_hit(self, tmp_path):
        scenario = tiny_scenario()
        first = run_cell(scenario, runs_dir=tmp_path)
        assert not first.cached
        assert first.path is not None and first.path.exists()
        second = run_cell(scenario, runs_dir=tmp_path)
        assert second.cached
        assert (second.record.deterministic_payload()
                == first.record.deterministic_payload())
        assert not run_cell(scenario, runs_dir=tmp_path, force=True).cached

    def test_stale_key_forces_recompute(self, tmp_path):
        scenario = tiny_scenario()
        first = run_cell(scenario, runs_dir=tmp_path)
        stale = ScenarioRecord.read(first.path)
        stale.key = "0" * 64
        stale.write(first.path)
        again = run_cell(scenario, runs_dir=tmp_path)
        assert not again.cached
        assert again.record.key == first.record.key

    def test_corrupt_artifact_forces_recompute(self, tmp_path):
        scenario = tiny_scenario()
        first = run_cell(scenario, runs_dir=tmp_path)
        first.path.write_text("{not json")
        assert not run_cell(scenario, runs_dir=tmp_path).cached

    def test_slug_colliding_names_get_distinct_artifacts(self, tmp_path):
        from repro.scenarios.runner import artifact_path

        config = SearchConfig(name="c")
        spaced = Scenario("a b", "resnet50[:1]", "FEATHER", config)
        dashed = Scenario("a-b", "resnet50[:1]", "FEATHER", config)
        assert artifact_path(tmp_path, spaced) != artifact_path(tmp_path,
                                                                dashed)
        # Slug-safe names keep the clean stem the docs reference.
        assert artifact_path(tmp_path, dashed).name == "a-b.json"

    def test_run_matrix_writes_summaries_and_caches(self, tmp_path):
        first = run_matrix(smoke_matrix(), pattern=TINY, runs_dir=tmp_path)
        assert len(first.results) == 1 and first.cached_count == 0
        assert first.summary_csv.exists() and first.summary_md.exists()
        assert TINY in first.summary_csv.read_text()
        second = run_matrix(smoke_matrix(), pattern=TINY, runs_dir=tmp_path)
        assert second.cached_count == 1


class TestSeedAndDeterminism:
    def test_record_embeds_seed_and_version(self):
        record = run_cell(tiny_scenario()).record
        assert record.seed == tiny_scenario().config.seed
        assert record.config["seed"] == record.seed
        assert record.repro_version == repro.__version__
        assert len(record.key) == 64

    def test_cell_key_tracks_the_searched_content(self):
        scenario = tiny_scenario()
        assert cell_key(scenario) == cell_key(scenario)
        reseeded = Scenario(
            name=scenario.name, workload_set=scenario.workload_set,
            arch=scenario.arch, tags=scenario.tags,
            config=SearchConfig(name="reseeded", metric="latency",
                                max_mappings=scenario.config.max_mappings,
                                seed=scenario.config.seed + 1))
        assert cell_key(reseeded) != cell_key(scenario)

    def test_rerun_with_embedded_seed_is_deterministic_across_workers(self):
        record = run_cell(tiny_scenario()).record
        rebuilt = scenario_from_record(record)
        assert rebuilt.config.seed == record.seed
        for workers in (1, 2):
            replay = rerun_record(record, workers=workers)
            assert (replay.deterministic_payload()
                    == record.deterministic_payload()), (
                f"re-run with workers={workers} drifted")

    def test_nondefault_seed_reaches_the_sampler(self):
        # The seed must actually steer the search: after stripping every
        # field that *names* the seed, the two payloads still have to
        # differ (different seeds sample different mapping candidates).
        # This catches the regression where run_cell stops forwarding the
        # seed to search_model — both runs would then be seed-0 clones.
        def stripped(seed):
            scenario = Scenario(
                "seed-probe", "resnet50[:2]", "FEATHER",
                SearchConfig(name="s", max_mappings=8, seed=seed))
            payload = run_cell(scenario).record.deterministic_payload()
            for named in ("config", "seed"):
                payload.pop(named)
            return payload

        assert stripped(0) != stripped(7)
        # And a reseeded cell still replays exactly from its record.
        reseeded = Scenario("seed-b", "resnet50[:2]", "FEATHER",
                            SearchConfig(name="s", max_mappings=8, seed=7))
        record = run_cell(reseeded).record
        replay = rerun_record(record, workers=2)
        assert (replay.deterministic_payload()
                == record.deterministic_payload())


class TestRegistry:
    def test_slice_spec_parsing(self):
        assert parse_workload_spec("resnet50") == ("resnet50", None)
        assert parse_workload_spec("resnet50[:4]") == ("resnet50", 4)
        full = resolve_workload_set("resnet50")
        assert resolve_workload_set("resnet50[:4]") == full[:4]

    def test_unknown_names_raise_value_error(self):
        with pytest.raises(ValueError, match="unknown workload set"):
            resolve_workload_set("alexnet")
        with pytest.raises(ValueError, match="unknown architecture"):
            resolve_arch("TPUv9")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_workload_set("resnet50", list)
        with pytest.raises(ValueError):
            register_arch("FEATHER", lambda: None)
        with pytest.raises(ValueError):
            register_workload_set("bad[:2]", list)

    def test_batch_variants_carry_the_batch_dimension(self):
        for layer in resolve_workload_set("resnet50_batch4[:3]"):
            assert layer.n == 4
            assert layer.name.endswith("_n4")

    def test_bert_head_sweep_is_skewed(self):
        gemms = resolve_workload_set("bert_head_sweep")
        assert len(gemms) == 8
        longest = max(gemms, key=lambda g: g.m)
        assert longest.m / longest.k >= 8  # genuinely skewed shapes

    def test_mobilenet_sets_partition_by_kind(self):
        from repro.workloads.conv import LayerKind

        depthwise = resolve_workload_set("mobilenet_v3_depthwise")
        pointwise = resolve_workload_set("mobilenet_v3_pointwise")
        assert depthwise and all(l.kind is LayerKind.DEPTHWISE
                                 for l in depthwise)
        assert pointwise and all(l.kind is LayerKind.POINTWISE
                                 for l in pointwise)


class TestCli:
    def test_list_shows_matrix(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "smoke-resnet50" in out and "scenario(s)" in out

    def test_list_unmatched_filter_fails(self, capsys):
        assert cli.main(["list", "--filter", "no-such-cell"]) == 1

    def test_run_twice_then_diff(self, tmp_path, capsys):
        args = ["run", "--filter", TINY, "--runs-dir", str(tmp_path)]
        assert cli.main(args) == 0
        assert "0 from cache" in capsys.readouterr().out
        assert cli.main(args) == 0
        assert "1 from cache" in capsys.readouterr().out
        record_path = tmp_path / f"{slugify(TINY)}.json"
        assert record_path.exists()
        assert cli.main(["diff", str(record_path), str(record_path)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_flags_divergent_records(self, tmp_path, capsys):
        cli.main(["run", "--filter", TINY, "--runs-dir", str(tmp_path)])
        capsys.readouterr()
        record_path = tmp_path / f"{slugify(TINY)}.json"
        tampered = ScenarioRecord.read(record_path)
        tampered.totals["total_cycles"] += 1.0
        tampered_path = tmp_path / "tampered.json"
        tampered.write(tampered_path)
        assert cli.main(["diff", str(record_path), str(tampered_path)]) == 1
        assert "totals.total_cycles" in capsys.readouterr().out

    def test_run_no_vectorize_matches_default(self, tmp_path):
        args = ["run", "--filter", TINY, "--runs-dir", str(tmp_path)]
        assert cli.main(args) == 0
        record = ScenarioRecord.read(tmp_path / f"{slugify(TINY)}.json")
        assert cli.main(args + ["--no-vectorize", "--force"]) == 0
        scalar = ScenarioRecord.read(tmp_path / f"{slugify(TINY)}.json")
        assert (scalar.deterministic_payload()
                == record.deterministic_payload())
        assert scalar.vectorize is False


class TestBackendCells:
    """Scenario cells running on the simulator / crossval backends."""

    SIM = "sim-micro-gemms"
    XVAL = "crossval-micro-gemms"

    def test_scenario_validates_backend(self):
        with pytest.raises(ValueError, match="backend"):
            Scenario("bad", "micro_convs", "FEATHER-4x4",
                     SearchConfig(name="c"), backend="quantum")

    def test_simulator_cell_runs_and_replays(self):
        from repro.scenarios import simulator_matrix

        scenario = simulator_matrix().get(self.SIM)
        record = run_cell(scenario).record
        assert record.backend == "simulator"
        assert record.search["backend"] == "simulator"
        assert record.totals["total_cycles"] > 0
        replay = rerun_record(record)
        assert (replay.deterministic_payload()
                == record.deterministic_payload())

    def test_crossval_cell_embeds_deltas(self):
        from repro.scenarios import crossval_matrix

        scenario = crossval_matrix().get(self.XVAL)
        record = run_cell(scenario).record
        assert record.backend == "crossval"
        crossval = record.crossval
        assert crossval is not None
        assert crossval["rir_claim_holds"] is True
        assert len(crossval["cells"]) == len(record.layers)
        for cell, layer in zip(crossval["cells"], record.layers):
            assert cell["workload"] == layer.workload
            # The record's totals are the analytical side, cell for cell.
            assert cell["analytical_cycles"] == layer.total_cycles
            assert cell["cycle_delta"] == pytest.approx(
                cell["simulated_cycles"] / cell["analytical_cycles"] - 1.0)

    def test_backend_override_gets_its_own_artifact(self, tmp_path):
        scenario = smoke_matrix().get(TINY)  # analytical by default
        analytical = run_cell(scenario, runs_dir=tmp_path)
        simulated = run_cell(scenario, runs_dir=tmp_path,
                             backend="simulator")
        assert analytical.path != simulated.path
        assert simulated.path.name.endswith("--simulator.json")
        assert simulated.record.backend == "simulator"
        assert analytical.record.key != simulated.record.key
        # Both artifacts now satisfy their own backend from cache.
        assert run_cell(scenario, runs_dir=tmp_path).cached
        assert run_cell(scenario, runs_dir=tmp_path,
                        backend="simulator").cached

    def test_cli_run_backend_override(self, tmp_path, capsys):
        args = ["run", "--filter", TINY, "--runs-dir", str(tmp_path),
                "--backend", "simulator"]
        assert cli.main(args) == 0
        out = capsys.readouterr().out
        assert "(simulator)" in out
        assert (tmp_path / f"{slugify(TINY)}--simulator.json").exists()

    def test_cli_surfaces_simulator_bound_errors(self, tmp_path, capsys):
        args = ["run", "--filter", "smoke-resnet50", "--runs-dir",
                str(tmp_path), "--backend", "simulator"]
        assert cli.main(args) == 1
        assert "micro-cells" in capsys.readouterr().out

    def test_schema1_record_defaults_to_analytical(self):
        scenario = smoke_matrix().get(TINY)
        record = run_cell(scenario).record
        data = record.to_dict()
        del data["backend"], data["crossval"]
        legacy = ScenarioRecord.from_dict(data)
        assert legacy.backend == "analytical"
        assert legacy.crossval is None
