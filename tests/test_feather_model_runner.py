"""Tests for the post-processing engines and the whole-model runner."""

import numpy as np
import pytest

from repro.feather.config import FeatherConfig
from repro.feather.model_runner import (
    ConvStage,
    ModelRunner,
    PoolStage,
    reference_model,
)
from repro.feather.postproc import (
    IntegerBatchNorm,
    avg_pool_layer,
    avg_pool_reference,
    max_pool,
    relu,
)
from repro.feather.accelerator import FeatherAccelerator, reference_conv
from repro.workloads.conv import ConvLayerSpec


class TestPostProcessing:
    def test_relu(self):
        acts = np.array([[[-3, 2], [0, -1]]])
        assert np.array_equal(relu(acts), [[[0, 2], [0, 0]]])

    def test_batch_norm_identity(self):
        bn = IntegerBatchNorm.identity(2)
        acts = np.arange(8).reshape(2, 2, 2)
        assert np.array_equal(bn.apply(acts), acts)

    def test_batch_norm_scale_and_bias(self):
        bn = IntegerBatchNorm(scale_num=(2, 4), scale_shift=1, bias=(1, -1))
        acts = np.ones((2, 1, 1), dtype=np.int64) * 4
        out = bn.apply(acts)
        assert out[0, 0, 0] == 4 * 2 // 2 + 1
        assert out[1, 0, 0] == 4 * 4 // 2 - 1

    def test_batch_norm_channel_mismatch(self):
        bn = IntegerBatchNorm.identity(2)
        with pytest.raises(ValueError):
            bn.apply(np.ones((3, 2, 2)))

    def test_max_pool(self):
        acts = np.array([[[1, 2, 3, 4],
                          [5, 6, 7, 8],
                          [9, 10, 11, 12],
                          [13, 14, 15, 16]]])
        out = max_pool(acts, kernel=2)
        assert np.array_equal(out, [[[6, 8], [14, 16]]])

    def test_max_pool_stride(self):
        acts = np.arange(16).reshape(1, 4, 4)
        out = max_pool(acts, kernel=2, stride=1)
        assert out.shape == (1, 3, 3)

    def test_max_pool_window_too_large(self):
        with pytest.raises(ValueError):
            max_pool(np.ones((1, 2, 2)), kernel=4)

    def test_avg_pool_as_depthwise_conv(self, rng):
        """Average pooling lowered to a depthwise conv on FEATHER matches the
        integer reference (the paper's §III-A transformation)."""
        channels, h = 4, 6
        acts = rng.integers(0, 16, (channels, h, h))
        layer = avg_pool_layer(channels, h, h, kernel=2)
        weights = np.ones((channels, 1, 2, 2), dtype=np.int64)
        acc = FeatherAccelerator(FeatherConfig(array_rows=4, array_cols=4,
                                               stab_lines=512))
        # Run each channel's 2x2 box filter as its own tiny conv (depthwise).
        out = np.zeros((channels, layer.p, layer.q), dtype=np.int64)
        for c in range(channels):
            sub = ConvLayerSpec(f"ap{c}", m=1, c=1, h=h, w=h, r=2, s=2, stride=2)
            result, _ = acc.run_conv(sub, acts[c:c + 1], weights[c:c + 1].reshape(1, 1, 2, 2))
            out[c] = result[0]
        assert np.array_equal(out // 4, avg_pool_reference(acts, 2))


class TestModelRunner:
    def _mini_cnn(self, rng):
        conv1 = ConvLayerSpec("conv1", m=8, c=3, h=12, w=12, r=3, s=3, padding=1)
        conv2 = ConvLayerSpec("conv2", m=4, c=8, h=6, w=6, r=3, s=3, padding=1)
        stages = [
            ConvStage(conv1, rng.integers(-3, 4, (8, 3, 3, 3)), apply_relu=True,
                      batch_norm=IntegerBatchNorm.identity(8)),
            PoolStage(kernel=2),
            ConvStage(conv2, rng.integers(-3, 4, (4, 8, 3, 3)), apply_relu=True),
        ]
        iacts = rng.integers(-4, 5, (3, 12, 12))
        return stages, iacts

    def test_mini_cnn_matches_reference(self, rng):
        stages, iacts = self._mini_cnn(rng)
        runner = ModelRunner(FeatherConfig(array_rows=4, array_cols=8,
                                           stab_lines=4096))
        result = runner.run(stages, iacts)
        assert np.array_equal(result.outputs, reference_model(stages, iacts))

    def test_per_layer_stats_collected(self, rng):
        stages, iacts = self._mini_cnn(rng)
        runner = ModelRunner(FeatherConfig(array_rows=4, array_cols=8,
                                           stab_lines=4096))
        result = runner.run(stages, iacts)
        assert len(result.per_layer_stats) == 2   # pooling has no conv stats
        assert result.total_cycles > 0
        assert result.total_stats.macs == sum(
            s.layer.macs for s in stages if isinstance(s, ConvStage))

    def test_layouts_co_switched_per_layer(self, rng):
        stages, iacts = self._mini_cnn(rng)
        runner = ModelRunner(FeatherConfig(array_rows=4, array_cols=8,
                                           stab_lines=4096))
        result = runner.run(stages, iacts)
        assert all(result.layouts_used)

    def test_depthwise_stage(self, rng):
        dw = ConvLayerSpec("dw", m=8, c=8, h=8, w=8, r=3, s=3, padding=1, groups=8)
        stages = [ConvStage(dw, rng.integers(-2, 3, (8, 1, 3, 3)))]
        iacts = rng.integers(-4, 5, (8, 8, 8))
        runner = ModelRunner(FeatherConfig(array_rows=4, array_cols=4,
                                           stab_lines=2048))
        result = runner.run(stages, iacts)
        assert np.array_equal(result.outputs, reference_model(stages, iacts))

    def test_shape_mismatch_raises(self, rng):
        conv = ConvLayerSpec("bad", m=4, c=3, h=8, w=8, r=3, s=3, padding=1)
        stages = [ConvStage(conv, rng.integers(-2, 3, (4, 3, 3, 3)))]
        runner = ModelRunner()
        with pytest.raises(ValueError):
            runner.run(stages, rng.integers(0, 4, (3, 6, 6)))

    def test_bad_weight_shape_raises(self, rng):
        conv = ConvLayerSpec("bad_w", m=4, c=3, h=8, w=8, r=3, s=3, padding=1)
        with pytest.raises(ValueError):
            ConvStage(conv, rng.integers(-2, 3, (4, 3, 2, 2)))

    def test_custom_layout_policy(self, rng):
        from repro.layout.layout import parse_layout
        stages, iacts = self._mini_cnn(rng)
        runner = ModelRunner(
            FeatherConfig(array_rows=4, array_cols=8, stab_lines=4096),
            layout_for=lambda layer: parse_layout("MPQ_Q4"))
        result = runner.run(stages, iacts)
        assert np.array_equal(result.outputs, reference_model(stages, iacts))
        assert set(result.layouts_used) == {"MPQ_Q4"}
