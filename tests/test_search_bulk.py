"""The bulk-bounds search core (:mod:`repro.search.bulk`).

Property tests (hypothesis) over the two exactness claims the bulk
pipeline makes:

* **Bound identity** — for random conv/GEMM shapes, every entry of
  ``BulkUniverse.bounds`` equals the scalar
  :func:`repro.search.bounds.metric_lower_bound` of the materialized
  mapping bit for bit (same float op order), and every entry of
  ``BulkUniverse.footprints`` equals the scalar
  :func:`repro.search.frontier.buffer_footprint_bytes` exactly (integer
  math).  The int64 ceil-division behind the bulk trip counts is pinned
  against the scalar ``math.ceil`` float division it replaces.
* **Adaptive exactness** — on every analytical golden cell,
  ``max_mappings="auto"`` returns the winner of the *uncapped* exhaustive
  scan of the full structured space (report, mapping and layout), while
  covering exactly the same (mapping, layout) universe.

Plus the constructor/validation contract: the bulk universe enumerates
exactly what ``Mapper.candidate_mappings`` would materialize, in the same
order, and ``max_mappings="auto"`` is rejected everywhere it cannot keep
its exactness guarantee (non-analytical backends, budgeted policies,
frontier search).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.api import InvalidRequestError, SearchRequest
from repro.layoutloop.arch import feather_arch
from repro.layoutloop.mapper import Mapper
from repro.scenarios.builtin import golden_matrix
from repro.scenarios.registry import resolve_arch, resolve_workload_set
from repro.search.bounds import cached_bound_statics, metric_lower_bound
from repro.search.bulk import candidate_universe, full_universe
from repro.search.frontier import buffer_footprint_bytes
from repro.search.signatures import workload_signature
from repro.workloads.conv import ConvLayerSpec
from repro.workloads.gemm import GemmSpec

#: Adaptive growth is an analytical-bound argument, so its golden-cell
#: property is pinned on every cell the analytical model scores (the
#: simulator cells search a different backend; crossval *searches* on the
#: analytical model, so it belongs here).
ANALYTICAL_GOLDEN = [cell for cell in golden_matrix()
                     if cell.backend != "simulator"
                     and not cell.config.frontier]

#: Larger than any structured space in the repo: an uncapped sample, i.e.
#: the exhaustive full universe.
UNCAPPED = 10 ** 9

_metrics = st.sampled_from(["edp", "latency", "energy"])


def _unique(workloads):
    seen = {}
    for workload in workloads:
        seen.setdefault(workload_signature(workload), workload)
    return list(seen.values())


# ------------------------------------------------------------ bound identity
@settings(max_examples=20, deadline=None)
@given(m=st.integers(1, 48), c=st.integers(1, 48),
       h=st.integers(3, 20), w=st.integers(3, 20),
       r=st.integers(1, 3), s=st.integers(1, 3),
       stride=st.integers(1, 2), padding=st.integers(0, 1),
       pe=st.sampled_from([8, 16]), metric=_metrics)
def test_bulk_bounds_match_scalar_on_random_convs(m, c, h, w, r, s, stride,
                                                  padding, pe, metric):
    assume(h + 2 * padding >= r and w + 2 * padding >= s)
    layer = ConvLayerSpec("prop", m=m, c=c, h=h, w=w, r=r, s=s,
                          stride=stride, padding=padding)
    mapper = Mapper(feather_arch(pe, pe), metric=metric, max_mappings=40,
                    seed=3)
    universe = candidate_universe(mapper, layer)
    statics = cached_bound_statics(mapper.cost_model, layer)
    bounds = universe.bounds(metric, statics).tolist()
    footprints = universe.footprints(mapper.arch).tolist()
    cycles = universe.compute_cycles().tolist()
    for pos, mapping in enumerate(universe):
        scalar_cycles = mapping.compute_cycles(layer)
        assert cycles[pos] == scalar_cycles
        assert bounds[pos] == metric_lower_bound(metric, scalar_cycles,
                                                 statics)
        assert footprints[pos] == buffer_footprint_bytes(layer, mapping,
                                                         mapper.arch)


@settings(max_examples=20, deadline=None)
@given(m=st.integers(1, 96), k=st.integers(1, 96), n=st.integers(1, 96),
       pe=st.sampled_from([8, 16]), metric=_metrics)
def test_bulk_bounds_match_scalar_on_random_gemms(m, k, n, pe, metric):
    gemm = GemmSpec("prop", m=m, k=k, n=n)
    mapper = Mapper(feather_arch(pe, pe), metric=metric, max_mappings=40,
                    seed=5)
    universe = candidate_universe(mapper, gemm)
    statics = cached_bound_statics(mapper.cost_model, gemm)
    bounds = universe.bounds(metric, statics).tolist()
    footprints = universe.footprints(mapper.arch).tolist()
    for pos, mapping in enumerate(universe):
        assert bounds[pos] == metric_lower_bound(
            metric, mapping.compute_cycles(gemm), statics)
        assert footprints[pos] == buffer_footprint_bytes(gemm, mapping,
                                                         mapper.arch)


@given(extent=st.integers(1, 10 ** 7), degree=st.integers(1, 1 << 16))
def test_int_ceil_division_matches_the_scalar_float_ceil(extent, degree):
    """The int64 ``(E + D - 1) // D`` behind the bulk trip counts equals
    the scalar oracle's ``math.ceil(E / D)`` (float true division) for
    every extent a layer can have — they only diverge past 2**52."""
    assert (extent + degree - 1) // degree == math.ceil(extent / degree)


def test_universe_enumerates_candidate_mappings_in_order():
    """The symbolic universe is the same sequence ``candidate_mappings``
    materializes — same sample draw, same canonical tail, same order."""
    layer = ConvLayerSpec("layer", m=32, c=64, h=16, w=16, r=3, s=3,
                          stride=1, padding=1)
    mapper = Mapper(feather_arch(), max_mappings=24, seed=0)
    universe = candidate_universe(mapper, layer)
    mappings = mapper.candidate_mappings(layer)
    assert len(universe) == len(mappings)
    assert list(universe) == mappings


def test_full_universe_covers_the_whole_space_plus_tail():
    layer = ConvLayerSpec("layer", m=16, c=16, h=8, w=8, r=3, s=3, padding=1)
    mapper = Mapper(feather_arch(), max_mappings=4, seed=0)
    space = mapper._mapping_space(layer)
    universe = full_universe(mapper, layer)
    assert len(universe) == space.size() + len(mapper._canonical_tail(layer))


# -------------------------------------------------------- adaptive exactness
@pytest.mark.parametrize("cell", ANALYTICAL_GOLDEN, ids=lambda c: c.name)
def test_adaptive_never_loses_the_uncapped_exhaustive_winner(cell):
    arch = resolve_arch(cell.arch)
    auto = Mapper(arch, metric=cell.config.metric, max_mappings="auto",
                  seed=cell.config.seed)
    exhaustive = Mapper(arch, metric=cell.config.metric,
                        max_mappings=UNCAPPED, seed=cell.config.seed)
    for workload in _unique(resolve_workload_set(cell.workload_set)):
        adaptive = auto.search(workload)
        reference = exhaustive.search(workload)
        assert adaptive.best_mapping == reference.best_mapping
        assert adaptive.best_layout.name == reference.best_layout.name
        assert adaptive.best_report == reference.best_report
        # Same universe, accounted pair for pair: what the growth policy
        # never scored is pruned, not lost.
        assert (adaptive.evaluated + adaptive.pruned
                == reference.evaluated + reference.pruned)


@settings(max_examples=10, deadline=None)
@given(m=st.integers(1, 32), c=st.integers(1, 32),
       h=st.integers(3, 12), w=st.integers(3, 12),
       r=st.integers(1, 3), metric=_metrics)
def test_adaptive_matches_uncapped_exhaustive_on_random_convs(m, c, h, w, r,
                                                              metric):
    assume(h >= r and w >= r)
    layer = ConvLayerSpec("prop", m=m, c=c, h=h, w=w, r=r, s=r)
    auto = Mapper(feather_arch(8, 8), metric=metric, max_mappings="auto")
    exhaustive = Mapper(feather_arch(8, 8), metric=metric,
                        max_mappings=UNCAPPED)
    adaptive = auto.search(layer)
    reference = exhaustive.search(layer)
    assert adaptive.best_mapping == reference.best_mapping
    assert adaptive.best_layout.name == reference.best_layout.name
    assert adaptive.best_report == reference.best_report


# ------------------------------------------------------- validation contract
class TestAutoValidation:
    def test_auto_requires_the_analytical_backend(self):
        from repro.backends.simulator import SimulatorBackend

        arch = feather_arch(4, 4)
        with pytest.raises(ValueError, match="analytical"):
            Mapper(arch, max_mappings="auto",
                   backend=SimulatorBackend(arch, seed=0))

    def test_auto_requires_the_exhaustive_policy(self):
        with pytest.raises(ValueError, match="auto"):
            Mapper(feather_arch(), max_mappings="auto", policy="halving",
                   budget=24)

    def test_non_auto_strings_are_rejected(self):
        with pytest.raises(ValueError, match="auto"):
            Mapper(feather_arch(), max_mappings="all")
        with pytest.raises(InvalidRequestError, match="auto"):
            SearchRequest(workloads="fig10_gemms", arch="FEATHER-4x4",
                          max_mappings="all")

    def test_frontier_search_rejects_auto(self):
        layer = ConvLayerSpec("layer", m=16, c=16, h=8, w=8, r=3, s=3,
                              padding=1)
        mapper = Mapper(feather_arch(), max_mappings="auto")
        with pytest.raises(ValueError, match="frontier"):
            mapper.search_frontier(layer)
        with pytest.raises(InvalidRequestError, match="frontier"):
            SearchRequest(workloads="resnet50_residual_block", arch="FEATHER",
                          max_mappings="auto", frontier=True)

    def test_request_rejects_auto_off_the_analytical_backend(self):
        with pytest.raises(InvalidRequestError, match="analytical"):
            SearchRequest(workloads="micro_gemms", arch="FEATHER-4x4",
                          max_mappings="auto", backend="simulator")
