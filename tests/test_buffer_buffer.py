"""Tests for the logical 2D buffer and ping-pong buffer."""

import pytest

from repro.buffer.buffer import Buffer2D, BufferSpec, PingPongBuffer


class TestBufferSpec:
    def test_conflict_depth_line_interleaved(self):
        spec = BufferSpec(num_lines=64, line_size=8, banks=4)
        assert spec.conflict_depth == 16

    def test_conflict_depth_word_interleaved(self):
        spec = BufferSpec(num_lines=64, line_size=8, banks=8, interleaving="word")
        assert spec.conflict_depth == 64

    def test_capacity(self):
        spec = BufferSpec(num_lines=64, line_size=8, banks=4, word_bits=8)
        assert spec.capacity_words == 512
        assert spec.capacity_bytes == 512

    def test_word_interleaving_requires_matching_banks(self):
        with pytest.raises(ValueError):
            BufferSpec(num_lines=64, line_size=8, banks=4, interleaving="word")

    def test_invalid_interleaving(self):
        with pytest.raises(ValueError):
            BufferSpec(num_lines=64, line_size=8, banks=4, interleaving="diagonal")

    def test_peak_words_per_cycle(self):
        # Line-interleaved: each port delivers a whole line of words.
        spec = BufferSpec(num_lines=64, line_size=8, banks=4, ports_per_bank=2)
        assert spec.peak_words_per_cycle == 64
        # Word-interleaved (FEATHER StaB): one word per bank port.
        word = BufferSpec(num_lines=64, line_size=8, banks=8, ports_per_bank=2,
                          interleaving="word")
        assert word.peak_words_per_cycle == 16


class TestBuffer2DLineInterleaved:
    def _buf(self):
        return Buffer2D(BufferSpec(num_lines=16, line_size=4, banks=4))

    def test_write_read_line(self):
        buf = self._buf()
        buf.write_line(3, [1, 2, 3, 4])
        assert buf.read_line(3) == [1, 2, 3, 4]

    def test_write_read_word(self):
        buf = self._buf()
        buf.write_word(5, 2, 77)
        assert buf.read_word(5, 2) == 77

    def test_out_of_range_line(self):
        buf = self._buf()
        with pytest.raises(IndexError):
            buf.read_line(16)

    def test_out_of_range_offset(self):
        buf = self._buf()
        with pytest.raises(IndexError):
            buf.write_word(0, 4, 1)

    def test_cycle_cost_same_bank(self):
        buf = self._buf()  # conflict_depth = 4: lines 0-3 share bank 0
        assert buf.cycle_cost([0, 1, 2, 3]) == pytest.approx(2.0)

    def test_cycle_cost_different_banks(self):
        buf = self._buf()
        assert buf.cycle_cost([0, 4, 8, 12]) == pytest.approx(1.0)

    def test_cycle_cost_single_line(self):
        buf = self._buf()
        assert buf.cycle_cost([7]) == 1.0

    def test_access_stats(self):
        buf = self._buf()
        buf.write_line(0, [1, 2, 3, 4])
        buf.read_line(0)
        assert buf.total_writes == 4  # one write per word
        assert buf.total_reads == 1


class TestBuffer2DWordInterleaved:
    def _buf(self):
        return Buffer2D(BufferSpec(num_lines=16, line_size=4, banks=4,
                                   interleaving="word"))

    def test_each_word_lands_in_its_bank(self):
        buf = self._buf()
        buf.write_line(0, [10, 11, 12, 13])
        for offset in range(4):
            assert buf.banks[offset].peek(0)[0] == 10 + offset

    def test_independent_line_addresses_per_bank(self):
        # The FEATHER StaB property: different banks can be written at
        # different line addresses in the same cycle.
        buf = self._buf()
        buf.write_word(3, 0, 1)
        buf.write_word(7, 1, 2)
        buf.write_word(11, 2, 3)
        assert buf.read_word(3, 0) == 1
        assert buf.read_word(7, 1) == 2
        assert buf.read_word(11, 2) == 3

    def test_cycle_cost_counts_distinct_lines(self):
        buf = self._buf()
        assert buf.cycle_cost([0, 1, 2, 3]) == pytest.approx(2.0)
        assert buf.cycle_cost([0, 1]) == 1.0

    def test_read_line_gathers_from_all_banks(self):
        buf = self._buf()
        buf.write_line(5, [5, 6, 7, 8])
        assert buf.read_line(5) == [5, 6, 7, 8]


class TestPingPongBuffer:
    def _pp(self):
        return PingPongBuffer(BufferSpec(num_lines=8, line_size=4, banks=4))

    def test_roles_distinct(self):
        pp = self._pp()
        assert pp.read_half is not pp.write_half

    def test_swap_exchanges_roles(self):
        pp = self._pp()
        read_before = pp.read_half
        pp.swap()
        assert pp.write_half is read_before
        assert pp.swaps == 1

    def test_inter_layer_pattern(self):
        # Write oActs to the write half, swap, and read them as iActs.
        pp = self._pp()
        pp.write_half.write_line(0, [1, 2, 3, 4])
        pp.swap()
        assert pp.read_half.read_line(0) == [1, 2, 3, 4]

    def test_stats_aggregate_both_halves(self):
        pp = self._pp()
        pp.write_half.write_word(0, 0, 1)
        pp.swap()
        pp.write_half.write_word(0, 0, 2)
        assert pp.total_writes == 2
