"""Tests for the baseline registry, systolic array and device models."""

import pytest

from repro.baselines.devices import (
    edge_tpu_device,
    feather_fpga_device,
    gemmini_device,
    xilinx_dpu_device,
)
from repro.baselines.registry import (
    eyeriss_like,
    feather_layoutloop,
    feature_table,
    fig13_arch_suite,
    medusa_like,
    mtia_like,
    nvdla_like,
    reorder_support_table,
    sigma_like,
    tpu_like,
)
from repro.baselines.systolic import SystolicArray
from repro.layout.patterns import ReorderImplementation, ReorderPattern
from repro.workloads.conv import ConvLayerSpec
from repro.workloads.gemm import GemmSpec
from repro.workloads.resnet50 import resnet50_layer


class TestRegistry:
    def test_nvdla_is_fixed_everything(self):
        arch = nvdla_like()
        assert not arch.flexible_parallelism
        assert arch.fixed_layout == "HWC_C32"
        assert arch.reorder_implementation is ReorderImplementation.NONE

    def test_eyeriss_no_channel_parallelism(self):
        arch = eyeriss_like()
        assert "C" not in arch.allowed_parallel_dims

    def test_sigma_variants(self):
        assert sigma_like(reorder="none").fixed_layout == "HWC_C32"
        assert sigma_like(reorder="offchip").reorder_implementation is \
            ReorderImplementation.OFF_CHIP
        assert medusa_like().reorder_pattern is ReorderPattern.LINE_ROTATION
        assert mtia_like().reorder_pattern is ReorderPattern.TRANSPOSE
        assert tpu_like().reorder_pattern is ReorderPattern.TRANSPOSE_ROW

    def test_sigma_invalid_reorder(self):
        with pytest.raises(ValueError):
            sigma_like(reorder="quantum")

    def test_feather_config(self):
        arch = feather_layoutloop()
        assert arch.reorder_implementation is ReorderImplementation.RIR
        assert arch.num_pes == 256

    def test_fig13_suite_conv(self):
        suite = fig13_arch_suite()
        names = [a.name for a in suite]
        assert len(suite) == 9
        assert names[0] == "NVDLA-like" and names[-1] == "FEATHER"

    def test_fig13_suite_gemm(self):
        suite = fig13_arch_suite(gemm=True)
        assert len(suite) == 4

    def test_all_suite_archs_have_256_pes(self):
        for arch in fig13_arch_suite():
            assert arch.num_pes == 256

    def test_feature_tables(self):
        rows = feature_table()
        assert any(r.work == "FEATHER" and r.implementation == "RIR" for r in rows)
        assert any(r.work == "NVDLA" and not r.dataflow_switching for r in rows)
        reorder_rows = reorder_support_table()
        assert [r.work for r in reorder_rows][-1] == "FEATHER"


class TestSystolicArray:
    def test_regular_gemm_full_utilization(self):
        sa = SystolicArray(4, 4)
        gemm = GemmSpec("g", m=8, k=8, n=64)
        report = sa.run_gemm(gemm)
        assert report.utilization > 0.6

    def test_ragged_gemm_low_utilization(self):
        sa = SystolicArray(16, 16)
        gemm = GemmSpec("g", m=3, k=3, n=64)
        report = sa.run_gemm(gemm)
        assert report.utilization < 0.2

    def test_steady_state_utilization_gemm(self):
        sa = SystolicArray(4, 4)
        assert sa.steady_state_utilization_gemm(GemmSpec("a", 8, 8, 4)) == 1.0
        assert sa.steady_state_utilization_gemm(GemmSpec("d", 4, 16, 1)) == 0.25

    def test_conv_lowering(self):
        sa = SystolicArray(16, 16)
        layer = resnet50_layer(1)
        report = sa.run_conv(layer)
        assert report.macs == layer.macs
        assert 0 < report.utilization <= 1

    def test_steady_state_utilization_conv(self):
        sa = SystolicArray(16, 16)
        layer = ConvLayerSpec("c3", m=64, c=3, h=32, w=32, r=1, s=1)
        assert sa.steady_state_utilization(layer) == pytest.approx(3 / 16)

    def test_extra_parallel_lanes(self):
        base = SystolicArray(12, 12)
        lanes = SystolicArray(12, 12, extra_parallel=8)
        layer = resnet50_layer(10)
        assert lanes.run_conv(layer).cycles < base.run_conv(layer).cycles

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            SystolicArray(0, 4)


class TestDeviceModels:
    LAYERS = [resnet50_layer(i) for i in (1, 5, 20, 45)]

    def test_all_devices_run_layers(self):
        for device in (gemmini_device(), xilinx_dpu_device(), edge_tpu_device(),
                       feather_fpga_device()):
            for layer in self.LAYERS:
                result = device.run_layer(layer)
                assert result.cycles > 0
                assert 0 < result.utilization <= 1.0

    def test_normalized_throughput_equals_utilization(self):
        device = gemmini_device()
        result = device.run_layer(self.LAYERS[0])
        assert result.normalized_throughput_per_pe == pytest.approx(result.utilization)

    def test_feather_beats_gemmini_on_small_channel_layer(self):
        layer = resnet50_layer(1)  # C = 3 starves Gemmini's fixed C=16 lanes
        feather = feather_fpga_device().run_layer(layer)
        gemmini = gemmini_device().run_layer(layer)
        assert feather.normalized_throughput_per_pe > gemmini.normalized_throughput_per_pe

    def test_run_model_returns_all_layers(self):
        results = gemmini_device().run_model(self.LAYERS)
        assert len(results) == len(self.LAYERS)

    def test_device_pe_counts(self):
        assert gemmini_device().num_pes == 1024
        assert xilinx_dpu_device().num_pes == 1152
        assert feather_fpga_device().num_pes == 1296
