"""Load/stress contract of the concurrent service front.

Three layers, one claim: concurrency changes *scheduling*, never
*payloads*.

* **HTTP under concurrent load** — a threaded server hammered by 8+
  concurrent clients returns responses bit-identical to the pinned golden
  records (``tests/golden/``), with zero request errors.
* **In-flight dedup under load** — 8 clients firing the *same* cold
  search while it runs share one execution (the sha256 in-flight table),
  and every client reads the same payload.
* **Session.submit thread safety, no HTTP** — concurrent ``submit()`` of
  the golden cells from many threads: results equal the golden
  records, and the session counters stay consistent
  (``requests == executed + coalesced``).

Plus the fleet acceptance path: a second serve replica pointed at the
same ``--store`` file serves a warm repeat of the golden ResNet-50
co-search from the shared store (``served_from == "store"``) without
re-running the search.

The test sessions pass ``offload=True`` explicitly so the request-level
process-offload path is exercised on any host (the serve CLI enables it
only on multi-core machines, where it is a speedup rather than overhead);
offloaded searches must be bit-identical to inline ones.
"""

import json
import os
import re
import subprocess
import sys
import threading
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.api import SearchRequest, Session
from repro.serve import create_server

GOLDEN_DIR = Path(__file__).parent / "golden"
CLIENTS = 8


def _golden_cells():
    """(name, request-body, golden-payload) for every pinned cell."""
    cells = []
    for path in sorted(GOLDEN_DIR.glob("*.json")):
        golden = json.loads(path.read_text())
        body = {
            "workloads": golden["workload_set"],
            "arch": golden["arch"],
            "model": golden["scenario"],
            "metric": golden["config"]["metric"],
            "max_mappings": golden["config"]["max_mappings"],
            "seed": golden["config"]["seed"],
            "prune": golden["config"]["prune"],
            "backend": golden["backend"],
            "frontier": golden["config"].get("frontier", False),
            "fused": golden["config"].get("fused", False),
            # The golden records embed per-call engine counters; request
            # the same isolated-cache semantics so `search` compares too.
            "fresh_cache": True,
        }
        cells.append((path.stem, body, golden))
    return cells


CELLS = _golden_cells()
assert len(CELLS) == 10, "expected the ten pinned golden cells"


@pytest.fixture(scope="module")
def service():
    """A 4-thread server (offload on) + the session behind it."""
    session = Session(name="test-serve-concurrent", threads=4, offload=True)
    server = create_server("127.0.0.1", 0, session)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", session
    server.shutdown()
    server.server_close()
    session.close()
    thread.join(timeout=10)


def _post(base: str, body: dict) -> dict:
    request = urllib.request.Request(
        base + "/v1/search", data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=300) as response:
        assert response.status == 200
        return json.loads(response.read())


def _assert_matches_golden(name: str, served: dict, golden: dict) -> None:
    for field in ("totals", "layers", "search"):
        assert served[field] == golden[field], (
            f"{name}: {field} drifted from the golden record under load")
    if golden.get("crossval") is not None:
        assert served["crossval"] == golden["crossval"]
    for payload in ("frontiers", "fused"):
        if golden.get(payload) is not None:
            assert served[payload] == golden[payload], (
                f"{name}: {payload} drifted from the golden record "
                f"under load")


# ------------------------------------------------------------ HTTP load
def test_concurrent_mixed_golden_cells_are_bit_identical(service):
    """8 clients, each running all six golden cells in a different order:
    every response must equal its pinned record, no request may error."""
    base, _ = service
    barrier = threading.Barrier(CLIENTS)

    def client(offset: int):
        served = []
        barrier.wait(timeout=60)
        for i in range(len(CELLS)):
            name, body, golden = CELLS[(i + offset) % len(CELLS)]
            served.append((name, _post(base, body), golden))
        return served

    with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
        all_served = [f.result() for f in
                      [pool.submit(client, i) for i in range(CLIENTS)]]
    assert len(all_served) == CLIENTS
    for responses in all_served:
        for name, served, golden in responses:
            _assert_matches_golden(name, served, golden)


def test_identical_concurrent_searches_coalesce_to_few_executions(service):
    """8 clients firing the same cold search: the in-flight table must
    collapse them to ~one execution, all reading identical payloads."""
    base, session = service
    # A distinct cold cell (unique model label) wide enough (~60ms) that
    # every client's claim lands while the first execution is in flight.
    body = {"workloads": "resnet50", "arch": "FEATHER",
            "model": "dedup-under-load", "metric": "edp",
            "max_mappings": 24, "fresh_cache": True}
    before_executed = session.stats.executed
    before_coalesced = session.stats.coalesced
    barrier = threading.Barrier(CLIENTS)

    def client(_: int) -> dict:
        barrier.wait(timeout=60)
        return _post(base, body)

    with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
        responses = [f.result() for f in
                     [pool.submit(client, i) for i in range(CLIENTS)]]

    first = responses[0]
    for other in responses[1:]:
        stripped = ({k: v for k, v in r.items() if k != "elapsed_s"}
                    for r in (first, other))
        assert next(stripped) == next(stripped), \
            "coalesced clients read different payloads"
    executed = session.stats.executed - before_executed
    coalesced = session.stats.coalesced - before_coalesced
    assert executed + coalesced == CLIENTS
    # All 8 claims normally land inside the first execution's window; a
    # slow scheduler may let a straggler or two re-execute, never most.
    assert executed <= 2, f"{executed} executions for one identical burst"
    assert coalesced >= CLIENTS - 2


def test_no_errors_and_consistent_counters_under_load(service):
    base, session = service
    health = json.loads(urllib.request.urlopen(
        base + "/v1/healthz", timeout=30).read())
    assert health["status"] == "ok"
    assert health["threads"] == 4
    assert health["requests"] == (health["executed"] + health["coalesced"]
                                  + health["store_hits"])
    assert health["inflight"] == 0


# ----------------------------------------------- Session.submit, no HTTP
def test_submit_stress_six_golden_cells_thread_safe():
    """Concurrent submit() across threads, straight into the session: the
    responses equal the golden records and the counters add up."""
    rounds = 3
    with Session(name="stress", threads=8, offload=True) as session:
        futures = []
        for r in range(rounds):
            for name, body, golden in CELLS:
                futures.append((name, golden,
                                session.submit(SearchRequest(**body))))
        for name, golden, future in futures:
            response = future.result(timeout=300)
            served = json.loads(response.to_json())
            _assert_matches_golden(name, served, golden)
        stats = session.stats
        assert stats.requests == rounds * len(CELLS)
        assert stats.requests == stats.executed + stats.coalesced
        # fresh_cache repeats that did not overlap re-execute; whatever
        # overlapped coalesced.  Either way every response matched golden.
        assert stats.executed >= len(CELLS)


# --------------------------------------------------- shared-store replica
def _spawn_replica(tmp_path: Path, store: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).parent.parent / "src")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0",
         "--threads", "4", "--store", str(store)],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
        env=env, cwd=tmp_path)
    line = server.stdout.readline()
    match = re.search(r"http://([^:]+):(\d+)", line)
    assert match, f"server did not announce a port (got {line!r})"
    return server, f"http://{match.group(1)}:{match.group(2)}"


def test_second_replica_serves_golden_resnet50_from_shared_store(tmp_path):
    """The ISSUE acceptance path: replica B, pointed at replica A's
    ``--store``, serves the golden ResNet-50 co-search from disk —
    ``served_from == "store"``, store hit in the health stats, payload
    identical to A's (and to the golden record) — without re-searching."""
    golden = json.loads(
        (GOLDEN_DIR / "golden-resnet50-head.json").read_text())
    body = {"workloads": golden["workload_set"], "arch": golden["arch"],
            "model": golden["scenario"],
            "metric": golden["config"]["metric"],
            "max_mappings": golden["config"]["max_mappings"],
            "seed": golden["config"]["seed"],
            "prune": golden["config"]["prune"]}
    store = tmp_path / "fleet.sqlite"

    replica_a, base_a = _spawn_replica(tmp_path, store)
    try:
        first = _post(base_a, body)
        assert first["served_from"] is None
        # A cold shared-cache run reports the same engine counters as the
        # pinned fresh_cache record — compare everything.
        _assert_matches_golden("replica-a", first, golden)
    finally:
        replica_a.terminate()
        replica_a.wait(timeout=10)

    replica_b, base_b = _spawn_replica(tmp_path, store)
    try:
        second = _post(base_b, body)
        assert second["served_from"] == "store"
        for field in ("totals", "layers", "search", "key"):
            assert second[field] == first[field]
        health = json.loads(urllib.request.urlopen(
            base_b + "/v1/healthz", timeout=30).read())
        assert health["store_hits"] == 1
        assert health["executed"] == 0
        assert health["store"]["hits"] == 1
        assert health["store"]["path"].endswith("fleet.sqlite")
    finally:
        replica_b.terminate()
        replica_b.wait(timeout=10)
