"""The vectorized kernel is bit-identical to the scalar reference oracle.

Three layers of guarantees, each property-tested against randomly generated
inputs:

* ``CompiledLayout.address_batch`` == ``Layout.address`` per coordinate,
* ``analyze_concordance_batch`` == ``analyze_concordance`` per layout
  (every report field, including the float averages, compared with ``==``),
* streaming ``MappingSpace.sample`` == the materializing sampler for the
  same seed, and ``CostModel.evaluate_mapping_batch`` /
  ``Mapper(vectorize=True)`` == the scalar search path,
* the ``compile=True`` kernel path (:mod:`repro.kernel.jit`) == the numpy
  fold it replaces: the pure-Python loop kernels are tested always (they
  are exactly what numba compiles), and the jitted versions additionally
  when numba is importable.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.registry import medusa_like, mtia_like, sigma_like, tpu_like
from repro.dataflow.space import MappingSpace
from repro.kernel import analyze_concordance_batch, compile_layout
from repro.layout.concordance import analyze_concordance
from repro.layout.layout import IntraLineDim, Layout
from repro.layout.library import conv_layout_library, gemm_layout_library
from repro.layout.patterns import ReorderPattern
from repro.layoutloop.arch import feather_arch
from repro.layoutloop.cost_model import CostModel
from repro.layoutloop.mapper import Mapper
from repro.workloads.conv import ConvLayerSpec
from repro.workloads.gemm import GemmSpec

_DIM_POOL = ("C", "H", "W", "M", "K")


@st.composite
def _layout_and_dims(draw):
    """A random layout, tensor extents, and a rectangular coordinate batch.

    The layout may name dimensions absent from the extents (treated as
    extent 1) and the extents may contain dimensions the layout never
    mentions (the scalar path appends those as the slowest-varying line
    block) — both paths must agree everywhere.
    """
    dim_names = tuple(draw(st.permutations(_DIM_POOL))[:draw(st.integers(1, 4))])
    dims = {d: draw(st.integers(1, 9)) for d in dim_names}
    layout_dims = draw(st.permutations(_DIM_POOL))[:draw(st.integers(1, 4))]
    inter = tuple(layout_dims[:draw(st.integers(0, len(layout_dims)))])
    intra_dims = draw(st.permutations(layout_dims))[:draw(st.integers(0, len(layout_dims)))]
    intra = tuple(IntraLineDim(d, draw(st.integers(1, 5))) for d in intra_dims)
    if not inter and not intra:
        inter = (layout_dims[0],)
    layout = Layout(inter, intra)
    cycles = draw(st.integers(1, 4))
    lanes = draw(st.integers(1, 6))
    # Coordinates deliberately range past the extents — negative included:
    # the equivalence is algebraic, not a property of in-range inputs.
    coords = draw(st.lists(
        st.lists(st.lists(st.integers(-6, 12), min_size=len(dim_names),
                          max_size=len(dim_names)),
                 min_size=lanes, max_size=lanes),
        min_size=cycles, max_size=cycles))
    return layout, dims, dim_names, np.array(coords, dtype=np.int64)


class TestCompiledLayoutEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(_layout_and_dims())
    def test_batch_addressing_matches_scalar_oracle(self, case):
        layout, dims, dim_names, coords = case
        compiled = compile_layout(layout, dims)
        lines, offsets = compiled.address_batch(coords, dim_names)
        assert lines.shape == offsets.shape == coords.shape[:-1]
        for ci in range(coords.shape[0]):
            for li in range(coords.shape[1]):
                coord = {d: int(coords[ci, li, j])
                         for j, d in enumerate(dim_names)}
                assert layout.address(coord, dims) == (
                    int(lines[ci, li]), int(offsets[ci, li]))

    def test_layout_compile_method_is_memoized(self):
        layout = conv_layout_library()[0]
        dims = {"C": 64, "H": 14, "W": 14}
        assert layout.compile(dims) is layout.compile(dict(dims))


class TestBatchConcordanceEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(_layout_and_dims(),
           st.sampled_from(list(ReorderPattern)),
           st.integers(1, 4), st.integers(1, 4),
           st.one_of(st.none(), st.integers(1, 8)))
    def test_reports_identical_to_scalar(self, case, pattern, ports,
                                         lines_per_bank, num_banks):
        layout, dims, dim_names, coords = case
        per_cycle = [[{d: int(coords[ci, li, j]) for j, d in enumerate(dim_names)}
                      for li in range(coords.shape[1])]
                     for ci in range(coords.shape[0])]
        scalar = analyze_concordance(
            per_cycle, layout, dims, ports_per_bank=ports,
            lines_per_bank=lines_per_bank, num_banks=num_banks, pattern=pattern)
        batch, = analyze_concordance_batch(
            coords, dim_names, [layout], dims, ports_per_bank=ports,
            lines_per_bank=lines_per_bank, num_banks=num_banks, pattern=pattern)
        assert scalar == batch  # every field, floats included, exactly

    def test_many_layouts_one_pass(self):
        layouts = conv_layout_library()
        dims = {"C": 32, "H": 8, "W": 8}
        rng = random.Random(0)
        coords = np.array([[[rng.randrange(dims[d]) for d in ("C", "H", "W")]
                            for _ in range(16)] for _ in range(4)])
        batch = analyze_concordance_batch(coords, ("C", "H", "W"), layouts, dims,
                                          num_banks=8)
        assert [r.layout_name for r in batch] == [l.name for l in layouts]
        for layout, report in zip(layouts, batch):
            per_cycle = [[{d: int(v) for d, v in zip(("C", "H", "W"), row)}
                          for row in cyc] for cyc in coords]
            assert analyze_concordance(per_cycle, layout, dims,
                                       num_banks=8) == report

    def test_empty_cycles_match_scalar_defaults(self):
        layout = conv_layout_library()[0]
        reports = analyze_concordance_batch(
            np.zeros((0, 0, 3), dtype=np.int64), ("C", "H", "W"), [layout],
            {"C": 4, "H": 4, "W": 4})
        assert reports[0].cycles == 0
        assert reports[0].avg_slowdown == 1.0
        assert reports[0].concordant


class TestStreamingSampler:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2 ** 31), st.integers(1, 60))
    def test_streaming_sample_matches_materializing(self, seed, count):
        layer = ConvLayerSpec(name="l", m=64, c=32, h=14, w=14, r=3, s=3)
        space = MappingSpace(layer, 16, 16)
        streamed = space.sample(count, seed=seed)
        materialized = space.sample(count, seed=seed, materialize=True)
        assert streamed == materialized
        assert [m.name for m in streamed] == [m.name for m in materialized]

    def test_serial_mapping_is_named_df_serial(self):
        layer = ConvLayerSpec(name="l", m=8, c=8, h=8, w=8, r=1, s=1)
        space = MappingSpace(layer, 4, 4)
        serial = [m for m in space.iter_mappings() if not m.parallel]
        assert serial, "the serial mapping is always a member of the space"
        assert all(m.name.startswith("df_serial_") for m in serial)

    def test_streaming_covers_whole_space_when_count_exceeds_size(self):
        gemm = GemmSpec(name="g", m=32, k=16, n=8)
        space = MappingSpace(gemm, 8, 8)
        assert space.sample(10_000) == list(space.iter_mappings())


class _ForcedCompiledPath:
    """Route ``compiled=True`` through the pure-Python loop kernels even
    without numba: the ``*_py`` functions are byte-for-byte what numba
    compiles, so their equivalence is the portable half of the bit-identity
    claim (the jitted half runs under ``skipif`` below)."""

    def __enter__(self):
        from repro.kernel import jit

        self._jit = jit
        self._saved = (jit.NUMBA_AVAILABLE, jit.concordance_fold,
                       jit.conv_iact_fill, jit.gemm_input_fill)
        jit.NUMBA_AVAILABLE = True
        jit.concordance_fold = jit.concordance_fold_py
        jit.conv_iact_fill = jit.conv_iact_fill_py
        jit.gemm_input_fill = jit.gemm_input_fill_py
        return self

    def __exit__(self, *exc):
        (self._jit.NUMBA_AVAILABLE, self._jit.concordance_fold,
         self._jit.conv_iact_fill, self._jit.gemm_input_fill) = self._saved


def _compiled_cases():
    return ((ConvLayerSpec(name="c", m=64, c=32, h=14, w=14, r=3, s=3),
             conv_layout_library()),
            (GemmSpec(name="g", m=96, k=64, n=128), gemm_layout_library()))


class TestCompiledKernelEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(_layout_and_dims(),
           st.sampled_from(list(ReorderPattern)),
           st.integers(1, 4), st.integers(1, 4),
           st.one_of(st.none(), st.integers(1, 8)))
    def test_compiled_concordance_fold_matches_numpy(self, case, pattern,
                                                     ports, lines_per_bank,
                                                     num_banks):
        layout, dims, dim_names, coords = case
        numpy_reports = analyze_concordance_batch(
            coords, dim_names, [layout], dims, ports_per_bank=ports,
            lines_per_bank=lines_per_bank, num_banks=num_banks,
            pattern=pattern)
        with _ForcedCompiledPath():
            compiled_reports = analyze_concordance_batch(
                coords, dim_names, [layout], dims, ports_per_bank=ports,
                lines_per_bank=lines_per_bank, num_banks=num_banks,
                pattern=pattern, compiled=True)
        assert numpy_reports == compiled_reports

    def test_compiled_footprint_walk_matches_numpy(self):
        from repro.kernel.footprint import streaming_access_coords

        arch = feather_arch()
        rng = random.Random(7)
        bases = [(rng.randrange(64), rng.randrange(64), rng.randrange(64))
                 for _ in range(6)]
        for workload, _ in _compiled_cases():
            space = MappingSpace(workload, arch.pe_rows, arch.pe_cols)
            for mapping in space.sample(4, seed=1):
                plain = streaming_access_coords(workload, mapping, bases)
                with _ForcedCompiledPath():
                    compiled = streaming_access_coords(workload, mapping,
                                                       bases, compiled=True)
                assert plain[1] == compiled[1]  # dim names
                assert np.array_equal(plain[0], compiled[0])

    def test_compile_true_cost_model_matches_oracle(self):
        arch = feather_arch()
        oracle = CostModel(arch)
        with _ForcedCompiledPath():
            compiled = CostModel(arch, compile=True)
            for workload, layouts in _compiled_cases():
                space = MappingSpace(workload, arch.pe_rows, arch.pe_cols)
                for mapping in space.sample(4, seed=3):
                    batch = compiled.evaluate_mapping_batch(workload,
                                                            mapping, layouts)
                    for layout, report in zip(layouts, batch):
                        assert oracle.evaluate(workload, mapping,
                                               layout) == report

    def test_compile_without_numba_is_a_silent_numpy_fallback(self):
        from repro.kernel import jit

        if jit.NUMBA_AVAILABLE:
            pytest.skip("numba installed: no fallback to observe")
        arch = feather_arch()
        workload, layouts = _compiled_cases()[0]
        mapping = MappingSpace(workload, arch.pe_rows,
                               arch.pe_cols).sample(1, seed=0)[0]
        assert (CostModel(arch, compile=True).evaluate_mapping_batch(
                    workload, mapping, layouts)
                == CostModel(arch).evaluate_mapping_batch(
                    workload, mapping, layouts))

    @pytest.mark.skipif(
        not __import__("repro.kernel.jit", fromlist=["x"]).NUMBA_AVAILABLE,
        reason="numba not installed")
    def test_numba_jitted_kernels_bit_identical(self):
        arch = feather_arch()
        oracle = CostModel(arch)
        compiled = CostModel(arch, compile=True)
        for workload, layouts in _compiled_cases():
            space = MappingSpace(workload, arch.pe_rows, arch.pe_cols)
            for mapping in space.sample(6, seed=4):
                batch = compiled.evaluate_mapping_batch(workload, mapping,
                                                        layouts)
                for layout, report in zip(layouts, batch):
                    assert oracle.evaluate(workload, mapping,
                                           layout) == report

    @pytest.mark.skipif(
        not __import__("repro.kernel.jit", fromlist=["x"]).NUMBA_AVAILABLE,
        reason="numba not installed")
    def test_numba_search_identical_to_exhaustive(self):
        workload = ConvLayerSpec(name="c", m=64, c=32, h=14, w=14, r=3, s=3)
        fast = Mapper(feather_arch(), max_mappings=16,
                      compile=True).search(workload)
        slow = Mapper(feather_arch(), max_mappings=16).search(workload)
        assert fast.best_report == slow.best_report
        assert fast.best_mapping == slow.best_mapping
        assert fast.best_layout == slow.best_layout


class TestBatchedEvaluation:
    @pytest.mark.parametrize("arch_fn", [
        lambda: sigma_like(reorder="offchip"), medusa_like, mtia_like,
        tpu_like, feather_arch])
    def test_evaluate_mapping_batch_matches_scalar(self, arch_fn):
        arch = arch_fn()
        model = CostModel(arch)
        for workload, layouts in (
                (ConvLayerSpec(name="c", m=64, c=32, h=14, w=14, r=3, s=3),
                 conv_layout_library()),
                (GemmSpec(name="g", m=96, k=64, n=128), gemm_layout_library())):
            space = MappingSpace(workload, arch.pe_rows, arch.pe_cols)
            for mapping in space.sample(5, seed=2):
                batch = model.evaluate_mapping_batch(workload, mapping, layouts)
                for layout, report in zip(layouts, batch):
                    assert model.evaluate(workload, mapping, layout) == report

    def test_evaluate_batch_covers_cross_product(self):
        arch = feather_arch()
        model = CostModel(arch)
        workload = ConvLayerSpec(name="c", m=32, c=16, h=7, w=7, r=3, s=3)
        mappings = MappingSpace(workload, 16, 16).sample(3, seed=0)
        layouts = conv_layout_library()
        grid = model.evaluate_batch(workload, mappings, layouts)
        assert len(grid) == len(mappings)
        assert all(len(row) == len(layouts) for row in grid)

    def test_duplicate_layouts_keep_scalar_hit_accounting(self):
        """A layout repeated within one batch is a miss then a hit, exactly
        like the scalar per-pair loop — evaluated once, not twice."""
        from repro.search.cache import EvaluationCache

        arch = sigma_like(reorder="offchip")
        model = CostModel(arch)
        workload = ConvLayerSpec(name="c", m=32, c=16, h=7, w=7, r=3, s=3)
        mapping = MappingSpace(workload, 16, 16).sample(1, seed=0)[0]
        layout = conv_layout_library()[0]

        batch_cache = EvaluationCache()
        batched = batch_cache.evaluate_batch(model, workload, mapping,
                                             [layout, layout])
        scalar_cache = EvaluationCache()
        scalar = [scalar_cache.evaluate(model, workload, mapping, l)
                  for l in (layout, layout)]
        assert [hit for _, hit in batched] == [hit for _, hit in scalar] == \
               [False, True]
        assert (batch_cache.stats.hits, batch_cache.stats.misses) == \
               (scalar_cache.stats.hits, scalar_cache.stats.misses)
        assert [r for r, _ in batched] == [r for r, _ in scalar]

    def test_vectorized_search_identical_to_scalar_search(self):
        workload = ConvLayerSpec(name="c", m=64, c=32, h=14, w=14, r=3, s=3)
        for arch in (sigma_like(reorder="offchip"), feather_arch()):
            fast = Mapper(arch, max_mappings=16, vectorize=True).search(workload)
            slow = Mapper(arch, max_mappings=16, vectorize=False).search(workload)
            assert fast.best_report == slow.best_report
            assert fast.best_mapping == slow.best_mapping
            assert fast.best_layout == slow.best_layout
            assert (fast.evaluated, fast.pruned, fast.cache_hits) == \
                   (slow.evaluated, slow.pruned, slow.cache_hits)
