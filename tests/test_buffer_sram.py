"""Tests for the SRAM bank model."""

import pytest

from repro.buffer.sram import BankConflictError, SramBank


class TestSramBank:
    def test_write_then_read(self):
        bank = SramBank(entries=8, io_width=4)
        bank.write(0, [1, 2, 3, 4])
        assert bank.read(0) == [1, 2, 3, 4]

    def test_partial_line_write(self):
        bank = SramBank(entries=8, io_width=4)
        bank.write(2, [9, 9])
        assert bank.read(2) == [9, 9, None, None]

    def test_write_word(self):
        bank = SramBank(entries=8, io_width=4)
        bank.write_word(1, 3, 42)
        assert bank.read(1)[3] == 42

    def test_oversized_line_raises(self):
        bank = SramBank(entries=8, io_width=2)
        with pytest.raises(ValueError):
            bank.write(0, [1, 2, 3])

    def test_out_of_range_entry(self):
        bank = SramBank(entries=4, io_width=2)
        with pytest.raises(IndexError):
            bank.read(4)

    def test_out_of_range_offset(self):
        bank = SramBank(entries=4, io_width=2)
        with pytest.raises(ValueError):
            bank.write_word(0, 5, 1)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SramBank(entries=0)

    def test_access_counting(self):
        bank = SramBank(entries=8, io_width=2)
        bank.write(0, [1, 2])
        bank.read(0)
        bank.read(0)
        assert bank.total_writes == 1
        assert bank.total_reads == 2
        assert bank.total_accesses == 3

    def test_reset_stats(self):
        bank = SramBank(entries=8, io_width=2)
        bank.write(0, [1, 2])
        bank.reset_stats()
        assert bank.total_accesses == 0

    def test_port_budget_within_cycle(self):
        bank = SramBank(entries=8, io_width=2, ports=2)
        bank.read(0)
        bank.read(1)
        assert bank.ports_available == 0
        assert bank.conflict_stalls == 0

    def test_conflict_detected_non_strict(self):
        bank = SramBank(entries=8, io_width=2, ports=2)
        bank.read(0)
        bank.read(1)
        bank.read(2)  # third access in the same cycle
        assert bank.conflict_stalls == 1

    def test_conflict_raises_in_strict_mode(self):
        bank = SramBank(entries=8, io_width=2, ports=1)
        bank.read(0, strict=True)
        with pytest.raises(BankConflictError):
            bank.read(1, strict=True)

    def test_tick_resets_port_usage(self):
        bank = SramBank(entries=8, io_width=2, ports=1)
        bank.read(0, strict=True)
        bank.tick()
        bank.read(1, strict=True)  # no error after the cycle boundary
        assert bank.conflict_stalls == 0

    def test_peek_does_not_consume_ports(self):
        bank = SramBank(entries=8, io_width=2, ports=1)
        bank.write(0, [5, 6])
        bank.tick()
        for _ in range(10):
            assert bank.peek(0) == [5, 6]
        assert bank.ports_available == 1

    def test_occupancy(self):
        bank = SramBank(entries=8, io_width=2)
        assert bank.occupancy() == 0
        bank.write(0, [1, 2])
        bank.write(5, [3])
        assert bank.occupancy() == 2
