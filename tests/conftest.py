"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.feather.config import FeatherConfig
from repro.workloads.conv import ConvLayerSpec
from repro.workloads.gemm import GemmSpec


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="regenerate the pinned scenario records under tests/golden/ "
             "from the current code instead of comparing against them")


@pytest.fixture
def update_golden(request):
    """True when the run should rewrite the golden files."""
    return request.config.getoption("--update-golden")


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def small_conv_layer():
    """A small convolution exercising stride and padding."""
    return ConvLayerSpec("test_conv", m=8, c=4, h=6, w=6, r=3, s=3, stride=1, padding=1)


@pytest.fixture
def tiny_conv_layer():
    """A minimal convolution for fast functional runs."""
    return ConvLayerSpec("tiny_conv", m=4, c=2, h=4, w=4, r=2, s=2, stride=1, padding=0)


@pytest.fixture
def strided_conv_layer():
    return ConvLayerSpec("strided_conv", m=4, c=3, h=8, w=8, r=3, s=3, stride=2, padding=1)


@pytest.fixture
def small_gemm():
    return GemmSpec("test_gemm", m=12, k=16, n=10)


@pytest.fixture
def small_feather_config():
    return FeatherConfig(array_rows=4, array_cols=8, stab_lines=256, strb_lines=256)


@pytest.fixture
def tiny_feather_config():
    return FeatherConfig(array_rows=4, array_cols=4, stab_lines=128, strb_lines=128)
